// Quickstart: create a database, write documents, query them, and watch a
// real-time query — the minimal tour of the public API.
//
//   $ ./example_quickstart

#include <iostream>

#include "client/client.h"
#include "common/logging.h"
#include "service/service.h"

using namespace firestore;  // example code; library code never does this

int main() {
  // A "region": one multi-tenant service instance backed by an in-process
  // Spanner database. Creating a logical database is metadata-only.
  RealClock clock;
  service::FirestoreService service(&clock);
  const std::string db = "projects/demo/databases/(default)";
  FS_CHECK_OK(service.CreateDatabase(db));

  // --- Writes (Server SDK style: privileged, no security rules) ---
  auto path = [](const char* p) {
    return model::ResourcePath::Parse(p).value();
  };
  FS_CHECK_OK(service
                  .Commit(db, {backend::Mutation::Set(
                                  path("/cities/sf"),
                                  {{"name", model::Value::String(
                                                "San Francisco")},
                                   {"population",
                                    model::Value::Integer(873965)},
                                   {"state", model::Value::String("CA")}})})
                  .status());
  FS_CHECK_OK(service
                  .Commit(db, {backend::Mutation::Set(
                                  path("/cities/la"),
                                  {{"name", model::Value::String(
                                                "Los Angeles")},
                                   {"population",
                                    model::Value::Integer(3990456)},
                                   {"state", model::Value::String("CA")}})})
                  .status());
  FS_CHECK_OK(service
                  .Commit(db, {backend::Mutation::Set(
                                  path("/cities/nyc"),
                                  {{"name", model::Value::String("New York")},
                                   {"population",
                                    model::Value::Integer(8336817)},
                                   {"state", model::Value::String("NY")}})})
                  .status());

  // --- A query served from the automatic single-field indexes ---
  query::Query big_cities(model::ResourcePath(), "cities");
  big_cities.Where(model::FieldPath::Single("population"),
                   query::Operator::kGreaterThan,
                   model::Value::Integer(1'000'000));
  auto result = service.RunQuery(db, big_cities);
  FS_CHECK(result.ok());
  std::cout << "cities with population > 1M (plan: "
            << result->plan_description << "):\n";
  for (const auto& doc : result->result.documents) {
    std::cout << "  " << doc.ToString() << "\n";
  }

  // --- A real-time query through the client SDK ---
  client::FirestoreClient::Options options;
  options.third_party = false;  // privileged demo client
  client::FirestoreClient client(&service, db, rules::AuthContext{}, options);

  query::Query ca(model::ResourcePath(), "cities");
  ca.Where(model::FieldPath::Single("state"), query::Operator::kEqual,
           model::Value::String("CA"));
  auto listener = client.OnSnapshot(ca, [](const client::ViewSnapshot& view) {
    std::cout << "snapshot (" << view.documents.size() << " CA cities"
              << (view.has_pending_writes ? ", pending writes" : "")
              << "):\n";
    for (const auto& doc : view.documents) {
      std::cout << "  " << doc.name().CanonicalString() << "\n";
    }
  });
  FS_CHECK(listener.ok());

  // A local write is visible immediately (latency compensation), then
  // confirmed by the server notification path.
  FS_CHECK_OK(client.Set(path("/cities/sj"),
                         {{"name", model::Value::String("San Jose")},
                          {"population", model::Value::Integer(1013240)},
                          {"state", model::Value::String("CA")}}));
  client.Pump();
  service.Pump();
  service.Pump();

  std::cout << "done.\n";
  return 0;
}
