// The paper's running example (§III, Web Codelab): a restaurant
// recommendation app. End users browse restaurants with filtering and
// sorting, and add reviews. Demonstrates:
//   - security rules (Figure 3 of the paper),
//   - third-party clients writing through rules,
//   - a composite index powering "city == X order by avgRating desc",
//   - a transaction keeping the restaurant's aggregate rating consistent,
//   - a write trigger (Cloud Functions stand-in),
//   - real-time queries updating a "display".
//
//   $ ./example_restaurant_reviews

#include <iostream>

#include "client/client.h"
#include "common/logging.h"
#include "service/service.h"

using namespace firestore;

namespace {

model::ResourcePath P(const std::string& p) {
  return model::ResourcePath::Parse(p).value();
}
model::FieldPath F(const std::string& f) {
  return model::FieldPath::Parse(f).value();
}

// Figure 3 of the paper, extended like the Web Codelab: clients may update
// a restaurant's aggregate fields (numRatings/avgRating) when signed in.
constexpr char kRules[] = R"(
  match /restaurants/{restaurantId} {
    allow read;
    allow update: if request.auth != null;
    match /ratings/{ratingId} {
      allow read: if request.auth != null;
      allow create: if request.auth.uid == request.resource.data.userId;
    }
  }
)";

}  // namespace

int main() {
  RealClock clock;
  service::FirestoreService service(&clock);
  const std::string db = "projects/friendlyeats/databases/(default)";
  service::DatabaseOptions db_options;
  db_options.rules_source = kRules;
  FS_CHECK_OK(service.CreateDatabase(db, db_options));

  // The app's backend seeds restaurants (privileged Server SDK).
  struct Seed {
    const char* id;
    const char* name;
    const char* city;
    const char* type;
  };
  for (const Seed& s : {Seed{"zola", "Zola", "SF", "French"},
                        Seed{"tacos", "Taco Corner", "SF", "Mexican"},
                        Seed{"bbq", "Smoke Pit", "Austin", "BBQ"}}) {
    FS_CHECK_OK(
        service
            .Commit(db, {backend::Mutation::Set(
                            P(std::string("/restaurants/") + s.id),
                            {{"name", model::Value::String(s.name)},
                             {"city", model::Value::String(s.city)},
                             {"type", model::Value::String(s.type)},
                             {"avgRating", model::Value::Double(0)},
                             {"numRatings", model::Value::Integer(0)}})})
            .status());
  }

  // The developer defines the composite index the sorted-filtered view
  // needs (the error message tells them to during development).
  query::Query sf(model::ResourcePath(), "restaurants");
  sf.Where(F("city"), query::Operator::kEqual, model::Value::String("SF"))
      .OrderByField(F("avgRating"), /*descending=*/true);
  if (auto r = service.RunQuery(db, sf); !r.ok()) {
    std::cout << "as expected, query needs an index:\n  "
              << r.status().message() << "\n";
  }
  FS_CHECK_OK(service
                  .CreateCompositeIndex(
                      db, "restaurants",
                      {{F("city"), index::SegmentKind::kAscending},
                       {F("avgRating"), index::SegmentKind::kDescending}})
                  .status());

  // A write trigger posts a moderation event whenever a rating is written.
  FS_CHECK_OK(service.RegisterTrigger(db, "moderateReview",
                                      {"restaurants", "{rid}", "ratings",
                                       "{rat}"}));
  service.functions().Register(
      "moderateReview", [](const backend::TriggerEvent& e) {
        std::cout << "[cloud function] review written: "
                  << e.change.name.CanonicalString() << "\n";
        return Status::Ok();
      });

  // Alice opens the app on her phone.
  rules::AuthContext alice;
  alice.authenticated = true;
  alice.uid = "alice";
  client::FirestoreClient phone(&service, db, alice);

  // The app displays the SF restaurants sorted by rating, live.
  auto listener = phone.OnSnapshot(sf, [](const client::ViewSnapshot& view) {
    std::cout << "--- SF restaurants by rating ---\n";
    for (const auto& doc : view.documents) {
      std::cout << "  " << doc.GetField(F("name"))->string_value()
                << "  avg=" << doc.GetField(F("avgRating"))->AsDouble()
                << " (" << doc.GetField(F("numRatings"))->integer_value()
                << " ratings)\n";
    }
  });
  FS_CHECK(listener.ok());

  // Alice adds a review. The rating insert and the aggregate update commit
  // atomically — the paper's §IV-D2 example — via an optimistic client
  // transaction.
  Status reviewed = phone.RunTransaction(
      [&](client::ClientTransaction& txn) -> Status {
        ASSIGN_OR_RETURN(std::optional<model::Document> rest,
                         txn.Get(P("/restaurants/zola")));
        if (!rest.has_value()) return NotFoundError("no restaurant");
        int64_t n = rest->GetField(F("numRatings"))->integer_value();
        double avg = rest->GetField(F("avgRating"))->AsDouble();
        double new_avg = (avg * static_cast<double>(n) + 5.0) /
                         static_cast<double>(n + 1);
        txn.Set(P("/restaurants/zola/ratings/r1"),
                {{"rating", model::Value::Integer(5)},
                 {"text", model::Value::String("superb!")},
                 {"userId", model::Value::String(alice.uid)}});
        txn.Merge(P("/restaurants/zola"),
                  {{"numRatings", model::Value::Integer(n + 1)},
                   {"avgRating", model::Value::Double(new_avg)}});
        return Status::Ok();
      });
  FS_CHECK_OK(reviewed);
  service.Pump();
  service.Pump();

  // Mallory tries to forge a review under Alice's name — denied by rules.
  rules::AuthContext mallory;
  mallory.authenticated = true;
  mallory.uid = "mallory";
  auto forged = service.CommitAsUser(
      db, mallory,
      {backend::Mutation::Create(
          P("/restaurants/zola/ratings/forged"),
          {{"rating", model::Value::Integer(1)},
           {"userId", model::Value::String("alice")}})});
  std::cout << "forged review: " << forged.status() << "\n";

  // The aggregate is consistent with the ratings.
  auto zola = service.Get(db, P("/restaurants/zola"));
  std::cout << "zola: " << (*zola)->ToString() << "\n";
  std::cout << "done.\n";
  return 0;
}
