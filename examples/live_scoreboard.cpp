// Live scoreboard: the paper's broadcast scenario (§V-B1, Figure 9) — "end
// users running an application that displays sporting-event scores receive a
// query update due to a team scoring". One writer updates a document; many
// clients with open real-time queries all get the notification.
//
//   $ ./example_live_scoreboard [num_viewers]

#include <cstdlib>
#include <iostream>

#include "client/client.h"
#include "common/logging.h"
#include "service/service.h"

using namespace firestore;

namespace {
model::ResourcePath P(const std::string& p) {
  return model::ResourcePath::Parse(p).value();
}
model::FieldPath F(const std::string& f) {
  return model::FieldPath::Parse(f).value();
}
}  // namespace

int main(int argc, char** argv) {
  int viewers = argc > 1 ? std::atoi(argv[1]) : 200;
  RealClock clock;
  service::FirestoreService service(&clock);
  const std::string db = "projects/sports/databases/(default)";
  service::DatabaseOptions options;
  options.rules_source = "match /games/{id} { allow read; }";
  FS_CHECK_OK(service.CreateDatabase(db, options));

  FS_CHECK_OK(service
                  .Commit(db, {backend::Mutation::Set(
                                  P("/games/final"),
                                  {{"home", model::Value::Integer(0)},
                                   {"away", model::Value::Integer(0)},
                                   {"status",
                                    model::Value::String("live")}})})
                  .status());

  // Every viewer opens the same real-time query from their device.
  query::Query live(model::ResourcePath(), "games");
  live.Where(F("status"), query::Operator::kEqual,
             model::Value::String("live"));
  int64_t notifications = 0;
  std::vector<std::unique_ptr<client::FirestoreClient>> devices;
  devices.reserve(viewers);
  for (int i = 0; i < viewers; ++i) {
    rules::AuthContext fan;
    fan.authenticated = true;
    fan.uid = "fan" + std::to_string(i);
    devices.push_back(
        std::make_unique<client::FirestoreClient>(&service, db, fan));
    auto listener = devices.back()->OnSnapshot(
        live, [&notifications](const client::ViewSnapshot& view) {
          (void)view;
          ++notifications;
        });
    FS_CHECK(listener.ok());
  }
  std::cout << viewers << " viewers connected ("
            << service.frontend().active_targets()
            << " active real-time queries)\n";

  // The home team scores three times; each write fans out to every device.
  notifications = 0;
  for (int score = 1; score <= 3; ++score) {
    FS_CHECK_OK(service
                    .Commit(db, {backend::Mutation::Merge(
                                    P("/games/final"),
                                    {{"home",
                                      model::Value::Integer(score)}})})
                    .status());
    service.Pump();
    service.Pump();
  }
  std::cout << "3 score updates delivered " << notifications
            << " notifications (" << notifications / 3 << " per write)\n";
  FS_CHECK_EQ(notifications, static_cast<int64_t>(viewers) * 3);

  // The game ends: the document leaves every query's result set.
  FS_CHECK_OK(service
                  .Commit(db, {backend::Mutation::Merge(
                                  P("/games/final"),
                                  {{"status",
                                    model::Value::String("final")}})})
                  .status());
  service.Pump();
  service.Pump();
  std::cout << "game over; viewers saw the removal.\n";
  return 0;
}
