// Operator's tour: the production machinery of paper §VI and §VIII on top
// of the same public API — data-validation jobs, the per-database in-flight
// limit, isolated-pool routing, conforming-traffic tracking, COUNT
// aggregations, and resumable (paginated) queries.
//
//   $ ./example_ops_tooling

#include <iostream>

#include "backend/admission.h"
#include "backend/validation.h"
#include "common/logging.h"
#include "service/service.h"

using namespace firestore;

namespace {
model::ResourcePath P(const std::string& p) {
  return model::ResourcePath::Parse(p).value();
}
model::FieldPath F(const std::string& f) {
  return model::FieldPath::Parse(f).value();
}
}  // namespace

int main() {
  RealClock clock;
  service::FirestoreService service(&clock);
  const std::string db = "projects/ops/databases/(default)";
  FS_CHECK_OK(service.CreateDatabase(db));

  // Seed a working dataset.
  for (int i = 0; i < 500; ++i) {
    FS_CHECK_OK(service
                    .Commit(db, {backend::Mutation::Set(
                                    P("/orders/o" + std::to_string(i)),
                                    {{"status", model::Value::String(
                                                    i % 4 == 0 ? "open"
                                                               : "done")},
                                     {"amount",
                                      model::Value::Integer(i * 3)}})})
                    .status());
  }

  // --- COUNT queries (§VIII): aggregate without fetching documents ---
  query::Query open_orders(model::ResourcePath(), "orders");
  open_orders.Where(F("status"), query::Operator::kEqual,
                    model::Value::String("open"));
  auto count = service.RunCountQuery(db, open_orders);
  FS_CHECK(count.ok());
  std::cout << "open orders: " << count->count << " (counted from "
            << count->stats.index_rows_scanned
            << " index rows, 0 documents fetched)\n";

  // --- Resumable queries (§IV-C): page through a big result set ---
  query::Query by_amount(model::ResourcePath(), "orders");
  by_amount.OrderByField(F("amount"), /*descending=*/true).Limit(200);
  int pages = 0, docs = 0;
  query::Query page = by_amount;
  while (true) {
    auto r = service.RunQuery(db, page);
    FS_CHECK(r.ok());
    if (r->result.documents.empty()) break;
    ++pages;
    docs += static_cast<int>(r->result.documents.size());
    page = by_amount;
    page.StartAfterDoc(r->result.documents.back());
  }
  std::cout << "paged " << docs << " orders in " << pages << " pages\n";

  // --- Data validation job (§VI) ---
  backend::DataValidationService validator(&service.spanner());
  auto report = validator.ValidateDatabase(db, *service.catalog(db));
  FS_CHECK(report.ok());
  std::cout << "validation: " << report->Summary() << "\n";

  // Simulate a corruption, detect it, repair by rewriting the document.
  {
    auto txn = service.spanner().BeginTransaction();
    txn->Put(index::kEntitiesTable, index::EntityKey(db, P("/orders/o1")),
             "bit-rot");
    FS_CHECK(txn->Commit().ok());
  }
  report = validator.ValidateDatabase(db, *service.catalog(db));
  std::cout << "after corruption: " << report->Summary() << "\n";
  // Remediate: the repair job drops the unparseable row and its stale index
  // entries; the application then rewrites the document through the API.
  report = validator.RepairDatabase(db, *service.catalog(db));
  FS_CHECK(report.ok() && report->clean());
  FS_CHECK_OK(service
                  .Commit(db, {backend::Mutation::Set(
                                  P("/orders/o1"),
                                  {{"status", model::Value::String("done")},
                                   {"amount", model::Value::Integer(3)}})})
                  .status());
  report = validator.ValidateDatabase(db, *service.catalog(db));
  std::cout << "after repair + rewrite: " << report->Summary() << "\n";

  // --- Emergency isolation tools (§VI) ---
  backend::AdmissionController admission;
  admission.SetInflightLimit(db, 2);  // the "low-tech manual tool"
  auto t1 = admission.Admit(db);
  auto t2 = admission.Admit(db);
  auto t3 = admission.Admit(db);
  std::cout << "in-flight limit: third concurrent RPC -> " << t3.status()
            << "\n";
  admission.RouteToIsolatedPool(db, "quarantine-pool");
  std::cout << "routing: requests for this database now go to pool '"
            << admission.PoolFor(db) << "'\n";

  // --- Conforming-traffic tracking (§IV-C) ---
  backend::TrafficRampTracker::Options ramp_options;
  ramp_options.base_qps = 500;
  backend::TrafficRampTracker ramp(&clock, ramp_options);
  bool conforming = true;
  for (int i = 0; i < 1000; ++i) conforming = ramp.Record(db) && conforming;
  std::cout << "a 1000-request instantaneous burst "
            << (conforming ? "conforms" : "violates")
            << " the 500-QPS-base ramp (allowed now: "
            << ramp.AllowedQps(db) << " QPS)\n";
  std::cout << "done.\n";
  return 0;
}
