// Disconnected operation (paper §IV-E): a note-taking app keeps working on
// the subway. Local writes are acknowledged immediately, queued, persisted
// across an app restart, and reconciled automatically on reconnection —
// while a second device converges to the same state.
//
//   $ ./example_offline_notes

#include <iostream>

#include "client/client.h"
#include "common/logging.h"
#include "service/service.h"

using namespace firestore;

namespace {
model::ResourcePath P(const std::string& p) {
  return model::ResourcePath::Parse(p).value();
}
model::FieldPath F(const std::string& f) {
  return model::FieldPath::Parse(f).value();
}

void PrintView(const char* who, const client::ViewSnapshot& view) {
  std::cout << who << " sees " << view.documents.size() << " notes"
            << (view.from_cache ? " [from cache]" : "")
            << (view.has_pending_writes ? " [pending writes]" : "") << ":\n";
  for (const auto& doc : view.documents) {
    std::cout << "    " << doc.name().last_segment() << ": "
              << doc.GetField(F("text"))->string_value() << "\n";
  }
}
}  // namespace

int main() {
  RealClock clock;
  service::FirestoreService service(&clock);
  const std::string db = "projects/notes/databases/(default)";
  service::DatabaseOptions options;
  options.rules_source = R"(
    match /users/{uid}/notes/{id} {
      allow read, write: if request.auth.uid == uid;
    }
  )";
  FS_CHECK_OK(service.CreateDatabase(db, options));

  rules::AuthContext ada;
  ada.authenticated = true;
  ada.uid = "ada";
  client::FirestoreClient phone(&service, db, ada);
  client::FirestoreClient laptop(&service, db, ada);

  query::Query notes(P("/users/ada"), "notes");
  auto phone_listener = phone.OnSnapshot(
      notes, [](const client::ViewSnapshot& v) { PrintView("phone", v); });
  auto laptop_listener = laptop.OnSnapshot(
      notes, [](const client::ViewSnapshot& v) { PrintView("laptop", v); });
  FS_CHECK(phone_listener.ok() && laptop_listener.ok());

  // Online: a note syncs to both devices.
  FS_CHECK_OK(phone.Set(P("/users/ada/notes/groceries"),
                        {{"text", model::Value::String("milk, eggs")}}));
  phone.Pump();
  service.Pump();
  service.Pump();

  // The phone goes into a tunnel.
  std::cout << "\n== phone goes offline ==\n";
  phone.SetNetworkEnabled(false);
  FS_CHECK_OK(phone.Set(P("/users/ada/notes/ideas"),
                        {{"text", model::Value::String(
                                      "paper on serverless dbs")}}));
  FS_CHECK_OK(phone.Merge(P("/users/ada/notes/groceries"),
                          {{"text", model::Value::String(
                                        "milk, eggs, coffee")}}));
  // Reads keep working from the cache.
  auto cached = phone.Get(P("/users/ada/notes/ideas"));
  std::cout << "offline read: "
            << (*cached)->GetField(F("text"))->string_value() << "\n";

  // The app is killed and relaunched while still offline: the persisted
  // cache provides a warm start, including the queued writes.
  std::cout << "\n== phone restarts (persistence on) ==\n";
  phone.Restart();
  phone.SetNetworkEnabled(false);
  std::cout << "queued offline writes after restart: "
            << phone.local_store().pending().size() << "\n";

  // Out of the tunnel: reconciliation is automatic.
  std::cout << "\n== phone reconnects ==\n";
  phone.SetNetworkEnabled(true);
  phone.Pump();
  service.Pump();
  service.Pump();

  auto server_view = service.Get(db, P("/users/ada/notes/ideas"));
  std::cout << "server now has: "
            << (*server_view)->GetField(F("text"))->string_value() << "\n";
  std::cout << "done.\n";
  return 0;
}
