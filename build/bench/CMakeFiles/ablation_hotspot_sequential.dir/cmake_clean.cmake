file(REMOVE_RECURSE
  "CMakeFiles/ablation_hotspot_sequential.dir/ablation_hotspot_sequential.cc.o"
  "CMakeFiles/ablation_hotspot_sequential.dir/ablation_hotspot_sequential.cc.o.d"
  "ablation_hotspot_sequential"
  "ablation_hotspot_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hotspot_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
