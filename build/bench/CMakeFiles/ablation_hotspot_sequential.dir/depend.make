# Empty dependencies file for ablation_hotspot_sequential.
# This may be replaced when dependencies are built.
