file(REMOVE_RECURSE
  "CMakeFiles/fig6_production_variance.dir/fig6_production_variance.cc.o"
  "CMakeFiles/fig6_production_variance.dir/fig6_production_variance.cc.o.d"
  "fig6_production_variance"
  "fig6_production_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_production_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
