# Empty compiler generated dependencies file for fig6_production_variance.
# This may be replaced when dependencies are built.
