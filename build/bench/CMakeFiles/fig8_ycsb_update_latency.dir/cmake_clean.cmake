file(REMOVE_RECURSE
  "CMakeFiles/fig8_ycsb_update_latency.dir/fig8_ycsb_update_latency.cc.o"
  "CMakeFiles/fig8_ycsb_update_latency.dir/fig8_ycsb_update_latency.cc.o.d"
  "fig8_ycsb_update_latency"
  "fig8_ycsb_update_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ycsb_update_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
