# Empty compiler generated dependencies file for fig8_ycsb_update_latency.
# This may be replaced when dependencies are built.
