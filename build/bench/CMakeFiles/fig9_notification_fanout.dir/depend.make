# Empty dependencies file for fig9_notification_fanout.
# This may be replaced when dependencies are built.
