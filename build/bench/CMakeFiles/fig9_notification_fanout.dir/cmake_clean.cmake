file(REMOVE_RECURSE
  "CMakeFiles/fig9_notification_fanout.dir/fig9_notification_fanout.cc.o"
  "CMakeFiles/fig9_notification_fanout.dir/fig9_notification_fanout.cc.o.d"
  "fig9_notification_fanout"
  "fig9_notification_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_notification_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
