file(REMOVE_RECURSE
  "CMakeFiles/ablation_codec.dir/ablation_codec.cc.o"
  "CMakeFiles/ablation_codec.dir/ablation_codec.cc.o.d"
  "ablation_codec"
  "ablation_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
