# Empty dependencies file for ablation_zigzag_vs_composite.
# This may be replaced when dependencies are built.
