file(REMOVE_RECURSE
  "CMakeFiles/ablation_zigzag_vs_composite.dir/ablation_zigzag_vs_composite.cc.o"
  "CMakeFiles/ablation_zigzag_vs_composite.dir/ablation_zigzag_vs_composite.cc.o.d"
  "ablation_zigzag_vs_composite"
  "ablation_zigzag_vs_composite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zigzag_vs_composite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
