file(REMOVE_RECURSE
  "CMakeFiles/fig11_isolation.dir/fig11_isolation.cc.o"
  "CMakeFiles/fig11_isolation.dir/fig11_isolation.cc.o.d"
  "fig11_isolation"
  "fig11_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
