# Empty dependencies file for fig11_isolation.
# This may be replaced when dependencies are built.
