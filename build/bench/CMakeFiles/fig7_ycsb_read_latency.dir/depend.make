# Empty dependencies file for fig7_ycsb_read_latency.
# This may be replaced when dependencies are built.
