file(REMOVE_RECURSE
  "CMakeFiles/fig7_ycsb_read_latency.dir/fig7_ycsb_read_latency.cc.o"
  "CMakeFiles/fig7_ycsb_read_latency.dir/fig7_ycsb_read_latency.cc.o.d"
  "fig7_ycsb_read_latency"
  "fig7_ycsb_read_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ycsb_read_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
