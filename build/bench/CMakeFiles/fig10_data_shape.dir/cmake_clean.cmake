file(REMOVE_RECURSE
  "CMakeFiles/fig10_data_shape.dir/fig10_data_shape.cc.o"
  "CMakeFiles/fig10_data_shape.dir/fig10_data_shape.cc.o.d"
  "fig10_data_shape"
  "fig10_data_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_data_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
