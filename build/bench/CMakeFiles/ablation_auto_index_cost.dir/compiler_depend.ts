# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ablation_auto_index_cost.
