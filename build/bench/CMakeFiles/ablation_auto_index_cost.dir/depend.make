# Empty dependencies file for ablation_auto_index_cost.
# This may be replaced when dependencies are built.
