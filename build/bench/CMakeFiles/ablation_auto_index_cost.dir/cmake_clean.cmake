file(REMOVE_RECURSE
  "CMakeFiles/ablation_auto_index_cost.dir/ablation_auto_index_cost.cc.o"
  "CMakeFiles/ablation_auto_index_cost.dir/ablation_auto_index_cost.cc.o.d"
  "ablation_auto_index_cost"
  "ablation_auto_index_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_auto_index_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
