file(REMOVE_RECURSE
  "CMakeFiles/ablation_batch_qos.dir/ablation_batch_qos.cc.o"
  "CMakeFiles/ablation_batch_qos.dir/ablation_batch_qos.cc.o.d"
  "ablation_batch_qos"
  "ablation_batch_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batch_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
