# Empty compiler generated dependencies file for ablation_batch_qos.
# This may be replaced when dependencies are built.
