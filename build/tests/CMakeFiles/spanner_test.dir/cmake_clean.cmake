file(REMOVE_RECURSE
  "CMakeFiles/spanner_test.dir/spanner_test.cc.o"
  "CMakeFiles/spanner_test.dir/spanner_test.cc.o.d"
  "spanner_test"
  "spanner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
