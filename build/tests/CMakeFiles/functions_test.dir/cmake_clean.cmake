file(REMOVE_RECURSE
  "CMakeFiles/functions_test.dir/functions_test.cc.o"
  "CMakeFiles/functions_test.dir/functions_test.cc.o.d"
  "functions_test"
  "functions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
