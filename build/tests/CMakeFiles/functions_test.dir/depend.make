# Empty dependencies file for functions_test.
# This may be replaced when dependencies are built.
