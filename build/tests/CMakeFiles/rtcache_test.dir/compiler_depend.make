# Empty compiler generated dependencies file for rtcache_test.
# This may be replaced when dependencies are built.
