file(REMOVE_RECURSE
  "CMakeFiles/rtcache_test.dir/rtcache_test.cc.o"
  "CMakeFiles/rtcache_test.dir/rtcache_test.cc.o.d"
  "rtcache_test"
  "rtcache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
