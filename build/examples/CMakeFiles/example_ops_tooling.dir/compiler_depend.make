# Empty compiler generated dependencies file for example_ops_tooling.
# This may be replaced when dependencies are built.
