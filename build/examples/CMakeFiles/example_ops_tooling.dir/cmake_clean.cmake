file(REMOVE_RECURSE
  "CMakeFiles/example_ops_tooling.dir/ops_tooling.cpp.o"
  "CMakeFiles/example_ops_tooling.dir/ops_tooling.cpp.o.d"
  "example_ops_tooling"
  "example_ops_tooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ops_tooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
