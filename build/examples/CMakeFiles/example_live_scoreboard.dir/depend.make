# Empty dependencies file for example_live_scoreboard.
# This may be replaced when dependencies are built.
