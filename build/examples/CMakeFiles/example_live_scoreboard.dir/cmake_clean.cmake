file(REMOVE_RECURSE
  "CMakeFiles/example_live_scoreboard.dir/live_scoreboard.cpp.o"
  "CMakeFiles/example_live_scoreboard.dir/live_scoreboard.cpp.o.d"
  "example_live_scoreboard"
  "example_live_scoreboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_live_scoreboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
