# Empty dependencies file for example_restaurant_reviews.
# This may be replaced when dependencies are built.
