file(REMOVE_RECURSE
  "CMakeFiles/example_restaurant_reviews.dir/restaurant_reviews.cpp.o"
  "CMakeFiles/example_restaurant_reviews.dir/restaurant_reviews.cpp.o.d"
  "example_restaurant_reviews"
  "example_restaurant_reviews.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_restaurant_reviews.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
