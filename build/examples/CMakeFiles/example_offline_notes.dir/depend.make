# Empty dependencies file for example_offline_notes.
# This may be replaced when dependencies are built.
