file(REMOVE_RECURSE
  "CMakeFiles/example_offline_notes.dir/offline_notes.cpp.o"
  "CMakeFiles/example_offline_notes.dir/offline_notes.cpp.o.d"
  "example_offline_notes"
  "example_offline_notes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_offline_notes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
