# Empty dependencies file for fs_backend.
# This may be replaced when dependencies are built.
