file(REMOVE_RECURSE
  "libfs_backend.a"
)
