file(REMOVE_RECURSE
  "CMakeFiles/fs_backend.dir/backend/admission.cc.o"
  "CMakeFiles/fs_backend.dir/backend/admission.cc.o.d"
  "CMakeFiles/fs_backend.dir/backend/billing.cc.o"
  "CMakeFiles/fs_backend.dir/backend/billing.cc.o.d"
  "CMakeFiles/fs_backend.dir/backend/committer.cc.o"
  "CMakeFiles/fs_backend.dir/backend/committer.cc.o.d"
  "CMakeFiles/fs_backend.dir/backend/read_service.cc.o"
  "CMakeFiles/fs_backend.dir/backend/read_service.cc.o.d"
  "CMakeFiles/fs_backend.dir/backend/validation.cc.o"
  "CMakeFiles/fs_backend.dir/backend/validation.cc.o.d"
  "libfs_backend.a"
  "libfs_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
