# Empty dependencies file for fs_service.
# This may be replaced when dependencies are built.
