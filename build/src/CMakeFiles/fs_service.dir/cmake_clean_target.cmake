file(REMOVE_RECURSE
  "libfs_service.a"
)
