file(REMOVE_RECURSE
  "CMakeFiles/fs_service.dir/service/datastore_api.cc.o"
  "CMakeFiles/fs_service.dir/service/datastore_api.cc.o.d"
  "CMakeFiles/fs_service.dir/service/global_router.cc.o"
  "CMakeFiles/fs_service.dir/service/global_router.cc.o.d"
  "CMakeFiles/fs_service.dir/service/service.cc.o"
  "CMakeFiles/fs_service.dir/service/service.cc.o.d"
  "libfs_service.a"
  "libfs_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
