file(REMOVE_RECURSE
  "CMakeFiles/fs_rules.dir/firestore/rules/eval.cc.o"
  "CMakeFiles/fs_rules.dir/firestore/rules/eval.cc.o.d"
  "CMakeFiles/fs_rules.dir/firestore/rules/parser.cc.o"
  "CMakeFiles/fs_rules.dir/firestore/rules/parser.cc.o.d"
  "libfs_rules.a"
  "libfs_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
