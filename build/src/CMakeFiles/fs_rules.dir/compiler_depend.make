# Empty compiler generated dependencies file for fs_rules.
# This may be replaced when dependencies are built.
