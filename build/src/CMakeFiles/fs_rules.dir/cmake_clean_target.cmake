file(REMOVE_RECURSE
  "libfs_rules.a"
)
