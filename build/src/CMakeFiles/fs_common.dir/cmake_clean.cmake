file(REMOVE_RECURSE
  "CMakeFiles/fs_common.dir/common/bytes.cc.o"
  "CMakeFiles/fs_common.dir/common/bytes.cc.o.d"
  "CMakeFiles/fs_common.dir/common/checksum.cc.o"
  "CMakeFiles/fs_common.dir/common/checksum.cc.o.d"
  "CMakeFiles/fs_common.dir/common/histogram.cc.o"
  "CMakeFiles/fs_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/fs_common.dir/common/logging.cc.o"
  "CMakeFiles/fs_common.dir/common/logging.cc.o.d"
  "CMakeFiles/fs_common.dir/common/random.cc.o"
  "CMakeFiles/fs_common.dir/common/random.cc.o.d"
  "CMakeFiles/fs_common.dir/common/status.cc.o"
  "CMakeFiles/fs_common.dir/common/status.cc.o.d"
  "libfs_common.a"
  "libfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
