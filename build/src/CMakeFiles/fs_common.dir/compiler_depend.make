# Empty compiler generated dependencies file for fs_common.
# This may be replaced when dependencies are built.
