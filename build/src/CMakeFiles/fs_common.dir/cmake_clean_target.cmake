file(REMOVE_RECURSE
  "libfs_common.a"
)
