file(REMOVE_RECURSE
  "CMakeFiles/fs_model.dir/firestore/model/document.cc.o"
  "CMakeFiles/fs_model.dir/firestore/model/document.cc.o.d"
  "CMakeFiles/fs_model.dir/firestore/model/path.cc.o"
  "CMakeFiles/fs_model.dir/firestore/model/path.cc.o.d"
  "CMakeFiles/fs_model.dir/firestore/model/value.cc.o"
  "CMakeFiles/fs_model.dir/firestore/model/value.cc.o.d"
  "libfs_model.a"
  "libfs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
