file(REMOVE_RECURSE
  "libfs_model.a"
)
