
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/firestore/model/document.cc" "src/CMakeFiles/fs_model.dir/firestore/model/document.cc.o" "gcc" "src/CMakeFiles/fs_model.dir/firestore/model/document.cc.o.d"
  "/root/repo/src/firestore/model/path.cc" "src/CMakeFiles/fs_model.dir/firestore/model/path.cc.o" "gcc" "src/CMakeFiles/fs_model.dir/firestore/model/path.cc.o.d"
  "/root/repo/src/firestore/model/value.cc" "src/CMakeFiles/fs_model.dir/firestore/model/value.cc.o" "gcc" "src/CMakeFiles/fs_model.dir/firestore/model/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
