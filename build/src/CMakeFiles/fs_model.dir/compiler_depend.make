# Empty compiler generated dependencies file for fs_model.
# This may be replaced when dependencies are built.
