# Empty dependencies file for fs_functions.
# This may be replaced when dependencies are built.
