file(REMOVE_RECURSE
  "libfs_functions.a"
)
