file(REMOVE_RECURSE
  "CMakeFiles/fs_functions.dir/functions/functions.cc.o"
  "CMakeFiles/fs_functions.dir/functions/functions.cc.o.d"
  "libfs_functions.a"
  "libfs_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
