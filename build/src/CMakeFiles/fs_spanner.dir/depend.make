# Empty dependencies file for fs_spanner.
# This may be replaced when dependencies are built.
