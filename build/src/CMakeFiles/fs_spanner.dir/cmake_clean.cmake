file(REMOVE_RECURSE
  "CMakeFiles/fs_spanner.dir/spanner/database.cc.o"
  "CMakeFiles/fs_spanner.dir/spanner/database.cc.o.d"
  "CMakeFiles/fs_spanner.dir/spanner/lock_manager.cc.o"
  "CMakeFiles/fs_spanner.dir/spanner/lock_manager.cc.o.d"
  "CMakeFiles/fs_spanner.dir/spanner/message_queue.cc.o"
  "CMakeFiles/fs_spanner.dir/spanner/message_queue.cc.o.d"
  "CMakeFiles/fs_spanner.dir/spanner/storage.cc.o"
  "CMakeFiles/fs_spanner.dir/spanner/storage.cc.o.d"
  "CMakeFiles/fs_spanner.dir/spanner/truetime.cc.o"
  "CMakeFiles/fs_spanner.dir/spanner/truetime.cc.o.d"
  "libfs_spanner.a"
  "libfs_spanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_spanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
