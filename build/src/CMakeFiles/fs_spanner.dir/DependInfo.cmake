
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spanner/database.cc" "src/CMakeFiles/fs_spanner.dir/spanner/database.cc.o" "gcc" "src/CMakeFiles/fs_spanner.dir/spanner/database.cc.o.d"
  "/root/repo/src/spanner/lock_manager.cc" "src/CMakeFiles/fs_spanner.dir/spanner/lock_manager.cc.o" "gcc" "src/CMakeFiles/fs_spanner.dir/spanner/lock_manager.cc.o.d"
  "/root/repo/src/spanner/message_queue.cc" "src/CMakeFiles/fs_spanner.dir/spanner/message_queue.cc.o" "gcc" "src/CMakeFiles/fs_spanner.dir/spanner/message_queue.cc.o.d"
  "/root/repo/src/spanner/storage.cc" "src/CMakeFiles/fs_spanner.dir/spanner/storage.cc.o" "gcc" "src/CMakeFiles/fs_spanner.dir/spanner/storage.cc.o.d"
  "/root/repo/src/spanner/truetime.cc" "src/CMakeFiles/fs_spanner.dir/spanner/truetime.cc.o" "gcc" "src/CMakeFiles/fs_spanner.dir/spanner/truetime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
