file(REMOVE_RECURSE
  "libfs_spanner.a"
)
