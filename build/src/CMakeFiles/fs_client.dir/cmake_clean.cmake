file(REMOVE_RECURSE
  "CMakeFiles/fs_client.dir/client/client.cc.o"
  "CMakeFiles/fs_client.dir/client/client.cc.o.d"
  "CMakeFiles/fs_client.dir/client/local_store.cc.o"
  "CMakeFiles/fs_client.dir/client/local_store.cc.o.d"
  "libfs_client.a"
  "libfs_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
