file(REMOVE_RECURSE
  "libfs_client.a"
)
