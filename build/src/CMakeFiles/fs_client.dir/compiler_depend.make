# Empty compiler generated dependencies file for fs_client.
# This may be replaced when dependencies are built.
