
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtcache/changelog.cc" "src/CMakeFiles/fs_rtcache.dir/rtcache/changelog.cc.o" "gcc" "src/CMakeFiles/fs_rtcache.dir/rtcache/changelog.cc.o.d"
  "/root/repo/src/rtcache/query_matcher.cc" "src/CMakeFiles/fs_rtcache.dir/rtcache/query_matcher.cc.o" "gcc" "src/CMakeFiles/fs_rtcache.dir/rtcache/query_matcher.cc.o.d"
  "/root/repo/src/rtcache/range_ownership.cc" "src/CMakeFiles/fs_rtcache.dir/rtcache/range_ownership.cc.o" "gcc" "src/CMakeFiles/fs_rtcache.dir/rtcache/range_ownership.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fs_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_spanner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
