file(REMOVE_RECURSE
  "libfs_rtcache.a"
)
