# Empty compiler generated dependencies file for fs_rtcache.
# This may be replaced when dependencies are built.
