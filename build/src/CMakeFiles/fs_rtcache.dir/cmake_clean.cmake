file(REMOVE_RECURSE
  "CMakeFiles/fs_rtcache.dir/rtcache/changelog.cc.o"
  "CMakeFiles/fs_rtcache.dir/rtcache/changelog.cc.o.d"
  "CMakeFiles/fs_rtcache.dir/rtcache/query_matcher.cc.o"
  "CMakeFiles/fs_rtcache.dir/rtcache/query_matcher.cc.o.d"
  "CMakeFiles/fs_rtcache.dir/rtcache/range_ownership.cc.o"
  "CMakeFiles/fs_rtcache.dir/rtcache/range_ownership.cc.o.d"
  "libfs_rtcache.a"
  "libfs_rtcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_rtcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
