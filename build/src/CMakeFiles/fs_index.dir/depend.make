# Empty dependencies file for fs_index.
# This may be replaced when dependencies are built.
