file(REMOVE_RECURSE
  "CMakeFiles/fs_index.dir/firestore/index/backfill.cc.o"
  "CMakeFiles/fs_index.dir/firestore/index/backfill.cc.o.d"
  "CMakeFiles/fs_index.dir/firestore/index/catalog.cc.o"
  "CMakeFiles/fs_index.dir/firestore/index/catalog.cc.o.d"
  "CMakeFiles/fs_index.dir/firestore/index/extractor.cc.o"
  "CMakeFiles/fs_index.dir/firestore/index/extractor.cc.o.d"
  "CMakeFiles/fs_index.dir/firestore/index/layout.cc.o"
  "CMakeFiles/fs_index.dir/firestore/index/layout.cc.o.d"
  "libfs_index.a"
  "libfs_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
