file(REMOVE_RECURSE
  "libfs_index.a"
)
