file(REMOVE_RECURSE
  "CMakeFiles/fs_ycsb.dir/ycsb/ycsb.cc.o"
  "CMakeFiles/fs_ycsb.dir/ycsb/ycsb.cc.o.d"
  "libfs_ycsb.a"
  "libfs_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
