# Empty compiler generated dependencies file for fs_ycsb.
# This may be replaced when dependencies are built.
