file(REMOVE_RECURSE
  "libfs_ycsb.a"
)
