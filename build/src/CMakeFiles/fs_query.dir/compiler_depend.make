# Empty compiler generated dependencies file for fs_query.
# This may be replaced when dependencies are built.
