file(REMOVE_RECURSE
  "libfs_query.a"
)
