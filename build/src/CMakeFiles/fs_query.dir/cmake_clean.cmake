file(REMOVE_RECURSE
  "CMakeFiles/fs_query.dir/firestore/query/ab_compare.cc.o"
  "CMakeFiles/fs_query.dir/firestore/query/ab_compare.cc.o.d"
  "CMakeFiles/fs_query.dir/firestore/query/executor.cc.o"
  "CMakeFiles/fs_query.dir/firestore/query/executor.cc.o.d"
  "CMakeFiles/fs_query.dir/firestore/query/planner.cc.o"
  "CMakeFiles/fs_query.dir/firestore/query/planner.cc.o.d"
  "CMakeFiles/fs_query.dir/firestore/query/query.cc.o"
  "CMakeFiles/fs_query.dir/firestore/query/query.cc.o.d"
  "libfs_query.a"
  "libfs_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
