file(REMOVE_RECURSE
  "CMakeFiles/fs_frontend.dir/frontend/frontend.cc.o"
  "CMakeFiles/fs_frontend.dir/frontend/frontend.cc.o.d"
  "libfs_frontend.a"
  "libfs_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
