# Empty compiler generated dependencies file for fs_frontend.
# This may be replaced when dependencies are built.
