file(REMOVE_RECURSE
  "libfs_frontend.a"
)
