
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/autoscaler.cc" "src/CMakeFiles/fs_sim.dir/sim/autoscaler.cc.o" "gcc" "src/CMakeFiles/fs_sim.dir/sim/autoscaler.cc.o.d"
  "/root/repo/src/sim/cpu_server.cc" "src/CMakeFiles/fs_sim.dir/sim/cpu_server.cc.o" "gcc" "src/CMakeFiles/fs_sim.dir/sim/cpu_server.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/fs_sim.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/fs_sim.dir/sim/simulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
