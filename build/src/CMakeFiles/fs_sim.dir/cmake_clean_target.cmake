file(REMOVE_RECURSE
  "libfs_sim.a"
)
