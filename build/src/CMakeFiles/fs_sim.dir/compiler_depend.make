# Empty compiler generated dependencies file for fs_sim.
# This may be replaced when dependencies are built.
