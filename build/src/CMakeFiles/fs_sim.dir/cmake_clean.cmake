file(REMOVE_RECURSE
  "CMakeFiles/fs_sim.dir/sim/autoscaler.cc.o"
  "CMakeFiles/fs_sim.dir/sim/autoscaler.cc.o.d"
  "CMakeFiles/fs_sim.dir/sim/cpu_server.cc.o"
  "CMakeFiles/fs_sim.dir/sim/cpu_server.cc.o.d"
  "CMakeFiles/fs_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/fs_sim.dir/sim/simulation.cc.o.d"
  "libfs_sim.a"
  "libfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
