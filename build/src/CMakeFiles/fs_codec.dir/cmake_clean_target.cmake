file(REMOVE_RECURSE
  "libfs_codec.a"
)
