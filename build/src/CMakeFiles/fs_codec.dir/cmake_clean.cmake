file(REMOVE_RECURSE
  "CMakeFiles/fs_codec.dir/firestore/codec/document_codec.cc.o"
  "CMakeFiles/fs_codec.dir/firestore/codec/document_codec.cc.o.d"
  "CMakeFiles/fs_codec.dir/firestore/codec/ordered_code.cc.o"
  "CMakeFiles/fs_codec.dir/firestore/codec/ordered_code.cc.o.d"
  "CMakeFiles/fs_codec.dir/firestore/codec/value_codec.cc.o"
  "CMakeFiles/fs_codec.dir/firestore/codec/value_codec.cc.o.d"
  "libfs_codec.a"
  "libfs_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
