
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/firestore/codec/document_codec.cc" "src/CMakeFiles/fs_codec.dir/firestore/codec/document_codec.cc.o" "gcc" "src/CMakeFiles/fs_codec.dir/firestore/codec/document_codec.cc.o.d"
  "/root/repo/src/firestore/codec/ordered_code.cc" "src/CMakeFiles/fs_codec.dir/firestore/codec/ordered_code.cc.o" "gcc" "src/CMakeFiles/fs_codec.dir/firestore/codec/ordered_code.cc.o.d"
  "/root/repo/src/firestore/codec/value_codec.cc" "src/CMakeFiles/fs_codec.dir/firestore/codec/value_codec.cc.o" "gcc" "src/CMakeFiles/fs_codec.dir/firestore/codec/value_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
