# Empty compiler generated dependencies file for fs_codec.
# This may be replaced when dependencies are built.
