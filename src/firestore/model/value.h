// Firestore's schemaless value model (paper §III-A).
//
// A document field holds a Value: one of the primitive types or a nested
// array/map. Values of *different* types are mutually comparable under a
// fixed cross-type ordering — this is what lets Firestore "sort on any value
// including arrays and maps and sort across fields with inconsistent types"
// (paper §IV-D1), and is the ordering the index-entry encoding must preserve.
//
// Cross-type order (ascending):
//   null < boolean < number (int64/double intermixed numerically, NaN first)
//        < timestamp < string < bytes < reference < array < map

#ifndef FIRESTORE_MODEL_VALUE_H_
#define FIRESTORE_MODEL_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace firestore::model {

class Value;

using Array = std::vector<Value>;
// std::map keeps keys sorted, which both the encoding and equality rely on.
using Map = std::map<std::string, Value>;

enum class ValueType {
  kNull = 0,
  kBoolean = 1,
  kNumber = 2,     // int64 and double share one ordering slot
  kTimestamp = 3,
  kString = 4,
  kBytes = 5,
  kReference = 6,  // document name, e.g. /restaurants/one
  kArray = 7,
  kMap = 8,
};

// Distinguishes a byte-string payload from a text string in the variant.
struct BytesValue {
  std::string data;
  auto operator<=>(const BytesValue&) const = default;
};

// A document reference by full path string.
struct ReferenceValue {
  std::string path;
  auto operator<=>(const ReferenceValue&) const = default;
};

// Microseconds since epoch; kept distinct from integers in the type order.
struct TimestampValue {
  int64_t micros = 0;
  auto operator<=>(const TimestampValue&) const = default;
};

class Value {
 public:
  Value() : rep_(std::monostate{}) {}  // null

  static Value Null() { return Value(); }
  static Value Boolean(bool b);
  static Value Integer(int64_t i);
  static Value Double(double d);
  static Value Timestamp(int64_t micros);
  static Value String(std::string s);
  static Value Bytes(std::string b);
  static Value Reference(std::string path);
  static Value FromArray(Array a);
  static Value FromMap(Map m);

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_integer() const {
    return std::holds_alternative<int64_t>(rep_);
  }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_number() const { return is_integer() || is_double(); }

  // Accessors abort on type mismatch (internal invariant violations).
  bool boolean_value() const;
  int64_t integer_value() const;
  double double_value() const;
  // Any number as double (for numeric comparison).
  double AsDouble() const;
  int64_t timestamp_value() const;
  const std::string& string_value() const;
  const std::string& bytes_value() const;
  const std::string& reference_value() const;
  const Array& array_value() const;
  const Map& map_value() const;
  Array& mutable_array_value();
  Map& mutable_map_value();

  // Total cross-type ordering described above. Integers and doubles compare
  // numerically (3 == 3.0); equal numeric values with different
  // representations are considered equal.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  // Approximate in-memory/billing size in bytes (the 1 MiB document limit is
  // enforced against this).
  size_t ByteSize() const;

  // Debug rendering, e.g. {"a": [1, "x"]}.
  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double,
                           TimestampValue, std::string, BytesValue,
                           ReferenceValue, Array, Map>;
  Rep rep_;
};

}  // namespace firestore::model

#endif  // FIRESTORE_MODEL_VALUE_H_
