#include "firestore/model/path.h"

#include <sstream>

namespace firestore::model {

namespace {

StatusOr<std::vector<std::string>> SplitNonEmpty(std::string_view path,
                                                 char sep) {
  std::vector<std::string> segments;
  size_t start = 0;
  while (start < path.size()) {
    size_t end = path.find(sep, start);
    if (end == std::string_view::npos) end = path.size();
    if (end == start) {
      return InvalidArgumentError("empty path segment in '" +
                                  std::string(path) + "'");
    }
    segments.emplace_back(path.substr(start, end - start));
    start = end + 1;
  }
  if (!path.empty() && path.back() == sep) {
    return InvalidArgumentError("trailing separator in '" + std::string(path) +
                                "'");
  }
  return segments;
}

}  // namespace

StatusOr<ResourcePath> ResourcePath::Parse(std::string_view path) {
  if (!path.empty() && path.front() == '/') path.remove_prefix(1);
  if (path.empty()) return InvalidArgumentError("empty resource path");
  ASSIGN_OR_RETURN(std::vector<std::string> segments,
                   SplitNonEmpty(path, '/'));
  return ResourcePath(std::move(segments));
}

ResourcePath ResourcePath::Parent() const {
  std::vector<std::string> parent(segments_.begin(),
                                  segments_.empty() ? segments_.end()
                                                    : segments_.end() - 1);
  return ResourcePath(std::move(parent));
}

ResourcePath ResourcePath::Child(std::string_view segment) const {
  std::vector<std::string> child = segments_;
  child.emplace_back(segment);
  return ResourcePath(std::move(child));
}

bool ResourcePath::IsPrefixOf(const ResourcePath& other) const {
  if (size() > other.size()) return false;
  for (size_t i = 0; i < size(); ++i) {
    if (segments_[i] != other.segments_[i]) return false;
  }
  return true;
}

std::string ResourcePath::CanonicalString() const {
  std::ostringstream os;
  for (const std::string& s : segments_) os << '/' << s;
  return os.str();
}

int ResourcePath::Compare(const ResourcePath& other) const {
  size_t n = std::min(size(), other.size());
  for (size_t i = 0; i < n; ++i) {
    int c = segments_[i].compare(other.segments_[i]);
    if (c != 0) return c < 0 ? -1 : 1;
  }
  if (size() != other.size()) return size() < other.size() ? -1 : 1;
  return 0;
}

StatusOr<FieldPath> FieldPath::Parse(std::string_view path) {
  if (path.empty()) return InvalidArgumentError("empty field path");
  ASSIGN_OR_RETURN(std::vector<std::string> segments,
                   SplitNonEmpty(path, '.'));
  return FieldPath(std::move(segments));
}

FieldPath FieldPath::Single(std::string name) {
  return FieldPath({std::move(name)});
}

std::string FieldPath::CanonicalString() const {
  std::ostringstream os;
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (i > 0) os << '.';
    os << segments_[i];
  }
  return os.str();
}

}  // namespace firestore::model
