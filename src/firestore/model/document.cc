#include "firestore/model/document.h"

#include <sstream>

namespace firestore::model {

std::optional<Value> Document::GetField(const FieldPath& path) const {
  if (path.empty()) return std::nullopt;
  const Map* current = &fields_;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto it = current->find(path.segments()[i]);
    if (it == current->end() || it->second.type() != ValueType::kMap) {
      return std::nullopt;
    }
    current = &it->second.map_value();
  }
  auto it = current->find(path.segments().back());
  if (it == current->end()) return std::nullopt;
  return it->second;
}

void Document::SetField(const FieldPath& path, Value value) {
  if (path.empty()) return;
  Map* current = &fields_;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    Value& slot = (*current)[path.segments()[i]];
    if (slot.type() != ValueType::kMap) slot = Value::FromMap({});
    current = &slot.mutable_map_value();
  }
  (*current)[path.segments().back()] = std::move(value);
}

void Document::DeleteField(const FieldPath& path) {
  if (path.empty()) return;
  Map* current = &fields_;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto it = current->find(path.segments()[i]);
    if (it == current->end() || it->second.type() != ValueType::kMap) return;
    current = &it->second.mutable_map_value();
  }
  current->erase(path.segments().back());
}

size_t Document::ByteSize() const {
  size_t total = name_.CanonicalString().size();
  for (const auto& [k, v] : fields_) total += k.size() + v.ByteSize();
  return total;
}

Status Document::Validate() const {
  if (!name_.IsDocumentPath()) {
    return InvalidArgumentError("'" + name_.CanonicalString() +
                                "' is not a document path");
  }
  if (ByteSize() > kMaxDocumentBytes) {
    return InvalidArgumentError("document exceeds the 1 MiB size limit");
  }
  return Status::Ok();
}

std::string Document::ToString() const {
  std::ostringstream os;
  os << name_.CanonicalString() << " " << Value::FromMap(fields_).ToString()
     << " @" << update_time_;
  return os.str();
}

}  // namespace firestore::model
