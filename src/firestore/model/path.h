// Resource paths ("/restaurants/one/ratings/2") and field paths ("a.b.c").
//
// A resource path alternates collection id / document id segments. An even
// number of segments names a document; an odd number names a collection
// (paper §III-A).

#ifndef FIRESTORE_MODEL_PATH_H_
#define FIRESTORE_MODEL_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace firestore::model {

class ResourcePath {
 public:
  ResourcePath() = default;
  explicit ResourcePath(std::vector<std::string> segments)
      : segments_(std::move(segments)) {}

  // Parses "/restaurants/one" or "restaurants/one". Empty segments are
  // invalid.
  static StatusOr<ResourcePath> Parse(std::string_view path);

  const std::vector<std::string>& segments() const { return segments_; }
  size_t size() const { return segments_.size(); }
  bool empty() const { return segments_.empty(); }

  bool IsDocumentPath() const { return !empty() && size() % 2 == 0; }
  bool IsCollectionPath() const { return size() % 2 == 1; }

  // Last segment (the identifying string of a document, or the collection
  // id).
  const std::string& last_segment() const { return segments_.back(); }

  // For a document path: the collection that directly contains it.
  ResourcePath Parent() const;

  // Append one segment.
  ResourcePath Child(std::string_view segment) const;

  // True if this path is a (strict or equal) prefix of `other`.
  bool IsPrefixOf(const ResourcePath& other) const;

  // Canonical string form with a leading '/'.
  std::string CanonicalString() const;

  int Compare(const ResourcePath& other) const;
  bool operator==(const ResourcePath& other) const {
    return segments_ == other.segments_;
  }
  bool operator<(const ResourcePath& other) const {
    return Compare(other) < 0;
  }

 private:
  std::vector<std::string> segments_;
};

// A dotted path addressing a (possibly nested) field inside a document.
class FieldPath {
 public:
  FieldPath() = default;
  explicit FieldPath(std::vector<std::string> segments)
      : segments_(std::move(segments)) {}

  // Parses "a.b.c"; empty segments are invalid.
  static StatusOr<FieldPath> Parse(std::string_view path);
  // Single-segment field path without parsing (no dots allowed).
  static FieldPath Single(std::string name);

  const std::vector<std::string>& segments() const { return segments_; }
  size_t size() const { return segments_.size(); }
  bool empty() const { return segments_.empty(); }

  std::string CanonicalString() const;

  bool operator==(const FieldPath& other) const {
    return segments_ == other.segments_;
  }
  bool operator<(const FieldPath& other) const {
    return segments_ < other.segments_;
  }

 private:
  std::vector<std::string> segments_;
};

}  // namespace firestore::model

#endif  // FIRESTORE_MODEL_PATH_H_
