// A Firestore document: a name plus a set of top-level fields, each holding a
// Value (paper §III-A). Documents are capped at 1 MiB.

#ifndef FIRESTORE_MODEL_DOCUMENT_H_
#define FIRESTORE_MODEL_DOCUMENT_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "firestore/model/path.h"
#include "firestore/model/value.h"

namespace firestore::model {

inline constexpr size_t kMaxDocumentBytes = 1 << 20;  // 1 MiB

class Document {
 public:
  Document() = default;
  Document(ResourcePath name, Map fields)
      : name_(std::move(name)), fields_(std::move(fields)) {}

  const ResourcePath& name() const { return name_; }
  const Map& fields() const { return fields_; }
  Map& mutable_fields() { return fields_; }

  // Commit timestamps (micros); 0 until the document is stored.
  int64_t create_time() const { return create_time_; }
  int64_t update_time() const { return update_time_; }
  void set_create_time(int64_t t) { create_time_ = t; }
  void set_update_time(int64_t t) { update_time_ = t; }

  // Looks up a (possibly nested) field; nullopt if absent or if the path
  // traverses a non-map.
  std::optional<Value> GetField(const FieldPath& path) const;

  // Sets a (possibly nested) field, creating intermediate maps.
  void SetField(const FieldPath& path, Value value);

  // Removes a (possibly nested) field; no-op if absent.
  void DeleteField(const FieldPath& path);

  // Approximate billing size; enforced against kMaxDocumentBytes at write
  // time.
  size_t ByteSize() const;

  // Checks the document size limit.
  Status Validate() const;

  bool operator==(const Document& other) const {
    return name_ == other.name_ && Value::FromMap(fields_) ==
                                       Value::FromMap(other.fields_);
  }

  std::string ToString() const;

 private:
  ResourcePath name_;
  Map fields_;
  int64_t create_time_ = 0;
  int64_t update_time_ = 0;
};

}  // namespace firestore::model

#endif  // FIRESTORE_MODEL_DOCUMENT_H_
