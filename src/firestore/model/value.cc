#include "firestore/model/value.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace firestore::model {

Value Value::Boolean(bool b) {
  Value v;
  v.rep_ = b;
  return v;
}
Value Value::Integer(int64_t i) {
  Value v;
  v.rep_ = i;
  return v;
}
Value Value::Double(double d) {
  Value v;
  v.rep_ = d;
  return v;
}
Value Value::Timestamp(int64_t micros) {
  Value v;
  v.rep_ = TimestampValue{micros};
  return v;
}
Value Value::String(std::string s) {
  Value v;
  v.rep_ = std::move(s);
  return v;
}
Value Value::Bytes(std::string b) {
  Value v;
  v.rep_ = BytesValue{std::move(b)};
  return v;
}
Value Value::Reference(std::string path) {
  Value v;
  v.rep_ = ReferenceValue{std::move(path)};
  return v;
}
Value Value::FromArray(Array a) {
  Value v;
  v.rep_ = std::move(a);
  return v;
}
Value Value::FromMap(Map m) {
  Value v;
  v.rep_ = std::move(m);
  return v;
}

ValueType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBoolean;
    case 2:
    case 3:
      return ValueType::kNumber;
    case 4:
      return ValueType::kTimestamp;
    case 5:
      return ValueType::kString;
    case 6:
      return ValueType::kBytes;
    case 7:
      return ValueType::kReference;
    case 8:
      return ValueType::kArray;
    case 9:
      return ValueType::kMap;
  }
  FS_LOG(FATAL) << "corrupt Value variant";
  return ValueType::kNull;
}

bool Value::boolean_value() const { return std::get<bool>(rep_); }
int64_t Value::integer_value() const { return std::get<int64_t>(rep_); }
double Value::double_value() const { return std::get<double>(rep_); }

double Value::AsDouble() const {
  if (is_integer()) return static_cast<double>(integer_value());
  return double_value();
}

int64_t Value::timestamp_value() const {
  return std::get<TimestampValue>(rep_).micros;
}
const std::string& Value::string_value() const {
  return std::get<std::string>(rep_);
}
const std::string& Value::bytes_value() const {
  return std::get<BytesValue>(rep_).data;
}
const std::string& Value::reference_value() const {
  return std::get<ReferenceValue>(rep_).path;
}
const Array& Value::array_value() const { return std::get<Array>(rep_); }
const Map& Value::map_value() const { return std::get<Map>(rep_); }
Array& Value::mutable_array_value() { return std::get<Array>(rep_); }
Map& Value::mutable_map_value() { return std::get<Map>(rep_); }

namespace {

template <typename T>
int ThreeWay(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

// Numbers compare numerically across int64/double; NaN sorts before every
// other number and equal to itself (index ordering must be total).
int CompareNumbers(const Value& a, const Value& b) {
  if (a.is_integer() && b.is_integer()) {
    return ThreeWay(a.integer_value(), b.integer_value());
  }
  double da = a.AsDouble();
  double db = b.AsDouble();
  bool na = std::isnan(da);
  bool nb = std::isnan(db);
  if (na || nb) {
    if (na && nb) return 0;
    return na ? -1 : 1;
  }
  // Mixed int/double: compare through long double to avoid precision loss on
  // large int64s that a double cannot represent exactly.
  if (a.is_integer() != b.is_integer()) {
    long double la = a.is_integer()
                         ? static_cast<long double>(a.integer_value())
                         : static_cast<long double>(a.double_value());
    long double lb = b.is_integer()
                         ? static_cast<long double>(b.integer_value())
                         : static_cast<long double>(b.double_value());
    return ThreeWay(la, lb);
  }
  return ThreeWay(da, db);
}

}  // namespace

int Value::Compare(const Value& other) const {
  ValueType ta = type();
  ValueType tb = other.type();
  if (ta != tb) return ThreeWay(static_cast<int>(ta), static_cast<int>(tb));
  switch (ta) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBoolean:
      return ThreeWay<int>(boolean_value(), other.boolean_value());
    case ValueType::kNumber:
      return CompareNumbers(*this, other);
    case ValueType::kTimestamp:
      return ThreeWay(timestamp_value(), other.timestamp_value());
    case ValueType::kString:
      return ThreeWay(string_value(), other.string_value());
    case ValueType::kBytes:
      return ThreeWay(bytes_value(), other.bytes_value());
    case ValueType::kReference:
      return ThreeWay(reference_value(), other.reference_value());
    case ValueType::kArray: {
      const Array& a = array_value();
      const Array& b = other.array_value();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return ThreeWay(a.size(), b.size());
    }
    case ValueType::kMap: {
      // Maps compare by sorted (key, value) pairs, lexicographically.
      const Map& a = map_value();
      const Map& b = other.map_value();
      auto ia = a.begin();
      auto ib = b.begin();
      for (; ia != a.end() && ib != b.end(); ++ia, ++ib) {
        int c = ThreeWay(ia->first, ib->first);
        if (c != 0) return c;
        c = ia->second.Compare(ib->second);
        if (c != 0) return c;
      }
      return ThreeWay(a.size(), b.size());
    }
  }
  FS_LOG(FATAL) << "unreachable";
  return 0;
}

size_t Value::ByteSize() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kBoolean:
      return 1;
    case ValueType::kNumber:
    case ValueType::kTimestamp:
      return 8;
    case ValueType::kString:
      return string_value().size() + 1;
    case ValueType::kBytes:
      return bytes_value().size() + 1;
    case ValueType::kReference:
      return reference_value().size() + 1;
    case ValueType::kArray: {
      size_t total = 2;
      for (const Value& v : array_value()) total += v.ByteSize();
      return total;
    }
    case ValueType::kMap: {
      size_t total = 2;
      for (const auto& [k, v] : map_value()) total += k.size() + v.ByteSize();
      return total;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (type()) {
    case ValueType::kNull:
      os << "null";
      break;
    case ValueType::kBoolean:
      os << (boolean_value() ? "true" : "false");
      break;
    case ValueType::kNumber:
      if (is_integer()) {
        os << integer_value();
      } else {
        os << double_value();
      }
      break;
    case ValueType::kTimestamp:
      os << "ts(" << timestamp_value() << ")";
      break;
    case ValueType::kString:
      os << '"' << string_value() << '"';
      break;
    case ValueType::kBytes:
      os << "bytes(" << bytes_value().size() << ")";
      break;
    case ValueType::kReference:
      os << "ref(" << reference_value() << ")";
      break;
    case ValueType::kArray: {
      os << '[';
      bool first = true;
      for (const Value& v : array_value()) {
        if (!first) os << ", ";
        first = false;
        os << v.ToString();
      }
      os << ']';
      break;
    }
    case ValueType::kMap: {
      os << '{';
      bool first = true;
      for (const auto& [k, v] : map_value()) {
        if (!first) os << ", ";
        first = false;
        os << '"' << k << "\": " << v.ToString();
      }
      os << '}';
      break;
    }
  }
  return os.str();
}

}  // namespace firestore::model
