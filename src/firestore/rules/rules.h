// Firestore Security Rules (paper §III-E): a small language for fine-grained
// access control, evaluated server-side for every third-party request.
//
// Supported subset (faithful to the shape of Firebase Security Rules):
//
//   match /restaurants/{restaurantId} {
//     allow read: if true;
//     match /ratings/{ratingId} {
//       allow read: if request.auth != null;
//       allow create: if request.auth.uid == request.resource.data.userId;
//       allow update, delete: if false;
//     }
//   }
//
// - nested match blocks with {var} single-segment and {var=**} rest-of-path
//   wildcards
// - allow ops: read (get, list), write (create, update, delete)
// - expressions: || && ! == != < <= > >= + - in, literals (string, int,
//   double, bool, null), member access (request.auth.uid, resource.data.f,
//   request.resource.data.f), path variables, and the document-lookup
//   builtins get(<path>).data.f and exists(<path>), executed through a
//   caller-supplied accessor so lookups are transactionally consistent with
//   the operation being authorized.

#ifndef FIRESTORE_RULES_RULES_H_
#define FIRESTORE_RULES_RULES_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "firestore/model/document.h"
#include "firestore/model/path.h"
#include "firestore/model/value.h"

namespace firestore::rules {

// The operation being authorized.
enum class AccessKind {
  kGet,     // single-document read
  kList,    // query
  kCreate,
  kUpdate,
  kDelete,
};

// Authenticated end-user identity; unauthenticated => uid empty.
struct AuthContext {
  bool authenticated = false;
  std::string uid;
  // Additional token claims (e.g. "admin": true).
  model::Map claims;
};

// Transactionally-consistent document accessor for get()/exists() builtins.
using DocumentLookup = std::function<StatusOr<std::optional<model::Document>>(
    const model::ResourcePath&)>;

// One access request to authorize.
struct AccessRequest {
  AccessKind kind = AccessKind::kGet;
  model::ResourcePath path;  // document path being accessed
  AuthContext auth;
  // Existing document (update/delete/get); nullopt if absent.
  std::optional<model::Document> resource;
  // Incoming document (create/update); nullopt otherwise.
  std::optional<model::Document> new_resource;
  // Lookup for get()/exists(); may be null (builtins then error => deny).
  DocumentLookup lookup;
};

// -- AST --

enum class ExprKind {
  kLiteral,
  kVariable,    // path wildcard variable or builtin root (request, resource)
  kMember,      // base.field
  kUnaryNot,
  kBinary,      // op in {||, &&, ==, !=, <, <=, >, >=, +, -, in}
  kGetCall,     // get(<path-expr-parts>)
  kExistsCall,  // exists(<path-expr-parts>)
};

struct Expr {
  ExprKind kind;
  model::Value literal;                      // kLiteral
  std::string name;                          // kVariable / kMember field / op
  std::unique_ptr<Expr> lhs;                 // kMember base, kUnary, kBinary
  std::unique_ptr<Expr> rhs;                 // kBinary
  // kGetCall/kExistsCall: alternating literal segments and embedded exprs,
  // e.g. get(/restaurants/$(restaurantId)).
  std::vector<std::unique_ptr<Expr>> path_parts;
};

struct AllowStatement {
  std::vector<AccessKind> kinds;
  std::unique_ptr<Expr> condition;  // null => always allow
};

struct MatchBlock {
  // Path pattern segments: literal, "{var}", or "{var=**}" (final only).
  std::vector<std::string> pattern;
  std::vector<AllowStatement> allows;
  std::vector<std::unique_ptr<MatchBlock>> children;
};

// A parsed ruleset. Default-deny: a request is allowed iff some allow
// statement reachable through matching blocks evaluates to true. Errors
// during evaluation of one statement deny that statement but do not poison
// others.
class RuleSet {
 public:
  static StatusOr<RuleSet> Parse(std::string_view source);

  // An empty ruleset that denies everything.
  RuleSet() = default;

  RuleSet(RuleSet&&) = default;
  RuleSet& operator=(RuleSet&&) = default;

  // Returns OK if allowed, PERMISSION_DENIED otherwise.
  Status Authorize(const AccessRequest& request) const;

 private:
  std::vector<std::unique_ptr<MatchBlock>> roots_;
};

}  // namespace firestore::rules

#endif  // FIRESTORE_RULES_RULES_H_
