// Evaluator for the security-rules subset. Default deny; evaluation errors
// in a condition deny that allow statement only.

#include <algorithm>

#include "firestore/rules/rules.h"

namespace firestore::rules {

using model::Document;
using model::Map;
using model::ResourcePath;
using model::Value;
using model::ValueType;

namespace {

// Variable bindings from path wildcards plus the builtin roots.
struct EvalContext {
  const AccessRequest* request;
  std::map<std::string, Value> bindings;
};

Value AuthValue(const AuthContext& auth) {
  if (!auth.authenticated) return Value::Null();
  Map m;
  m["uid"] = Value::String(auth.uid);
  m["token"] = Value::FromMap(auth.claims);
  return Value::FromMap(m);
}

Value DocumentValue(const Document& doc) {
  Map m;
  m["data"] = Value::FromMap(doc.fields());
  if (doc.name().IsDocumentPath()) {
    m["id"] = Value::String(doc.name().last_segment());
  }
  m["__name__"] = Value::String(doc.name().CanonicalString());
  return Value::FromMap(m);
}

StatusOr<Value> Eval(const Expr& e, const EvalContext& ctx);

StatusOr<bool> EvalBool(const Expr& e, const EvalContext& ctx) {
  ASSIGN_OR_RETURN(Value v, Eval(e, ctx));
  if (v.type() != ValueType::kBoolean) {
    return InvalidArgumentError("expected boolean in rules condition");
  }
  return v.boolean_value();
}

StatusOr<Value> EvalVariable(const Expr& e, const EvalContext& ctx) {
  const AccessRequest& req = *ctx.request;
  if (e.name == "request") {
    Map m;
    m["auth"] = AuthValue(req.auth);
    if (req.new_resource.has_value()) {
      m["resource"] = DocumentValue(*req.new_resource);
    } else {
      m["resource"] = Value::Null();
    }
    static const char* const kMethodNames[] = {"get", "list", "create",
                                               "update", "delete"};
    m["method"] = Value::String(kMethodNames[static_cast<int>(req.kind)]);
    m["path"] = Value::String(req.path.CanonicalString());
    return Value::FromMap(m);
  }
  if (e.name == "resource") {
    if (!req.resource.has_value()) return Value::Null();
    return DocumentValue(*req.resource);
  }
  auto it = ctx.bindings.find(e.name);
  if (it != ctx.bindings.end()) return it->second;
  return InvalidArgumentError("unknown variable '" + e.name + "' in rules");
}

StatusOr<Value> EvalBinary(const Expr& e, const EvalContext& ctx) {
  // Short-circuiting logical operators.
  if (e.name == "&&") {
    ASSIGN_OR_RETURN(bool lhs, EvalBool(*e.lhs, ctx));
    if (!lhs) return Value::Boolean(false);
    ASSIGN_OR_RETURN(bool rhs, EvalBool(*e.rhs, ctx));
    return Value::Boolean(rhs);
  }
  if (e.name == "||") {
    ASSIGN_OR_RETURN(bool lhs, EvalBool(*e.lhs, ctx));
    if (lhs) return Value::Boolean(true);
    ASSIGN_OR_RETURN(bool rhs, EvalBool(*e.rhs, ctx));
    return Value::Boolean(rhs);
  }
  if (e.name == "list") {  // list literal
    model::Array elements;
    for (const auto& part : e.path_parts) {
      ASSIGN_OR_RETURN(Value v, Eval(*part, ctx));
      elements.push_back(std::move(v));
    }
    return Value::FromArray(std::move(elements));
  }
  ASSIGN_OR_RETURN(Value lhs, Eval(*e.lhs, ctx));
  ASSIGN_OR_RETURN(Value rhs, Eval(*e.rhs, ctx));
  if (e.name == "==") return Value::Boolean(lhs.Compare(rhs) == 0);
  if (e.name == "!=") return Value::Boolean(lhs.Compare(rhs) != 0);
  if (e.name == "in") {
    if (rhs.type() == ValueType::kArray) {
      for (const Value& v : rhs.array_value()) {
        if (v.Compare(lhs) == 0) return Value::Boolean(true);
      }
      return Value::Boolean(false);
    }
    if (rhs.type() == ValueType::kMap &&
        lhs.type() == ValueType::kString) {
      return Value::Boolean(rhs.map_value().count(lhs.string_value()) != 0);
    }
    return InvalidArgumentError("'in' needs a list or map on the right");
  }
  if (e.name == "+" || e.name == "-") {
    if (e.name == "+" && lhs.type() == ValueType::kString &&
        rhs.type() == ValueType::kString) {
      return Value::String(lhs.string_value() + rhs.string_value());
    }
    if (!lhs.is_number() || !rhs.is_number()) {
      return InvalidArgumentError("arithmetic needs numbers");
    }
    if (lhs.is_integer() && rhs.is_integer()) {
      int64_t result = e.name == "+"
                           ? lhs.integer_value() + rhs.integer_value()
                           : lhs.integer_value() - rhs.integer_value();
      return Value::Integer(result);
    }
    double result = e.name == "+" ? lhs.AsDouble() + rhs.AsDouble()
                                  : lhs.AsDouble() - rhs.AsDouble();
    return Value::Double(result);
  }
  // Relational operators: same type class only.
  if (lhs.type() != rhs.type()) {
    return InvalidArgumentError("relational comparison across types");
  }
  int c = lhs.Compare(rhs);
  if (e.name == "<") return Value::Boolean(c < 0);
  if (e.name == "<=") return Value::Boolean(c <= 0);
  if (e.name == ">") return Value::Boolean(c > 0);
  if (e.name == ">=") return Value::Boolean(c >= 0);
  return InternalError("unknown binary operator '" + e.name + "'");
}

StatusOr<ResourcePath> EvalPathTemplate(const Expr& e,
                                        const EvalContext& ctx) {
  std::vector<std::string> segments;
  for (const auto& part : e.path_parts) {
    ASSIGN_OR_RETURN(Value v, Eval(*part, ctx));
    if (v.type() != ValueType::kString) {
      return InvalidArgumentError("path segments must be strings");
    }
    // Embedded expressions may themselves be multi-segment paths.
    for (size_t start = 0, pos = 0; pos <= v.string_value().size(); ++pos) {
      if (pos == v.string_value().size() || v.string_value()[pos] == '/') {
        if (pos > start) {
          segments.push_back(v.string_value().substr(start, pos - start));
        }
        start = pos + 1;
      }
    }
  }
  if (segments.empty()) return InvalidArgumentError("empty path in get()");
  return ResourcePath(std::move(segments));
}

StatusOr<Value> Eval(const Expr& e, const EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kVariable:
      return EvalVariable(e, ctx);
    case ExprKind::kMember: {
      ASSIGN_OR_RETURN(Value base, Eval(*e.lhs, ctx));
      if (base.type() != ValueType::kMap) {
        return InvalidArgumentError("member access '" + e.name +
                                    "' on non-map value");
      }
      auto it = base.map_value().find(e.name);
      if (it == base.map_value().end()) {
        return InvalidArgumentError("no such member '" + e.name + "'");
      }
      return it->second;
    }
    case ExprKind::kUnaryNot: {
      ASSIGN_OR_RETURN(bool operand, EvalBool(*e.lhs, ctx));
      return Value::Boolean(!operand);
    }
    case ExprKind::kBinary:
      return EvalBinary(e, ctx);
    case ExprKind::kGetCall:
    case ExprKind::kExistsCall: {
      if (!ctx.request->lookup) {
        return FailedPreconditionError("no document lookup available");
      }
      ASSIGN_OR_RETURN(ResourcePath path, EvalPathTemplate(e, ctx));
      ASSIGN_OR_RETURN(std::optional<Document> doc,
                       ctx.request->lookup(path));
      if (e.kind == ExprKind::kExistsCall) {
        return Value::Boolean(doc.has_value());
      }
      if (!doc.has_value()) {
        return NotFoundError("get() target does not exist: " +
                             path.CanonicalString());
      }
      return DocumentValue(*doc);
    }
  }
  return InternalError("corrupt rules expression");
}

// Matches pattern segments against path segments starting at `offset`,
// binding wildcards. On full match, evaluates allows and recurses into
// children. Returns true as soon as some allow grants the request.
bool MatchAndAuthorize(const MatchBlock& block,
                       const std::vector<std::string>& path, size_t offset,
                       EvalContext& ctx, const AccessRequest& request) {
  std::vector<std::pair<std::string, Value>> added;
  size_t consumed = 0;
  for (size_t i = 0; i < block.pattern.size(); ++i) {
    const std::string& pat = block.pattern[i];
    if (pat.size() > 4 && pat.substr(pat.size() - 4) == "=**}") {
      // Rest-of-path wildcard: consumes everything remaining (at least one
      // segment).
      if (offset + consumed >= path.size()) return false;
      std::string var = pat.substr(1, pat.size() - 5);
      std::string rest;
      for (size_t j = offset + consumed; j < path.size(); ++j) {
        rest += "/" + path[j];
      }
      added.emplace_back(var, Value::String(rest));
      consumed = path.size() - offset;
      if (i + 1 != block.pattern.size()) return false;  // must be last
      break;
    }
    if (offset + consumed >= path.size()) return false;
    const std::string& segment = path[offset + consumed];
    if (pat.front() == '{') {
      std::string var = pat.substr(1, pat.size() - 2);
      added.emplace_back(var, Value::String(segment));
    } else if (pat != segment) {
      return false;
    }
    ++consumed;
  }
  for (auto& [k, v] : added) ctx.bindings[k] = v;
  bool granted = false;
  if (offset + consumed == path.size()) {
    // Full match: this block's allows apply.
    for (const AllowStatement& allow : block.allows) {
      if (std::find(allow.kinds.begin(), allow.kinds.end(), request.kind) ==
          allow.kinds.end()) {
        continue;
      }
      if (allow.condition == nullptr) {
        granted = true;
        break;
      }
      StatusOr<bool> result = EvalBool(*allow.condition, ctx);
      if (result.ok() && *result) {
        granted = true;
        break;
      }
      // Errors deny this statement only.
    }
  }
  if (!granted) {
    for (const auto& child : block.children) {
      if (MatchAndAuthorize(*child, path, offset + consumed, ctx, request)) {
        granted = true;
        break;
      }
    }
  }
  for (auto& [k, v] : added) ctx.bindings.erase(k);
  return granted;
}

}  // namespace

Status RuleSet::Authorize(const AccessRequest& request) const {
  EvalContext ctx;
  ctx.request = &request;
  for (const auto& root : roots_) {
    if (MatchAndAuthorize(*root, request.path.segments(), 0, ctx, request)) {
      return Status::Ok();
    }
  }
  return PermissionDeniedError("access denied by security rules for " +
                               request.path.CanonicalString());
}

}  // namespace firestore::rules
