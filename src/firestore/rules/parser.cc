// Lexer + recursive-descent parser for the security-rules subset.

#include <cctype>

#include "firestore/rules/rules.h"

namespace firestore::rules {

namespace {

enum class TokenKind {
  kEnd,
  kIdent,      // match, allow, if, identifiers
  kString,
  kInt,
  kDouble,
  kPunct,      // single/multi char punctuation, text in `text`
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= src_.size()) break;
      size_t start = pos_;
      char c = src_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_')) {
          ++pos_;
        }
        tokens.push_back({TokenKind::kIdent,
                          std::string(src_.substr(start, pos_ - start)), 0, 0,
                          start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        bool is_double = false;
        while (pos_ < src_.size() &&
               (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '.')) {
          if (src_[pos_] == '.') is_double = true;
          ++pos_;
        }
        std::string text(src_.substr(start, pos_ - start));
        Token t;
        t.offset = start;
        t.text = text;
        if (is_double) {
          t.kind = TokenKind::kDouble;
          t.double_value = std::stod(text);
        } else {
          t.kind = TokenKind::kInt;
          t.int_value = std::stoll(text);
        }
        tokens.push_back(std::move(t));
        continue;
      }
      if (c == '"' || c == '\'') {
        char quote = c;
        ++pos_;
        std::string value;
        while (pos_ < src_.size() && src_[pos_] != quote) {
          if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
          value.push_back(src_[pos_]);
          ++pos_;
        }
        if (pos_ >= src_.size()) {
          return InvalidArgumentError("unterminated string literal");
        }
        ++pos_;  // closing quote
        tokens.push_back({TokenKind::kString, value, 0, 0, start});
        continue;
      }
      // Multi-char punctuation first.
      static constexpr std::string_view kTwoChar[] = {"==", "!=", "<=", ">=",
                                                      "&&", "||", "$("};
      bool matched = false;
      for (std::string_view p : kTwoChar) {
        if (src_.substr(pos_).substr(0, 2) == p) {
          tokens.push_back({TokenKind::kPunct, std::string(p), 0, 0, start});
          pos_ += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      static constexpr char kOneChar[] = "{}()[]/,;:.<>!+-=*";
      if (std::string_view(kOneChar).find(c) != std::string_view::npos) {
        tokens.push_back({TokenKind::kPunct, std::string(1, c), 0, 0, start});
        ++pos_;
        continue;
      }
      return InvalidArgumentError("unexpected character '" +
                                  std::string(1, c) + "' in rules");
    }
    tokens.push_back({TokenKind::kEnd, "", 0, 0, pos_});
    return tokens;
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<std::vector<std::unique_ptr<MatchBlock>>> ParseRuleset() {
    std::vector<std::unique_ptr<MatchBlock>> roots;
    // Optional "service cloud.firestore { ... }" wrapper.
    bool service_wrapper = false;
    if (PeekIdent("service")) {
      Advance();
      // cloud.firestore (or any dotted name)
      RETURN_IF_ERROR(ExpectIdent());
      while (PeekPunct(".")) {
        Advance();
        RETURN_IF_ERROR(ExpectIdent());
      }
      RETURN_IF_ERROR(ExpectPunct("{"));
      service_wrapper = true;
    }
    while (PeekIdent("match")) {
      ASSIGN_OR_RETURN(std::unique_ptr<MatchBlock> block, ParseMatch());
      roots.push_back(std::move(block));
    }
    if (service_wrapper) RETURN_IF_ERROR(ExpectPunct("}"));
    if (!PeekEnd()) {
      return InvalidArgumentError("unexpected trailing tokens in rules");
    }
    // Strip the conventional /databases/{db}/documents wrapper if present.
    if (roots.size() == 1 && roots[0]->pattern.size() == 3 &&
        roots[0]->pattern[0] == "databases" &&
        roots[0]->pattern[2] == "documents" && roots[0]->allows.empty()) {
      return std::move(roots[0]->children);
    }
    return roots;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }
  bool PeekEnd() const { return Peek().kind == TokenKind::kEnd; }
  bool PeekIdent(std::string_view name) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == name;
  }
  bool PeekPunct(std::string_view p) const {
    return Peek().kind == TokenKind::kPunct && Peek().text == p;
  }
  Status ExpectPunct(std::string_view p) {
    if (!PeekPunct(p)) {
      return InvalidArgumentError("expected '" + std::string(p) +
                                  "' in rules near '" + Peek().text + "'");
    }
    Advance();
    return Status::Ok();
  }
  Status ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return InvalidArgumentError("expected identifier in rules");
    }
    Advance();
    return Status::Ok();
  }

  StatusOr<std::unique_ptr<MatchBlock>> ParseMatch() {
    Advance();  // "match"
    auto block = std::make_unique<MatchBlock>();
    // Path pattern: ("/" segment)+
    if (!PeekPunct("/")) {
      return InvalidArgumentError("match pattern must start with '/'");
    }
    while (PeekPunct("/")) {
      Advance();
      if (PeekPunct("{")) {
        Advance();
        if (Peek().kind != TokenKind::kIdent) {
          return InvalidArgumentError("expected wildcard variable name");
        }
        std::string var = Peek().text;
        Advance();
        bool rest = false;
        if (PeekPunct("=")) {  // {var=**}
          Advance();
          RETURN_IF_ERROR(ExpectPunct("*"));
          RETURN_IF_ERROR(ExpectPunct("*"));
          rest = true;
        }
        RETURN_IF_ERROR(ExpectPunct("}"));
        block->pattern.push_back(rest ? "{" + var + "=**}" : "{" + var + "}");
      } else if (Peek().kind == TokenKind::kIdent) {
        block->pattern.push_back(Peek().text);
        Advance();
      } else {
        return InvalidArgumentError("bad match pattern segment");
      }
    }
    RETURN_IF_ERROR(ExpectPunct("{"));
    while (!PeekPunct("}")) {
      if (PeekIdent("match")) {
        ASSIGN_OR_RETURN(std::unique_ptr<MatchBlock> child, ParseMatch());
        block->children.push_back(std::move(child));
      } else if (PeekIdent("allow")) {
        ASSIGN_OR_RETURN(AllowStatement allow, ParseAllow());
        block->allows.push_back(std::move(allow));
      } else {
        return InvalidArgumentError("expected 'match' or 'allow' near '" +
                                    Peek().text + "'");
      }
    }
    Advance();  // "}"
    return block;
  }

  StatusOr<AllowStatement> ParseAllow() {
    Advance();  // "allow"
    AllowStatement allow;
    while (true) {
      if (Peek().kind != TokenKind::kIdent) {
        return InvalidArgumentError("expected access kind after 'allow'");
      }
      const std::string& op = Peek().text;
      if (op == "read") {
        allow.kinds.push_back(AccessKind::kGet);
        allow.kinds.push_back(AccessKind::kList);
      } else if (op == "write") {
        allow.kinds.push_back(AccessKind::kCreate);
        allow.kinds.push_back(AccessKind::kUpdate);
        allow.kinds.push_back(AccessKind::kDelete);
      } else if (op == "get") {
        allow.kinds.push_back(AccessKind::kGet);
      } else if (op == "list") {
        allow.kinds.push_back(AccessKind::kList);
      } else if (op == "create") {
        allow.kinds.push_back(AccessKind::kCreate);
      } else if (op == "update") {
        allow.kinds.push_back(AccessKind::kUpdate);
      } else if (op == "delete") {
        allow.kinds.push_back(AccessKind::kDelete);
      } else {
        return InvalidArgumentError("unknown access kind '" + op + "'");
      }
      Advance();
      if (PeekPunct(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (PeekPunct(":")) {
      Advance();
      if (!PeekIdent("if")) {
        return InvalidArgumentError("expected 'if' after ':'");
      }
      Advance();
      ASSIGN_OR_RETURN(allow.condition, ParseExpr());
    }
    RETURN_IF_ERROR(ExpectPunct(";"));
    return allow;
  }

  // expr := and ("||" and)*
  StatusOr<std::unique_ptr<Expr>> ParseExpr() {
    ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAnd());
    while (PeekPunct("||")) {
      Advance();
      ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAnd());
      lhs = MakeBinary("||", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParseAnd() {
    ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseCmp());
    while (PeekPunct("&&")) {
      Advance();
      ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseCmp());
      lhs = MakeBinary("&&", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParseCmp() {
    ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAdd());
    static constexpr std::string_view kOps[] = {"==", "!=", "<=", ">=", "<",
                                                ">"};
    for (std::string_view op : kOps) {
      if (PeekPunct(op)) {
        Advance();
        ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdd());
        return MakeBinary(op, std::move(lhs), std::move(rhs));
      }
    }
    if (PeekIdent("in")) {
      Advance();
      ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdd());
      return MakeBinary("in", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParseAdd() {
    ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseUnary());
    while (PeekPunct("+") || PeekPunct("-")) {
      std::string op = Peek().text;
      Advance();
      ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParseUnary() {
    if (PeekPunct("!")) {
      Advance();
      ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParseUnary());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnaryNot;
      e->lhs = std::move(operand);
      return e;
    }
    return ParsePrimary();
  }

  StatusOr<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kString) {
      auto e = MakeLiteral(model::Value::String(t.text));
      Advance();
      return e;
    }
    if (t.kind == TokenKind::kInt) {
      auto e = MakeLiteral(model::Value::Integer(t.int_value));
      Advance();
      return e;
    }
    if (t.kind == TokenKind::kDouble) {
      auto e = MakeLiteral(model::Value::Double(t.double_value));
      Advance();
      return e;
    }
    if (PeekPunct("(")) {
      Advance();
      ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseExpr());
      RETURN_IF_ERROR(ExpectPunct(")"));
      return inner;
    }
    if (PeekPunct("[")) {  // list literal
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->name = "list";
      // Reuse path_parts as the element list.
      if (!PeekPunct("]")) {
        while (true) {
          ASSIGN_OR_RETURN(std::unique_ptr<Expr> element, ParseExpr());
          e->path_parts.push_back(std::move(element));
          if (PeekPunct(",")) {
            Advance();
            continue;
          }
          break;
        }
      }
      RETURN_IF_ERROR(ExpectPunct("]"));
      return e;
    }
    if (t.kind == TokenKind::kIdent) {
      if (t.text == "true" || t.text == "false") {
        auto e = MakeLiteral(model::Value::Boolean(t.text == "true"));
        Advance();
        return e;
      }
      if (t.text == "null") {
        auto e = MakeLiteral(model::Value::Null());
        Advance();
        return e;
      }
      if ((t.text == "get" || t.text == "exists") &&
          tokens_[pos_ + 1].kind == TokenKind::kPunct &&
          tokens_[pos_ + 1].text == "(") {
        bool is_get = t.text == "get";
        Advance();
        Advance();  // '('
        auto e = std::make_unique<Expr>();
        e->kind = is_get ? ExprKind::kGetCall : ExprKind::kExistsCall;
        // Path template: ("/" (ident | "$(" expr ")"))+
        if (!PeekPunct("/")) {
          return InvalidArgumentError("get()/exists() path must start with /");
        }
        while (PeekPunct("/")) {
          Advance();
          if (PeekPunct("$(")) {
            Advance();
            ASSIGN_OR_RETURN(std::unique_ptr<Expr> part, ParseExpr());
            RETURN_IF_ERROR(ExpectPunct(")"));
            e->path_parts.push_back(std::move(part));
          } else if (Peek().kind == TokenKind::kIdent) {
            e->path_parts.push_back(MakeLiteral(
                model::Value::String(Peek().text)));
            Advance();
          } else {
            return InvalidArgumentError("bad get()/exists() path segment");
          }
        }
        RETURN_IF_ERROR(ExpectPunct(")"));
        return WrapMemberChain(std::move(e));
      }
      // Variable with optional member chain.
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kVariable;
      e->name = t.text;
      Advance();
      return WrapMemberChain(std::move(e));
    }
    return InvalidArgumentError("unexpected token '" + t.text +
                                "' in rules expression");
  }

  StatusOr<std::unique_ptr<Expr>> WrapMemberChain(std::unique_ptr<Expr> base) {
    while (PeekPunct(".")) {
      Advance();
      if (Peek().kind != TokenKind::kIdent) {
        return InvalidArgumentError("expected member name after '.'");
      }
      auto member = std::make_unique<Expr>();
      member->kind = ExprKind::kMember;
      member->name = Peek().text;
      member->lhs = std::move(base);
      base = std::move(member);
      Advance();
    }
    return base;
  }

  static std::unique_ptr<Expr> MakeLiteral(model::Value v) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kLiteral;
    e->literal = std::move(v);
    return e;
  }

  static std::unique_ptr<Expr> MakeBinary(std::string_view op,
                                          std::unique_ptr<Expr> lhs,
                                          std::unique_ptr<Expr> rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->name = std::string(op);
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<RuleSet> RuleSet::Parse(std::string_view source) {
  Lexer lexer(source);
  ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  ASSIGN_OR_RETURN(std::vector<std::unique_ptr<MatchBlock>> roots,
                   parser.ParseRuleset());
  RuleSet rules;
  rules.roots_ = std::move(roots);
  return rules;
}

}  // namespace firestore::rules
