// Query-planner A/B comparison harness (paper §VI): "We twice rewrote the
// Firestore query planner. These rewrites were extensively tested with A/B
// comparison of query execution to confirm zero customer impact before
// rollout."
//
// ABCompareQuery runs a query twice — through the index planner, and
// through a reference evaluator that brute-force scans the collection group
// and applies the query semantics directly — and diffs the results. Any
// divergence is a planner or executor bug.

#ifndef FIRESTORE_QUERY_AB_COMPARE_H_
#define FIRESTORE_QUERY_AB_COMPARE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "firestore/query/executor.h"

namespace firestore::query {

struct ABReport {
  bool match = true;
  // Human-readable divergences (missing/extra/misordered documents).
  std::vector<std::string> divergences;
  size_t result_size = 0;
  std::string plan_description;
};

// Reference evaluation: scans every document of the database's collection
// group (any depth), applies Query::Matches / Compare / offset / limit /
// projection in memory. Slow and always correct.
StatusOr<std::vector<model::Document>> ReferenceEvaluate(
    RowReader& reader, std::string_view database_id, const Query& q);

// Plans and executes `q`, then diffs against ReferenceEvaluate.
StatusOr<ABReport> ABCompareQuery(index::IndexCatalog& catalog,
                                  RowReader& reader,
                                  std::string_view database_id,
                                  const Query& q);

}  // namespace firestore::query

#endif  // FIRESTORE_QUERY_AB_COMPARE_H_
