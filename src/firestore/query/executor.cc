#include "firestore/query/executor.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/logging.h"
#include "firestore/codec/document_codec.h"
#include "firestore/codec/value_codec.h"
#include "firestore/index/layout.h"

namespace firestore::query {

using model::Document;
using model::FieldPath;
using model::Map;
using model::ResourcePath;
using model::Value;

namespace {

constexpr int64_t kScanBatch = 256;

Document ApplyProjection(const Query& query, Document doc) {
  if (query.projection().empty()) return doc;
  Document projected(doc.name(), {});
  projected.set_create_time(doc.create_time());
  projected.set_update_time(doc.update_time());
  for (const FieldPath& f : query.projection()) {
    std::optional<Value> v = doc.GetField(f);
    if (v.has_value()) projected.SetField(f, std::move(*v));
  }
  return projected;
}

// Accumulates verified documents while honoring offset/limit. Returns true
// while more results are wanted.
class ResultCollector {
 public:
  ResultCollector(const Query& query, QueryResult* out)
      : query_(query), out_(out), to_skip_(query.offset()) {}

  // Candidate document name produced by the plan; fetches + verifies it.
  // Sets *done when the limit has been reached.
  Status Add(RowReader& reader, std::string_view database_id,
             const ResourcePath& name, bool* done) {
    *done = false;
    spanner::Timestamp version = 0;
    ASSIGN_OR_RETURN(spanner::RowValue row,
                     reader.Read(index::kEntitiesTable,
                                 index::EntityKey(database_id, name),
                                 &version));
    ++out_->stats.entities_fetched;
    if (!row.has_value()) {
      // Index entry without a document: tolerated here (the write path keeps
      // them consistent; a race with a concurrent snapshot cannot happen at
      // a fixed timestamp).
      return Status::Ok();
    }
    ASSIGN_OR_RETURN(Document doc, codec::ParseDocument(*row));
    codec::ResolveDocumentTimestamps(doc, version);
    if (!query_.Matches(doc)) return Status::Ok();
    if (to_skip_ > 0) {
      --to_skip_;
      return Status::Ok();
    }
    out_->documents.push_back(ApplyProjection(query_, std::move(doc)));
    if (query_.limit() > 0 &&
        static_cast<int64_t>(out_->documents.size()) >= query_.limit()) {
      *done = true;
    }
    return Status::Ok();
  }

 private:
  const Query& query_;
  QueryResult* out_;
  int64_t to_skip_;
};

// Forward iterator over one index scan's rows with SeekGE support.
class IndexScanIterator {
 public:
  IndexScanIterator(RowReader& reader, const IndexScan& scan,
                    QueryStats* stats)
      : reader_(reader), scan_(scan), stats_(stats) {}

  // Positions at the first key >= `key` within the scan bounds. Returns
  // false when exhausted (or propagates an error via status()).
  bool SeekGE(const std::string& key) {
    std::string start = std::max(key, scan_.start_key);
    ++stats_->seeks;
    auto rows = reader_.Scan(index::kIndexEntriesTable, start,
                             scan_.limit_key, 1);
    if (!rows.ok()) {
      status_ = rows.status();
      return false;
    }
    ++stats_->index_rows_scanned;
    if (rows->empty()) {
      exhausted_ = true;
      return false;
    }
    current_key_ = (*rows)[0].key;
    return true;
  }

  bool Next() { return SeekGE(KeySuccessor(current_key_)); }

  // The shared merge suffix (order values + name) of the current row.
  std::string_view suffix() const {
    return std::string_view(current_key_).substr(scan_.prefix_len);
  }
  const std::string& current_key() const { return current_key_; }
  // Absolute key for a given suffix in this scan's key space.
  std::string KeyForSuffix(std::string_view suffix) const {
    return current_key_.substr(0, scan_.prefix_len) + std::string(suffix);
  }

  bool exhausted() const { return exhausted_; }
  const Status& status() const { return status_; }

 private:
  RowReader& reader_;
  const IndexScan& scan_;
  QueryStats* stats_;
  std::string current_key_;
  bool exhausted_ = false;
  Status status_;
};

bool OverBudget(const ExecOptions& options, QueryResult* out) {
  if (options.max_index_rows > 0 &&
      out->stats.index_rows_scanned >= options.max_index_rows) {
    out->reached_scan_limit = true;
    return true;
  }
  return false;
}

Status RunCollectionScan(RowReader& reader, std::string_view database_id,
                         const Query& query, const QueryPlan& plan,
                         const ExecOptions& options, QueryResult* out) {
  ResultCollector collector(query, out);
  std::string start = plan.entities_start;
  while (true) {
    ASSIGN_OR_RETURN(std::vector<spanner::ScanRow> rows,
                     reader.Scan(index::kEntitiesTable, start,
                                 plan.entities_limit, kScanBatch));
    if (rows.empty()) return Status::Ok();
    for (const spanner::ScanRow& row : rows) {
      out->stats.index_rows_scanned++;
      ASSIGN_OR_RETURN(Document doc, codec::ParseDocument(row.value));
      codec::ResolveDocumentTimestamps(doc, row.version);
      if (query.Matches(doc)) {
        bool done = false;
        RETURN_IF_ERROR(
            collector.Add(reader, database_id, doc.name(), &done));
        if (done) return Status::Ok();
      }
      if (OverBudget(options, out)) return Status::Ok();
    }
    start = KeySuccessor(rows.back().key);
  }
}

Status RunSingleScan(RowReader& reader, std::string_view database_id,
                     const Query& query, const QueryPlan& plan,
                     const ExecOptions& options, QueryResult* out) {
  const IndexScan& scan = plan.scans[0];
  ResultCollector collector(query, out);
  std::string start = scan.start_key;
  while (true) {
    ASSIGN_OR_RETURN(
        std::vector<spanner::ScanRow> rows,
        reader.Scan(index::kIndexEntriesTable, start, scan.limit_key,
                    kScanBatch));
    if (rows.empty()) return Status::Ok();
    for (const spanner::ScanRow& row : rows) {
      out->stats.index_rows_scanned++;
      std::string_view suffix =
          std::string_view(row.key).substr(scan.prefix_len);
      ResourcePath name;
      if (!index::ParseIndexEntryName(suffix, plan.suffix_directions,
                                      &name)) {
        return InternalError("corrupt index entry key");
      }
      bool done = false;
      RETURN_IF_ERROR(collector.Add(reader, database_id, name, &done));
      if (done) return Status::Ok();
      if (OverBudget(options, out)) return Status::Ok();
    }
    start = KeySuccessor(rows.back().key);
  }
}

Status RunZigZagJoin(RowReader& reader, std::string_view database_id,
                     const Query& query, const QueryPlan& plan,
                     const ExecOptions& options, QueryResult* out) {
  ResultCollector collector(query, out);
  std::vector<IndexScanIterator> iters;
  iters.reserve(plan.scans.size());
  for (const IndexScan& scan : plan.scans) {
    iters.emplace_back(reader, scan, &out->stats);
  }
  // Initial positioning.
  for (IndexScanIterator& it : iters) {
    if (!it.SeekGE(std::string())) {
      return it.status();  // OK status == some scan is simply empty
    }
  }
  while (true) {
    // Find the largest current suffix; check whether all agree.
    std::string_view max_suffix = iters[0].suffix();
    bool all_equal = true;
    for (IndexScanIterator& it : iters) {
      if (it.suffix() != max_suffix) {
        all_equal = false;
        if (it.suffix() > max_suffix) max_suffix = it.suffix();
      }
    }
    if (all_equal) {
      ResourcePath name;
      if (!index::ParseIndexEntryName(max_suffix, plan.suffix_directions,
                                      &name)) {
        return InternalError("corrupt index entry key in join");
      }
      bool done = false;
      RETURN_IF_ERROR(collector.Add(reader, database_id, name, &done));
      if (done || OverBudget(options, out)) return Status::Ok();
      for (IndexScanIterator& it : iters) {
        if (!it.Next()) return it.status();
      }
      continue;
    }
    // Leapfrog: advance every lagging iterator to the max suffix.
    std::string target(max_suffix);
    for (IndexScanIterator& it : iters) {
      if (it.suffix() < target) {
        if (!it.SeekGE(it.KeyForSuffix(target))) return it.status();
      }
    }
  }
}

}  // namespace

StatusOr<QueryResult> ExecuteQuery(RowReader& reader,
                                   std::string_view database_id,
                                   const Query& query, const QueryPlan& plan,
                                   ExecOptions options) {
  QueryResult result;
  Status s;
  if (plan.collection_scan) {
    s = RunCollectionScan(reader, database_id, query, plan, options,
                          &result);
  } else if (plan.scans.size() == 1) {
    s = RunSingleScan(reader, database_id, query, plan, options, &result);
  } else {
    FS_CHECK_GT(plan.scans.size(), 1u);
    s = RunZigZagJoin(reader, database_id, query, plan, options, &result);
  }
  if (!s.ok()) return s;
  return result;
}

StatusOr<QueryResult> PlanAndExecute(index::IndexCatalog& catalog,
                                     RowReader& reader,
                                     std::string_view database_id,
                                     const Query& query) {
  ASSIGN_OR_RETURN(QueryPlan plan, PlanQuery(catalog, database_id, query));
  return ExecuteQuery(reader, database_id, query, plan);
}

namespace {

// Index scans bound most predicates exactly; the residual checks a count
// must perform per candidate are collection membership (the index spans the
// whole collection group) and — never, thanks to the contradiction check
// below — repeated equality filters on one field.
bool HasContradictoryEqualities(const Query& query) {
  const auto& filters = query.filters();
  for (size_t i = 0; i < filters.size(); ++i) {
    if (filters[i].op != Operator::kEqual) continue;
    for (size_t j = i + 1; j < filters.size(); ++j) {
      if (filters[j].op != Operator::kEqual) continue;
      if (filters[i].field == filters[j].field &&
          filters[i].value.Compare(filters[j].value) != 0) {
        return true;
      }
    }
  }
  return false;
}

bool NameInCollection(const ResourcePath& name, const ResourcePath& parent) {
  return name.Parent() == parent;
}

}  // namespace

StatusOr<CountResult> ExecuteCountQuery(RowReader& reader,
                                        std::string_view database_id,
                                        const Query& query,
                                        const QueryPlan& plan) {
  CountResult result;
  if (HasContradictoryEqualities(query)) return result;  // provably empty
  const ResourcePath collection = query.CollectionPath();
  int64_t matches = 0;

  if (plan.collection_scan) {
    std::string start = plan.entities_start;
    std::string db_prefix = index::EntityKeyPrefixForDatabase(database_id);
    while (true) {
      ASSIGN_OR_RETURN(std::vector<spanner::ScanRow> rows,
                       reader.Scan(index::kEntitiesTable, start,
                                   plan.entities_limit, kScanBatch));
      if (rows.empty()) break;
      for (const spanner::ScanRow& row : rows) {
        ++result.stats.index_rows_scanned;
        // The name is recoverable from the key alone; the document payload
        // is never inspected.
        std::string_view suffix;
        ResourcePath name;
        if (!index::IndexEntrySuffix(row.key, db_prefix, &suffix) ||
            !codec::ParseResourcePath(&suffix, &name)) {
          return InternalError("corrupt entity key");
        }
        if (NameInCollection(name, collection)) ++matches;
      }
      start = KeySuccessor(rows.back().key);
    }
  } else if (plan.scans.size() == 1) {
    const IndexScan& scan = plan.scans[0];
    std::string start = scan.start_key;
    while (true) {
      ASSIGN_OR_RETURN(std::vector<spanner::ScanRow> rows,
                       reader.Scan(index::kIndexEntriesTable, start,
                                   scan.limit_key, kScanBatch));
      if (rows.empty()) break;
      for (const spanner::ScanRow& row : rows) {
        ++result.stats.index_rows_scanned;
        std::string_view suffix =
            std::string_view(row.key).substr(scan.prefix_len);
        ResourcePath name;
        if (!index::ParseIndexEntryName(suffix, plan.suffix_directions,
                                        &name)) {
          return InternalError("corrupt index entry key");
        }
        if (NameInCollection(name, collection)) ++matches;
      }
      start = KeySuccessor(rows.back().key);
    }
  } else {
    std::vector<IndexScanIterator> iters;
    iters.reserve(plan.scans.size());
    for (const IndexScan& scan : plan.scans) {
      iters.emplace_back(reader, scan, &result.stats);
    }
    bool alive = true;
    for (IndexScanIterator& it : iters) {
      if (!it.SeekGE(std::string())) {
        RETURN_IF_ERROR(it.status());
        alive = false;
        break;
      }
    }
    while (alive) {
      std::string_view max_suffix = iters[0].suffix();
      bool all_equal = true;
      for (IndexScanIterator& it : iters) {
        if (it.suffix() != max_suffix) {
          all_equal = false;
          if (it.suffix() > max_suffix) max_suffix = it.suffix();
        }
      }
      if (all_equal) {
        ResourcePath name;
        if (!index::ParseIndexEntryName(max_suffix, plan.suffix_directions,
                                        &name)) {
          return InternalError("corrupt index entry key in join");
        }
        if (NameInCollection(name, collection)) ++matches;
        for (IndexScanIterator& it : iters) {
          if (!it.Next()) {
            RETURN_IF_ERROR(it.status());
            alive = false;
            break;
          }
        }
        continue;
      }
      std::string target(max_suffix);
      for (IndexScanIterator& it : iters) {
        if (it.suffix() < target) {
          if (!it.SeekGE(it.KeyForSuffix(target))) {
            RETURN_IF_ERROR(it.status());
            alive = false;
            break;
          }
        }
      }
    }
  }

  matches = std::max<int64_t>(0, matches - query.offset());
  if (query.limit() > 0) matches = std::min<int64_t>(matches, query.limit());
  result.count = matches;
  return result;
}

namespace {

void Accumulate(const Value& v, AggregateResult* agg) {
  if (!v.is_number()) return;  // non-numeric values are ignored
  ++agg->count;
  if (v.is_integer() && agg->is_integer) {
    agg->sum_integer += v.integer_value();
  } else {
    if (agg->is_integer) {
      // Switch representation, carrying the integral prefix.
      agg->sum_double = static_cast<double>(agg->sum_integer);
      agg->is_integer = false;
    }
    agg->sum_double += v.AsDouble();
  }
}

}  // namespace

StatusOr<AggregateResult> ExecuteSumQuery(RowReader& reader,
                                          std::string_view database_id,
                                          const Query& query,
                                          const QueryPlan& plan,
                                          const model::FieldPath& field) {
  AggregateResult agg;
  if (HasContradictoryEqualities(query)) return agg;
  const ResourcePath collection = query.CollectionPath();

  // Fast path: the field's values are the first suffix component of a
  // single index scan — decode them from the keys.
  if (!plan.collection_scan && plan.scans.size() == 1 &&
      !plan.scans[0].suffix_fields.empty() &&
      plan.scans[0].suffix_fields[0] == field) {
    const IndexScan& scan = plan.scans[0];
    int64_t skipped = 0, taken = 0;
    std::string start = scan.start_key;
    while (true) {
      ASSIGN_OR_RETURN(std::vector<spanner::ScanRow> rows,
                       reader.Scan(index::kIndexEntriesTable, start,
                                   scan.limit_key, kScanBatch));
      if (rows.empty()) return agg;
      for (const spanner::ScanRow& row : rows) {
        ++agg.stats.index_rows_scanned;
        std::string_view suffix =
            std::string_view(row.key).substr(scan.prefix_len);
        Value value;
        bool ok = plan.suffix_directions[0]
                      ? codec::ParseValueDesc(&suffix, &value)
                      : codec::ParseValueAsc(&suffix, &value);
        if (!ok) return InternalError("corrupt index entry value");
        // Remaining suffix components + name.
        ResourcePath name;
        std::vector<bool> rest(plan.suffix_directions.begin() + 1,
                               plan.suffix_directions.end());
        if (!index::ParseIndexEntryName(suffix, rest, &name)) {
          return InternalError("corrupt index entry key");
        }
        if (!NameInCollection(name, collection)) continue;
        if (skipped < query.offset()) {
          ++skipped;
          continue;
        }
        if (query.limit() > 0 && taken >= query.limit()) return agg;
        ++taken;
        Accumulate(value, &agg);
      }
      start = KeySuccessor(rows.back().key);
    }
  }

  // General path: run the underlying query (without projection, so the
  // aggregated field is present) and fold.
  Query fetch = query;
  fetch.Project({});
  ASSIGN_OR_RETURN(QueryResult result,
                   ExecuteQuery(reader, database_id, fetch, plan));
  agg.stats = result.stats;
  for (const Document& doc : result.documents) {
    std::optional<Value> v = doc.GetField(field);
    if (v.has_value()) Accumulate(*v, &agg);
  }
  return agg;
}

}  // namespace firestore::query
