#include "firestore/query/planner.h"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>

#include "common/bytes.h"
#include "common/logging.h"
#include "firestore/codec/value_codec.h"
#include "firestore/index/extractor.h"
#include "firestore/index/layout.h"

namespace firestore::query {

using index::IndexCatalog;
using index::IndexDefinition;
using index::IndexSegment;
using index::SegmentKind;
using model::FieldPath;
using model::Value;

namespace {

// Relative key bounds within an index, appended after the equality prefix.
struct SuffixBounds {
  std::string start;  // empty = unbounded below
  std::string limit;  // empty = unbounded above
};

char FirstTagByte(const Value& v) { return codec::EncodeValueAsc(v)[0]; }

// Bounds constraining the first order-suffix component to the inequality
// filters (and the value's type class — "> 2" must not return strings).
SuffixBounds ComputeOrderFieldBounds(
    bool descending, const std::vector<const FieldFilter*>& inequalities) {
  SuffixBounds bounds;
  auto raise_start = [&](std::string candidate) {
    if (candidate > bounds.start) bounds.start = std::move(candidate);
  };
  auto lower_limit = [&](std::string candidate) {
    if (bounds.limit.empty() || candidate < bounds.limit) {
      bounds.limit = std::move(candidate);
    }
  };
  for (const FieldFilter* f : inequalities) {
    char tag = FirstTagByte(f->value);
    if (!descending) {
      std::string enc = codec::EncodeValueAsc(f->value);
      // Type class range: [tag, tag+1).
      raise_start(std::string(1, tag));
      lower_limit(std::string(1, static_cast<char>(tag + 1)));
      switch (f->op) {
        case Operator::kGreaterThan:
          raise_start(PrefixSuccessor(enc));
          break;
        case Operator::kGreaterThanOrEqual:
          raise_start(enc);
          break;
        case Operator::kLessThan:
          lower_limit(enc);
          break;
        case Operator::kLessThanOrEqual:
          lower_limit(PrefixSuccessor(enc));
          break;
        default:
          break;
      }
    } else {
      std::string enc;
      codec::AppendValueDesc(enc, f->value);
      // Inverted class range: first byte of a descending encoding of class
      // `tag` is ~tag.
      char inv = static_cast<char>(~static_cast<unsigned char>(tag));
      raise_start(std::string(1, inv));
      lower_limit(std::string(
          1, static_cast<char>(static_cast<unsigned char>(inv) + 1)));
      switch (f->op) {
        case Operator::kGreaterThan:  // larger values sort first
          lower_limit(enc);
          break;
        case Operator::kGreaterThanOrEqual:
          lower_limit(PrefixSuccessor(enc));
          break;
        case Operator::kLessThan:
          raise_start(PrefixSuccessor(enc));
          break;
        case Operator::kLessThanOrEqual:
          raise_start(enc);
          break;
        default:
          break;
      }
    }
  }
  return bounds;
}

// True if index segments [eq_count..] equal the order suffix exactly.
bool TailMatchesOrder(const IndexDefinition& def, size_t eq_count,
                      const std::vector<OrderBy>& order) {
  if (def.segments.size() != eq_count + order.size()) return false;
  for (size_t i = 0; i < order.size(); ++i) {
    const IndexSegment& seg = def.segments[eq_count + i];
    if (!(seg.field == order[i].field)) return false;
    SegmentKind want =
        order[i].descending ? SegmentKind::kDescending : SegmentKind::kAscending;
    if (seg.kind != want) return false;
  }
  return true;
}

std::string DescribeScan(const IndexDefinition& def) {
  return def.DebugString();
}

}  // namespace

std::string QueryPlan::DebugString() const {
  std::ostringstream os;
  if (collection_scan) {
    os << "collection-scan(Entities)";
    return os.str();
  }
  if (scans.size() > 1) os << "zigzag-join(";
  for (size_t i = 0; i < scans.size(); ++i) {
    if (i > 0) os << ", ";
    os << scans[i].description;
  }
  if (scans.size() > 1) os << ")";
  return os.str();
}

StatusOr<QueryPlan> PlanQuery(IndexCatalog& catalog,
                              std::string_view database_id,
                              const Query& query) {
  RETURN_IF_ERROR(query.Validate());

  const std::vector<OrderBy> order = query.NormalizedOrderBy();
  const std::string& collection = query.collection_id();

  // Partition filters.
  std::vector<const FieldFilter*> equalities;     // kEqual
  std::vector<const FieldFilter*> contains;       // kArrayContains
  std::vector<const FieldFilter*> inequalities;   // bounds on order[0].field
  for (const FieldFilter& f : query.filters()) {
    switch (f.op) {
      case Operator::kEqual:
        equalities.push_back(&f);
        break;
      case Operator::kArrayContains:
        contains.push_back(&f);
        break;
      default:
        inequalities.push_back(&f);
        break;
    }
  }

  // No filters and no ordering: name-ordered collection scan over Entities.
  if (equalities.empty() && contains.empty() && inequalities.empty() &&
      order.empty()) {
    QueryPlan plan;
    plan.collection_scan = true;
    plan.entities_start = index::EntityKeyPrefixForCollection(
        database_id, query.CollectionPath());
    plan.entities_limit = PrefixSuccessor(plan.entities_start);
    if (query.start_cursor().has_value()) {
      const Cursor& cursor = *query.start_cursor();
      std::string at = index::EntityKey(database_id, cursor.name);
      if (!cursor.inclusive) at = KeySuccessor(at);
      plan.entities_start = std::max(plan.entities_start, at);
    }
    return plan;
  }

  if (!contains.empty() && !order.empty()) {
    return FailedPreconditionError(
        "array-contains cannot be combined with inequality or order-by; "
        "this build supports array-contains via single-field indexes only");
  }

  // Distinct equality fields to cover (several filters on one field are
  // planned once and re-verified during execution).
  std::vector<FieldPath> uncovered;
  for (const FieldFilter* f : equalities) {
    if (std::find(uncovered.begin(), uncovered.end(), f->field) ==
        uncovered.end()) {
      uncovered.push_back(f->field);
    }
  }

  // Candidate generation. Lazily materialize the automatic indexes the
  // query could use; exempted fields simply produce no candidate.
  std::vector<IndexDefinition> candidates = catalog.ActiveIndexes(collection);
  auto add_candidate = [&](std::optional<IndexDefinition> def) {
    if (!def.has_value()) return;
    for (const IndexDefinition& c : candidates) {
      if (c.index_id == def->index_id) return;
    }
    candidates.push_back(*def);
  };
  if (order.empty()) {
    for (const FieldPath& f : uncovered) {
      add_candidate(catalog.AutoIndex(collection, f, SegmentKind::kAscending));
    }
  } else if (order.size() == 1 && uncovered.empty()) {
    add_candidate(catalog.AutoIndex(collection, order[0].field,
                                    order[0].descending
                                        ? SegmentKind::kDescending
                                        : SegmentKind::kAscending));
  } else if (order.size() == 1) {
    // Joined scans each need suffix == order; the pure order-provider index
    // is a candidate alongside composites.
    add_candidate(catalog.AutoIndex(collection, order[0].field,
                                    order[0].descending
                                        ? SegmentKind::kDescending
                                        : SegmentKind::kAscending));
  }
  for (const FieldFilter* f : contains) {
    add_candidate(
        catalog.AutoIndex(collection, f->field, SegmentKind::kArrayContains));
  }

  // A usable candidate covers a subset of the uncovered equality fields as
  // its prefix (any direction), followed exactly by the order suffix.
  struct Selected {
    IndexDefinition def;
    std::vector<FieldPath> covered;  // equality fields, in segment order
  };
  std::vector<Selected> selected;

  // Array-contains scans first: each filter needs its own AC index.
  for (const FieldFilter* f : contains) {
    std::optional<IndexDefinition> def =
        catalog.AutoIndex(collection, f->field, SegmentKind::kArrayContains);
    if (!def.has_value()) {
      return FailedPreconditionError(
          "field '" + f->field.CanonicalString() +
          "' is exempted from indexing; the query cannot be served");
    }
    selected.push_back({*def, {}});
  }

  const bool needs_order_scan = !order.empty();
  bool have_order_scan = false;
  while (!uncovered.empty() || (needs_order_scan && !have_order_scan)) {
    const IndexDefinition* best = nullptr;
    std::vector<FieldPath> best_covered;
    for (const IndexDefinition& def : candidates) {
      if (def.segments.empty()) continue;
      if (def.segments.size() == 1 &&
          def.segments[0].kind == SegmentKind::kArrayContains) {
        continue;
      }
      // Longest equality prefix of this index lying within `uncovered`.
      std::vector<FieldPath> covered;
      size_t k = 0;
      while (k < def.segments.size()) {
        const FieldPath& f = def.segments[k].field;
        if (def.segments[k].kind == SegmentKind::kArrayContains) break;
        if (std::find(uncovered.begin(), uncovered.end(), f) ==
                uncovered.end() ||
            std::find(covered.begin(), covered.end(), f) != covered.end()) {
          break;
        }
        covered.push_back(f);
        ++k;
      }
      if (!TailMatchesOrder(def, covered.size(), order)) continue;
      if (covered.empty() && (!needs_order_scan || have_order_scan)) {
        continue;  // contributes nothing
      }
      // Greedy: maximize covered equality fields; tie-break fewer segments.
      if (best == nullptr || covered.size() > best_covered.size() ||
          (covered.size() == best_covered.size() &&
           def.segments.size() < best->segments.size())) {
        best = &def;
        best_covered = covered;
      }
    }
    if (best == nullptr) {
      std::ostringstream os;
      os << "no index set can serve this query; create a composite index on "
         << collection << " covering";
      for (const FieldPath& f : uncovered) os << " " << f.CanonicalString();
      for (const OrderBy& o : order) {
        os << " " << o.field.CanonicalString() << (o.descending ? " desc"
                                                                : " asc");
      }
      os << " (console: firestore-repro://indexes/create)";
      return FailedPreconditionError(os.str());
    }
    selected.push_back({*best, best_covered});
    for (const FieldPath& f : best_covered) {
      uncovered.erase(std::find(uncovered.begin(), uncovered.end(), f));
    }
    have_order_scan = true;  // every selected scan carries the order suffix
  }

  // Zig-zag joining AC scans (suffix = name) with order-suffix scans is only
  // sound when the order suffix is empty — enforced above.

  // Build the concrete scans.
  QueryPlan plan;
  std::vector<FieldPath> suffix_fields;
  for (const OrderBy& o : order) {
    plan.suffix_directions.push_back(o.descending);
    suffix_fields.push_back(o.field);
  }

  SuffixBounds order_bounds;
  if (!order.empty()) {
    order_bounds = ComputeOrderFieldBounds(order[0].descending, inequalities);
  }

  // A cursor lower-bounds every scan's shared (order values..., name)
  // suffix, enabling pagination and resumption of partial results.
  std::string cursor_suffix;
  if (query.start_cursor().has_value()) {
    const Cursor& cursor = *query.start_cursor();
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i].descending) {
        codec::AppendValueDesc(cursor_suffix, cursor.order_values[i]);
      } else {
        codec::AppendValueAsc(cursor_suffix, cursor.order_values[i]);
      }
    }
    codec::AppendResourcePath(cursor_suffix, cursor.name);
    if (!cursor.inclusive) cursor_suffix = KeySuccessor(cursor_suffix);
    if (cursor_suffix > order_bounds.start) {
      order_bounds.start = cursor_suffix;
    }
  }

  auto value_for_equality = [&](const FieldPath& field) -> const Value& {
    for (const FieldFilter* f : equalities) {
      if (f->field == field) return f->value;
    }
    FS_LOG(FATAL) << "planner invariant: missing equality value";
    return equalities[0]->value;  // unreachable
  };

  for (const Selected& sel : selected) {
    IndexScan scan;
    scan.index_id = sel.def.index_id;
    scan.description = DescribeScan(sel.def);
    std::string prefix =
        index::IndexKeyPrefix(database_id, sel.def.index_id);
    if (sel.def.segments.size() == 1 &&
        sel.def.segments[0].kind == SegmentKind::kArrayContains) {
      // Point prefix on the element value.
      const FieldFilter* filter = nullptr;
      for (const FieldFilter* f : contains) {
        if (f->field == sel.def.segments[0].field) filter = f;
      }
      FS_CHECK(filter != nullptr);
      codec::AppendValueAsc(prefix, filter->value);
      // AC scans have an empty order suffix; only a cursor can bound them.
      scan.start_key = prefix + order_bounds.start;
      scan.limit_key = PrefixSuccessor(prefix);
      scan.prefix_len = prefix.size();
      plan.scans.push_back(std::move(scan));
      continue;
    }
    for (size_t i = 0; i < sel.covered.size(); ++i) {
      const Value& v = value_for_equality(sel.def.segments[i].field);
      if (sel.def.segments[i].kind == SegmentKind::kDescending) {
        codec::AppendValueDesc(prefix, v);
      } else {
        codec::AppendValueAsc(prefix, v);
      }
    }
    scan.prefix_len = prefix.size();
    scan.suffix_fields = suffix_fields;
    scan.start_key = prefix + order_bounds.start;
    scan.limit_key = order_bounds.limit.empty()
                         ? PrefixSuccessor(prefix)
                         : prefix + order_bounds.limit;
    plan.scans.push_back(std::move(scan));
  }
  return plan;
}

}  // namespace firestore::query
