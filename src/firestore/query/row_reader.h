// Read-access abstraction for query execution. Queries run either inside a
// Firestore transaction (Spanner reads take read locks) or lock-free at a
// snapshot timestamp (paper §IV-D3); the executor is agnostic.

#ifndef FIRESTORE_QUERY_ROW_READER_H_
#define FIRESTORE_QUERY_ROW_READER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "spanner/database.h"

namespace firestore::query {

class RowReader {
 public:
  virtual ~RowReader() = default;

  // `version` (optional) receives the commit timestamp of the version read.
  virtual StatusOr<spanner::RowValue> Read(
      const std::string& table, const spanner::Key& key,
      spanner::Timestamp* version = nullptr) = 0;

  // Up to `max_rows` rows with key in [start, limit), in key order.
  virtual StatusOr<std::vector<spanner::ScanRow>> Scan(
      const std::string& table, const spanner::Key& start,
      const spanner::Key& limit, int64_t max_rows) = 0;
};

// Lock-free reads at a fixed timestamp.
class SnapshotRowReader : public RowReader {
 public:
  SnapshotRowReader(const spanner::Database* db, spanner::Timestamp ts)
      : db_(db), ts_(ts) {}

  spanner::Timestamp timestamp() const { return ts_; }

  StatusOr<spanner::RowValue> Read(
      const std::string& table, const spanner::Key& key,
      spanner::Timestamp* version = nullptr) override {
    return db_->SnapshotRead(table, key, ts_, version);
  }

  StatusOr<std::vector<spanner::ScanRow>> Scan(const std::string& table,
                                               const spanner::Key& start,
                                               const spanner::Key& limit,
                                               int64_t max_rows) override {
    return db_->SnapshotScan(table, start, limit, ts_, max_rows);
  }

 private:
  const spanner::Database* db_;
  spanner::Timestamp ts_;
};

// Locking reads within a read-write transaction.
class TransactionRowReader : public RowReader {
 public:
  explicit TransactionRowReader(spanner::ReadWriteTransaction* txn)
      : txn_(txn) {}

  StatusOr<spanner::RowValue> Read(
      const std::string& table, const spanner::Key& key,
      spanner::Timestamp* version = nullptr) override {
    return txn_->Read(table, key, spanner::LockMode::kShared, version);
  }

  StatusOr<std::vector<spanner::ScanRow>> Scan(const std::string& table,
                                               const spanner::Key& start,
                                               const spanner::Key& limit,
                                               int64_t max_rows) override {
    return txn_->Scan(table, start, limit, max_rows);
  }

 private:
  spanner::ReadWriteTransaction* txn_;
};

}  // namespace firestore::query

#endif  // FIRESTORE_QUERY_ROW_READER_H_
