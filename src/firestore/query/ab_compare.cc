#include "firestore/query/ab_compare.h"

#include <algorithm>
#include <sstream>

#include "common/bytes.h"
#include "firestore/codec/document_codec.h"
#include "firestore/index/layout.h"
#include "firestore/query/planner.h"

namespace firestore::query {

using model::Document;
using model::FieldPath;
using model::Value;

StatusOr<std::vector<Document>> ReferenceEvaluate(
    RowReader& reader, std::string_view database_id, const Query& q) {
  RETURN_IF_ERROR(q.Validate());
  // Scan every document of the database (the reference must be independent
  // of index selection, so it ignores indexes entirely).
  std::vector<Document> matching;
  std::string start = index::EntityKeyPrefixForDatabase(database_id);
  const std::string limit = PrefixSuccessor(start);
  while (true) {
    ASSIGN_OR_RETURN(std::vector<spanner::ScanRow> rows,
                     reader.Scan(index::kEntitiesTable, start, limit, 256));
    if (rows.empty()) break;
    for (const spanner::ScanRow& row : rows) {
      ASSIGN_OR_RETURN(Document doc, codec::ParseDocument(row.value));
      codec::ResolveDocumentTimestamps(doc, row.version);
      if (q.Matches(doc)) matching.push_back(std::move(doc));
    }
    start = KeySuccessor(rows.back().key);
  }
  std::sort(matching.begin(), matching.end(),
            [&](const Document& a, const Document& b) {
              return q.Compare(a, b) < 0;
            });
  // Cursor.
  if (q.start_cursor().has_value()) {
    const Cursor& cursor = *q.start_cursor();
    auto after_cursor = [&](const Document& doc) {
      // Compare (order values, name) against the cursor position.
      const auto order = q.NormalizedOrderBy();
      for (size_t i = 0; i < order.size(); ++i) {
        std::optional<Value> v = doc.GetField(order[i].field);
        if (!v.has_value()) return false;
        int c = v->Compare(cursor.order_values[i]);
        if (c != 0) return order[i].descending ? c < 0 : c > 0;
      }
      int c = doc.name().Compare(cursor.name);
      return cursor.inclusive ? c >= 0 : c > 0;
    };
    matching.erase(
        std::remove_if(matching.begin(), matching.end(),
                       [&](const Document& d) { return !after_cursor(d); }),
        matching.end());
  }
  // Offset / limit / projection.
  if (q.offset() > 0) {
    matching.erase(matching.begin(),
                   matching.begin() +
                       std::min<size_t>(q.offset(), matching.size()));
  }
  if (q.limit() > 0 && static_cast<int64_t>(matching.size()) > q.limit()) {
    matching.resize(q.limit());
  }
  if (!q.projection().empty()) {
    for (Document& doc : matching) {
      Document projected(doc.name(), {});
      projected.set_create_time(doc.create_time());
      projected.set_update_time(doc.update_time());
      for (const FieldPath& f : q.projection()) {
        std::optional<Value> v = doc.GetField(f);
        if (v.has_value()) projected.SetField(f, std::move(*v));
      }
      doc = std::move(projected);
    }
  }
  return matching;
}

StatusOr<ABReport> ABCompareQuery(index::IndexCatalog& catalog,
                                  RowReader& reader,
                                  std::string_view database_id,
                                  const Query& q) {
  ASSIGN_OR_RETURN(QueryPlan plan, PlanQuery(catalog, database_id, q));
  ASSIGN_OR_RETURN(QueryResult planned,
                   ExecuteQuery(reader, database_id, q, plan));
  ASSIGN_OR_RETURN(std::vector<Document> reference,
                   ReferenceEvaluate(reader, database_id, q));
  ABReport report;
  report.result_size = reference.size();
  report.plan_description = plan.DebugString();
  size_t n = std::max(planned.documents.size(), reference.size());
  for (size_t i = 0; i < n; ++i) {
    std::ostringstream os;
    if (i >= planned.documents.size()) {
      os << "missing at " << i << ": "
         << reference[i].name().CanonicalString();
    } else if (i >= reference.size()) {
      os << "extra at " << i << ": "
         << planned.documents[i].name().CanonicalString();
    } else if (!(planned.documents[i] == reference[i])) {
      os << "mismatch at " << i << ": planned "
         << planned.documents[i].ToString() << " vs reference "
         << reference[i].ToString();
    } else {
      continue;
    }
    report.match = false;
    report.divergences.push_back(os.str());
  }
  return report;
}

}  // namespace firestore::query
