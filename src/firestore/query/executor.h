// Query executor (paper §IV-D3): "executes all queries using either a
// linear scan over a range of a single secondary index in the Spanner
// IndexEntries table, or a join of several such secondary indexes, followed
// by lookup of the corresponding documents in the Entities table, with no
// in-memory sorting, filtering, etc."

#ifndef FIRESTORE_QUERY_EXECUTOR_H_
#define FIRESTORE_QUERY_EXECUTOR_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "firestore/model/document.h"
#include "firestore/query/planner.h"
#include "firestore/query/row_reader.h"

namespace firestore::query {

struct QueryStats {
  int64_t index_rows_scanned = 0;
  int64_t entities_fetched = 0;
  int64_t seeks = 0;
};

struct QueryResult {
  std::vector<model::Document> documents;
  QueryStats stats;
  // True when the per-RPC work cap stopped the scan early (paper §IV-C:
  // "We limit ... the amount of work done for a single RPC ... Firestore
  // APIs support returning partial results"). Resume by re-issuing the
  // query with Query::StartAfterDoc(documents.back()).
  bool reached_scan_limit = false;
};

struct ExecOptions {
  // Stop after examining this many index/entity rows (0 = unlimited).
  int64_t max_index_rows = 0;
};

// Runs `plan` for `query`. Documents come back in the plan's order (the
// normalized order-by, then name), already offset/limited/projected.
//
// Every candidate document fetched from Entities is re-verified against the
// query predicate; this keeps execution correct for multi-filter fields and
// guards the index-consistency invariant.
StatusOr<QueryResult> ExecuteQuery(RowReader& reader,
                                   std::string_view database_id,
                                   const Query& query, const QueryPlan& plan,
                                   ExecOptions options = {});

// Convenience: plan + execute in one step.
StatusOr<QueryResult> PlanAndExecute(index::IndexCatalog& catalog,
                                     RowReader& reader,
                                     std::string_view database_id,
                                     const Query& query);

struct CountResult {
  int64_t count = 0;
  QueryStats stats;
};

// COUNT aggregation (paper §VIII future work): counts the query's results
// from index entries alone, without fetching a single document — "a COUNT
// query returns a single value but may count millions of documents", so the
// cost (and billing) is driven by stats.index_rows_scanned, not result
// size. Honors the query's offset and limit.
StatusOr<CountResult> ExecuteCountQuery(RowReader& reader,
                                        std::string_view database_id,
                                        const Query& query,
                                        const QueryPlan& plan);

// SUM/AVG aggregation over a numeric field. Documents whose field is
// missing or non-numeric are ignored (Firestore aggregate semantics); the
// result is integral only if every participating value was an integer.
//
// When the plan's single scan carries the field as its first order-suffix
// component (arrange this by ordering the query on the field), values are
// decoded directly from the index keys — no document fetches at all.
// Otherwise documents are fetched and the field read.
struct AggregateResult {
  int64_t count = 0;  // documents that contributed a numeric value
  bool is_integer = true;
  int64_t sum_integer = 0;
  double sum_double = 0;
  QueryStats stats;

  double Sum() const {
    return is_integer ? static_cast<double>(sum_integer) : sum_double;
  }
  double Avg() const {
    return count == 0 ? 0 : Sum() / static_cast<double>(count);
  }
};

StatusOr<AggregateResult> ExecuteSumQuery(RowReader& reader,
                                          std::string_view database_id,
                                          const Query& query,
                                          const QueryPlan& plan,
                                          const model::FieldPath& field);

}  // namespace firestore::query

#endif  // FIRESTORE_QUERY_EXECUTOR_H_
