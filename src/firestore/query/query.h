// The Firestore query model (paper §III-C): projections, predicate
// comparisons with a constant, conjunctions, orders, limits, offsets. At
// most one inequality field, which must match the first sort order — these
// restrictions are what let every query be satisfied directly from
// secondary indexes.

#ifndef FIRESTORE_QUERY_QUERY_H_
#define FIRESTORE_QUERY_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "firestore/model/document.h"
#include "firestore/model/path.h"
#include "firestore/model/value.h"

namespace firestore::query {

enum class Operator {
  kEqual,
  kLessThan,
  kLessThanOrEqual,
  kGreaterThan,
  kGreaterThanOrEqual,
  kArrayContains,
};

std::string_view OperatorToString(Operator op);

struct FieldFilter {
  model::FieldPath field;
  Operator op = Operator::kEqual;
  model::Value value;

  bool IsInequality() const {
    return op != Operator::kEqual && op != Operator::kArrayContains;
  }

  // Whether a document field value satisfies this predicate. Inequalities
  // match only values of the same type class (Firestore semantics: "> 2"
  // never returns strings).
  bool Matches(const model::Value& field_value) const;
};

struct OrderBy {
  model::FieldPath field;
  bool descending = false;

  bool operator==(const OrderBy& other) const {
    return field == other.field && descending == other.descending;
  }
};

// A pagination/resumption cursor: a position in the query's order, given by
// the normalized order-by values plus the document name. Built from a
// previously returned document (paper §IV-C: "Firestore APIs support
// returning partial results for a query as well as resuming a
// partially-executed query").
struct Cursor {
  std::vector<model::Value> order_values;  // one per NormalizedOrderBy entry
  model::ResourcePath name;
  bool inclusive = false;  // true = start at, false = start after
};

class Query {
 public:
  Query() = default;
  Query(model::ResourcePath parent, std::string collection_id)
      : parent_(std::move(parent)),
        collection_id_(std::move(collection_id)) {}

  // -- Builder-style setters --
  Query& Where(model::FieldPath field, Operator op, model::Value value);
  Query& OrderByField(model::FieldPath field, bool descending = false);
  Query& Limit(int64_t limit);
  Query& Offset(int64_t offset);
  Query& Project(std::vector<model::FieldPath> fields);

  // Pagination: resume the query after (or at) a document previously
  // returned by this query. The document supplies the cursor's order
  // values; it must contain every normalized order-by field.
  Query& StartAfterDoc(const model::Document& doc);
  Query& StartAtDoc(const model::Document& doc);

  // -- Accessors --
  const model::ResourcePath& parent() const { return parent_; }
  const std::string& collection_id() const { return collection_id_; }
  const std::vector<FieldFilter>& filters() const { return filters_; }
  const std::vector<OrderBy>& order_by() const { return order_by_; }
  int64_t limit() const { return limit_; }
  int64_t offset() const { return offset_; }
  const std::vector<model::FieldPath>& projection() const {
    return projection_;
  }
  const std::optional<Cursor>& start_cursor() const { return start_cursor_; }

  // The collection this query ranges over (parent + collection id).
  model::ResourcePath CollectionPath() const;

  // Enforces the restrictions of §III-C. Must pass before planning.
  Status Validate() const;

  // The effective sort: if an inequality exists and no explicit order names
  // its field, it is ordered first (ascending); document name is always the
  // final implicit tiebreak and is NOT included here.
  std::vector<OrderBy> NormalizedOrderBy() const;

  // Predicate check: does `doc` belong to this query's results? Checks
  // collection membership, every filter, and presence of ordered fields
  // (documents missing an order-by field are excluded, as they have no index
  // entry).
  bool Matches(const model::Document& doc) const;

  // Comparison of two matching documents under NormalizedOrderBy + name.
  int Compare(const model::Document& a, const model::Document& b) const;

  // Stable identity for real-time query registration and dedup.
  std::string CanonicalString() const;

 private:
  model::ResourcePath parent_;  // empty for root-level collections
  std::string collection_id_;
  std::vector<FieldFilter> filters_;
  std::vector<OrderBy> order_by_;
  int64_t limit_ = 0;   // 0 = unlimited
  int64_t offset_ = 0;
  std::vector<model::FieldPath> projection_;
  std::optional<Cursor> start_cursor_;
};

}  // namespace firestore::query

#endif  // FIRESTORE_QUERY_QUERY_H_
