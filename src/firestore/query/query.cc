#include "firestore/query/query.h"

#include <sstream>

namespace firestore::query {

using model::Document;
using model::FieldPath;
using model::ResourcePath;
using model::Value;
using model::ValueType;

std::string_view OperatorToString(Operator op) {
  switch (op) {
    case Operator::kEqual:
      return "==";
    case Operator::kLessThan:
      return "<";
    case Operator::kLessThanOrEqual:
      return "<=";
    case Operator::kGreaterThan:
      return ">";
    case Operator::kGreaterThanOrEqual:
      return ">=";
    case Operator::kArrayContains:
      return "array-contains";
  }
  return "?";
}

bool FieldFilter::Matches(const Value& field_value) const {
  switch (op) {
    case Operator::kEqual:
      return field_value.Compare(value) == 0;
    case Operator::kArrayContains: {
      if (field_value.type() != ValueType::kArray) return false;
      for (const Value& element : field_value.array_value()) {
        if (element.Compare(value) == 0) return true;
      }
      return false;
    }
    default:
      break;
  }
  // Inequalities only compare within the same type class.
  if (field_value.type() != value.type()) return false;
  int c = field_value.Compare(value);
  switch (op) {
    case Operator::kLessThan:
      return c < 0;
    case Operator::kLessThanOrEqual:
      return c <= 0;
    case Operator::kGreaterThan:
      return c > 0;
    case Operator::kGreaterThanOrEqual:
      return c >= 0;
    default:
      return false;
  }
}

Query& Query::Where(FieldPath field, Operator op, Value value) {
  filters_.push_back({std::move(field), op, std::move(value)});
  return *this;
}

Query& Query::OrderByField(FieldPath field, bool descending) {
  order_by_.push_back({std::move(field), descending});
  return *this;
}

Query& Query::Limit(int64_t limit) {
  limit_ = limit;
  return *this;
}

Query& Query::Offset(int64_t offset) {
  offset_ = offset;
  return *this;
}

Query& Query::Project(std::vector<FieldPath> fields) {
  projection_ = std::move(fields);
  return *this;
}

namespace {

Cursor CursorFromDoc(const Query& q, const Document& doc, bool inclusive) {
  Cursor cursor;
  for (const OrderBy& o : q.NormalizedOrderBy()) {
    std::optional<Value> v = doc.GetField(o.field);
    // Validate() rejects cursors with missing values (null marker).
    cursor.order_values.push_back(v.has_value() ? *v : Value::Null());
  }
  cursor.name = doc.name();
  cursor.inclusive = inclusive;
  return cursor;
}

}  // namespace

Query& Query::StartAfterDoc(const Document& doc) {
  start_cursor_ = CursorFromDoc(*this, doc, /*inclusive=*/false);
  return *this;
}

Query& Query::StartAtDoc(const Document& doc) {
  start_cursor_ = CursorFromDoc(*this, doc, /*inclusive=*/true);
  return *this;
}

ResourcePath Query::CollectionPath() const {
  return parent_.Child(collection_id_);
}

Status Query::Validate() const {
  if (collection_id_.empty()) {
    return InvalidArgumentError("query needs a collection id");
  }
  if (!parent_.empty() && !parent_.IsDocumentPath()) {
    return InvalidArgumentError("query parent must be a document path");
  }
  if (limit_ < 0 || offset_ < 0) {
    return InvalidArgumentError("limit/offset must be non-negative");
  }
  // At most one inequality field.
  const FieldPath* inequality_field = nullptr;
  for (const FieldFilter& f : filters_) {
    if (!f.IsInequality()) continue;
    if (inequality_field != nullptr && !(*inequality_field == f.field)) {
      return InvalidArgumentError(
          "queries support at most one inequality field ('" +
          inequality_field->CanonicalString() + "' and '" +
          f.field.CanonicalString() + "')");
    }
    inequality_field = &f.field;
  }
  // The inequality field must match the first sort order.
  if (inequality_field != nullptr && !order_by_.empty() &&
      !(order_by_[0].field == *inequality_field)) {
    return InvalidArgumentError(
        "the first order-by field must match the inequality field '" +
        inequality_field->CanonicalString() + "'");
  }
  // No duplicate order-by fields.
  for (size_t i = 0; i < order_by_.size(); ++i) {
    for (size_t j = i + 1; j < order_by_.size(); ++j) {
      if (order_by_[i].field == order_by_[j].field) {
        return InvalidArgumentError("duplicate order-by field '" +
                                    order_by_[i].field.CanonicalString() +
                                    "'");
      }
    }
  }
  // Cursor must carry exactly one value per normalized order component
  // (StartAfterDoc/StartAtDoc must be applied after filters and orders).
  if (start_cursor_.has_value()) {
    if (start_cursor_->order_values.size() != NormalizedOrderBy().size()) {
      return InvalidArgumentError(
          "cursor does not match the query's order-by (set the cursor after "
          "filters and orders)");
    }
    if (!start_cursor_->name.IsDocumentPath()) {
      return InvalidArgumentError("cursor requires a document name");
    }
  }
  return Status::Ok();
}

std::vector<OrderBy> Query::NormalizedOrderBy() const {
  std::vector<OrderBy> result = order_by_;
  for (const FieldFilter& f : filters_) {
    if (f.IsInequality()) {
      if (result.empty()) {
        result.push_back({f.field, false});
      }
      break;  // Validate() guarantees first order matches otherwise
    }
  }
  return result;
}

bool Query::Matches(const Document& doc) const {
  // Collection membership: the document's parent must be this collection.
  if (!(doc.name().Parent() == CollectionPath())) return false;
  for (const FieldFilter& f : filters_) {
    std::optional<Value> v = doc.GetField(f.field);
    if (!v.has_value() || !f.Matches(*v)) return false;
  }
  for (const OrderBy& o : NormalizedOrderBy()) {
    if (!doc.GetField(o.field).has_value()) return false;
  }
  return true;
}

int Query::Compare(const Document& a, const Document& b) const {
  for (const OrderBy& o : NormalizedOrderBy()) {
    std::optional<Value> va = a.GetField(o.field);
    std::optional<Value> vb = b.GetField(o.field);
    // Matches() guarantees presence; be defensive anyway.
    if (!va.has_value() || !vb.has_value()) {
      if (va.has_value() != vb.has_value()) return va.has_value() ? 1 : -1;
      continue;
    }
    int c = va->Compare(*vb);
    if (c != 0) return o.descending ? -c : c;
  }
  return a.name().Compare(b.name());
}

std::string Query::CanonicalString() const {
  std::ostringstream os;
  os << "select ";
  if (projection_.empty()) {
    os << "*";
  } else {
    for (size_t i = 0; i < projection_.size(); ++i) {
      if (i > 0) os << ", ";
      os << projection_[i].CanonicalString();
    }
  }
  os << " from " << CollectionPath().CanonicalString();
  for (size_t i = 0; i < filters_.size(); ++i) {
    os << (i == 0 ? " where " : " and ") << filters_[i].field.CanonicalString()
       << " " << OperatorToString(filters_[i].op) << " "
       << filters_[i].value.ToString();
  }
  if (!order_by_.empty()) {
    os << " order by ";
    for (size_t i = 0; i < order_by_.size(); ++i) {
      if (i > 0) os << ", ";
      os << order_by_[i].field.CanonicalString()
         << (order_by_[i].descending ? " desc" : " asc");
    }
  }
  if (limit_ > 0) os << " limit " << limit_;
  if (offset_ > 0) os << " offset " << offset_;
  return os.str();
}

}  // namespace firestore::query
