// Query planner: greedy index-set selection (paper §IV-D3).
//
// "Selecting the ideal set of indexes to join for a query is intractable, so
// Firestore's query engine uses a greedy index-set selection algorithm that
// optimizes for the number of selected indexes. If no such set exists,
// Firestore returns an error message that includes a link for adding the
// required index."

#ifndef FIRESTORE_QUERY_PLANNER_H_
#define FIRESTORE_QUERY_PLANNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "firestore/index/catalog.h"
#include "firestore/query/query.h"

namespace firestore::query {

// One index range scan participating in the plan.
struct IndexScan {
  index::IndexId index_id = 0;
  // Absolute IndexEntries key bounds: [start_key, limit_key).
  std::string start_key;
  std::string limit_key;
  // Byte length of this scan's fixed prefix (database + index id + encoded
  // equality values). The remainder of each row key — the scan's *suffix* —
  // is the shared (order values..., document name) tuple that zig-zag
  // joining merges on.
  size_t prefix_len = 0;
  // Fields of the suffix's value components, in order (parallel to the
  // plan's suffix_directions). Lets aggregations decode field values
  // directly from index keys without fetching documents.
  std::vector<model::FieldPath> suffix_fields;
  // Human-readable description for EXPLAIN-style output.
  std::string description;
};

struct QueryPlan {
  // Filter-less, order-less queries scan the Entities table directly by
  // collection prefix (documents are name-ordered there), instead of an
  // index.
  bool collection_scan = false;
  std::string entities_start;
  std::string entities_limit;

  // Otherwise: single element = plain index scan; multiple = zig-zag join,
  // merging on the common suffix.
  std::vector<IndexScan> scans;
  // Directions of the shared order-suffix components (true = descending),
  // used to parse the document name off each suffix.
  std::vector<bool> suffix_directions;

  std::string DebugString() const;
};

// Plans `query` against the active indexes of its collection. May lazily
// materialize automatic index definitions. Fails with FAILED_PRECONDITION
// (message mirrors Firestore's "add the required index" error) when no index
// set can serve the query.
StatusOr<QueryPlan> PlanQuery(index::IndexCatalog& catalog,
                              std::string_view database_id,
                              const Query& query);

}  // namespace firestore::query

#endif  // FIRESTORE_QUERY_PLANNER_H_
