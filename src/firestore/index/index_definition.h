// Index definitions: automatic single-field indexes, array-contains
// indexes, and user-defined composite indexes (paper §III-B).

#ifndef FIRESTORE_INDEX_INDEX_DEFINITION_H_
#define FIRESTORE_INDEX_INDEX_DEFINITION_H_

#include <string>
#include <vector>

#include "firestore/index/layout.h"
#include "firestore/model/path.h"

namespace firestore::index {

// How a field participates in an index.
enum class SegmentKind {
  kAscending,
  kDescending,
  // One entry per array element; supports ARRAY_CONTAINS. Only valid as the
  // sole segment of an automatic index.
  kArrayContains,
};

struct IndexSegment {
  model::FieldPath field;
  SegmentKind kind = SegmentKind::kAscending;

  bool operator==(const IndexSegment& other) const {
    return field == other.field && kind == other.kind;
  }
};

enum class IndexState {
  kBackfilling,  // being built; not yet usable by queries
  kActive,       // serving queries; maintained by every write
  kRemoving,     // being deleted; still maintained, not usable
};

// Indexes apply to all collections with a given collection id (the last
// collection segment of the document name) across the database, matching
// Firestore's collection-group indexing.
struct IndexDefinition {
  IndexId index_id = 0;
  std::string collection_id;
  std::vector<IndexSegment> segments;
  IndexState state = IndexState::kActive;
  bool automatic = false;

  // Directions of the value components, for suffix parsing.
  std::vector<bool> ValueDirections() const {
    std::vector<bool> dirs;
    dirs.reserve(segments.size());
    for (const IndexSegment& s : segments) {
      dirs.push_back(s.kind == SegmentKind::kDescending);
    }
    return dirs;
  }

  std::string DebugString() const;
};

}  // namespace firestore::index

#endif  // FIRESTORE_INDEX_INDEX_DEFINITION_H_
