#include "firestore/index/catalog.h"

#include <sstream>

namespace firestore::index {

std::string IndexDefinition::DebugString() const {
  std::ostringstream os;
  os << "index#" << index_id << " on " << collection_id << " (";
  for (size_t i = 0; i < segments.size(); ++i) {
    if (i > 0) os << ", ";
    os << segments[i].field.CanonicalString();
    switch (segments[i].kind) {
      case SegmentKind::kAscending:
        os << " asc";
        break;
      case SegmentKind::kDescending:
        os << " desc";
        break;
      case SegmentKind::kArrayContains:
        os << " array-contains";
        break;
    }
  }
  os << ")";
  return os.str();
}

void IndexCatalog::AddExemption(const std::string& collection_id,
                                const model::FieldPath& field) {
  MutexLock lock(&mu_);
  exemptions_.emplace(collection_id, field.CanonicalString());
}

bool IndexCatalog::IsExempted(const std::string& collection_id,
                              const model::FieldPath& field) const {
  MutexLock lock(&mu_);
  return exemptions_.count({collection_id, field.CanonicalString()}) != 0;
}

IndexId IndexCatalog::NextIdLocked() { return next_id_++; }

std::optional<IndexDefinition> IndexCatalog::AutoIndex(
    const std::string& collection_id, const model::FieldPath& field,
    SegmentKind kind) {
  MutexLock lock(&mu_);
  if (exemptions_.count({collection_id, field.CanonicalString()}) != 0) {
    return std::nullopt;
  }
  auto key = std::make_tuple(collection_id, field.CanonicalString(), kind);
  auto it = auto_ids_.find(key);
  if (it != auto_ids_.end()) return indexes_.at(it->second);
  IndexDefinition def;
  def.index_id = NextIdLocked();
  def.collection_id = collection_id;
  def.segments = {IndexSegment{field, kind}};
  def.state = IndexState::kActive;  // auto indexes are active from birth
  def.automatic = true;
  auto_ids_.emplace(key, def.index_id);
  indexes_.emplace(def.index_id, def);
  return def;
}

StatusOr<IndexId> IndexCatalog::AddCompositeIndex(
    const std::string& collection_id, std::vector<IndexSegment> segments,
    IndexState initial_state) {
  if (segments.empty()) {
    return InvalidArgumentError("composite index needs at least one field");
  }
  for (const IndexSegment& s : segments) {
    if (s.kind == SegmentKind::kArrayContains && segments.size() > 1) {
      // Mirrors Firestore: at most one array-contains segment, and we keep
      // it to automatic single-field indexes only.
      return InvalidArgumentError(
          "array-contains is only supported in single-field indexes");
    }
  }
  MutexLock lock(&mu_);
  // Reject exact duplicates.
  for (const auto& [id, def] : indexes_) {
    if (def.collection_id == collection_id && def.segments == segments &&
        def.state != IndexState::kRemoving) {
      return AlreadyExistsError("identical index already exists: " +
                                def.DebugString());
    }
  }
  IndexDefinition def;
  def.index_id = NextIdLocked();
  def.collection_id = collection_id;
  def.segments = std::move(segments);
  def.state = initial_state;
  def.automatic = false;
  IndexId id = def.index_id;
  indexes_.emplace(id, std::move(def));
  return id;
}

Status IndexCatalog::SetIndexState(IndexId index_id, IndexState state) {
  MutexLock lock(&mu_);
  auto it = indexes_.find(index_id);
  if (it == indexes_.end()) return NotFoundError("no such index");
  it->second.state = state;
  return Status::Ok();
}

Status IndexCatalog::RemoveIndex(IndexId index_id) {
  MutexLock lock(&mu_);
  auto it = indexes_.find(index_id);
  if (it == indexes_.end()) return NotFoundError("no such index");
  // Drop any auto-id mapping pointing at it.
  for (auto ait = auto_ids_.begin(); ait != auto_ids_.end(); ++ait) {
    if (ait->second == index_id) {
      auto_ids_.erase(ait);
      break;
    }
  }
  indexes_.erase(it);
  return Status::Ok();
}

std::optional<IndexDefinition> IndexCatalog::GetIndex(IndexId index_id) const {
  MutexLock lock(&mu_);
  auto it = indexes_.find(index_id);
  if (it == indexes_.end()) return std::nullopt;
  return it->second;
}

std::vector<IndexDefinition> IndexCatalog::ActiveIndexes(
    const std::string& collection_id) const {
  MutexLock lock(&mu_);
  std::vector<IndexDefinition> result;
  for (const auto& [id, def] : indexes_) {
    if (def.collection_id != collection_id ||
        def.state != IndexState::kActive) {
      continue;
    }
    // An automatic index on a newly-exempted field stops serving queries
    // immediately, even before its entries are backremoved.
    if (def.automatic &&
        exemptions_.count({collection_id,
                           def.segments[0].field.CanonicalString()}) != 0) {
      continue;
    }
    result.push_back(def);
  }
  return result;
}

std::vector<IndexDefinition> IndexCatalog::MaintainedIndexes(
    const std::string& collection_id) const {
  MutexLock lock(&mu_);
  std::vector<IndexDefinition> result;
  for (const auto& [id, def] : indexes_) {
    if (def.collection_id == collection_id) result.push_back(def);
  }
  return result;
}

std::vector<IndexId> IndexCatalog::ExistingAutoIndexIds(
    const std::string& collection_id, const model::FieldPath& field) const {
  MutexLock lock(&mu_);
  std::vector<IndexId> ids;
  for (SegmentKind kind : {SegmentKind::kAscending, SegmentKind::kDescending,
                           SegmentKind::kArrayContains}) {
    auto it = auto_ids_.find(
        std::make_tuple(collection_id, field.CanonicalString(), kind));
    if (it != auto_ids_.end()) ids.push_back(it->second);
  }
  return ids;
}

std::vector<IndexDefinition> IndexCatalog::AllIndexes() const {
  MutexLock lock(&mu_);
  std::vector<IndexDefinition> result;
  for (const auto& [id, def] : indexes_) result.push_back(def);
  return result;
}

}  // namespace firestore::index
