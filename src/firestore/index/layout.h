// The multi-tenant Spanner key layout (paper §IV-D1).
//
// All Firestore databases in a region share two fixed-schema Spanner tables:
//
//   Entities     key = <database-id> <document-name>            value = doc
//   IndexEntries key = <database-id> <index-id> <values> <name> value = ""
//
// Each component is order-preserving and prefix-free, so every tenant
// database occupies one contiguous key range (its Spanner *directory*), each
// logical index occupies one contiguous range inside it, and a linear scan
// of IndexEntries rows is a linear scan of the logical index.

#ifndef FIRESTORE_INDEX_LAYOUT_H_
#define FIRESTORE_INDEX_LAYOUT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "firestore/model/path.h"

namespace firestore::index {

inline constexpr char kEntitiesTable[] = "Entities";
inline constexpr char kIndexEntriesTable[] = "IndexEntries";

using IndexId = int64_t;

// Key of a document's Entities row.
std::string EntityKey(std::string_view database_id,
                      const model::ResourcePath& name);

// Key prefix covering every Entities row of one database.
std::string EntityKeyPrefixForDatabase(std::string_view database_id);

// Key prefix covering the Entities rows of all documents that are direct
// children of `collection` (e.g. all of /restaurants/*). Because children
// extend the parent's encoding, this is the collection path's encoding.
std::string EntityKeyPrefixForCollection(std::string_view database_id,
                                         const model::ResourcePath& collection);

// Key of one index entry: database, index, encoded values, document name.
// `encoded_values` must already be the direction-aware encoding of the
// index's value tuple.
std::string IndexEntryKey(std::string_view database_id, IndexId index_id,
                          std::string_view encoded_values,
                          const model::ResourcePath& name);

// Key prefix covering every entry of one index.
std::string IndexKeyPrefix(std::string_view database_id, IndexId index_id);

// Splits an IndexEntries key back into (database ignored by caller) the
// suffix after the given prefix: the encoded values + name portion. Returns
// false if `key` does not start with `prefix`.
bool IndexEntrySuffix(std::string_view key, std::string_view prefix,
                      std::string_view* suffix);

// Extracts the document name (the trailing component) from an index entry
// key, given how many value components precede it and their directions.
// Returns false on malformed input.
bool ParseIndexEntryName(std::string_view values_and_name,
                         const std::vector<bool>& value_descending,
                         model::ResourcePath* name);

}  // namespace firestore::index

#endif  // FIRESTORE_INDEX_LAYOUT_H_
