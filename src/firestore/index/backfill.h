// Background index backfill / backremoval service (paper §IV-D1): "a
// background service that receives index change requests, scans the Entities
// table for all affected documents, makes the required IndexEntries row
// additions or removals in Spanner, and finally marks the index change as
// complete."
//
// Concurrent writes stay conformant because the write path maintains entries
// for every index in a maintained state (kBackfilling / kRemoving included).

#ifndef FIRESTORE_INDEX_BACKFILL_H_
#define FIRESTORE_INDEX_BACKFILL_H_

#include <string_view>

#include "common/status.h"
#include "firestore/index/catalog.h"
#include "spanner/database.h"

namespace firestore::index {

class IndexBackfillService {
 public:
  explicit IndexBackfillService(spanner::Database* spanner)
      : spanner_(spanner) {}

  // Creates a composite index end-to-end: registers it as kBackfilling,
  // scans the database's Entities rows in batches, writes the IndexEntries
  // rows transactionally, then activates the index. Returns the new id.
  StatusOr<IndexId> CreateIndex(IndexCatalog& catalog,
                                std::string_view database_id,
                                const std::string& collection_id,
                                std::vector<IndexSegment> segments,
                                int batch_size = 128);

  // Deletes an index end-to-end: marks it kRemoving (writes keep it
  // conformant), removes its entries in batches, drops the definition.
  Status DropIndex(IndexCatalog& catalog, std::string_view database_id,
                   IndexId index_id, int batch_size = 128);

  // Removes existing automatic-index entries after a field exemption is
  // added (queries already stopped using the index).
  Status RemoveExemptedFieldEntries(IndexCatalog& catalog,
                                    std::string_view database_id,
                                    const std::string& collection_id,
                                    const model::FieldPath& field,
                                    int batch_size = 128);

 private:
  // Scans Entities for `database_id` and writes each document's entries for
  // `index`, batch_size documents per transaction.
  Status BackfillEntries(const IndexDefinition& index,
                         std::string_view database_id, int batch_size);

  // Deletes every IndexEntries row of `index_id`, batch_size per txn.
  Status RemoveEntries(std::string_view database_id, IndexId index_id,
                       int batch_size);

  spanner::Database* spanner_;
};

}  // namespace firestore::index

#endif  // FIRESTORE_INDEX_BACKFILL_H_
