#include "firestore/index/extractor.h"

#include <algorithm>

#include "firestore/codec/value_codec.h"

namespace firestore::index {

using model::Document;
using model::FieldPath;
using model::Map;
using model::Value;
using model::ValueType;

namespace {

void FlattenInto(const std::vector<std::string>& prefix, const Value& value,
                 std::vector<IndexableLeaf>& out) {
  out.push_back({FieldPath(prefix), value});
  if (value.type() == ValueType::kMap) {
    for (const auto& [k, v] : value.map_value()) {
      std::vector<std::string> child = prefix;
      child.push_back(k);
      FlattenInto(child, v, out);
    }
  }
  // Array elements are not flattened into leaves: they are indexed by the
  // dedicated array-contains extraction below.
}

std::string CollectionIdOf(const Document& doc) {
  return doc.name().Parent().last_segment();
}

void AppendSegmentValue(std::string& dst, SegmentKind kind,
                        const Value& value) {
  if (kind == SegmentKind::kDescending) {
    codec::AppendValueDesc(dst, value);
  } else {
    codec::AppendValueAsc(dst, value);
  }
}

}  // namespace

std::vector<IndexableLeaf> FlattenDocument(const Document& doc) {
  std::vector<IndexableLeaf> leaves;
  for (const auto& [k, v] : doc.fields()) {
    FlattenInto({k}, v, leaves);
  }
  return leaves;
}

std::vector<std::string> ComputeIndexEntries(IndexCatalog& catalog,
                                             std::string_view database_id,
                                             const Document& doc) {
  std::vector<std::string> keys;
  const std::string collection_id = CollectionIdOf(doc);
  const std::vector<IndexableLeaf> leaves = FlattenDocument(doc);

  // Automatic single-field indexes: ascending + descending per leaf, plus
  // array-contains per element of array leaves.
  for (const IndexableLeaf& leaf : leaves) {
    for (SegmentKind kind : {SegmentKind::kAscending,
                             SegmentKind::kDescending}) {
      std::optional<IndexDefinition> def =
          catalog.AutoIndex(collection_id, leaf.field, kind);
      if (!def.has_value()) continue;  // exempted
      std::string values;
      AppendSegmentValue(values, kind, leaf.value);
      keys.push_back(
          IndexEntryKey(database_id, def->index_id, values, doc.name()));
    }
    if (leaf.value.type() == ValueType::kArray) {
      std::optional<IndexDefinition> def = catalog.AutoIndex(
          collection_id, leaf.field, SegmentKind::kArrayContains);
      if (def.has_value()) {
        for (const Value& element : leaf.value.array_value()) {
          std::string values;
          codec::AppendValueAsc(values, element);
          keys.push_back(IndexEntryKey(database_id, def->index_id, values,
                                       doc.name()));
        }
      }
    }
  }

  // Composite indexes in any maintained state (a mutating write "makes all
  // necessary updates to the IndexEntries table so that it conforms to an
  // on-going backfill or backremoval", paper §IV-D1).
  for (const IndexDefinition& def :
       catalog.MaintainedIndexes(collection_id)) {
    if (def.automatic) continue;  // handled above
    std::vector<std::string> entries =
        ComputeEntriesForIndex(def, database_id, doc);
    keys.insert(keys.end(), entries.begin(), entries.end());
  }

  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::vector<std::string> ComputeEntriesForIndex(const IndexDefinition& index,
                                                std::string_view database_id,
                                                const Document& doc) {
  if (CollectionIdOf(doc) != index.collection_id) return {};
  if (index.segments.size() == 1 &&
      index.segments[0].kind == SegmentKind::kArrayContains) {
    std::optional<Value> v = doc.GetField(index.segments[0].field);
    if (!v.has_value() || v->type() != ValueType::kArray) return {};
    std::vector<std::string> keys;
    for (const Value& element : v->array_value()) {
      std::string values;
      codec::AppendValueAsc(values, element);
      keys.push_back(
          IndexEntryKey(database_id, index.index_id, values, doc.name()));
    }
    return keys;
  }
  std::string values;
  for (const IndexSegment& segment : index.segments) {
    std::optional<Value> v = doc.GetField(segment.field);
    // A document missing any indexed field has no entry in that index.
    if (!v.has_value()) return {};
    AppendSegmentValue(values, segment.kind, *v);
  }
  return {IndexEntryKey(database_id, index.index_id, values, doc.name())};
}

}  // namespace firestore::index
