#include "firestore/index/layout.h"

#include "firestore/codec/ordered_code.h"
#include "firestore/codec/value_codec.h"

namespace firestore::index {

std::string EntityKey(std::string_view database_id,
                      const model::ResourcePath& name) {
  std::string key;
  codec::AppendBytes(key, database_id);
  codec::AppendResourcePath(key, name);
  return key;
}

std::string EntityKeyPrefixForDatabase(std::string_view database_id) {
  std::string key;
  codec::AppendBytes(key, database_id);
  return key;
}

std::string EntityKeyPrefixForCollection(
    std::string_view database_id, const model::ResourcePath& collection) {
  std::string key;
  codec::AppendBytes(key, database_id);
  codec::AppendResourcePath(key, collection);
  return key;
}

std::string IndexEntryKey(std::string_view database_id, IndexId index_id,
                          std::string_view encoded_values,
                          const model::ResourcePath& name) {
  std::string key;
  codec::AppendBytes(key, database_id);
  codec::AppendInt64(key, index_id);
  key.append(encoded_values);
  codec::AppendResourcePath(key, name);
  return key;
}

std::string IndexKeyPrefix(std::string_view database_id, IndexId index_id) {
  std::string key;
  codec::AppendBytes(key, database_id);
  codec::AppendInt64(key, index_id);
  return key;
}

bool IndexEntrySuffix(std::string_view key, std::string_view prefix,
                      std::string_view* suffix) {
  if (key.size() < prefix.size() ||
      key.substr(0, prefix.size()) != prefix) {
    return false;
  }
  *suffix = key.substr(prefix.size());
  return true;
}

bool ParseIndexEntryName(std::string_view values_and_name,
                         const std::vector<bool>& value_descending,
                         model::ResourcePath* name) {
  std::string_view rest = values_and_name;
  for (bool descending : value_descending) {
    model::Value ignored;
    bool ok = descending ? codec::ParseValueDesc(&rest, &ignored)
                         : codec::ParseValueAsc(&rest, &ignored);
    if (!ok) return false;
  }
  return codec::ParseResourcePath(&rest, name);
}

}  // namespace firestore::index
