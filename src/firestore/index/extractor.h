// Computes the IndexEntries rows implied by a document under the current
// index catalog (paper §IV-D2 step 4: "Use the (cached) index definitions to
// compute the index entry changes for the two documents").

#ifndef FIRESTORE_INDEX_EXTRACTOR_H_
#define FIRESTORE_INDEX_EXTRACTOR_H_

#include <string>
#include <vector>

#include "firestore/index/catalog.h"
#include "firestore/model/document.h"

namespace firestore::index {

// One flattened indexable field of a document.
struct IndexableLeaf {
  model::FieldPath field;
  model::Value value;
};

// Flattens a document into indexable leaves: nested maps become dotted field
// paths ("Firestore indexing flattens out fields such as arrays or maps to
// index each element", paper §V-B2). Map-valued and array-valued fields also
// appear themselves (whole-value ordering/equality).
std::vector<IndexableLeaf> FlattenDocument(const model::Document& doc);

// The full set of IndexEntries row keys for `doc`: automatic asc+desc per
// leaf, array-contains per array element, plus every maintained composite
// index whose fields the document has. May allocate automatic index ids in
// the catalog. The result is sorted and deduplicated.
std::vector<std::string> ComputeIndexEntries(IndexCatalog& catalog,
                                             std::string_view database_id,
                                             const model::Document& doc);

// Entries of `doc` for one specific index (used by backfill). Empty if the
// document does not participate (wrong collection or missing fields).
std::vector<std::string> ComputeEntriesForIndex(
    const IndexDefinition& index, std::string_view database_id,
    const model::Document& doc);

}  // namespace firestore::index

#endif  // FIRESTORE_INDEX_EXTRACTOR_H_
