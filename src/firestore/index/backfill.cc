#include "firestore/index/backfill.h"

#include "common/bytes.h"
#include "common/logging.h"
#include "firestore/codec/document_codec.h"
#include "firestore/index/extractor.h"
#include "firestore/index/layout.h"

namespace firestore::index {

StatusOr<IndexId> IndexBackfillService::CreateIndex(
    IndexCatalog& catalog, std::string_view database_id,
    const std::string& collection_id, std::vector<IndexSegment> segments,
    int batch_size) {
  ASSIGN_OR_RETURN(IndexId id,
                   catalog.AddCompositeIndex(collection_id,
                                             std::move(segments),
                                             IndexState::kBackfilling));
  std::optional<IndexDefinition> def = catalog.GetIndex(id);
  FS_CHECK(def.has_value());
  Status backfill = BackfillEntries(*def, database_id, batch_size);
  if (!backfill.ok()) {
    // Roll the definition back so writes stop maintaining it.
    (void)catalog.RemoveIndex(id);
    return backfill;
  }
  RETURN_IF_ERROR(catalog.SetIndexState(id, IndexState::kActive));
  return id;
}

Status IndexBackfillService::DropIndex(IndexCatalog& catalog,
                                       std::string_view database_id,
                                       IndexId index_id, int batch_size) {
  std::optional<IndexDefinition> def = catalog.GetIndex(index_id);
  if (!def.has_value()) return NotFoundError("no such index");
  RETURN_IF_ERROR(catalog.SetIndexState(index_id, IndexState::kRemoving));
  RETURN_IF_ERROR(RemoveEntries(database_id, index_id, batch_size));
  return catalog.RemoveIndex(index_id);
}

Status IndexBackfillService::RemoveExemptedFieldEntries(
    IndexCatalog& catalog, std::string_view database_id,
    const std::string& collection_id, const model::FieldPath& field,
    int batch_size) {
  if (!catalog.IsExempted(collection_id, field)) {
    return FailedPreconditionError("field is not exempted");
  }
  for (IndexId id : catalog.ExistingAutoIndexIds(collection_id, field)) {
    RETURN_IF_ERROR(RemoveEntries(database_id, id, batch_size));
    RETURN_IF_ERROR(catalog.RemoveIndex(id));
  }
  return Status::Ok();
}

Status IndexBackfillService::BackfillEntries(const IndexDefinition& index,
                                             std::string_view database_id,
                                             int batch_size) {
  std::string start = EntityKeyPrefixForDatabase(database_id);
  const std::string limit = PrefixSuccessor(start);
  while (true) {
    // Each batch runs in its own read-write transaction so that concurrent
    // document writes conflict (and serialize) with the backfill per-row.
    auto txn = spanner_->BeginTransaction();
    ASSIGN_OR_RETURN(std::vector<spanner::ScanRow> rows,
                     txn->Scan(kEntitiesTable, start, limit, batch_size));
    if (rows.empty()) {
      txn->Abort();
      return Status::Ok();
    }
    for (const spanner::ScanRow& row : rows) {
      ASSIGN_OR_RETURN(model::Document doc,
                       codec::ParseDocument(row.value));
      for (const std::string& key :
           ComputeEntriesForIndex(index, database_id, doc)) {
        txn->Put(kIndexEntriesTable, key, "");
      }
    }
    auto commit = txn->Commit();
    if (!commit.ok()) return commit.status();
    start = KeySuccessor(rows.back().key);
  }
}

Status IndexBackfillService::RemoveEntries(std::string_view database_id,
                                           IndexId index_id, int batch_size) {
  std::string start = IndexKeyPrefix(database_id, index_id);
  const std::string limit = PrefixSuccessor(start);
  while (true) {
    auto txn = spanner_->BeginTransaction();
    ASSIGN_OR_RETURN(std::vector<spanner::ScanRow> rows,
                     txn->Scan(kIndexEntriesTable, start, limit, batch_size));
    if (rows.empty()) {
      txn->Abort();
      return Status::Ok();
    }
    for (const spanner::ScanRow& row : rows) {
      txn->Delete(kIndexEntriesTable, row.key);
    }
    auto commit = txn->Commit();
    if (!commit.ok()) return commit.status();
    start = KeySuccessor(rows.back().key);
  }
}

}  // namespace firestore::index
