// Per-database index catalog.
//
// Firestore "automatically defines an ascending and descending index on each
// field across all documents" plus an array-contains index, and lets the
// customer exempt fields from automatic indexing and define composite
// indexes (paper §III-B). Automatic definitions are materialized lazily: the
// first write or query touching a (collection, field, kind) combination
// allocates its stable index id.

#ifndef FIRESTORE_INDEX_CATALOG_H_
#define FIRESTORE_INDEX_CATALOG_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "firestore/index/index_definition.h"

namespace firestore::index {

class IndexCatalog {
 public:
  IndexCatalog() = default;

  IndexCatalog(const IndexCatalog&) = delete;
  IndexCatalog& operator=(const IndexCatalog&) = delete;

  // -- Automatic indexing --

  // Excludes a field from automatic indexing (queries needing it then fail,
  // and writes stop producing its entries). Existing entries are removed by
  // the backfill service (paper §IV-D1), which calls this after scheduling.
  void AddExemption(const std::string& collection_id,
                    const model::FieldPath& field);
  bool IsExempted(const std::string& collection_id,
                  const model::FieldPath& field) const;

  // The automatic index for (collection, field, kind); creates its
  // definition on first use. Exempted fields return nullopt.
  std::optional<IndexDefinition> AutoIndex(const std::string& collection_id,
                                           const model::FieldPath& field,
                                           SegmentKind kind);

  // -- Composite (user-defined) indexes --

  // Registers a composite index in the given initial state; returns its id.
  // The index becomes queryable once SetIndexState(kActive) is called (the
  // backfill service does this when the backfill completes).
  StatusOr<IndexId> AddCompositeIndex(const std::string& collection_id,
                                      std::vector<IndexSegment> segments,
                                      IndexState initial_state);

  Status SetIndexState(IndexId index_id, IndexState state);
  Status RemoveIndex(IndexId index_id);

  // -- Lookup --

  std::optional<IndexDefinition> GetIndex(IndexId index_id) const;

  // Every ACTIVE index (automatic already materialized + composite) for a
  // collection id; the planner's candidate set.
  std::vector<IndexDefinition> ActiveIndexes(
      const std::string& collection_id) const;

  // Every index that writes must maintain (active, backfilling or removing).
  std::vector<IndexDefinition> MaintainedIndexes(
      const std::string& collection_id) const;

  // All definitions (for tests / admin).
  std::vector<IndexDefinition> AllIndexes() const;

  // Ids of the already-materialized automatic indexes of one field (asc,
  // desc, array-contains — whichever exist). Used when exempting a field.
  std::vector<IndexId> ExistingAutoIndexIds(
      const std::string& collection_id, const model::FieldPath& field) const;

 private:
  IndexId NextIdLocked() FS_REQUIRES(mu_);

  mutable Mutex mu_;
  IndexId next_id_ FS_GUARDED_BY(mu_) = 1;
  std::map<IndexId, IndexDefinition> indexes_ FS_GUARDED_BY(mu_);
  // (collection, field canonical, kind) -> id for automatic indexes.
  std::map<std::tuple<std::string, std::string, SegmentKind>, IndexId>
      auto_ids_ FS_GUARDED_BY(mu_);
  std::set<std::pair<std::string, std::string>> exemptions_
      FS_GUARDED_BY(mu_);
};

}  // namespace firestore::index

#endif  // FIRESTORE_INDEX_CATALOG_H_
