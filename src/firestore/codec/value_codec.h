// Order-preserving encoding of Firestore values and document names.
//
// Guarantee: for values a, b — Encode(a) compares bytewise exactly as
// Value::Compare(a, b). This is invariant (1) in DESIGN.md and is what makes
// IndexEntries range scans equivalent to logical index scans.
//
// Numbers are encoded *canonically*: Integer(3) and Double(3.0) produce the
// same bytes (they are equal under Firestore's cross-type ordering, and an
// equality scan for 3 must match both). Decoding a number yields Integer when
// the value is exactly an int64, else Double. The exact document contents
// (with int/double distinction) live in the Entities row, not the index key.

#ifndef FIRESTORE_CODEC_VALUE_CODEC_H_
#define FIRESTORE_CODEC_VALUE_CODEC_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "firestore/model/path.h"
#include "firestore/model/value.h"

namespace firestore::codec {

// Appends the ascending order-preserving encoding of `value`.
void AppendValueAsc(std::string& dst, const model::Value& value);

// Appends the descending encoding (ascending bytes, bit-inverted).
void AppendValueDesc(std::string& dst, const model::Value& value);

// Parses one ascending-encoded value from the front of *src.
bool ParseValueAsc(std::string_view* src, model::Value* out);

// Parses one descending-encoded value (un-inverts a copy, then parses).
bool ParseValueDesc(std::string_view* src, model::Value* out);

// Document names encode segment-by-segment so that the bytewise order equals
// ResourcePath::Compare order (a parent collection's documents sort within
// the parent's key range).
void AppendResourcePath(std::string& dst, const model::ResourcePath& path);
bool ParseResourcePath(std::string_view* src, model::ResourcePath* out);

// Convenience: full encodings as standalone strings.
std::string EncodeValueAsc(const model::Value& value);
std::string EncodeResourcePath(const model::ResourcePath& path);

}  // namespace firestore::codec

#endif  // FIRESTORE_CODEC_VALUE_CODEC_H_
