#include "firestore/codec/value_codec.h"

#include <cmath>
#include <limits>

#include "firestore/codec/ordered_code.h"

namespace firestore::codec {

using model::Array;
using model::Map;
using model::ResourcePath;
using model::Value;
using model::ValueType;

namespace {

// Type tags, assigned in Firestore's cross-type sort order. All tags are
// >= 0x05 so the container terminator (0x00) and entry marker (0x01) never
// collide with the start of a nested value.
constexpr char kTagNull = '\x05';
constexpr char kTagFalse = '\x0a';
constexpr char kTagTrue = '\x0b';
constexpr char kTagNumber = '\x10';
constexpr char kTagTimestamp = '\x15';
constexpr char kTagString = '\x1a';
constexpr char kTagBytes = '\x1f';
constexpr char kTagReference = '\x24';
constexpr char kTagArray = '\x29';
constexpr char kTagMap = '\x2e';

constexpr char kContainerEnd = '\x00';
constexpr char kEntryMarker = '\x01';

// Numbers are encoded as (ordered double, ordered int32 residual). The
// double is the value rounded to nearest; the residual recovers int64s that
// a double cannot represent exactly. Lexicographic (double, residual) order
// equals exact numeric order because int64->double conversion is monotonic
// and every non-integral double lies below 2^53 where the conversion is
// exact (see tests).
void AppendNumber(std::string& dst, const Value& v) {
  if (v.is_integer()) {
    int64_t i = v.integer_value();
    double d = static_cast<double>(i);
    auto residual = static_cast<int32_t>(static_cast<long double>(i) -
                                         static_cast<long double>(d));
    AppendDouble(dst, d);
    AppendInt32(dst, residual);
  } else {
    double d = v.double_value();
    if (d == 0.0) d = 0.0;  // canonicalize -0.0 to +0.0
    AppendDouble(dst, d);
    AppendInt32(dst, 0);
  }
}

bool ParseNumber(std::string_view* src, Value* out) {
  double d;
  int32_t residual;
  if (!ParseDouble(src, &d) || !ParseInt32(src, &residual)) return false;
  if (std::isnan(d)) {
    *out = Value::Double(d);
    return true;
  }
  if (residual != 0) {
    *out = Value::Integer(static_cast<int64_t>(static_cast<long double>(d) +
                                               residual));
    return true;
  }
  // Canonical decode: an exactly-representable integer decodes as Integer.
  constexpr double kInt64Min = -9223372036854775808.0;  // -2^63
  constexpr double kInt64Bound = 9223372036854775808.0;  // 2^63
  if (d >= kInt64Min && d < kInt64Bound && d == std::trunc(d)) {
    *out = Value::Integer(static_cast<int64_t>(d));
  } else {
    *out = Value::Double(d);
  }
  return true;
}

}  // namespace

void AppendValueAsc(std::string& dst, const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      dst.push_back(kTagNull);
      return;
    case ValueType::kBoolean:
      dst.push_back(value.boolean_value() ? kTagTrue : kTagFalse);
      return;
    case ValueType::kNumber:
      dst.push_back(kTagNumber);
      AppendNumber(dst, value);
      return;
    case ValueType::kTimestamp:
      dst.push_back(kTagTimestamp);
      AppendInt64(dst, value.timestamp_value());
      return;
    case ValueType::kString:
      dst.push_back(kTagString);
      AppendBytes(dst, value.string_value());
      return;
    case ValueType::kBytes:
      dst.push_back(kTagBytes);
      AppendBytes(dst, value.bytes_value());
      return;
    case ValueType::kReference:
      dst.push_back(kTagReference);
      AppendBytes(dst, value.reference_value());
      return;
    case ValueType::kArray:
      dst.push_back(kTagArray);
      for (const Value& v : value.array_value()) {
        AppendValueAsc(dst, v);
      }
      dst.push_back(kContainerEnd);
      return;
    case ValueType::kMap:
      dst.push_back(kTagMap);
      for (const auto& [k, v] : value.map_value()) {
        dst.push_back(kEntryMarker);
        AppendBytes(dst, k);
        AppendValueAsc(dst, v);
      }
      dst.push_back(kContainerEnd);
      return;
  }
}

void AppendValueDesc(std::string& dst, const Value& value) {
  size_t start = dst.size();
  AppendValueAsc(dst, value);
  InvertBytes(dst, start);
}

bool ParseValueAsc(std::string_view* src, Value* out) {
  if (src->empty()) return false;
  char tag = src->front();
  src->remove_prefix(1);
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return true;
    case kTagFalse:
      *out = Value::Boolean(false);
      return true;
    case kTagTrue:
      *out = Value::Boolean(true);
      return true;
    case kTagNumber:
      return ParseNumber(src, out);
    case kTagTimestamp: {
      int64_t t;
      if (!ParseInt64(src, &t)) return false;
      *out = Value::Timestamp(t);
      return true;
    }
    case kTagString: {
      std::string s;
      if (!ParseBytes(src, &s)) return false;
      *out = Value::String(std::move(s));
      return true;
    }
    case kTagBytes: {
      std::string s;
      if (!ParseBytes(src, &s)) return false;
      *out = Value::Bytes(std::move(s));
      return true;
    }
    case kTagReference: {
      std::string s;
      if (!ParseBytes(src, &s)) return false;
      *out = Value::Reference(std::move(s));
      return true;
    }
    case kTagArray: {
      Array elements;
      while (true) {
        if (src->empty()) return false;
        if (src->front() == kContainerEnd) {
          src->remove_prefix(1);
          break;
        }
        Value v;
        if (!ParseValueAsc(src, &v)) return false;
        elements.push_back(std::move(v));
      }
      *out = Value::FromArray(std::move(elements));
      return true;
    }
    case kTagMap: {
      Map entries;
      while (true) {
        if (src->empty()) return false;
        char c = src->front();
        src->remove_prefix(1);
        if (c == kContainerEnd) break;
        if (c != kEntryMarker) return false;
        std::string key;
        Value v;
        if (!ParseBytes(src, &key) || !ParseValueAsc(src, &v)) return false;
        entries.emplace(std::move(key), std::move(v));
      }
      *out = Value::FromMap(std::move(entries));
      return true;
    }
    default:
      return false;
  }
}

bool ParseValueDesc(std::string_view* src, Value* out) {
  // Invert a bounded copy, parse ascending, then consume the same length.
  std::string inverted(*src);
  InvertBytes(inverted, 0);
  std::string_view view = inverted;
  if (!ParseValueAsc(&view, out)) return false;
  src->remove_prefix(inverted.size() - view.size());
  return true;
}

void AppendResourcePath(std::string& dst, const ResourcePath& path) {
  for (const std::string& segment : path.segments()) {
    AppendBytes(dst, segment);
  }
}

bool ParseResourcePath(std::string_view* src, ResourcePath* out) {
  std::vector<std::string> segments;
  while (!src->empty()) {
    std::string segment;
    if (!ParseBytes(src, &segment)) return false;
    segments.push_back(std::move(segment));
  }
  if (segments.empty()) return false;
  *out = ResourcePath(std::move(segments));
  return true;
}

std::string EncodeValueAsc(const Value& value) {
  std::string result;
  AppendValueAsc(result, value);
  return result;
}

std::string EncodeResourcePath(const ResourcePath& path) {
  std::string result;
  AppendResourcePath(result, path);
  return result;
}

}  // namespace firestore::codec
