// Low-level order-preserving encoding primitives.
//
// These build the keys of the Spanner IndexEntries table (paper §IV-D1): the
// byte-string encoding of an n-tuple of values must compare bytewise in the
// tuple's logical order, so that "a linear scan of a range of IndexEntries
// rows corresponds to a linear scan of a range of the logical Firestore
// index".
//
// Every primitive produces a *prefix-free* encoding so components can be
// concatenated: no encoding is a strict prefix of a different value's
// encoding within the same component type.

#ifndef FIRESTORE_CODEC_ORDERED_CODE_H_
#define FIRESTORE_CODEC_ORDERED_CODE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace firestore::codec {

// -- Appending (ascending order) --

// Byte strings: 0x00 is escaped as {0x00, 0xff}; terminated by {0x00, 0x01}.
void AppendBytes(std::string& dst, std::string_view value);

// Fixed 8-byte big-endian with the sign bit flipped.
void AppendInt64(std::string& dst, int64_t value);

// IEEE-754 total-order transform: negative values are bit-inverted, positive
// values get the sign bit set. NaN is canonicalized to sort before every
// other double.
void AppendDouble(std::string& dst, double value);

// Fixed 4-byte big-endian, biased (for small signed residuals).
void AppendInt32(std::string& dst, int32_t value);

// -- Parsing --
// Each Parse* consumes its encoding from the front of *src and stores the
// value in *out; returns false on malformed input.

bool ParseBytes(std::string_view* src, std::string* out);
bool ParseInt64(std::string_view* src, int64_t* out);
bool ParseDouble(std::string_view* src, double* out);
bool ParseInt32(std::string_view* src, int32_t* out);

// -- Descending order --
// A component is encoded descending by appending its ascending encoding and
// then bit-inverting those bytes. Invert is its own inverse.
void InvertBytes(std::string& s, size_t from);

}  // namespace firestore::codec

#endif  // FIRESTORE_CODEC_ORDERED_CODE_H_
