// Exact binary serialization of documents, used as the value of a Spanner
// Entities row. The paper stores document contents "encoded in a protocol
// buffer stored in a single column" (§IV-D1); this is our equivalent compact
// tag/length format. Unlike the index-key encoding it is lossless (preserves
// the int64/double distinction, -0.0, NaN payload irrelevant) but not
// order-preserving.

#ifndef FIRESTORE_CODEC_DOCUMENT_CODEC_H_
#define FIRESTORE_CODEC_DOCUMENT_CODEC_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "firestore/model/document.h"

namespace firestore::codec {

std::string SerializeDocument(const model::Document& doc);
StatusOr<model::Document> ParseDocument(std::string_view data);

// Document timestamps derive from the MVCC row version (the Spanner
// commit-timestamp column equivalent): update_time is always the version
// that was read; a stored create_time of 0 means "this version is the
// insert". The write path persists a concrete create_time on every
// subsequent update, so the convention stays resolvable.
void ResolveDocumentTimestamps(model::Document& doc, int64_t row_version);

// Varint helpers are exposed for reuse by other row-value formats.
void AppendVarint(std::string& dst, uint64_t value);
bool ParseVarint(std::string_view* src, uint64_t* out);

}  // namespace firestore::codec

#endif  // FIRESTORE_CODEC_DOCUMENT_CODEC_H_
