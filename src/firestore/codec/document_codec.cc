#include "firestore/codec/document_codec.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace firestore::codec {

using model::Array;
using model::Document;
using model::Map;
using model::ResourcePath;
using model::Value;
using model::ValueType;

namespace {

enum WireType : uint8_t {
  kWireNull = 0,
  kWireFalse = 1,
  kWireTrue = 2,
  kWireInt64 = 3,
  kWireDouble = 4,
  kWireTimestamp = 5,
  kWireString = 6,
  kWireBytes = 7,
  kWireReference = 8,
  kWireArray = 9,
  kWireMap = 10,
};

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void AppendString(std::string& dst, std::string_view s) {
  AppendVarint(dst, s.size());
  dst.append(s);
}

bool ParseString(std::string_view* src, std::string* out) {
  uint64_t len;
  if (!ParseVarint(src, &len) || src->size() < len) return false;
  out->assign(src->substr(0, len));
  src->remove_prefix(len);
  return true;
}

void SerializeValue(std::string& dst, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      dst.push_back(kWireNull);
      return;
    case ValueType::kBoolean:
      dst.push_back(v.boolean_value() ? kWireTrue : kWireFalse);
      return;
    case ValueType::kNumber:
      if (v.is_integer()) {
        dst.push_back(kWireInt64);
        AppendVarint(dst, ZigZag(v.integer_value()));
      } else {
        dst.push_back(kWireDouble);
        uint64_t bits = std::bit_cast<uint64_t>(v.double_value());
        for (int i = 0; i < 8; ++i) {
          dst.push_back(static_cast<char>((bits >> (i * 8)) & 0xff));
        }
      }
      return;
    case ValueType::kTimestamp:
      dst.push_back(kWireTimestamp);
      AppendVarint(dst, ZigZag(v.timestamp_value()));
      return;
    case ValueType::kString:
      dst.push_back(kWireString);
      AppendString(dst, v.string_value());
      return;
    case ValueType::kBytes:
      dst.push_back(kWireBytes);
      AppendString(dst, v.bytes_value());
      return;
    case ValueType::kReference:
      dst.push_back(kWireReference);
      AppendString(dst, v.reference_value());
      return;
    case ValueType::kArray: {
      dst.push_back(kWireArray);
      AppendVarint(dst, v.array_value().size());
      for (const Value& e : v.array_value()) SerializeValue(dst, e);
      return;
    }
    case ValueType::kMap: {
      dst.push_back(kWireMap);
      AppendVarint(dst, v.map_value().size());
      for (const auto& [k, e] : v.map_value()) {
        AppendString(dst, k);
        SerializeValue(dst, e);
      }
      return;
    }
  }
}

bool ParseValue(std::string_view* src, Value* out) {
  if (src->empty()) return false;
  uint8_t wire = static_cast<uint8_t>(src->front());
  src->remove_prefix(1);
  switch (wire) {
    case kWireNull:
      *out = Value::Null();
      return true;
    case kWireFalse:
      *out = Value::Boolean(false);
      return true;
    case kWireTrue:
      *out = Value::Boolean(true);
      return true;
    case kWireInt64: {
      uint64_t z;
      if (!ParseVarint(src, &z)) return false;
      *out = Value::Integer(UnZigZag(z));
      return true;
    }
    case kWireDouble: {
      if (src->size() < 8) return false;
      uint64_t bits = 0;
      for (int i = 7; i >= 0; --i) {
        bits = (bits << 8) | static_cast<unsigned char>((*src)[i]);
      }
      src->remove_prefix(8);
      *out = Value::Double(std::bit_cast<double>(bits));
      return true;
    }
    case kWireTimestamp: {
      uint64_t z;
      if (!ParseVarint(src, &z)) return false;
      *out = Value::Timestamp(UnZigZag(z));
      return true;
    }
    case kWireString: {
      std::string s;
      if (!ParseString(src, &s)) return false;
      *out = Value::String(std::move(s));
      return true;
    }
    case kWireBytes: {
      std::string s;
      if (!ParseString(src, &s)) return false;
      *out = Value::Bytes(std::move(s));
      return true;
    }
    case kWireReference: {
      std::string s;
      if (!ParseString(src, &s)) return false;
      *out = Value::Reference(std::move(s));
      return true;
    }
    case kWireArray: {
      uint64_t n;
      if (!ParseVarint(src, &n)) return false;
      Array elements;
      // n is untrusted: each element consumes at least one byte, so cap the
      // reservation by the remaining input (a hostile count must not OOM).
      elements.reserve(std::min<uint64_t>(n, src->size()));
      for (uint64_t i = 0; i < n; ++i) {
        Value e;
        if (!ParseValue(src, &e)) return false;
        elements.push_back(std::move(e));
      }
      *out = Value::FromArray(std::move(elements));
      return true;
    }
    case kWireMap: {
      uint64_t n;
      if (!ParseVarint(src, &n)) return false;
      Map entries;
      for (uint64_t i = 0; i < n; ++i) {
        std::string k;
        Value e;
        if (!ParseString(src, &k) || !ParseValue(src, &e)) return false;
        entries.emplace(std::move(k), std::move(e));
      }
      *out = Value::FromMap(std::move(entries));
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

void AppendVarint(std::string& dst, uint64_t value) {
  while (value >= 0x80) {
    dst.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  dst.push_back(static_cast<char>(value));
}

bool ParseVarint(std::string_view* src, uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  while (!src->empty() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(src->front());
    src->remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

std::string SerializeDocument(const Document& doc) {
  std::string dst;
  AppendVarint(dst, doc.name().segments().size());
  for (const std::string& segment : doc.name().segments()) {
    AppendString(dst, segment);
  }
  AppendVarint(dst, ZigZag(doc.create_time()));
  AppendVarint(dst, ZigZag(doc.update_time()));
  AppendVarint(dst, doc.fields().size());
  for (const auto& [k, v] : doc.fields()) {
    AppendString(dst, k);
    SerializeValue(dst, v);
  }
  return dst;
}

void ResolveDocumentTimestamps(Document& doc, int64_t row_version) {
  doc.set_update_time(row_version);
  if (doc.create_time() == 0) doc.set_create_time(row_version);
}

StatusOr<Document> ParseDocument(std::string_view data) {
  uint64_t num_segments;
  if (!ParseVarint(&data, &num_segments)) {
    return InternalError("corrupt document: name");
  }
  std::vector<std::string> segments;
  segments.reserve(std::min<uint64_t>(num_segments, data.size()));
  for (uint64_t i = 0; i < num_segments; ++i) {
    std::string s;
    if (!ParseString(&data, &s)) {
      return InternalError("corrupt document: name segment");
    }
    segments.push_back(std::move(s));
  }
  uint64_t create_z, update_z, num_fields;
  if (!ParseVarint(&data, &create_z) || !ParseVarint(&data, &update_z) ||
      !ParseVarint(&data, &num_fields)) {
    return InternalError("corrupt document: header");
  }
  Map fields;
  for (uint64_t i = 0; i < num_fields; ++i) {
    std::string k;
    Value v;
    if (!ParseString(&data, &k) || !ParseValue(&data, &v)) {
      return InternalError("corrupt document: field");
    }
    fields.emplace(std::move(k), std::move(v));
  }
  if (!data.empty()) return InternalError("corrupt document: trailing bytes");
  Document doc(ResourcePath(std::move(segments)), std::move(fields));
  doc.set_create_time(UnZigZag(create_z));
  doc.set_update_time(UnZigZag(update_z));
  return doc;
}

}  // namespace firestore::codec
