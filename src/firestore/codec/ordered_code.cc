#include "firestore/codec/ordered_code.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

namespace firestore::codec {

namespace {

void AppendBigEndian64(std::string& dst, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    dst.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

bool ParseBigEndian64(std::string_view* src, uint64_t* out) {
  if (src->size() < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>((*src)[i]);
  }
  src->remove_prefix(8);
  *out = v;
  return true;
}

}  // namespace

void AppendBytes(std::string& dst, std::string_view value) {
  // 0x00 is escaped as {0x00, 0xff}; the terminator is {0x00, 0x01}. Inside
  // an encoding, 0x00 is therefore always followed by 0xff or 0x01, which
  // keeps the encoding unambiguous no matter what bytes follow it.
  for (char c : value) {
    if (c == '\0') {
      dst.push_back('\0');
      dst.push_back('\xff');
    } else {
      dst.push_back(c);
    }
  }
  dst.push_back('\0');
  dst.push_back('\x01');
}

bool ParseBytes(std::string_view* src, std::string* out) {
  out->clear();
  size_t i = 0;
  while (i < src->size()) {
    char c = (*src)[i];
    if (c == '\0') {
      if (i + 1 >= src->size()) return false;
      char next = (*src)[i + 1];
      if (next == '\xff') {
        out->push_back('\0');
        i += 2;
        continue;
      }
      if (next == '\x01') {
        src->remove_prefix(i + 2);
        return true;
      }
      return false;  // malformed escape
    }
    out->push_back(c);
    ++i;
  }
  return false;  // unterminated
}

void AppendInt64(std::string& dst, int64_t value) {
  AppendBigEndian64(dst, static_cast<uint64_t>(value) ^ (1ull << 63));
}

bool ParseInt64(std::string_view* src, int64_t* out) {
  uint64_t v;
  if (!ParseBigEndian64(src, &v)) return false;
  *out = static_cast<int64_t>(v ^ (1ull << 63));
  return true;
}

void AppendDouble(std::string& dst, double value) {
  uint64_t bits;
  if (std::isnan(value)) {
    bits = 0;  // canonical NaN: smallest numeric encoding
  } else {
    uint64_t raw = std::bit_cast<uint64_t>(value);
    if (raw & (1ull << 63)) {
      bits = ~raw;
    } else {
      bits = raw | (1ull << 63);
    }
    // Avoid colliding with the NaN slot: the smallest real encoding is
    // ~(negative NaN payload) which is > 0, so 0 stays reserved for NaN.
  }
  AppendBigEndian64(dst, bits);
}

bool ParseDouble(std::string_view* src, double* out) {
  uint64_t bits;
  if (!ParseBigEndian64(src, &bits)) return false;
  if (bits == 0) {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  uint64_t raw;
  if (bits & (1ull << 63)) {
    raw = bits & ~(1ull << 63);
  } else {
    raw = ~bits;
  }
  *out = std::bit_cast<double>(raw);
  return true;
}

void AppendInt32(std::string& dst, int32_t value) {
  uint32_t biased = static_cast<uint32_t>(value) ^ (1u << 31);
  for (int shift = 24; shift >= 0; shift -= 8) {
    dst.push_back(static_cast<char>((biased >> shift) & 0xff));
  }
}

bool ParseInt32(std::string_view* src, int32_t* out) {
  if (src->size() < 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<unsigned char>((*src)[i]);
  }
  src->remove_prefix(4);
  *out = static_cast<int32_t>(v ^ (1u << 31));
  return true;
}

void InvertBytes(std::string& s, size_t from) {
  for (size_t i = from; i < s.size(); ++i) {
    s[i] = static_cast<char>(~static_cast<unsigned char>(s[i]));
  }
}

}  // namespace firestore::codec
