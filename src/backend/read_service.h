// Read path of the Firestore Backend: single-document gets and queries,
// strongly consistent or at a recent timestamp, with security rules and
// billing (paper §IV-D3).

#ifndef FIRESTORE_BACKEND_READ_SERVICE_H_
#define FIRESTORE_BACKEND_READ_SERVICE_H_

#include <optional>
#include <string>

#include "backend/billing.h"
#include "common/status.h"
#include "firestore/index/catalog.h"
#include "firestore/query/executor.h"
#include "firestore/query/query.h"
#include "firestore/rules/rules.h"
#include "spanner/database.h"

namespace firestore::backend {

struct RunQueryResult {
  query::QueryResult result;
  spanner::Timestamp read_ts = 0;  // snapshot the query observed
  std::string plan_description;
};

struct RunCountResult {
  int64_t count = 0;
  query::QueryStats stats;
  spanner::Timestamp read_ts = 0;
};

struct RunAggregateResult {
  query::AggregateResult aggregate;
  spanner::Timestamp read_ts = 0;
};

class ReadService {
 public:
  explicit ReadService(spanner::Database* spanner) : spanner_(spanner) {}

  void set_billing(BillingLedger* billing) { billing_ = billing; }

  // Fetches one document at `read_ts` (0 = strong read at the current
  // timestamp). Rules (if provided) authorize a kGet access.
  StatusOr<std::optional<model::Document>> GetDocument(
      const std::string& database_id, const model::ResourcePath& name,
      spanner::Timestamp read_ts = 0,
      const rules::RuleSet* rules = nullptr,
      const rules::AuthContext* auth = nullptr);

  // Plans and executes `q` at `read_ts` (0 = strong). Rules (if provided)
  // authorize a kList access against the queried collection. Also used by
  // the Frontend to obtain a real-time query's initial snapshot.
  StatusOr<RunQueryResult> RunQuery(const std::string& database_id,
                                    index::IndexCatalog& catalog,
                                    const query::Query& q,
                                    spanner::Timestamp read_ts = 0,
                                    const rules::RuleSet* rules = nullptr,
                                    const rules::AuthContext* auth = nullptr);

  // COUNT aggregation over a query (paper §VIII future work). Billed by
  // index rows scanned, preserving pay-as-you-go semantics.
  StatusOr<RunCountResult> RunCountQuery(
      const std::string& database_id, index::IndexCatalog& catalog,
      const query::Query& q, spanner::Timestamp read_ts = 0,
      const rules::RuleSet* rules = nullptr,
      const rules::AuthContext* auth = nullptr);

  // SUM / AVG over a numeric field of the query's results. If the query has
  // no explicit order and no inequality, it is transparently ordered by the
  // aggregated field so the values decode straight from index keys (no
  // document fetches).
  StatusOr<RunAggregateResult> RunSumQuery(const std::string& database_id,
                                           index::IndexCatalog& catalog,
                                           const query::Query& q,
                                           const model::FieldPath& field,
                                           spanner::Timestamp read_ts = 0);

  // Per-RPC work cap: queries stop with partial results after this many
  // index rows (0 = unlimited; paper §IV-C).
  void set_max_rows_per_rpc(int64_t cap) { max_rows_per_rpc_ = cap; }

  // Query execution within a transaction (locking reads, paper §IV-D3).
  StatusOr<query::QueryResult> RunQueryInTransaction(
      const std::string& database_id, index::IndexCatalog& catalog,
      const query::Query& q, spanner::ReadWriteTransaction& txn);

 private:
  StatusOr<std::optional<model::Document>> ReadDocumentAt(
      const std::string& database_id, const model::ResourcePath& name,
      spanner::Timestamp read_ts) const;

  spanner::Database* spanner_;
  BillingLedger* billing_ = nullptr;
  int64_t max_rows_per_rpc_ = 0;
};

}  // namespace firestore::backend

#endif  // FIRESTORE_BACKEND_READ_SERVICE_H_
