#include "backend/billing.h"

#include <algorithm>

namespace firestore::backend {

void BillingLedger::RecordReads(const std::string& database_id,
                                int64_t count) {
  MutexLock lock(&mu_);
  usage_[database_id].document_reads += count;
}

void BillingLedger::RecordWrites(const std::string& database_id,
                                 int64_t count) {
  MutexLock lock(&mu_);
  usage_[database_id].document_writes += count;
}

void BillingLedger::RecordDeletes(const std::string& database_id,
                                  int64_t count) {
  MutexLock lock(&mu_);
  usage_[database_id].document_deletes += count;
}

void BillingLedger::RecordRealtimeUpdates(const std::string& database_id,
                                          int64_t count) {
  MutexLock lock(&mu_);
  usage_[database_id].realtime_updates += count;
}

void BillingLedger::AdjustStorage(const std::string& database_id,
                                  int64_t delta_bytes) {
  MutexLock lock(&mu_);
  usage_[database_id].storage_bytes += delta_bytes;
}

UsageCounters BillingLedger::Usage(const std::string& database_id) const {
  MutexLock lock(&mu_);
  auto it = usage_.find(database_id);
  return it == usage_.end() ? UsageCounters() : it->second;
}

double BillingLedger::BillableMicrosToday(const std::string& database_id,
                                          const PriceList& prices) const {
  UsageCounters u = Usage(database_id);
  auto over = [](int64_t used, int64_t free) {
    return static_cast<double>(std::max<int64_t>(0, used - free));
  };
  double total = 0;
  total += over(u.document_reads, quota_.reads_per_day) / 100'000.0 *
           prices.per_100k_reads;
  total += over(u.document_writes, quota_.writes_per_day) / 100'000.0 *
           prices.per_100k_writes;
  total += over(u.document_deletes, quota_.deletes_per_day) / 100'000.0 *
           prices.per_100k_deletes;
  total += over(u.storage_bytes, quota_.storage_bytes) /
           static_cast<double>(1ll << 30) * prices.per_gib_month_storage /
           30.0;
  return total;
}

void BillingLedger::ResetDay() {
  MutexLock lock(&mu_);
  for (auto& [id, u] : usage_) {
    u.document_reads = 0;
    u.document_writes = 0;
    u.document_deletes = 0;
    u.realtime_updates = 0;
    // storage_bytes persists across days.
  }
}

}  // namespace firestore::backend
