#include "backend/read_service.h"

#include "common/metrics.h"
#include "common/trace.h"
#include "firestore/codec/document_codec.h"
#include "firestore/index/layout.h"
#include "firestore/query/planner.h"
#include "firestore/query/row_reader.h"

namespace firestore::backend {

using model::Document;
using model::ResourcePath;
using spanner::Timestamp;

StatusOr<std::optional<Document>> ReadService::ReadDocumentAt(
    const std::string& database_id, const ResourcePath& name,
    Timestamp read_ts) const {
  Timestamp version = 0;
  ASSIGN_OR_RETURN(spanner::RowValue row,
                   spanner_->SnapshotRead(
                       index::kEntitiesTable,
                       index::EntityKey(database_id, name), read_ts,
                       &version));
  if (!row.has_value()) return std::optional<Document>();
  ASSIGN_OR_RETURN(Document doc, codec::ParseDocument(*row));
  codec::ResolveDocumentTimestamps(doc, version);
  return std::optional<Document>(std::move(doc));
}

StatusOr<std::optional<Document>> ReadService::GetDocument(
    const std::string& database_id, const ResourcePath& name,
    Timestamp read_ts, const rules::RuleSet* rules,
    const rules::AuthContext* auth) {
  FS_SPAN("backend.read.get");
  FS_METRIC_COUNTER("backend.read.gets").Increment();
  if (!name.IsDocumentPath()) {
    return InvalidArgumentError("'" + name.CanonicalString() +
                                "' is not a document path");
  }
  if (read_ts == 0) read_ts = spanner_->StrongReadTimestamp();
  ASSIGN_OR_RETURN(std::optional<Document> doc,
                   ReadDocumentAt(database_id, name, read_ts));
  if (rules != nullptr) {
    rules::AccessRequest request;
    request.kind = rules::AccessKind::kGet;
    request.path = name;
    request.auth = auth != nullptr ? *auth : rules::AuthContext{};
    request.resource = doc;
    request.lookup = [this, &database_id, read_ts](const ResourcePath& p) {
      return ReadDocumentAt(database_id, p, read_ts);
    };
    RETURN_IF_ERROR(rules->Authorize(request));
  }
  if (billing_ != nullptr) billing_->RecordReads(database_id, 1);
  return doc;
}

StatusOr<RunQueryResult> ReadService::RunQuery(
    const std::string& database_id, index::IndexCatalog& catalog,
    const query::Query& q, Timestamp read_ts, const rules::RuleSet* rules,
    const rules::AuthContext* auth) {
  FS_SPAN("backend.read.query");
  FS_METRIC_COUNTER("backend.read.queries").Increment();
  if (read_ts == 0) read_ts = spanner_->StrongReadTimestamp();
  // "The execution of a non-real-time query starts by verifying the
  // security rules for the collection specified in the query" (§IV-D3).
  if (rules != nullptr) {
    rules::AccessRequest request;
    request.kind = rules::AccessKind::kList;
    // Authorize against a representative member of the collection: patterns
    // like /restaurants/{id} match with {id} bound to "*".
    request.path = q.CollectionPath().Child("*");
    request.auth = auth != nullptr ? *auth : rules::AuthContext{};
    request.lookup = [this, &database_id, read_ts](const ResourcePath& p) {
      return ReadDocumentAt(database_id, p, read_ts);
    };
    RETURN_IF_ERROR(rules->Authorize(request));
  }
  ASSIGN_OR_RETURN(query::QueryPlan plan,
                   query::PlanQuery(catalog, database_id, q));
  query::SnapshotRowReader reader(spanner_, read_ts);
  query::ExecOptions exec_options;
  exec_options.max_index_rows = max_rows_per_rpc_;
  ASSIGN_OR_RETURN(
      query::QueryResult result,
      query::ExecuteQuery(reader, database_id, q, plan, exec_options));
  if (billing_ != nullptr) {
    // Firestore bills by documents in the result set (paper §VIII).
    billing_->RecordReads(
        database_id,
        std::max<int64_t>(1,
                          static_cast<int64_t>(result.documents.size())));
  }
  RunQueryResult out;
  out.result = std::move(result);
  out.read_ts = read_ts;
  out.plan_description = plan.DebugString();
  return out;
}

StatusOr<RunCountResult> ReadService::RunCountQuery(
    const std::string& database_id, index::IndexCatalog& catalog,
    const query::Query& q, Timestamp read_ts, const rules::RuleSet* rules,
    const rules::AuthContext* auth) {
  if (read_ts == 0) read_ts = spanner_->StrongReadTimestamp();
  if (rules != nullptr) {
    rules::AccessRequest request;
    request.kind = rules::AccessKind::kList;
    request.path = q.CollectionPath().Child("*");
    request.auth = auth != nullptr ? *auth : rules::AuthContext{};
    request.lookup = [this, &database_id, read_ts](const ResourcePath& p) {
      return ReadDocumentAt(database_id, p, read_ts);
    };
    RETURN_IF_ERROR(rules->Authorize(request));
  }
  ASSIGN_OR_RETURN(query::QueryPlan plan,
                   query::PlanQuery(catalog, database_id, q));
  query::SnapshotRowReader reader(spanner_, read_ts);
  ASSIGN_OR_RETURN(query::CountResult counted,
                   query::ExecuteCountQuery(reader, database_id, q, plan));
  if (billing_ != nullptr) {
    // Aggregations bill by index rows examined, not result size, keeping
    // pay-as-you-go semantics for "COUNT ... may count millions of
    // documents" (paper §VIII).
    billing_->RecordReads(
        database_id,
        std::max<int64_t>(1, counted.stats.index_rows_scanned / 1000));
  }
  RunCountResult out;
  out.count = counted.count;
  out.stats = counted.stats;
  out.read_ts = read_ts;
  return out;
}

StatusOr<RunAggregateResult> ReadService::RunSumQuery(
    const std::string& database_id, index::IndexCatalog& catalog,
    const query::Query& q, const model::FieldPath& field,
    Timestamp read_ts) {
  if (read_ts == 0) read_ts = spanner_->StrongReadTimestamp();
  query::Query effective = q;
  // A filter-less query is routed onto the aggregated field's index so
  // values decode straight from keys (documents missing the field have no
  // entry there, matching aggregate semantics). Filtered queries keep their
  // own plan; an inequality or order on the aggregated field also hits the
  // key-decoding fast path naturally.
  if (q.filters().empty() && q.order_by().empty()) {
    effective.OrderByField(field);
  }
  ASSIGN_OR_RETURN(query::QueryPlan plan,
                   query::PlanQuery(catalog, database_id, effective));
  query::SnapshotRowReader reader(spanner_, read_ts);
  ASSIGN_OR_RETURN(
      query::AggregateResult agg,
      query::ExecuteSumQuery(reader, database_id, effective, plan, field));
  if (billing_ != nullptr) {
    billing_->RecordReads(
        database_id,
        std::max<int64_t>(1, agg.stats.index_rows_scanned / 1000));
  }
  RunAggregateResult out;
  out.aggregate = std::move(agg);
  out.read_ts = read_ts;
  return out;
}

StatusOr<query::QueryResult> ReadService::RunQueryInTransaction(
    const std::string& database_id, index::IndexCatalog& catalog,
    const query::Query& q, spanner::ReadWriteTransaction& txn) {
  ASSIGN_OR_RETURN(query::QueryPlan plan,
                   query::PlanQuery(catalog, database_id, q));
  query::TransactionRowReader reader(&txn);
  ASSIGN_OR_RETURN(query::QueryResult result,
                   query::ExecuteQuery(reader, database_id, q, plan));
  if (billing_ != nullptr) {
    billing_->RecordReads(
        database_id,
        std::max<int64_t>(1,
                          static_cast<int64_t>(result.documents.size())));
  }
  return result;
}

}  // namespace firestore::backend
