#include "backend/admission.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/retry.h"

namespace firestore::backend {

bool TrafficRampTracker::Record(const std::string& database_id) {
  MutexLock lock(&mu_);
  Micros now = clock_->NowMicros();
  State& state = per_db_[database_id];
  if (state.recent.empty()) state.ramp_start = now;
  state.recent.push_back(now);
  while (!state.recent.empty() &&
         state.recent.front() < now - options_.window) {
    state.recent.pop_front();
  }
  double qps = static_cast<double>(state.recent.size()) *
               (1e6 / static_cast<double>(options_.window));
  double periods = static_cast<double>(now - state.ramp_start) /
                   static_cast<double>(options_.growth_period);
  double allowed = options_.base_qps * std::pow(options_.growth_factor,
                                                periods);
  return qps <= allowed;
}

double TrafficRampTracker::AllowedQps(const std::string& database_id) const {
  MutexLock lock(&mu_);
  auto it = per_db_.find(database_id);
  if (it == per_db_.end()) return options_.base_qps;
  double periods =
      static_cast<double>(clock_->NowMicros() - it->second.ramp_start) /
      static_cast<double>(options_.growth_period);
  return options_.base_qps * std::pow(options_.growth_factor, periods);
}

double TrafficRampTracker::CurrentQps(const std::string& database_id) const {
  MutexLock lock(&mu_);
  auto it = per_db_.find(database_id);
  if (it == per_db_.end()) return 0;
  Micros now = clock_->NowMicros();
  int count = 0;
  for (Micros t : it->second.recent) {
    if (t >= now - options_.window) ++count;
  }
  return static_cast<double>(count) *
         (1e6 / static_cast<double>(options_.window));
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseOne(database_id_);
    controller_ = nullptr;
  }
}

StatusOr<AdmissionController::Ticket> AdmissionController::Admit(
    const std::string& database_id) {
  MutexLock lock(&mu_);
  int limit = options_.default_inflight_limit;
  auto it = limits_.find(database_id);
  if (it != limits_.end()) limit = it->second;
  int& current = inflight_[database_id];
  if (limit > 0 && current >= limit) {
    ++rejected_;
    FS_METRIC_COUNTER_FOR("backend.admission.rejections", database_id)
        .Increment();
    return WithRetryAfter(
        ResourceExhaustedError("database over its in-flight RPC limit: " +
                               database_id),
        options_.rejection_retry_after);
  }
  ++current;
  return Ticket(this, database_id);
}

void AdmissionController::ReleaseOne(const std::string& database_id) {
  MutexLock lock(&mu_);
  auto it = inflight_.find(database_id);
  if (it != inflight_.end() && it->second > 0) --it->second;
}

void AdmissionController::SetInflightLimit(const std::string& database_id,
                                           int limit) {
  MutexLock lock(&mu_);
  limits_[database_id] = limit;
}

void AdmissionController::ClearInflightLimit(
    const std::string& database_id) {
  MutexLock lock(&mu_);
  limits_.erase(database_id);
}

void AdmissionController::RouteToIsolatedPool(const std::string& database_id,
                                              const std::string& pool_name) {
  MutexLock lock(&mu_);
  pools_[database_id] = pool_name;
}

void AdmissionController::ClearIsolatedPool(const std::string& database_id) {
  MutexLock lock(&mu_);
  pools_.erase(database_id);
}

std::string AdmissionController::PoolFor(
    const std::string& database_id) const {
  MutexLock lock(&mu_);
  auto it = pools_.find(database_id);
  return it == pools_.end() ? "default" : it->second;
}

int AdmissionController::inflight(const std::string& database_id) const {
  MutexLock lock(&mu_);
  auto it = inflight_.find(database_id);
  return it == inflight_.end() ? 0 : it->second;
}

int64_t AdmissionController::rejected() const {
  MutexLock lock(&mu_);
  return rejected_;
}

}  // namespace firestore::backend
