// Shared types of the Firestore Backend: mutations, write outcomes, and the
// two-phase-commit interface to the Real-time Cache (paper §IV-D2).

#ifndef FIRESTORE_BACKEND_TYPES_H_
#define FIRESTORE_BACKEND_TYPES_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "firestore/model/document.h"
#include "spanner/truetime.h"

namespace firestore::backend {

// A single document mutation within a commit.
struct Mutation {
  enum class Kind {
    kSet,     // create or replace the whole document
    kMerge,   // upsert: merge fields into the existing document
    kDelete,  // remove the document
  };

  enum class Precondition {
    kNone,
    kMustExist,
    kMustNotExist,
    // The document's update_time must equal expected_update_time (0 = the
    // document must not exist). This is how the client SDK's optimistic
    // transactions revalidate "all data read by the transaction ... for
    // freshness at the time of the commit" (paper §III-E).
    kUpdateTimeEquals,
  };

  Kind kind = Kind::kSet;
  model::ResourcePath name;
  model::Map fields;  // ignored for kDelete
  Precondition precondition = Precondition::kNone;
  int64_t expected_update_time = 0;  // kUpdateTimeEquals only

  static Mutation Set(model::ResourcePath name, model::Map fields) {
    return {Kind::kSet, std::move(name), std::move(fields),
            Precondition::kNone};
  }
  static Mutation Create(model::ResourcePath name, model::Map fields) {
    return {Kind::kSet, std::move(name), std::move(fields),
            Precondition::kMustNotExist};
  }
  static Mutation Merge(model::ResourcePath name, model::Map fields) {
    return {Kind::kMerge, std::move(name), std::move(fields),
            Precondition::kNone};
  }
  static Mutation Delete(model::ResourcePath name) {
    return {Kind::kDelete, std::move(name), {}, Precondition::kNone};
  }
};

// What the Real-time Cache learns about one document in an Accept: "the name
// of each deleted document, a full copy of each inserted document, and a
// full copy of each modified document together with the exact changes".
struct DocumentChange {
  model::ResourcePath name;
  bool deleted = false;
  std::optional<model::Document> new_doc;  // set unless deleted
  std::optional<model::Document> old_doc;  // set unless insert
  // The originating commit's trace context (inactive unless the commit ran
  // under a Trace). Rides with the change through the Changelog buffer and
  // QueryMatcher fanout so the async notification leg lands in the same
  // trace as the write ack (common/trace.h).
  Trace::Context trace;
};

enum class WriteOutcome {
  kSuccess,
  kFailed,
  kUnknown,  // e.g. Spanner commit timed out
};

// Result of a Prepare: the minimum allowed commit timestamp plus a token
// that the matching Accept must carry.
struct PrepareHandle {
  spanner::Timestamp min_commit_ts = 0;
  uint64_t token = 0;
};

// The Real-time Cache's side of the write two-phase-commit. Implemented by
// the Changelog (rtcache); the Backend calls Prepare before the Spanner
// commit and Accept after.
class RealTimeParticipant {
 public:
  virtual ~RealTimeParticipant() = default;

  // Registers an in-flight write for the document names' ranges with maximum
  // commit timestamp M; returns the minimum allowed commit timestamp m.
  // UNAVAILABLE fails the write (paper: "this should be rare").
  virtual StatusOr<PrepareHandle> Prepare(
      const std::string& database_id,
      const std::vector<model::ResourcePath>& names,
      spanner::Timestamp max_commit_ts) = 0;

  // Completes the two-phase-commit with the Spanner outcome. On kSuccess,
  // `commit_ts` and `changes` are authoritative.
  virtual void Accept(uint64_t token, WriteOutcome outcome,
                      spanner::Timestamp commit_ts,
                      const std::vector<DocumentChange>& changes) = 0;
};

struct CommitResponse {
  spanner::Timestamp commit_ts = 0;
  // 2PC participants in Spanner (tablets written), for latency modeling.
  int spanner_participants = 0;
  // Index entries added + removed, for cost accounting.
  int64_t index_entries_written = 0;
  std::vector<DocumentChange> changes;
};

}  // namespace firestore::backend

#endif  // FIRESTORE_BACKEND_TYPES_H_
