// Admission control and emergency isolation tooling.
//
// Paper §IV-C: Firestore "limit[s] the result-set size and the amount of
// work done for a single RPC", defines *conforming traffic* ("increase at
// most 50% every 5 minutes, starting from a 500 QPS base"), and does
// "targeted load-shedding to drop excess work before auto-scaling can take
// effect".
//
// Paper §VI: two manual mitigation tools — "a low-tech manual tool that
// limits the number of per-task in-flight RPCs for a given database", and
// routing "all traffic for that database ... to a separate pool (of tasks)
// for the impacted component, thereby isolating it completely."

#ifndef FIRESTORE_BACKEND_ADMISSION_H_
#define FIRESTORE_BACKEND_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace firestore::backend {

// Tracks a database's offered load against the conforming-traffic ramp
// (500 QPS base, at most +50% per 5 minutes). Non-conforming traffic is
// *reported*, not rejected — "Firestore ... will still accept traffic that
// violates this rule as long as it can maintain isolation."
class TrafficRampTracker {
 public:
  struct Options {
    double base_qps = 500;
    double growth_factor = 1.5;
    Micros growth_period = 300'000'000;  // 5 minutes
    Micros window = 1'000'000;           // QPS sampling window
  };

  TrafficRampTracker(const Clock* clock, Options options)
      : clock_(clock), options_(options) {}
  explicit TrafficRampTracker(const Clock* clock)
      : TrafficRampTracker(clock, Options()) {}

  // Records one request for `database_id`; returns true if the database's
  // current rate conforms to the documented ramp.
  bool Record(const std::string& database_id);

  // The rate currently allowed by the ramp for this database.
  double AllowedQps(const std::string& database_id) const;
  double CurrentQps(const std::string& database_id) const;

 private:
  struct State {
    Micros ramp_start = 0;    // when sustained traffic began
    std::deque<Micros> recent;  // request times within the window
  };

  const Clock* const clock_;
  const Options options_;
  mutable Mutex mu_;
  std::map<std::string, State> per_db_ FS_GUARDED_BY(mu_);
};

// Per-database in-flight RPC limiter + isolated-pool routing flags. The
// request path calls Admit() before work and Release() after.
class AdmissionController {
 public:
  struct Options {
    // Default per-database in-flight cap (0 = unlimited).
    int default_inflight_limit = 0;
    // Work cap per RPC: queries stop and return partial results after this
    // many index rows (see ReadService integration).
    int64_t max_rows_per_rpc = 100'000;
    // Hint attached to RESOURCE_EXHAUSTED rejections (common/retry.h
    // WithRetryAfter): how long rejected callers should back off before
    // their next attempt.
    Micros rejection_retry_after = 50'000;
  };

  AdmissionController() = default;
  explicit AdmissionController(Options options) : options_(options) {}

  // RAII admission ticket.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(AdmissionController* controller, std::string database_id)
        : controller_(controller), database_id_(std::move(database_id)) {}
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      controller_ = other.controller_;
      database_id_ = std::move(other.database_id_);
      other.controller_ = nullptr;
      return *this;
    }
    ~Ticket() { Release(); }

    void Release();

   private:
    AdmissionController* controller_ = nullptr;
    std::string database_id_;
  };

  // RESOURCE_EXHAUSTED when the database is over its in-flight limit.
  StatusOr<Ticket> Admit(const std::string& database_id);

  // -- The §VI manual tools --

  // Caps in-flight RPCs for one database (the "low-tech manual tool").
  void SetInflightLimit(const std::string& database_id, int limit);
  void ClearInflightLimit(const std::string& database_id);

  // Routes the database to an isolated task pool. The routing decision is
  // exposed so the dispatch layer (benchmarks, service) can honor it.
  void RouteToIsolatedPool(const std::string& database_id,
                           const std::string& pool_name);
  void ClearIsolatedPool(const std::string& database_id);
  std::string PoolFor(const std::string& database_id) const;

  int64_t max_rows_per_rpc() const { return options_.max_rows_per_rpc; }
  int inflight(const std::string& database_id) const;
  int64_t rejected() const;

 private:
  friend class Ticket;
  void ReleaseOne(const std::string& database_id);

  const Options options_;
  mutable Mutex mu_;
  std::map<std::string, int> inflight_ FS_GUARDED_BY(mu_);
  std::map<std::string, int> limits_ FS_GUARDED_BY(mu_);
  std::map<std::string, std::string> pools_ FS_GUARDED_BY(mu_);
  int64_t rejected_ FS_GUARDED_BY(mu_) = 0;
};

}  // namespace firestore::backend

#endif  // FIRESTORE_BACKEND_ADMISSION_H_
