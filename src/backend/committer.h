// The Firestore Backend write path (paper §IV-D2): reads documents with
// exclusive locks, evaluates security rules, computes index-entry deltas,
// two-phase-commits with the Real-time Cache around the Spanner commit, and
// persists trigger messages.

#ifndef FIRESTORE_BACKEND_COMMITTER_H_
#define FIRESTORE_BACKEND_COMMITTER_H_

#include <functional>
#include <string>
#include <vector>

#include "backend/billing.h"
#include "backend/types.h"
#include "common/clock.h"
#include "common/retry.h"
#include "common/status.h"
#include "firestore/index/catalog.h"
#include "firestore/rules/rules.h"
#include "spanner/database.h"

namespace firestore::backend {

// Trigger registration: pattern segments with {var} wildcards, e.g.
// ["restaurants", "{rid}", "ratings", "{rat}"]. Matching changes enqueue a
// TriggerEvent on the transactional message queue under kTriggerTopic.
struct TriggerDefinition {
  std::string function_name;
  std::vector<std::string> pattern;

  bool MatchesPath(const model::ResourcePath& path) const;
};

inline constexpr char kTriggerTopic[] = "cloud-functions";

// Payload of a trigger message ("the delta from that change is conveniently
// available in the handler", paper §III-F).
struct TriggerEvent {
  std::string database_id;
  std::string function_name;
  DocumentChange change;
  spanner::Timestamp commit_ts = 0;

  std::string Serialize() const;
  static StatusOr<TriggerEvent> Parse(std::string_view data);
};

// Failure injection for testing the protocol's error legs (paper §IV-D2
// enumerates them). Legacy shim over the global fault registry
// (common/fault_injection.h): each flag arms/disarms a named fault point,
// so arming here and arming the registry directly are equivalent.
struct CommitFaults {
  bool rtcache_unavailable = false;   // "committer.prepare" -> write fails
  bool spanner_commit_fails = false;  // "committer.commit" -> Accept(kFailed)
  bool unknown_outcome = false;       // "committer.outcome_unknown"
                                      //   -> Accept(kUnknown)
};

class Committer {
 public:
  struct Options {
    // Margin added to now for the max commit timestamp M.
    Micros max_commit_margin = 2'000'000;
    // Backoff shape for RunTransaction's retry loop (max_attempts is taken
    // from the RunTransaction argument). The sleeper receives each backoff
    // delay; when null the delay is virtual (tests, simulation).
    RetryPolicy retry_policy;
    uint64_t retry_seed = 0x5eed;
    std::function<void(Micros)> retry_sleep;
  };

  Committer(spanner::Database* spanner, const Clock* clock)
      : spanner_(spanner), clock_(clock) {}
  Committer(spanner::Database* spanner, const Clock* clock, Options options)
      : spanner_(spanner), clock_(clock), options_(options) {}

  // Optional collaborators.
  void set_realtime(RealTimeParticipant* rt) { realtime_ = rt; }
  void set_billing(BillingLedger* billing) { billing_ = billing; }
  // Legacy fault shim: arms/disarms the global registry (see CommitFaults).
  static void set_faults(const CommitFaults& faults);

  // Commits `mutations` atomically for `database_id`.
  //
  // `rules`+`auth` non-null marks a third-party request: write rules run for
  // every mutation, with get()/exists() lookups served transactionally.
  // Server SDK (privileged) requests pass nullptr and bypass rules
  // (paper §III-D vs §III-E).
  //
  // `triggers` (may be empty) is the database's trigger registry.
  StatusOr<CommitResponse> Commit(
      const std::string& database_id, index::IndexCatalog& catalog,
      const std::vector<Mutation>& mutations,
      const std::vector<TriggerDefinition>& triggers = {},
      const rules::RuleSet* rules = nullptr,
      const rules::AuthContext* auth = nullptr);

  // Runs `body` inside a Firestore transaction: the callback reads through
  // the transaction (acquiring locks) and returns the mutations to apply;
  // the whole thing commits atomically. Retries pre-apply failures —
  // ABORTED (wound-wait), UNAVAILABLE, lock-wait timeouts — up to
  // `max_attempts` with the Options backoff (the Server SDKs' automatic
  // retry with backoff, paper §III-D). An unknown-outcome commit is NOT
  // retried: the write may have landed.
  using TransactionBody = std::function<StatusOr<std::vector<Mutation>>(
      spanner::ReadWriteTransaction& txn)>;
  StatusOr<CommitResponse> RunTransaction(
      const std::string& database_id, index::IndexCatalog& catalog,
      const TransactionBody& body,
      const std::vector<TriggerDefinition>& triggers = {},
      int max_attempts = 5);

 private:
  StatusOr<CommitResponse> CommitInternal(
      const std::string& database_id, index::IndexCatalog& catalog,
      spanner::ReadWriteTransaction& txn,
      const std::vector<Mutation>& mutations,
      const std::vector<TriggerDefinition>& triggers,
      const rules::RuleSet* rules, const rules::AuthContext* auth);

  spanner::Database* spanner_;
  const Clock* clock_;
  Options options_;
  RealTimeParticipant* realtime_ = nullptr;
  BillingLedger* billing_ = nullptr;
};

}  // namespace firestore::backend

#endif  // FIRESTORE_BACKEND_COMMITTER_H_
