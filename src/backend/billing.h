// Operation-based billing with a daily free quota (paper §IV-B): customers
// pay per document read/write/delete and for storage, so "billing increases
// reflect application success"; idle databases cost nothing.

#ifndef FIRESTORE_BACKEND_BILLING_H_
#define FIRESTORE_BACKEND_BILLING_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/thread_annotations.h"

namespace firestore::backend {

struct UsageCounters {
  int64_t document_reads = 0;
  int64_t document_writes = 0;
  int64_t document_deletes = 0;
  int64_t storage_bytes = 0;        // current footprint
  int64_t realtime_updates = 0;     // documents fanned out to listeners
};

// Per-day free allowances, modeled on Firestore's published free tier.
struct FreeQuota {
  int64_t reads_per_day = 50'000;
  int64_t writes_per_day = 20'000;
  int64_t deletes_per_day = 20'000;
  int64_t storage_bytes = 1ll << 30;  // 1 GiB
};

// Per-operation prices (micro-dollars), for the billing report.
struct PriceList {
  double per_100k_reads = 0.06e6;    // $0.06 per 100k
  double per_100k_writes = 0.18e6;
  double per_100k_deletes = 0.02e6;
  double per_gib_month_storage = 0.18e6;
};

// Thread-safe per-database usage ledger.
class BillingLedger {
 public:
  explicit BillingLedger(FreeQuota quota = FreeQuota())
      : quota_(quota) {}

  void RecordReads(const std::string& database_id, int64_t count);
  void RecordWrites(const std::string& database_id, int64_t count);
  void RecordDeletes(const std::string& database_id, int64_t count);
  void RecordRealtimeUpdates(const std::string& database_id, int64_t count);
  void AdjustStorage(const std::string& database_id, int64_t delta_bytes);

  UsageCounters Usage(const std::string& database_id) const;

  // Amount billable today in micro-dollars after the free quota
  // (storage prorated per day).
  double BillableMicrosToday(const std::string& database_id,
                             const PriceList& prices = PriceList()) const;

  // Daily quota reset.
  void ResetDay();

 private:
  const FreeQuota quota_;
  mutable Mutex mu_;
  std::map<std::string, UsageCounters> usage_ FS_GUARDED_BY(mu_);
};

}  // namespace firestore::backend

#endif  // FIRESTORE_BACKEND_BILLING_H_
