#include "backend/validation.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/bytes.h"
#include "firestore/codec/document_codec.h"
#include "firestore/codec/ordered_code.h"
#include "firestore/index/extractor.h"
#include "firestore/index/layout.h"

namespace firestore::backend {

std::string ValidationReport::Summary() const {
  std::ostringstream os;
  os << "docs=" << documents_checked
     << " entries=" << index_entries_checked
     << " missing=" << missing_entries.size()
     << " orphans=" << orphan_entries.size()
     << " corrupt=" << corrupt_documents.size()
     << (clean() ? " [CLEAN]" : " [INCONSISTENT]");
  return os.str();
}

StatusOr<ValidationReport> DataValidationService::ValidateDatabase(
    const std::string& database_id, index::IndexCatalog& catalog,
    spanner::Timestamp snapshot_ts) {
  if (snapshot_ts == 0) snapshot_ts = spanner_->StrongReadTimestamp();
  ValidationReport report;

  // Indexes currently in flux are excluded from strict accounting.
  std::set<index::IndexId> in_flux;
  for (const index::IndexDefinition& def : catalog.AllIndexes()) {
    if (def.state != index::IndexState::kActive) {
      in_flux.insert(def.index_id);
    }
  }
  auto index_of_key = [&](const std::string& key) -> index::IndexId {
    std::string_view rest = key;
    std::string db;
    index::IndexId id = 0;
    if (!codec::ParseBytes(&rest, &db)) return -1;
    if (!codec::ParseInt64(&rest, &id)) return -1;
    return id;
  };

  // Recompute the expected entry set from the documents.
  std::set<std::string> expected;
  std::string start = index::EntityKeyPrefixForDatabase(database_id);
  std::string limit = PrefixSuccessor(start);
  std::string cursor = start;
  while (true) {
    ASSIGN_OR_RETURN(std::vector<spanner::ScanRow> rows,
                     spanner_->SnapshotScan(index::kEntitiesTable, cursor,
                                            limit, snapshot_ts, 256));
    if (rows.empty()) break;
    for (const spanner::ScanRow& row : rows) {
      ++report.documents_checked;
      StatusOr<model::Document> doc = codec::ParseDocument(row.value);
      if (!doc.ok() || !doc->Validate().ok()) {
        report.corrupt_documents.push_back(row.key);
        continue;
      }
      for (std::string& key :
           index::ComputeIndexEntries(catalog, database_id, *doc)) {
        if (in_flux.count(index_of_key(key)) != 0) continue;
        expected.insert(std::move(key));
      }
    }
    cursor = KeySuccessor(rows.back().key);
  }

  // Diff against the actual IndexEntries contents.
  cursor = start;
  while (true) {
    ASSIGN_OR_RETURN(std::vector<spanner::ScanRow> rows,
                     spanner_->SnapshotScan(index::kIndexEntriesTable,
                                            cursor, limit, snapshot_ts,
                                            256));
    if (rows.empty()) break;
    for (const spanner::ScanRow& row : rows) {
      ++report.index_entries_checked;
      if (in_flux.count(index_of_key(row.key)) != 0) continue;
      auto it = expected.find(row.key);
      if (it != expected.end()) {
        expected.erase(it);
      } else {
        report.orphan_entries.push_back(row.key);
      }
    }
    cursor = KeySuccessor(rows.back().key);
  }
  for (const std::string& key : expected) {
    report.missing_entries.push_back(key);
  }
  return report;
}

StatusOr<ValidationReport> DataValidationService::RepairDatabase(
    const std::string& database_id, index::IndexCatalog& catalog) {
  ASSIGN_OR_RETURN(ValidationReport before,
                   ValidateDatabase(database_id, catalog));
  if (before.clean()) return before;
  auto txn = spanner_->BeginTransaction();
  for (const std::string& key : before.orphan_entries) {
    txn->Delete(index::kIndexEntriesTable, key);
  }
  for (const std::string& key : before.missing_entries) {
    txn->Put(index::kIndexEntriesTable, key, "");
  }
  for (const std::string& key : before.corrupt_documents) {
    txn->Delete(index::kEntitiesTable, key);
  }
  auto commit = txn->Commit();
  if (!commit.ok()) return commit.status();
  return ValidateDatabase(database_id, catalog);
}

}  // namespace firestore::backend
