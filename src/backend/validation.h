// Periodic data-validation jobs (paper §VI): "we rely both on Spanner's
// data integrity guarantees for data at rest, and periodic data validation
// jobs at both the Spanner and Firestore layers to verify the correctness
// of data and consistency of indexes."
//
// The validator recomputes, from the Entities table and the index catalog,
// the exact set of IndexEntries rows that should exist for a database and
// diffs it against the actual table contents. It also verifies that every
// stored document parses and passes its own validation.

#ifndef FIRESTORE_BACKEND_VALIDATION_H_
#define FIRESTORE_BACKEND_VALIDATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "firestore/index/catalog.h"
#include "spanner/database.h"

namespace firestore::backend {

struct ValidationReport {
  int64_t documents_checked = 0;
  int64_t index_entries_checked = 0;
  // Raw Spanner keys of index rows that should exist but do not.
  std::vector<std::string> missing_entries;
  // Raw keys of index rows present in the table with no justifying document.
  std::vector<std::string> orphan_entries;
  // Raw Entities keys whose payload fails to parse or validate.
  std::vector<std::string> corrupt_documents;

  bool clean() const {
    return missing_entries.empty() && orphan_entries.empty() &&
           corrupt_documents.empty();
  }
  std::string Summary() const;
};

class DataValidationService {
 public:
  explicit DataValidationService(spanner::Database* spanner)
      : spanner_(spanner) {}

  // Validates one database at a consistent snapshot (0 = current strong
  // timestamp). Entries of indexes in kBackfilling / kRemoving states are
  // excluded from the orphan/missing accounting (they are expected to be in
  // flux).
  StatusOr<ValidationReport> ValidateDatabase(
      const std::string& database_id, index::IndexCatalog& catalog,
      spanner::Timestamp snapshot_ts = 0);

  // Remediation: removes orphan index entries, re-creates missing ones, and
  // deletes unparseable Entities rows (their stale entries are orphans and
  // are removed with them). Returns the post-repair validation report.
  StatusOr<ValidationReport> RepairDatabase(const std::string& database_id,
                                            index::IndexCatalog& catalog);

 private:
  spanner::Database* spanner_;
};

}  // namespace firestore::backend

#endif  // FIRESTORE_BACKEND_VALIDATION_H_
