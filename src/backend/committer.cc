#include "backend/committer.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/checksum.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/trace.h"
#include "firestore/codec/document_codec.h"
#include "firestore/index/extractor.h"
#include "firestore/index/layout.h"

namespace firestore::backend {

using model::Document;
using model::Map;
using model::ResourcePath;
using spanner::Timestamp;

bool TriggerDefinition::MatchesPath(const ResourcePath& path) const {
  const std::vector<std::string>& segments = path.segments();
  if (segments.size() != pattern.size()) return false;
  for (size_t i = 0; i < segments.size(); ++i) {
    if (pattern[i].front() == '{') continue;  // wildcard
    if (pattern[i] != segments[i]) return false;
  }
  return true;
}

std::string TriggerEvent::Serialize() const {
  std::string out;
  codec::AppendVarint(out, database_id.size());
  out += database_id;
  codec::AppendVarint(out, function_name.size());
  out += function_name;
  out.push_back(change.deleted ? 1 : 0);
  out.push_back(change.old_doc.has_value() ? 1 : 0);
  codec::AppendVarint(out, static_cast<uint64_t>(commit_ts));
  Document name_holder(change.name, {});
  std::string name_bytes = codec::SerializeDocument(name_holder);
  codec::AppendVarint(out, name_bytes.size());
  out += name_bytes;
  auto append_doc = [&out](const std::optional<Document>& doc) {
    if (!doc.has_value()) {
      codec::AppendVarint(out, 0);
      return;
    }
    std::string bytes = codec::SerializeDocument(*doc);
    codec::AppendVarint(out, bytes.size());
    out += bytes;
  };
  append_doc(change.new_doc);
  append_doc(change.old_doc);
  // End-to-end checksum on the in-flight payload (paper §VI).
  AppendChecksum(out);
  return out;
}

StatusOr<TriggerEvent> TriggerEvent::Parse(std::string_view data) {
  if (!VerifyAndStripChecksum(&data)) {
    return InternalError("trigger event checksum mismatch");
  }
  TriggerEvent event;
  auto read_sized = [&data](std::string* out) -> bool {
    uint64_t n;
    if (!codec::ParseVarint(&data, &n) || data.size() < n) return false;
    out->assign(data.substr(0, n));
    data.remove_prefix(n);
    return true;
  };
  std::string name_bytes, new_bytes, old_bytes;
  if (!read_sized(&event.database_id) || !read_sized(&event.function_name) ||
      data.size() < 2) {
    return InternalError("corrupt trigger event");
  }
  event.change.deleted = data[0] != 0;
  bool has_old = data[1] != 0;
  data.remove_prefix(2);
  uint64_t ts;
  if (!codec::ParseVarint(&data, &ts)) {
    return InternalError("corrupt trigger event ts");
  }
  event.commit_ts = static_cast<Timestamp>(ts);
  if (!read_sized(&name_bytes)) return InternalError("corrupt trigger name");
  ASSIGN_OR_RETURN(Document name_holder, codec::ParseDocument(name_bytes));
  event.change.name = name_holder.name();
  if (!read_sized(&new_bytes) || !read_sized(&old_bytes)) {
    return InternalError("corrupt trigger docs");
  }
  if (!new_bytes.empty()) {
    ASSIGN_OR_RETURN(Document d, codec::ParseDocument(new_bytes));
    event.change.new_doc = std::move(d);
  }
  if (has_old && !old_bytes.empty()) {
    ASSIGN_OR_RETURN(Document d, codec::ParseDocument(old_bytes));
    event.change.old_doc = std::move(d);
  }
  return event;
}

namespace {

// Applies one mutation to the running state; returns the new document or
// nullopt for delete.
StatusOr<std::optional<Document>> ApplyMutation(
    const Mutation& m, const std::optional<Document>& current) {
  switch (m.precondition) {
    case Mutation::Precondition::kMustExist:
      if (!current.has_value()) {
        return NotFoundError("document does not exist: " +
                             m.name.CanonicalString());
      }
      break;
    case Mutation::Precondition::kMustNotExist:
      if (current.has_value()) {
        return AlreadyExistsError("document already exists: " +
                                  m.name.CanonicalString());
      }
      break;
    case Mutation::Precondition::kUpdateTimeEquals: {
      int64_t actual = current.has_value() ? current->update_time() : 0;
      if (actual != m.expected_update_time) {
        return FailedPreconditionError(
            "document changed since it was read: " +
            m.name.CanonicalString());
      }
      break;
    }
    case Mutation::Precondition::kNone:
      break;
  }
  switch (m.kind) {
    case Mutation::Kind::kDelete:
      return std::optional<Document>();
    case Mutation::Kind::kSet: {
      Document doc(m.name, m.fields);
      if (current.has_value()) doc.set_create_time(current->create_time());
      RETURN_IF_ERROR(doc.Validate());
      return std::optional<Document>(std::move(doc));
    }
    case Mutation::Kind::kMerge: {
      Map merged = current.has_value() ? current->fields() : Map();
      for (const auto& [k, v] : m.fields) merged[k] = v;
      Document doc(m.name, std::move(merged));
      if (current.has_value()) doc.set_create_time(current->create_time());
      RETURN_IF_ERROR(doc.Validate());
      return std::optional<Document>(std::move(doc));
    }
  }
  return InternalError("bad mutation kind");
}

rules::AccessKind RuleKindFor(const Mutation& m, bool exists) {
  if (m.kind == Mutation::Kind::kDelete) return rules::AccessKind::kDelete;
  return exists ? rules::AccessKind::kUpdate : rules::AccessKind::kCreate;
}

}  // namespace

void Committer::set_faults(const CommitFaults& faults) {
  FaultRegistry& registry = FaultRegistry::Global();
  auto toggle = [&registry](bool on, const char* point, FaultAction action) {
    if (on) {
      FaultConfig config;
      config.action = std::move(action);
      registry.Arm(point, std::move(config));
    } else {
      registry.Disarm(point);
    }
  };
  toggle(faults.rtcache_unavailable, "committer.prepare",
         FaultAction::Fail(UnavailableError("Real-time Cache Prepare failed")));
  toggle(faults.spanner_commit_fails, "committer.commit",
         FaultAction::Fail(AbortedError("Spanner commit failed (injected)")));
  // The unknown-outcome leg's status is fixed by the site; any action works.
  toggle(faults.unknown_outcome, "committer.outcome_unknown",
         FaultAction::Drop());
}

StatusOr<CommitResponse> Committer::Commit(
    const std::string& database_id, index::IndexCatalog& catalog,
    const std::vector<Mutation>& mutations,
    const std::vector<TriggerDefinition>& triggers,
    const rules::RuleSet* rules, const rules::AuthContext* auth) {
  auto txn = spanner_->BeginTransaction();
  return CommitInternal(database_id, catalog, *txn, mutations, triggers,
                        rules, auth);
}

StatusOr<CommitResponse> Committer::RunTransaction(
    const std::string& database_id, index::IndexCatalog& catalog,
    const TransactionBody& body,
    const std::vector<TriggerDefinition>& triggers, int max_attempts) {
  RetryPolicy policy = options_.retry_policy;
  policy.max_attempts = max_attempts;
  // Attribute this loop's retry metrics to the committer regardless of the
  // configured policy's label (retry.attempts{backend.run_transaction}).
  policy.name = "backend.run_transaction";
  RetryState retry(policy, clock_, options_.retry_seed);
  while (true) {
    auto txn = spanner_->BeginTransaction();
    StatusOr<std::vector<Mutation>> mutations = body(*txn);
    Status failure;
    if (!mutations.ok()) {
      failure = mutations.status();
    } else {
      StatusOr<CommitResponse> result = CommitInternal(
          database_id, catalog, *txn, *mutations, triggers, nullptr, nullptr);
      if (result.ok()) return result;
      failure = result.status();
    }
    Micros delay = 0;
    if (!retry.ShouldRetryWrite(failure, &delay)) return failure;
    if (options_.retry_sleep) options_.retry_sleep(delay);
  }
}

StatusOr<CommitResponse> Committer::CommitInternal(
    const std::string& database_id, index::IndexCatalog& catalog,
    spanner::ReadWriteTransaction& txn,
    const std::vector<Mutation>& mutations,
    const std::vector<TriggerDefinition>& triggers,
    const rules::RuleSet* rules, const rules::AuthContext* auth) {
  FS_SPAN("backend.commit");
  if (mutations.empty()) {
    return InvalidArgumentError("commit with no mutations");
  }
  for (const Mutation& m : mutations) {
    if (!m.name.IsDocumentPath()) {
      return InvalidArgumentError("'" + m.name.CanonicalString() +
                                  "' is not a document path");
    }
  }

  // Step 2: read every touched document with an exclusive lock.
  std::map<std::string, std::optional<Document>> state;   // by canonical name
  std::map<std::string, std::optional<Document>> original;
  std::map<std::string, ResourcePath> paths;
  {
    FS_SPAN("backend.commit.read_set");
    for (const Mutation& m : mutations) {
      std::string key = m.name.CanonicalString();
      if (state.count(key) != 0) continue;
      Timestamp version = 0;
      ASSIGN_OR_RETURN(
          spanner::RowValue row,
          txn.Read(index::kEntitiesTable,
                   index::EntityKey(database_id, m.name),
                   spanner::LockMode::kExclusive, &version));
      std::optional<Document> doc;
      if (row.has_value()) {
        ASSIGN_OR_RETURN(Document parsed, codec::ParseDocument(*row));
        codec::ResolveDocumentTimestamps(parsed, version);
        doc = std::move(parsed);
      }
      state[key] = doc;
      original[key] = std::move(doc);
      paths.emplace(key, m.name);
    }
  }

  // Transactionally-consistent lookup for rules get()/exists().
  rules::DocumentLookup lookup =
      [this, &txn, &database_id](
          const ResourcePath& path)
      -> StatusOr<std::optional<Document>> {
    Timestamp version = 0;
    ASSIGN_OR_RETURN(spanner::RowValue row,
                     txn.Read(index::kEntitiesTable,
                              index::EntityKey(database_id, path),
                              spanner::LockMode::kShared, &version));
    if (!row.has_value()) return std::optional<Document>();
    ASSIGN_OR_RETURN(Document doc, codec::ParseDocument(*row));
    codec::ResolveDocumentTimestamps(doc, version);
    return std::optional<Document>(std::move(doc));
  };

  // Steps 2b-3: preconditions, security rules, new document states.
  for (const Mutation& m : mutations) {
    std::string key = m.name.CanonicalString();
    std::optional<Document>& current = state[key];
    ASSIGN_OR_RETURN(std::optional<Document> next,
                     ApplyMutation(m, current));
    if (rules != nullptr) {
      rules::AccessRequest request;
      request.kind = RuleKindFor(m, current.has_value());
      request.path = m.name;
      request.auth = auth != nullptr ? *auth : rules::AuthContext{};
      request.resource = current;
      request.new_resource = next;
      request.lookup = lookup;
      Status allowed = rules->Authorize(request);
      if (!allowed.ok()) {
        txn.Abort();
        return allowed;
      }
    }
    current = std::move(next);
  }

  // Step 4: buffer entity rows and index-entry deltas.
  CommitResponse response;
  std::vector<ResourcePath> names;
  int64_t writes = 0, deletes = 0, storage_delta = 0;
  for (auto& [key, new_doc] : state) {
    const std::optional<Document>& old_doc = original[key];
    const ResourcePath& name = paths.at(key);
    if (!old_doc.has_value() && !new_doc.has_value()) continue;  // no-op
    names.push_back(name);

    std::vector<std::string> old_entries;
    if (old_doc.has_value()) {
      old_entries = index::ComputeIndexEntries(catalog, database_id,
                                               *old_doc);
      storage_delta -= static_cast<int64_t>(old_doc->ByteSize());
    }
    std::vector<std::string> new_entries;
    if (new_doc.has_value()) {
      // Persist the resolved create time; 0 means "insert" (the row version
      // becomes the create time on read).
      Document to_store = *new_doc;
      if (!old_doc.has_value()) to_store.set_create_time(0);
      to_store.set_update_time(0);
      txn.Put(index::kEntitiesTable, index::EntityKey(database_id, name),
              codec::SerializeDocument(to_store));
      new_entries = index::ComputeIndexEntries(catalog, database_id,
                                               *new_doc);
      storage_delta += static_cast<int64_t>(new_doc->ByteSize());
      ++writes;
    } else {
      txn.Delete(index::kEntitiesTable, index::EntityKey(database_id, name));
      ++deletes;
    }
    // Sorted-set difference keeps the work proportional to the change.
    for (const std::string& entry : old_entries) {
      if (!std::binary_search(new_entries.begin(), new_entries.end(),
                              entry)) {
        txn.Delete(index::kIndexEntriesTable, entry);
        ++response.index_entries_written;
      }
    }
    for (const std::string& entry : new_entries) {
      if (!std::binary_search(old_entries.begin(), old_entries.end(),
                              entry)) {
        txn.Put(index::kIndexEntriesTable, entry, "");
        ++response.index_entries_written;
      }
    }

    DocumentChange change;
    change.name = name;
    change.deleted = !new_doc.has_value();
    change.new_doc = new_doc;
    change.old_doc = old_doc;
    // The commit's trace context travels with the change through the
    // realtime pipeline (Changelog buffer -> QueryMatcher -> Frontend), so
    // the async notification leg joins this trace.
    change.trace = CurrentTraceContext();
    response.changes.push_back(std::move(change));
  }
  if (names.empty()) {
    txn.Abort();
    return InvalidArgumentError("commit had no effective mutations");
  }

  // Trigger messages ride the transactional message queue (paper §IV-D2:
  // "the Backend persists a message with the changes to document(s)").
  for (const DocumentChange& change : response.changes) {
    for (const TriggerDefinition& trigger : triggers) {
      if (!trigger.MatchesPath(change.name)) continue;
      TriggerEvent event;
      event.database_id = database_id;
      event.function_name = trigger.function_name;
      event.change = change;
      txn.AddMessage(kTriggerTopic, event.Serialize());
    }
  }

  // Step 5: Prepare with the Real-time Cache.
  Timestamp max_ts = clock_->NowMicros() + options_.max_commit_margin;
  Timestamp min_ts = 0;
  uint64_t prepare_token = 0;
  if (realtime_ != nullptr) {
    FS_SPAN("backend.commit.prepare");
    if (Status fault = FS_FAULT_POINT("committer.prepare"); !fault.ok()) {
      txn.Abort();
      return fault;
    }
    StatusOr<PrepareHandle> prepared =
        realtime_->Prepare(database_id, names, max_ts);
    if (!prepared.ok()) {
      txn.Abort();
      return prepared.status();
    }
    min_ts = prepared->min_commit_ts;
    prepare_token = prepared->token;
  }

  // Step 6: Spanner commit within [min_ts, max_ts].
  if (Status fault = FS_FAULT_POINT("committer.commit"); !fault.ok()) {
    txn.Abort();
    if (realtime_ != nullptr) {
      realtime_->Accept(prepare_token, WriteOutcome::kFailed, 0, {});
    }
    return fault;
  }
  StatusOr<spanner::CommitResult> commit = [&] {
    FS_SPAN("backend.commit.spanner");
    return txn.Commit(min_ts, max_ts);
  }();
  if (!commit.ok()) {
    if (realtime_ != nullptr) {
      realtime_->Accept(prepare_token, WriteOutcome::kFailed, 0, {});
    }
    return commit.status();
  }
  response.commit_ts = commit->commit_ts;
  response.spanner_participants = commit->participants;

  // Resolve the timestamps in the reported changes.
  for (DocumentChange& change : response.changes) {
    if (change.new_doc.has_value()) {
      change.new_doc->set_update_time(response.commit_ts);
      if (change.new_doc->create_time() == 0) {
        change.new_doc->set_create_time(response.commit_ts);
      }
    }
  }

  // Step 7: Accept.
  if (realtime_ != nullptr) {
    FS_SPAN("backend.commit.accept");
    if (FS_FAULT_TRIGGERED("committer.outcome_unknown")) {
      realtime_->Accept(prepare_token, WriteOutcome::kUnknown, 0, {});
      // The commit actually succeeded; the client sees a timeout.
      return DeadlineExceededError("Spanner commit outcome unknown");
    }
    realtime_->Accept(prepare_token, WriteOutcome::kSuccess,
                      response.commit_ts, response.changes);
  }

  if (billing_ != nullptr) {
    if (writes > 0) billing_->RecordWrites(database_id, writes);
    if (deletes > 0) billing_->RecordDeletes(database_id, deletes);
    billing_->AdjustStorage(database_id, storage_delta);
  }
  return response;
}

}  // namespace firestore::backend
