// Deterministic fault-injection framework.
//
// The paper's write path is failure-driven: contention is resolved "by
// failing and retrying such transactions", a failed Real-time Cache Prepare
// fails the write, expired Prepares mark ranges out-of-sync, and listeners
// recover via snapshot resets. Every one of those legs is exercised through
// *named fault points* threaded through the layers:
//
//   Status s = FS_FAULT_POINT("spanner.txn.commit");   // status-returning
//   if (FS_FAULT_TRIGGERED("rtcache.accept.drop")) return;  // drop sites
//
// Fault points are registered in the global FaultRegistry (lazily, the first
// time control flows through them) and are disarmed by default. Tests and
// chaos harnesses arm them with a FaultConfig: a seeded firing probability, a
// trigger window (skip the first N hits, fire at most M times), and an
// action — return a given Status, add latency via the injected Clock, or
// drop the message at the site.
//
// Disarmed cost: one function-local static guard plus one relaxed atomic
// load and a predictable branch. No registry lookup, no lock, no allocation
// — measured unobservable on the YCSB update hot path (docs/ROBUSTNESS.md).
//
// The registry is process-global (fault points are identified by name, not
// by component instance), which is what makes a single chaos schedule able
// to reach every layer at once. The legacy per-instance hooks
// (Changelog::set_unavailable, backend::CommitFaults) are thin shims over
// this registry.

#ifndef FIRESTORE_COMMON_FAULT_INJECTION_H_
#define FIRESTORE_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace firestore {

// What an armed fault point does when it fires.
struct FaultAction {
  enum class Kind {
    kReturnStatus,  // status sites return `status`; drop sites trigger
    kLatency,       // advance the injected ManualClock (or sleep) by `latency`
    kDrop,          // drop sites trigger; status sites treat as no-op
  };

  Kind kind = Kind::kReturnStatus;
  Status status = Status(StatusCode::kUnavailable, "injected fault");
  Micros latency = 0;

  static FaultAction Fail(Status s) {
    FaultAction a;
    a.kind = Kind::kReturnStatus;
    a.status = std::move(s);
    return a;
  }
  static FaultAction Latency(Micros us) {
    FaultAction a;
    a.kind = Kind::kLatency;
    a.latency = us;
    return a;
  }
  static FaultAction Drop() {
    FaultAction a;
    a.kind = Kind::kDrop;
    return a;
  }
};

// Arming configuration for one fault point. Defaults fire on every hit.
struct FaultConfig {
  // Chance of firing per eligible hit, decided by a per-point Rng seeded
  // with `seed` at Arm() time — the sequence of fire/no-fire decisions for a
  // point is a pure function of (seed, hit index).
  double probability = 1.0;
  uint64_t seed = 1;

  // Trigger window: let the first `skip_first` hits pass untouched, then
  // fire at most `max_fires` times (-1 = unlimited).
  int skip_first = 0;
  int max_fires = -1;

  FaultAction action;
};

// Point statistics, for tests and debugging. `hits`/`fires` count within
// the current arm window (re-arming resets them along with the trigger
// window); `total_hits`/`total_fires` accumulate over the process lifetime
// and survive re-arms — chaos harnesses that re-arm points per schedule
// window sum these to prove the schedule was non-vacuous.
struct FaultPointStats {
  std::string name;
  bool armed = false;
  int64_t hits = 0;   // evaluations while armed, since the last Arm()
  int64_t fires = 0;  // times the action fired, since the last Arm()
  int64_t total_hits = 0;
  int64_t total_fires = 0;
};

// Global registry of named fault points.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  // Fast disarmed check, inlined into every fault point.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  // Arms `name` with `config` (re-arming replaces the config and resets the
  // hit/fire window and the Rng). The point does not need to have been
  // reached yet.
  void Arm(const std::string& name, FaultConfig config);
  void Disarm(const std::string& name);
  void DisarmAll();

  // Latency actions advance this clock when set; otherwise they sleep for
  // real. Pass nullptr to restore sleeping.
  void SetLatencyClock(ManualClock* clock);

  // Records `name` as a known fault point (called by the FS_FAULT_* macros
  // on first execution; idempotent).
  void RegisterPoint(const char* name);

  // Every point ever registered or armed, sorted by name.
  std::vector<FaultPointStats> KnownPoints() const;
  // Just the names of KnownPoints(), sorted — the cheap form for catalog
  // cross-checks (tests compare this against docs/ROBUSTNESS.md).
  std::vector<std::string> ListPoints() const;
  FaultPointStats StatsFor(const std::string& name) const;

  // Slow paths behind the macros. Evaluate returns the injected Status (or
  // OK); EvaluateTriggered reports whether the point fired at all, for
  // drop/reorder sites. Both apply latency actions as a side effect.
  Status Evaluate(std::string_view name);
  bool EvaluateTriggered(std::string_view name);

 private:
  struct PointState {
    FaultConfig config;
    bool armed = false;
    int64_t hits = 0;         // window counters: reset by Arm()
    int64_t fires = 0;
    int64_t total_hits = 0;   // lifetime counters: never reset
    int64_t total_fires = 0;
    std::unique_ptr<Rng> rng;
  };

  FaultRegistry() = default;

  // Returns true and copies the action out if the point fired.
  bool FireLocked(std::string_view name, FaultAction* action)
      FS_REQUIRES(mu_);
  void ApplyLatency(Micros latency);

  inline static std::atomic<int> armed_count_{0};

  mutable Mutex mu_;
  std::map<std::string, PointState, std::less<>> points_ FS_GUARDED_BY(mu_);
  std::atomic<ManualClock*> latency_clock_{nullptr};
};

// RAII arming: disarms the point on scope exit. The unit-test idiom — a
// leaked armed point would silently poison every later test in the binary.
class ScopedFault {
 public:
  ScopedFault(std::string name, FaultConfig config) : name_(std::move(name)) {
    FaultRegistry::Global().Arm(name_, std::move(config));
  }
  explicit ScopedFault(std::string name)
      : ScopedFault(std::move(name), FaultConfig()) {}
  ~ScopedFault() { FaultRegistry::Global().Disarm(name_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string name_;
};

namespace internal {
struct FaultPointRegistration {
  explicit FaultPointRegistration(const char* name) {
    FaultRegistry::Global().RegisterPoint(name);
  }
};
}  // namespace internal

}  // namespace firestore

// Status-returning fault point: evaluates to Status::Ok() unless `name` is
// armed and fires, in which case the configured Status is returned (latency
// actions apply the delay and return OK). Use with RETURN_IF_ERROR.
#define FS_FAULT_POINT(name)                                                 \
  ([]() -> ::firestore::Status {                                             \
    static const ::firestore::internal::FaultPointRegistration fs_reg{name}; \
    (void)fs_reg;                                                            \
    if (!::firestore::FaultRegistry::AnyArmed()) {                           \
      return ::firestore::Status::Ok();                                      \
    }                                                                        \
    return ::firestore::FaultRegistry::Global().Evaluate(name);              \
  }())

// Boolean fault point for drop/reorder/structured sites: true when `name`
// is armed and fires this hit.
#define FS_FAULT_TRIGGERED(name)                                             \
  ([]() -> bool {                                                            \
    static const ::firestore::internal::FaultPointRegistration fs_reg{name}; \
    (void)fs_reg;                                                            \
    if (!::firestore::FaultRegistry::AnyArmed()) return false;               \
    return ::firestore::FaultRegistry::Global().EvaluateTriggered(name);     \
  }())

#endif  // FIRESTORE_COMMON_FAULT_INJECTION_H_
