#include "common/bytes.h"

namespace firestore {

std::string ToHex(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

std::string PrefixSuccessor(std::string_view prefix) {
  std::string result(prefix);
  while (!result.empty()) {
    if (static_cast<unsigned char>(result.back()) != 0xff) {
      result.back() = static_cast<char>(
          static_cast<unsigned char>(result.back()) + 1);
      return result;
    }
    result.pop_back();
  }
  return result;  // empty: unbounded
}

std::string KeySuccessor(std::string_view key) {
  std::string result(key);
  result.push_back('\0');
  return result;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace firestore
