#include "common/thread_annotations.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace firestore {

namespace {

std::atomic<bool> g_lock_order_enabled{false};

// Global acquisition-order graph. Edge (a, b) means "a was held while b was
// acquired". Guarded by its own plain std::mutex (never a firestore::Mutex,
// which would recurse into the checker).
struct Registry {
  // fslint: allow(raw-sync) -- checker internals must not recurse into firestore::Mutex
  std::mutex mu;
  std::set<std::pair<const void*, const void*>> edges;
};

Registry& GetRegistry() {
  // Leaked intentionally: mutexes may be destroyed during static teardown.
  static Registry* registry = new Registry;
  return *registry;
}

// Locks held by the calling thread, in acquisition order. Shared and
// exclusive holds are tracked alike; the checker is deliberately stricter
// than strictly necessary for reader locks, which keeps the discipline
// simple: one global acquisition order, whatever the mode.
thread_local std::vector<const void*> t_held;

}  // namespace

void LockOrderChecker::SetEnabled(bool enabled) {
  g_lock_order_enabled.store(enabled, std::memory_order_relaxed);
  if (!enabled) {
    Registry& registry = GetRegistry();
    // fslint: allow(raw-sync) -- checker internals must not recurse into firestore::Mutex
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.edges.clear();
  }
}

bool LockOrderChecker::enabled() {
  return g_lock_order_enabled.load(std::memory_order_relaxed);
}

void LockOrderChecker::BeforeAcquire(const void* mu, const char* kind) {
  // Recursive acquisition of these non-recursive mutexes is always a bug and
  // would deadlock (or be UB); catch it before blocking. SharedMutex
  // shared-after-shared reacquisition is also flagged: it deadlocks when a
  // writer queues between the two reader acquisitions.
  if (std::find(t_held.begin(), t_held.end(), mu) != t_held.end()) {
    FS_LOG(FATAL) << "recursive acquisition of " << kind << " @" << mu
                  << " on the same thread (self-deadlock)";
  }
  if (!enabled() || t_held.empty()) return;
  Registry& registry = GetRegistry();
  // fslint: allow(raw-sync) -- checker internals must not recurse into firestore::Mutex
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const void* held : t_held) {
    if (registry.edges.count({mu, held}) != 0) {
      FS_LOG(FATAL) << "lock-order inversion: acquiring " << kind << " @"
                    << mu << " while holding @" << held
                    << ", but the opposite order was observed earlier "
                       "(potential deadlock)";
    }
    registry.edges.emplace(held, mu);
  }
}

void LockOrderChecker::AfterAcquire(const void* mu) { t_held.push_back(mu); }

void LockOrderChecker::OnRelease(const void* mu) {
  // Locks are usually released in LIFO order; search from the back.
  auto it = std::find(t_held.rbegin(), t_held.rend(), mu);
  if (it == t_held.rend()) {
    FS_LOG(FATAL) << "releasing mutex @" << mu
                  << " not held by this thread";
  }
  t_held.erase(std::next(it).base());
}

void LockOrderChecker::OnDestroy(const void* mu) {
  if (!enabled()) return;
  Registry& registry = GetRegistry();
  // fslint: allow(raw-sync) -- checker internals must not recurse into firestore::Mutex
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto it = registry.edges.begin(); it != registry.edges.end();) {
    if (it->first == mu || it->second == mu) {
      it = registry.edges.erase(it);
    } else {
      ++it;
    }
  }
}

bool LockOrderChecker::HeldByThisThread(const void* mu) {
  return std::find(t_held.begin(), t_held.end(), mu) != t_held.end();
}

}  // namespace firestore
