#include "common/metrics.h"

#include <algorithm>
#include <sstream>

namespace firestore {
namespace {

// Escapes a string for JSON output (names/labels are plain identifiers in
// practice, but labels carry tenant ids which may contain '/').
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Fixed-precision double formatting: snapshots must be byte-identical
// across runs, and default ostream precision is locale-stable but verbose.
std::string FormatDouble(double v) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << v;
  return os.str();
}

}  // namespace

Timer::Timer() : buckets_(Histogram::kBucketCount) {}

void Timer::Record(Micros value) {
  if (value < 0) value = 0;
  const int bucket = Histogram::BucketFor(static_cast<double>(value));
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // First sample initializes min/max; later samples CAS toward the extreme.
  // count_ is incremented before this point, so an observer may briefly see
  // count=1 with min=0 on the first record — acceptable for monitoring.
  if (count_.load(std::memory_order_relaxed) == 1) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  Micros seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double Timer::Mean() const {
  const int64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

double Timer::Quantile(double q) const {
  // Mirrors Histogram::Quantile over the atomic buckets: walk the buckets to
  // the target rank, report the bucket midpoint clamped to [min, max].
  const int64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double lo = static_cast<double>(min_.load(std::memory_order_relaxed));
  const double hi = static_cast<double>(max_.load(std::memory_order_relaxed));
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(n - 1));
  uint64_t seen = 0;
  for (int b = 0; b < Histogram::kBucketCount; ++b) {
    seen += buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    if (seen > target) {
      return std::clamp(Histogram::BucketMidpoint(b), lo, hi);
    }
  }
  return hi;
}

void Timer::ResetForTest() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter& MetricRegistry::GetCounter(std::string_view name,
                                    std::string_view label) {
  Key key{std::string(name), std::string(label)};
  {
    ReaderMutexLock lock(&mu_);
    auto it = counters_.find(key);
    if (it != counters_.end()) return it->second;
  }
  WriterMutexLock lock(&mu_);
  return counters_[key];
}

Gauge& MetricRegistry::GetGauge(std::string_view name,
                                std::string_view label) {
  Key key{std::string(name), std::string(label)};
  {
    ReaderMutexLock lock(&mu_);
    auto it = gauges_.find(key);
    if (it != gauges_.end()) return it->second;
  }
  WriterMutexLock lock(&mu_);
  return gauges_[key];
}

Timer& MetricRegistry::GetTimer(std::string_view name,
                                std::string_view label) {
  Key key{std::string(name), std::string(label)};
  {
    ReaderMutexLock lock(&mu_);
    auto it = timers_.find(key);
    if (it != timers_.end()) return it->second;
  }
  WriterMutexLock lock(&mu_);
  return timers_[key];
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snap;
  ReaderMutexLock lock(&mu_);
  for (const auto& [key, counter] : counters_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kCounter;
    s.name = key.first;
    s.label = key.second;
    s.value = counter.value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [key, gauge] : gauges_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kGauge;
    s.name = key.first;
    s.label = key.second;
    s.value = gauge.value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [key, timer] : timers_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kTimer;
    s.name = key.first;
    s.label = key.second;
    s.value = timer.count();
    s.mean = timer.Mean();
    s.p50 = timer.Quantile(0.5);
    s.p95 = timer.Quantile(0.95);
    s.p99 = timer.Quantile(0.99);
    s.min = timer.min();
    s.max = timer.max();
    snap.samples.push_back(std::move(s));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.label < b.label;
            });
  return snap;
}

void MetricRegistry::ResetForTest() {
  WriterMutexLock lock(&mu_);
  for (auto& [key, counter] : counters_) {
    counter.value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [key, gauge] : gauges_) {
    gauge.value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [key, timer] : timers_) timer.ResetForTest();
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream os;
  for (const MetricSample& s : samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        os << "counter ";
        break;
      case MetricSample::Kind::kGauge:
        os << "gauge ";
        break;
      case MetricSample::Kind::kTimer:
        os << "timer ";
        break;
    }
    os << s.name;
    if (!s.label.empty()) os << "{" << s.label << "}";
    if (s.kind == MetricSample::Kind::kTimer) {
      os << " count=" << s.value << " mean=" << FormatDouble(s.mean)
         << " p50=" << FormatDouble(s.p50) << " p95=" << FormatDouble(s.p95)
         << " p99=" << FormatDouble(s.p99) << " min=" << s.min
         << " max=" << s.max;
    } else {
      os << " " << s.value;
    }
    os << "\n";
  }
  return os.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"kind\": \"";
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        os << "counter";
        break;
      case MetricSample::Kind::kGauge:
        os << "gauge";
        break;
      case MetricSample::Kind::kTimer:
        os << "timer";
        break;
    }
    os << "\", \"name\": \"" << JsonEscape(s.name) << "\"";
    if (!s.label.empty()) os << ", \"label\": \"" << JsonEscape(s.label) << "\"";
    if (s.kind == MetricSample::Kind::kTimer) {
      os << ", \"count\": " << s.value << ", \"mean\": " << FormatDouble(s.mean)
         << ", \"p50\": " << FormatDouble(s.p50)
         << ", \"p95\": " << FormatDouble(s.p95)
         << ", \"p99\": " << FormatDouble(s.p99) << ", \"min\": " << s.min
         << ", \"max\": " << s.max;
    } else {
      os << ", \"value\": " << s.value;
    }
    os << "}";
  }
  os << "\n]\n";
  return os.str();
}

}  // namespace firestore
