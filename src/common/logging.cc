#include "common/logging.h"

#include <atomic>

namespace firestore {
namespace internal_logging {
namespace {

std::atomic<LogSeverity> g_min_level{LogSeverity::kWarning};

}  // namespace

LogSeverity MinLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

void SetMinLogLevel(LogSeverity severity) {
  g_min_level.store(severity, std::memory_order_relaxed);
}

}  // namespace internal_logging
}  // namespace firestore
