// Request-scoped tracing (docs/OBSERVABILITY.md).
//
// A Trace owns a tree of timed spans for one logical request. Span timing
// comes from the injected Clock (common/clock.h) — never a wall clock — so
// traces are deterministic in tests and legal under the fslint determinism
// rule.
//
// Propagation model:
//  - Synchronous: a thread carries an *ambient* context (thread-local).
//    TraceScope installs a trace (or a resumed Context) for its lifetime;
//    FS_SPAN(name) opens a child span of the innermost open span, or is a
//    no-op (one thread-local load and branch) when no trace is ambient —
//    instrumentation sites cost nothing on untraced requests.
//  - Asynchronous: CurrentTraceContext() captures the ambient context into a
//    copyable Trace::Context. The context can be stored with queued work
//    (e.g. a DocumentChange buffered in the rtcache Changelog) and resumed
//    later with TraceScope on any thread; the shared trace state stays alive
//    as long as any context references it, even after the Trace object is
//    gone. This is how a commit's trace follows the realtime pipeline:
//    commit → Changelog fanout → QueryMatcher → Frontend delivery, so one
//    trace shows write-ack AND notification latency (paper Fig. 9).
//
// FS_SPAN names are catalogued: the fslint metric-name-registry rule
// requires every span name under src/ to be unique and listed in
// docs/OBSERVABILITY.md.

#ifndef FIRESTORE_COMMON_TRACE_H_
#define FIRESTORE_COMMON_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"

namespace firestore {

// One completed (or still-open) span. `end == 0` means still open. Ids are
// 1-based and unique within a trace; the root span has parent_id 0.
struct TraceSpan {
  int64_t id = 0;
  int64_t parent_id = 0;
  std::string name;
  Micros start = 0;
  Micros end = 0;
};

namespace internal {

// Shared mutable state behind a Trace and every Context captured from it.
// Held by shared_ptr so async hops outlive the originating Trace object.
struct TraceState {
  explicit TraceState(const Clock* c) : clock(c) {}

  const Clock* const clock;
  mutable Mutex mu;
  std::vector<TraceSpan> spans FS_GUARDED_BY(mu);  // index == id - 1
  int64_t next_id FS_GUARDED_BY(mu) = 1;
};

}  // namespace internal

// A request trace. Construction opens the root span; Finish() (or the
// destructor) closes it. Thread-safe: spans may be opened from any thread
// holding a context.
class Trace {
 public:
  // A copyable, resumable handle: "this trace, parented at this span".
  // Default-constructed (or captured with no ambient trace) contexts are
  // inactive — resuming them is a no-op, so untraced requests pay nothing.
  struct Context {
    std::shared_ptr<internal::TraceState> state;
    int64_t parent_id = 0;

    bool active() const { return state != nullptr; }
  };

  Trace(const Clock* clock, std::string name);
  ~Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  // Closes the root span (idempotent).
  void Finish();

  // Context parented at the root span, for manual propagation.
  Context context() const;

  // Snapshot of all spans recorded so far (any thread).
  std::vector<TraceSpan> spans() const;

  // Human-readable tree, children indented under parents, times relative to
  // the root span's start:
  //   trace "ycsb.update" (7 spans)
  //     service.commit  +0us dur=310us
  //       backend.commit  +10us dur=290us
  std::string Dump() const;

 private:
  std::shared_ptr<internal::TraceState> state_;
  static constexpr int64_t kRootId = 1;
};

// Installs a trace (or resumed context) as the calling thread's ambient
// trace for the scope's lifetime; restores the previous ambient on exit.
// Resuming an inactive Context installs "no trace" (inner FS_SPANs no-op).
class TraceScope {
 public:
  explicit TraceScope(const Trace& trace);
  explicit TraceScope(const Trace::Context& context);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::shared_ptr<internal::TraceState> saved_state_;
  int64_t saved_parent_ = 0;
};

// RAII span against the ambient trace; no-op when none is installed.
// Prefer the FS_SPAN macro. Span open/close takes the trace's own mutex
// only — never a module lock — and sites should sit outside critical
// sections where feasible.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  internal::TraceState* state_ = nullptr;  // null: inactive
  int64_t id_ = 0;
  int64_t saved_parent_ = 0;
};

// Captures the calling thread's ambient context (inactive if none) for
// handoff to async work.
Trace::Context CurrentTraceContext();

}  // namespace firestore

#define FS_SPAN_CONCAT_INNER(a, b) a##b
#define FS_SPAN_CONCAT(a, b) FS_SPAN_CONCAT_INNER(a, b)

// Opens a span named `name` (a unique catalogued string literal, see
// docs/OBSERVABILITY.md) covering the rest of the enclosing block.
#define FS_SPAN(name) \
  ::firestore::ScopedSpan FS_SPAN_CONCAT(fs_span_, __LINE__)(name)

#endif  // FIRESTORE_COMMON_TRACE_H_
