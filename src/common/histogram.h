// Latency recording with percentile queries.
//
// Histogram uses logarithmic bucketing (HdrHistogram-style, base-2 buckets
// with 64 linear sub-buckets) so that recording is O(1) and memory is bounded
// regardless of sample count, with <2% relative error on percentiles.

#ifndef FIRESTORE_COMMON_HISTOGRAM_H_
#define FIRESTORE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace firestore {

class Histogram {
 public:
  Histogram();

  void Record(double value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  double min() const;
  double max() const;
  double Mean() const;
  // q in [0, 1]; e.g. Quantile(0.99) is p99. Returns 0 when empty.
  double Quantile(double q) const;

  // "count=..., mean=..., p50=..., p95=..., p99=..., max=..." summary line.
  std::string Summary() const;

  // Bucket math, shared with the lock-free metrics::Timer (common/metrics.h)
  // so both report identically-bucketed percentiles.
  static constexpr int kSubBuckets = 64;  // per power-of-two range
  static constexpr int kRanges = 40;      // covers up to ~2^40
  static constexpr int kBucketCount = kSubBuckets * kRanges;

  static int BucketFor(double value);
  static double BucketMidpoint(int bucket);

 private:
 std::vector<uint32_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Boxplot-style summary used by the Fig. 6 harness: values normalized to the
// median, reported at several quantiles.
struct BoxplotStats {
  double min, p1, p25, p50, p75, p99, max;
};

BoxplotStats ComputeBoxplot(std::vector<double> values);

}  // namespace firestore

#endif  // FIRESTORE_COMMON_HISTOGRAM_H_
