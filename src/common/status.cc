#include "common/status.h"

namespace firestore {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kUnknown:
      return "UNKNOWN";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "INVALID_CODE";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

Status CancelledError(std::string_view msg) {
  return Status(StatusCode::kCancelled, std::string(msg));
}
Status UnknownError(std::string_view msg) {
  return Status(StatusCode::kUnknown, std::string(msg));
}
Status InvalidArgumentError(std::string_view msg) {
  return Status(StatusCode::kInvalidArgument, std::string(msg));
}
Status DeadlineExceededError(std::string_view msg) {
  return Status(StatusCode::kDeadlineExceeded, std::string(msg));
}
Status NotFoundError(std::string_view msg) {
  return Status(StatusCode::kNotFound, std::string(msg));
}
Status AlreadyExistsError(std::string_view msg) {
  return Status(StatusCode::kAlreadyExists, std::string(msg));
}
Status PermissionDeniedError(std::string_view msg) {
  return Status(StatusCode::kPermissionDenied, std::string(msg));
}
Status ResourceExhaustedError(std::string_view msg) {
  return Status(StatusCode::kResourceExhausted, std::string(msg));
}
Status FailedPreconditionError(std::string_view msg) {
  return Status(StatusCode::kFailedPrecondition, std::string(msg));
}
Status AbortedError(std::string_view msg) {
  return Status(StatusCode::kAborted, std::string(msg));
}
Status OutOfRangeError(std::string_view msg) {
  return Status(StatusCode::kOutOfRange, std::string(msg));
}
Status UnimplementedError(std::string_view msg) {
  return Status(StatusCode::kUnimplemented, std::string(msg));
}
Status InternalError(std::string_view msg) {
  return Status(StatusCode::kInternal, std::string(msg));
}
Status UnavailableError(std::string_view msg) {
  return Status(StatusCode::kUnavailable, std::string(msg));
}

}  // namespace firestore
