#include "common/checksum.h"

#include <array>

namespace firestore {

namespace {

// CRC32C polynomial (reflected): 0x82f63b78.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32c(std::string_view data) {
  const auto& table = Table();
  uint32_t crc = 0xffffffffu;
  for (unsigned char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ c) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

void AppendChecksum(std::string& frame) {
  uint32_t crc = Crc32c(frame);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((crc >> (i * 8)) & 0xff));
  }
}

bool VerifyAndStripChecksum(std::string_view* frame) {
  if (frame->size() < 4) return false;
  std::string_view body = frame->substr(0, frame->size() - 4);
  uint32_t stored = 0;
  for (int i = 3; i >= 0; --i) {
    stored = (stored << 8) |
             static_cast<unsigned char>((*frame)[frame->size() - 4 + i]);
  }
  if (Crc32c(body) != stored) return false;
  *frame = body;
  return true;
}

}  // namespace firestore
