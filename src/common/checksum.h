// CRC32C (Castagnoli) checksums.
//
// Paper §VI: "mass-produced machines themselves are unreliable and may
// corrupt in-memory data. We are actively addressing these issues through
// the addition of end-to-end checksums to protect in-flight RPCs." Payloads
// that cross component boundaries (trigger messages, persisted client
// caches) carry one of these.

#ifndef FIRESTORE_COMMON_CHECKSUM_H_
#define FIRESTORE_COMMON_CHECKSUM_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace firestore {

uint32_t Crc32c(std::string_view data);

// Appends a 4-byte little-endian CRC32C of everything currently in `frame`.
void AppendChecksum(std::string& frame);

// Verifies and strips a trailing checksum; false if too short or mismatched.
bool VerifyAndStripChecksum(std::string_view* frame);

}  // namespace firestore

#endif  // FIRESTORE_COMMON_CHECKSUM_H_
