// Byte-string helpers shared by the codec and the storage layer.
//
// A "byte string" is std::string used as an opaque, bytewise-compared key,
// matching how Spanner-style storage orders rows.

#ifndef FIRESTORE_COMMON_BYTES_H_
#define FIRESTORE_COMMON_BYTES_H_

#include <string>
#include <string_view>

namespace firestore {

// Hex dump, e.g. "0a1b2c".
std::string ToHex(std::string_view bytes);

// Smallest byte string strictly greater than every string with the given
// prefix; empty result means "no upper bound" (prefix was all 0xff).
std::string PrefixSuccessor(std::string_view prefix);

// The immediate successor of a key in bytewise order (key + '\x00').
std::string KeySuccessor(std::string_view key);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace firestore

#endif  // FIRESTORE_COMMON_BYTES_H_
