// Unified retry/backoff layer.
//
// The paper resolves contention "by failing and retrying such transactions"
// and the Server SDKs provide "automatic retry with backoff"; every retry
// loop in this repository (the committer's wound-wait loop, the client SDK's
// mutation queue, the frontend's out-of-sync recovery, admission-rejection
// handling) goes through one policy type so budgets, backoff shape, and
// retryable-status classification live in a single place.
//
// Backoff is exponential with decorrelated jitter (the AWS "decorrelated"
// scheme: next = min(cap, uniform(base, prev * 3))), seeded explicitly so
// retry schedules are reproducible. Deadlines are absolute Micros values on
// the caller's injected Clock, so the discrete-event simulation and the
// ManualClock tests exercise deadline expiry deterministically.
//
// Admission rejections carry a retry-after hint inside the Status message
// (see WithRetryAfter / RetryAfterHint); RetryState honors the hint as a
// lower bound on the next delay.

#ifndef FIRESTORE_COMMON_RETRY_H_
#define FIRESTORE_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"

namespace firestore {

struct RetryPolicy {
  // Metric label for this policy: RetryState records "retry.attempts" /
  // "retry.give_ups" counters labeled with this name (docs/OBSERVABILITY.md),
  // so chaos runs can attribute retries to the loop that performed them.
  const char* name = "default";
  // Total attempts, including the first (1 = no retries).
  int max_attempts = 5;
  Micros initial_backoff = 10'000;   // 10 ms
  Micros max_backoff = 2'000'000;    // 2 s
  double multiplier = 2.0;
  // Decorrelated jitter; false gives plain truncated exponential backoff.
  bool decorrelated_jitter = true;
  // Absolute deadline on the injected Clock (0 = none): a retry whose delay
  // would land past the deadline is not attempted.
  Micros deadline = 0;

  static RetryPolicy NoRetry() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

// Generic transient classification: UNAVAILABLE, ABORTED, and
// RESOURCE_EXHAUSTED (load shedding) are worth retrying.
bool IsRetryableStatus(const Status& s);

// Write-path classification: additionally treats DEADLINE_EXCEEDED as
// retryable when it is a lock-wait timeout (the transaction failed before
// any data was applied). A generic DEADLINE_EXCEEDED — e.g. an
// unknown-outcome Spanner commit — is NOT retryable: the write may have
// landed and a blind retry could duplicate it.
bool IsRetryableWriteStatus(const Status& s);

// Attaches a machine-readable retry-after hint to a Status message;
// RetryAfterHint parses it back. Used by admission control so rejected
// callers know how long to back off.
Status WithRetryAfter(Status s, Micros retry_after);
std::optional<Micros> RetryAfterHint(const Status& s);

// One step of seeded decorrelated-jitter backoff: returns the next delay and
// updates *prev (pass 0 before the first retry). Exposed for callers that
// keep per-entity backoff state (frontend targets, the client mutation
// queue) without a full RetryState.
Micros NextBackoff(const RetryPolicy& policy, Rng& rng, Micros* prev);

// Attempt/backoff bookkeeping for one retryable operation.
class RetryState {
 public:
  RetryState(RetryPolicy policy, const Clock* clock, uint64_t seed)
      : policy_(policy), clock_(clock), rng_(seed) {}

  // Consumes one attempt. Returns true if `s` should be retried within the
  // policy's budget and deadline; *delay_out (may be null) receives the
  // backoff to apply first, honoring any retry-after hint in `s`.
  bool ShouldRetry(const Status& s, Micros* delay_out = nullptr) {
    return ShouldRetryClassified(IsRetryableStatus(s), s, delay_out);
  }
  bool ShouldRetryWrite(const Status& s, Micros* delay_out = nullptr) {
    return ShouldRetryClassified(IsRetryableWriteStatus(s), s, delay_out);
  }

  int attempts() const { return attempts_; }
  void Reset() {
    attempts_ = 0;
    prev_backoff_ = 0;
  }

 private:
  bool ShouldRetryClassified(bool retryable, const Status& s,
                             Micros* delay_out);

  RetryPolicy policy_;
  const Clock* clock_;
  Rng rng_;
  int attempts_ = 0;
  Micros prev_backoff_ = 0;
};

// Runs `fn` (returning Status) under `policy`. Between attempts the delay is
// passed to `sleep` when provided; with a null sleeper the delay is virtual
// (attempt counting and deadline checks still apply), which is what
// ManualClock-driven tests and the simulation want.
template <typename Fn>
Status RetryLoop(const RetryPolicy& policy, const Clock* clock, uint64_t seed,
                 Fn&& fn, const std::function<void(Micros)>& sleep = nullptr) {
  RetryState state(policy, clock, seed);
  while (true) {
    Status s = fn();
    Micros delay = 0;
    if (s.ok() || !state.ShouldRetry(s, &delay)) return s;
    if (sleep) sleep(delay);
  }
}

}  // namespace firestore

#endif  // FIRESTORE_COMMON_RETRY_H_
