// Minimal stream-style logging and CHECK macros.

#ifndef FIRESTORE_COMMON_LOGGING_H_
#define FIRESTORE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace firestore {
namespace internal_logging {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Global minimum severity; messages below it are dropped. Defaults to
// kWarning so tests and benches stay quiet.
LogSeverity MinLogLevel();
void SetMinLogLevel(LogSeverity severity);

class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line)
      : severity_(severity), file_(file), line_(line) {}

  ~LogMessage() {
    if (severity_ >= MinLogLevel() || severity_ == LogSeverity::kFatal) {
      static const char* const kNames[] = {"I", "W", "E", "F"};
      std::cerr << kNames[static_cast<int>(severity_)] << " " << file_ << ":"
                << line_ << "] " << stream_.str() << std::endl;
    }
    if (severity_ == LogSeverity::kFatal) std::abort();
  }

  std::ostringstream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Absorbs a stream expression into a void so CHECK macros can be a single
// well-formed expression statement (glog's LogMessageVoidify idiom).
// operator& binds lower than << but higher than ?:, which is exactly the
// precedence the FS_CHECK expansion needs.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace firestore

#define FS_LOG_INFO                                             \
  ::firestore::internal_logging::LogMessage(                    \
      ::firestore::internal_logging::LogSeverity::kInfo,        \
      __FILE__, __LINE__)                                       \
      .stream()
#define FS_LOG_WARNING                                          \
  ::firestore::internal_logging::LogMessage(                    \
      ::firestore::internal_logging::LogSeverity::kWarning,     \
      __FILE__, __LINE__)                                       \
      .stream()
#define FS_LOG_ERROR                                            \
  ::firestore::internal_logging::LogMessage(                    \
      ::firestore::internal_logging::LogSeverity::kError,       \
      __FILE__, __LINE__)                                       \
      .stream()
#define FS_LOG_FATAL                                            \
  ::firestore::internal_logging::LogMessage(                    \
      ::firestore::internal_logging::LogSeverity::kFatal,       \
      __FILE__, __LINE__)                                       \
      .stream()

#define FS_LOG(severity) FS_LOG_##severity

// CHECK aborts the process when the condition does not hold. These guard
// internal invariants, not user input (user input yields Status errors).
// The ternary/voidify expansion makes `FS_CHECK(x);` one well-formed
// statement, so it nests safely under unbraced if/else (the naive
// `if (!(cond)) FS_LOG(FATAL)` form is a dangling-else hazard).
#define FS_CHECK(cond)                                 \
  (cond) ? (void)0                                     \
         : ::firestore::internal_logging::Voidify() &  \
               FS_LOG(FATAL) << "Check failed: " #cond " "

#define FS_CHECK_EQ(a, b) FS_CHECK((a) == (b))
#define FS_CHECK_NE(a, b) FS_CHECK((a) != (b))
#define FS_CHECK_LT(a, b) FS_CHECK((a) < (b))
#define FS_CHECK_LE(a, b) FS_CHECK((a) <= (b))
#define FS_CHECK_GT(a, b) FS_CHECK((a) > (b))
#define FS_CHECK_GE(a, b) FS_CHECK((a) >= (b))

#define FS_CHECK_OK(expr)                                    \
  do {                                                       \
    ::firestore::Status _st = (expr);                        \
    if (!_st.ok()) FS_LOG(FATAL) << "Status not OK: " << _st; \
  } while (0)

#endif  // FIRESTORE_COMMON_LOGGING_H_
