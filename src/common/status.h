// Error handling primitives (exceptions are not used in this codebase).
//
// Status carries an error code plus a human-readable message; StatusOr<T>
// carries either a value or a non-OK Status. Modeled on absl::Status.

#ifndef FIRESTORE_COMMON_STATUS_H_
#define FIRESTORE_COMMON_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace firestore {

enum class StatusCode {
  kOk = 0,
  kCancelled = 1,
  kUnknown = 2,
  kInvalidArgument = 3,
  kDeadlineExceeded = 4,
  kNotFound = 5,
  kAlreadyExists = 6,
  kPermissionDenied = 7,
  kResourceExhausted = 8,
  kFailedPrecondition = 9,
  kAborted = 10,
  kOutOfRange = 11,
  kUnimplemented = 12,
  kInternal = 13,
  kUnavailable = 14,
};

std::string_view StatusCodeToString(StatusCode code);

class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors, mirroring absl::*Error().
Status CancelledError(std::string_view msg);
Status UnknownError(std::string_view msg);
Status InvalidArgumentError(std::string_view msg);
Status DeadlineExceededError(std::string_view msg);
Status NotFoundError(std::string_view msg);
Status AlreadyExistsError(std::string_view msg);
Status PermissionDeniedError(std::string_view msg);
Status ResourceExhaustedError(std::string_view msg);
Status FailedPreconditionError(std::string_view msg);
Status AbortedError(std::string_view msg);
Status OutOfRangeError(std::string_view msg);
Status UnimplementedError(std::string_view msg);
Status InternalError(std::string_view msg);
Status UnavailableError(std::string_view msg);

// A value-or-error holder. Accessing value() on a non-OK StatusOr aborts the
// process; callers must check ok() first (or use RETURN_IF_ERROR /
// ASSIGN_OR_RETURN below).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(const T& value) : rep_(value) {}                  // NOLINT
  StatusOr(T&& value) : rep_(std::move(value)) {}            // NOLINT
  StatusOr(Status status) : rep_(std::move(status)) {        // NOLINT
    if (std::get<Status>(rep_).ok()) std::abort();  // OK status is not a value.
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(rep_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    CheckOk();
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) std::abort();
  }

  std::variant<T, Status> rep_;
};

}  // namespace firestore

// Propagates a non-OK Status from an expression that yields Status.
#define RETURN_IF_ERROR(expr)                       \
  do {                                              \
    ::firestore::Status _st = (expr);               \
    if (!_st.ok()) return _st;                      \
  } while (0)

#define FS_STATUS_CONCAT_INNER(a, b) a##b
#define FS_STATUS_CONCAT(a, b) FS_STATUS_CONCAT_INNER(a, b)

// ASSIGN_OR_RETURN(lhs, expr): evaluates expr (a StatusOr<T>), returns its
// status on error, otherwise assigns the value to lhs.
#define ASSIGN_OR_RETURN(lhs, expr)                            \
  auto FS_STATUS_CONCAT(_statusor_, __LINE__) = (expr);        \
  if (!FS_STATUS_CONCAT(_statusor_, __LINE__).ok())            \
    return FS_STATUS_CONCAT(_statusor_, __LINE__).status();    \
  lhs = std::move(FS_STATUS_CONCAT(_statusor_, __LINE__)).value()

#endif  // FIRESTORE_COMMON_STATUS_H_
