// Clang thread-safety annotations and annotated mutex wrappers.
//
// The FS_* macros expand to Clang's `-Wthread-safety` attributes under Clang
// and to nothing elsewhere, so GCC builds are unaffected. Every
// mutex-protected member in the codebase is annotated with FS_GUARDED_BY and
// every "caller must hold the lock" helper with FS_REQUIRES; a Clang build
// with `-Wthread-safety -Werror=thread-safety` then machine-checks the
// locking discipline (see docs/STATIC_ANALYSIS.md).
//
// The Mutex / SharedMutex wrappers additionally feed a runtime lock-order
// checker (see LockOrderChecker below): when enabled, acquiring mutexes in an
// order that inverts a previously observed order aborts with a diagnostic,
// turning potential deadlocks into deterministic test failures. Recursive
// acquisition of a non-recursive mutex always aborts, even when the checker
// is disabled.

#ifndef FIRESTORE_COMMON_THREAD_ANNOTATIONS_H_
#define FIRESTORE_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define FS_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define FS_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside Clang
#endif

#define FS_CAPABILITY(x) FS_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define FS_SCOPED_CAPABILITY FS_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define FS_GUARDED_BY(x) FS_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define FS_PT_GUARDED_BY(x) FS_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define FS_ACQUIRED_BEFORE(...) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define FS_ACQUIRED_AFTER(...) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define FS_REQUIRES(...) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define FS_REQUIRES_SHARED(...) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define FS_ACQUIRE(...) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define FS_ACQUIRE_SHARED(...) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define FS_RELEASE(...) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define FS_RELEASE_SHARED(...) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define FS_RELEASE_GENERIC(...) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

#define FS_TRY_ACQUIRE(...) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define FS_TRY_ACQUIRE_SHARED(...) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

#define FS_EXCLUDES(...) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define FS_ASSERT_CAPABILITY(x) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define FS_ASSERT_SHARED_CAPABILITY(x) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

#define FS_RETURN_CAPABILITY(x) \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define FS_NO_THREAD_SAFETY_ANALYSIS \
  FS_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace firestore {

// Runtime lock-order checking shared by Mutex and SharedMutex. Maintains a
// per-thread stack of held locks (always) and, when enabled, a global
// happens-before graph of acquisition edges: acquiring B while holding A
// records A -> B; a later attempt to acquire A while holding B aborts before
// it can deadlock. Enable it in concurrency tests via
// LockOrderChecker::SetEnabled(true); the per-edge bookkeeping takes a global
// registry lock, so it is off by default.
class LockOrderChecker {
 public:
  static void SetEnabled(bool enabled);
  static bool enabled();

  // Called with `mu` not yet acquired: aborts on recursive acquisition and,
  // when enabled, on lock-order inversion.
  static void BeforeAcquire(const void* mu, const char* kind);
  // Called once `mu` is held (exclusively or shared).
  static void AfterAcquire(const void* mu);
  static void OnRelease(const void* mu);
  // Drops ordering edges involving a destroyed mutex so a recycled address
  // cannot produce false inversions.
  static void OnDestroy(const void* mu);
  // True if the calling thread holds `mu` (per the checker's bookkeeping).
  static bool HeldByThisThread(const void* mu);
};

class CondVar;

// std::mutex with Clang capability annotations and lock-order checking.
class FS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() { LockOrderChecker::OnDestroy(this); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FS_ACQUIRE() {
    LockOrderChecker::BeforeAcquire(this, "Mutex");
    mu_.lock();
    LockOrderChecker::AfterAcquire(this);
  }

  bool TryLock() FS_TRY_ACQUIRE(true) {
    LockOrderChecker::BeforeAcquire(this, "Mutex");
    if (!mu_.try_lock()) return false;
    LockOrderChecker::AfterAcquire(this);
    return true;
  }

  void Unlock() FS_RELEASE() {
    LockOrderChecker::OnRelease(this);
    mu_.unlock();
  }

  // Debug assertion hook; tells the static analysis the lock is held.
  void AssertHeld() const FS_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  // fslint: allow(raw-sync) -- Mutex is the sanctioned wrapper that owns the raw primitive
  std::mutex mu_;
};

// std::shared_mutex with capability annotations: exclusive for writers,
// shared for readers.
class FS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  ~SharedMutex() { LockOrderChecker::OnDestroy(this); }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() FS_ACQUIRE() {
    LockOrderChecker::BeforeAcquire(this, "SharedMutex");
    mu_.lock();
    LockOrderChecker::AfterAcquire(this);
  }

  void Unlock() FS_RELEASE() {
    LockOrderChecker::OnRelease(this);
    mu_.unlock();
  }

  void LockShared() FS_ACQUIRE_SHARED() {
    LockOrderChecker::BeforeAcquire(this, "SharedMutex(shared)");
    mu_.lock_shared();
    LockOrderChecker::AfterAcquire(this);
  }

  void UnlockShared() FS_RELEASE_SHARED() {
    LockOrderChecker::OnRelease(this);
    mu_.unlock_shared();
  }

  void AssertHeld() const FS_ASSERT_CAPABILITY(this) {}

 private:
  // fslint: allow(raw-sync) -- SharedMutex is the sanctioned wrapper that owns the raw primitive
  std::shared_mutex mu_;
};

// RAII exclusive lock on a Mutex.
class FS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) FS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Early release (for code that must drop the lock before scope end).
  void Unlock() FS_RELEASE() {
    mu_->Unlock();
    held_ = false;
  }

  ~MutexLock() FS_RELEASE() {
    if (held_) mu_->Unlock();
  }

 private:
  Mutex* mu_;
  bool held_ = true;
};

// RAII exclusive lock on a SharedMutex.
class FS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) FS_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

  void Unlock() FS_RELEASE() {
    mu_->Unlock();
    held_ = false;
  }

  ~WriterMutexLock() FS_RELEASE() {
    if (held_) mu_->Unlock();
  }

 private:
  SharedMutex* mu_;
  bool held_ = true;
};

// RAII shared (reader) lock on a SharedMutex.
class FS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) FS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

  void Unlock() FS_RELEASE_GENERIC() {
    mu_->UnlockShared();
    held_ = false;
  }

  ~ReaderMutexLock() FS_RELEASE_GENERIC() {
    if (held_) mu_->UnlockShared();
  }

 private:
  SharedMutex* mu_;
  bool held_ = true;
};

// Condition variable paired with the annotated Mutex (abseil-style API so
// waiters keep the static analysis informed: Wait requires the mutex).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases *mu, waits, and reacquires *mu before returning.
  // fslint: allow(locked-suffix) -- wait primitive; takes the caller's mutex as a parameter
  void Wait(Mutex* mu) FS_REQUIRES(mu) {
    // fslint: allow(raw-sync) -- adopts the wrapper's underlying handle for cv wait
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  // Returns false if `deadline` passed before a notification arrived. The
  // mutex is held again either way.
  // fslint: allow(locked-suffix) -- wait primitive; takes the caller's mutex as a parameter
  bool WaitUntil(Mutex* mu, std::chrono::steady_clock::time_point deadline)
      FS_REQUIRES(mu) {
    // fslint: allow(raw-sync) -- adopts the wrapper's underlying handle for cv wait
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(lk, deadline);
    lk.release();
    return status != std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // fslint: allow(raw-sync) -- CondVar is the sanctioned wrapper that owns the raw primitive
  std::condition_variable cv_;
};

}  // namespace firestore

#endif  // FIRESTORE_COMMON_THREAD_ANNOTATIONS_H_
