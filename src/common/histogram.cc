#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace firestore {

Histogram::Histogram() : buckets_(kSubBuckets * kRanges, 0) {}

int Histogram::BucketFor(double value) {
  if (value < 0) value = 0;
  // Values below kSubBuckets land in the linear range [0, kSubBuckets),
  // one bucket per unit (range index 0).
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  // Range r >= 1 covers [2^(r+5), 2^(r+6)), split into kSubBuckets linear
  // sub-buckets, so relative error is at most 1/kSubBuckets.
  int exponent = static_cast<int>(std::log2(value));  // >= 6 here
  int range = std::min(exponent - 5, kRanges - 1);
  double lo = std::pow(2.0, range + 5);
  double width = lo / kSubBuckets;
  int sub = std::clamp(static_cast<int>((value - lo) / width), 0,
                       kSubBuckets - 1);
  return kSubBuckets * range + sub;
}

double Histogram::BucketMidpoint(int bucket) {
  if (bucket < kSubBuckets) return bucket + 0.5;
  int range = bucket / kSubBuckets;
  int sub = bucket % kSubBuckets;
  double lo = std::pow(2.0, range + 5);
  double width = lo / kSubBuckets;
  return lo + (sub + 0.5) * width;
}

void Histogram::Record(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

double Histogram::min() const { return min_; }
double Histogram::max() const { return max_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      double mid = BucketMidpoint(static_cast<int>(i));
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " p50=" << Quantile(0.5)
     << " p95=" << Quantile(0.95) << " p99=" << Quantile(0.99)
     << " max=" << max_;
  return os.str();
}

BoxplotStats ComputeBoxplot(std::vector<double> values) {
  FS_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  auto at = [&](double q) {
    size_t idx = static_cast<size_t>(q * static_cast<double>(values.size() - 1));
    return values[idx];
  };
  return BoxplotStats{values.front(), at(0.01), at(0.25), at(0.5),
                      at(0.75),       at(0.99), values.back()};
}

}  // namespace firestore
