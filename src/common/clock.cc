#include "common/clock.h"

#include <thread>

namespace firestore {

namespace {

void RealSleep(Micros micros) {
  if (micros <= 0) return;
  // fslint: allow(determinism) -- this IS the real-sleep default behind the SleepFor hook
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

// Never null: "no hook installed" is represented by RealSleep itself.
std::atomic<SleepFn> g_sleep_fn{&RealSleep};

}  // namespace

SleepFn SetSleepFn(SleepFn fn) {
  if (fn == nullptr) fn = &RealSleep;
  return g_sleep_fn.exchange(fn, std::memory_order_acq_rel);
}

void SleepFor(Micros micros) {
  g_sleep_fn.load(std::memory_order_acquire)(micros);
}

}  // namespace firestore
