// Deterministic pseudo-random generation and the distributions used by the
// workload generators: uniform, zipfian (YCSB-style), and log-normal (the
// heavy-tailed tenant population for Fig. 6).

#ifndef FIRESTORE_COMMON_RANDOM_H_
#define FIRESTORE_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>

namespace firestore {

// A thin deterministic wrapper over std::mt19937_64. All randomness in the
// repository flows through explicitly-seeded Rng instances so that tests and
// benchmarks are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  int64_t Uniform(int64_t lo, int64_t hi);
  // Uniform double in [0, 1).
  double NextDouble();
  // Uniform 64-bit value.
  uint64_t NextUint64();
  // True with probability p.
  bool Bernoulli(double p);
  // Exponential with the given mean.
  double Exponential(double mean);
  // Log-normal: exp(N(mu, sigma)).
  double LogNormal(double mu, double sigma);
  // Random alphanumeric string of length n.
  std::string AlphaNumString(size_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// YCSB-style zipfian generator over [0, n). Uses the Gray et al. rejection
// method so that initialization is O(1) and generation is O(1).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace firestore

#endif  // FIRESTORE_COMMON_RANDOM_H_
