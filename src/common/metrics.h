// Process-global metric registry: named counters, gauges, and histogram
// timers with optional per-tenant labels (docs/OBSERVABILITY.md).
//
// Design goals, in priority order:
//  1. Lock-free hot path. Recording into an already-resolved metric touches
//     only relaxed atomics — never the registry lock, never a mutex. The
//     FS_METRIC_* macros resolve the registry entry once per call site
//     (function-local static reference), so steady-state recording is one
//     relaxed fetch_add.
//  2. Stable references. GetCounter/GetGauge/GetTimer return references
//     that stay valid for the process lifetime; metrics are never removed
//     (ResetForTest zeroes values but keeps the entries).
//  3. Deterministic export. Snapshots are sorted by (name, label), so two
//     identical runs produce byte-identical text/JSON dumps — CI diffs them.
//
// Naming convention (enforced by the fslint `metric-name-registry` rule):
// every FS_METRIC_* / FS_SPAN name used under src/ must be unique and listed
// in the docs/OBSERVABILITY.md catalog. Names are `module.noun[.verb]`
// (e.g. "rtcache.accepts", "spanner.lock.waits"). Dynamic dimensions
// (tenant, policy, fault point) go into the *label*, never the name, so the
// name space stays static and lintable.

#ifndef FIRESTORE_COMMON_METRICS_H_
#define FIRESTORE_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/thread_annotations.h"

namespace firestore {

// Monotonic event count. All methods are lock-free.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  std::atomic<int64_t> value_{0};
};

// Last-written level (queue depth, tenant count, ...). Lock-free.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  std::atomic<int64_t> value_{0};
};

// Latency distribution with lock-free recording. Shares Histogram's
// logarithmic bucket math (same <2% percentile error) but keeps the buckets
// in relaxed atomics so concurrent Record() calls never serialize; quantile
// queries read the live buckets without stopping writers.
class Timer {
 public:
  Timer();
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  void Record(Micros value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double Mean() const;
  // q in [0, 1]; e.g. Quantile(0.99) is p99. Returns 0 when empty.
  double Quantile(double q) const;
  Micros min() const { return min_.load(std::memory_order_relaxed); }
  Micros max() const { return max_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  void ResetForTest();

  std::vector<std::atomic<uint32_t>> buckets_;  // Histogram::kBucketCount
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<Micros> min_{0};
  std::atomic<Micros> max_{0};
};

// Records the elapsed time between construction and destruction into a
// Timer, using an injected clock (determinism rule: no wall clocks in src/).
// A null clock disables the measurement.
class ScopedTimer {
 public:
  ScopedTimer(Timer& timer, const Clock* clock)
      : timer_(timer),
        clock_(clock),
        start_(clock != nullptr ? clock->NowMicros() : 0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (clock_ != nullptr) timer_.Record(clock_->NowMicros() - start_);
  }

 private:
  Timer& timer_;
  const Clock* const clock_;
  const Micros start_;
};

// One exported metric value at snapshot time.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kTimer };
  Kind kind = Kind::kCounter;
  std::string name;
  std::string label;  // empty for unlabeled metrics
  int64_t value = 0;  // counter/gauge value; timer count
  // Timer-only distribution summary (micros).
  double mean = 0, p50 = 0, p95 = 0, p99 = 0;
  Micros min = 0, max = 0;
};

// Deterministic point-in-time view of the registry, sorted by (name, label).
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  // "counter service.commits 12" / "timer x{label} count=..." lines.
  std::string ToText() const;
  // JSON array of objects, one per sample.
  std::string ToJson() const;
};

// The process-global registry. Lookup by (name, label) is reader-shared;
// first use of a new key takes the writer lock once. Returned references
// are stable for the process lifetime.
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  Counter& GetCounter(std::string_view name, std::string_view label = "");
  Gauge& GetGauge(std::string_view name, std::string_view label = "");
  Timer& GetTimer(std::string_view name, std::string_view label = "");

  MetricsSnapshot Snapshot() const;

  // Test-only: zeroes every registered value (entries and references stay
  // valid) so two same-seed runs in one process can diff whole snapshots.
  void ResetForTest();

 private:
  MetricRegistry() = default;

  using Key = std::pair<std::string, std::string>;  // (name, label)

  mutable SharedMutex mu_;
  // std::map nodes are pointer-stable, so references returned under the
  // shared lock survive later inserts; values are never erased.
  std::map<Key, Counter> counters_ FS_GUARDED_BY(mu_);
  std::map<Key, Gauge> gauges_ FS_GUARDED_BY(mu_);
  std::map<Key, Timer> timers_ FS_GUARDED_BY(mu_);
};

}  // namespace firestore

// Call-site macros. The unlabeled forms resolve the registry entry once per
// site (function-local static reference): after first use, the expression is
// a single static load — no registry lock, no map lookup. The *_FOR labeled
// forms take a dynamic label (tenant id, policy name) and pay one
// shared-lock map lookup per call; use them off the per-row hot path.
//
// The fslint metric-name-registry rule requires `name` to be a unique string
// literal catalogued in docs/OBSERVABILITY.md (src/ only).
#define FS_METRIC_COUNTER(name)                                         \
  ([]() -> ::firestore::Counter& {                                      \
    static ::firestore::Counter& fs_metric =                            \
        ::firestore::MetricRegistry::Global().GetCounter(name);         \
    return fs_metric;                                                   \
  }())

#define FS_METRIC_GAUGE(name)                                           \
  ([]() -> ::firestore::Gauge& {                                        \
    static ::firestore::Gauge& fs_metric =                              \
        ::firestore::MetricRegistry::Global().GetGauge(name);           \
    return fs_metric;                                                   \
  }())

#define FS_METRIC_TIMER(name)                                           \
  ([]() -> ::firestore::Timer& {                                        \
    static ::firestore::Timer& fs_metric =                              \
        ::firestore::MetricRegistry::Global().GetTimer(name);           \
    return fs_metric;                                                   \
  }())

#define FS_METRIC_COUNTER_FOR(name, label) \
  (::firestore::MetricRegistry::Global().GetCounter(name, label))

#define FS_METRIC_GAUGE_FOR(name, label) \
  (::firestore::MetricRegistry::Global().GetGauge(name, label))

#define FS_METRIC_TIMER_FOR(name, label) \
  (::firestore::MetricRegistry::Global().GetTimer(name, label))

#endif  // FIRESTORE_COMMON_METRICS_H_
