#include "common/fault_injection.h"

#include <chrono>
#include <thread>

#include "common/metrics.h"

namespace firestore {

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(const std::string& name, FaultConfig config) {
  MutexLock lock(&mu_);
  PointState& point = points_[name];
  if (!point.armed) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  point.armed = true;
  point.hits = 0;
  point.fires = 0;
  point.rng = std::make_unique<Rng>(config.seed);
  point.config = std::move(config);
}

void FaultRegistry::Disarm(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = points_.find(name);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  it->second.rng.reset();
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultRegistry::DisarmAll() {
  MutexLock lock(&mu_);
  for (auto& [name, point] : points_) {
    if (point.armed) {
      point.armed = false;
      point.rng.reset();
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void FaultRegistry::SetLatencyClock(ManualClock* clock) {
  latency_clock_.store(clock, std::memory_order_release);
}

void FaultRegistry::RegisterPoint(const char* name) {
  MutexLock lock(&mu_);
  points_.try_emplace(name);
}

std::vector<FaultPointStats> FaultRegistry::KnownPoints() const {
  MutexLock lock(&mu_);
  std::vector<FaultPointStats> out;
  out.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    out.push_back({name, point.armed, point.hits, point.fires,
                   point.total_hits, point.total_fires});
  }
  return out;
}

std::vector<std::string> FaultRegistry::ListPoints() const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, point] : points_) out.push_back(name);
  return out;
}

FaultPointStats FaultRegistry::StatsFor(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return {name, false, 0, 0, 0, 0};
  const PointState& point = it->second;
  return {name, point.armed, point.hits,
          point.fires, point.total_hits, point.total_fires};
}

bool FaultRegistry::FireLocked(std::string_view name, FaultAction* action) {
  auto it = points_.find(name);
  if (it == points_.end() || !it->second.armed) return false;
  PointState& point = it->second;
  ++point.hits;
  ++point.total_hits;
  if (point.hits <= point.config.skip_first) return false;
  if (point.config.max_fires >= 0 &&
      point.fires >= point.config.max_fires) {
    return false;
  }
  if (point.config.probability < 1.0 &&
      !point.rng->Bernoulli(point.config.probability)) {
    return false;
  }
  ++point.fires;
  ++point.total_fires;
  *action = point.config.action;
  return true;
}

void FaultRegistry::ApplyLatency(Micros latency) {
  if (latency <= 0) return;
  ManualClock* clock = latency_clock_.load(std::memory_order_acquire);
  if (clock != nullptr) {
    clock->AdvanceBy(latency);
    return;
  }
  // Real sleep goes through the process hook so deterministic tests can
  // intercept delays even when no ManualClock is attached.
  SleepFor(latency);
}

namespace {

// Single declaration site (metric-name-registry) shared by both evaluate
// paths. Callers invoke it outside the registry's mu_ so the MetricRegistry
// lock never nests inside it.
void RecordFire(std::string_view name) {
  FS_METRIC_COUNTER_FOR("fault.fires", name).Increment();
}

}  // namespace

Status FaultRegistry::Evaluate(std::string_view name) {
  FaultAction action;
  {
    MutexLock lock(&mu_);
    if (!FireLocked(name, &action)) return Status::Ok();
  }
  // The action is applied outside the registry lock so a latency action
  // cannot stall other fault points (or invert lock orders via the clock).
  // The metric mirror lives out here too (see RecordFire).
  RecordFire(name);
  switch (action.kind) {
    case FaultAction::Kind::kReturnStatus:
      return action.status;
    case FaultAction::Kind::kLatency:
      ApplyLatency(action.latency);
      return Status::Ok();
    case FaultAction::Kind::kDrop:
      return Status::Ok();  // dropping is meaningless at a status site
  }
  return Status::Ok();
}

bool FaultRegistry::EvaluateTriggered(std::string_view name) {
  FaultAction action;
  {
    MutexLock lock(&mu_);
    if (!FireLocked(name, &action)) return false;
  }
  RecordFire(name);
  if (action.kind == FaultAction::Kind::kLatency) {
    ApplyLatency(action.latency);
  }
  return true;
}

}  // namespace firestore
