#include "common/retry.h"

#include <algorithm>
#include <string>

#include "common/metrics.h"

namespace firestore {

namespace {

constexpr std::string_view kRetryAfterTag = "retry-after-us=";
constexpr std::string_view kLockWaitTimeout = "lock wait timeout";

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

// Single declaration site (metric-name-registry) shared by both give-up
// legs: budget exhausted and deadline overrun.
void RecordGiveUp(const char* policy_name) {
  FS_METRIC_COUNTER_FOR("retry.give_ups", policy_name).Increment();
}

}  // namespace

bool IsRetryableStatus(const Status& s) {
  switch (s.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kAborted:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

bool IsRetryableWriteStatus(const Status& s) {
  if (IsRetryableStatus(s)) return true;
  return s.code() == StatusCode::kDeadlineExceeded &&
         Contains(s.message(), kLockWaitTimeout);
}

Status WithRetryAfter(Status s, Micros retry_after) {
  if (s.ok()) return s;
  std::string message = s.message();
  message += " [";
  message += kRetryAfterTag;
  message += std::to_string(retry_after);
  message += "]";
  return Status(s.code(), std::move(message));
}

std::optional<Micros> RetryAfterHint(const Status& s) {
  std::string_view message = s.message();
  size_t pos = message.find(kRetryAfterTag);
  if (pos == std::string_view::npos) return std::nullopt;
  pos += kRetryAfterTag.size();
  Micros value = 0;
  bool any = false;
  while (pos < message.size() && message[pos] >= '0' &&
         message[pos] <= '9') {
    value = value * 10 + (message[pos] - '0');
    ++pos;
    any = true;
  }
  if (!any) return std::nullopt;
  return value;
}

Micros NextBackoff(const RetryPolicy& policy, Rng& rng, Micros* prev) {
  Micros base = std::max<Micros>(policy.initial_backoff, 1);
  Micros next;
  if (policy.decorrelated_jitter) {
    // AWS decorrelated jitter: uniform(base, prev * 3), capped.
    Micros hi = *prev > 0
                    ? std::max<Micros>(base, *prev * 3)
                    : base;
    next = rng.Uniform(base, std::max<Micros>(hi, base));
  } else {
    next = *prev > 0 ? static_cast<Micros>(
                           static_cast<double>(*prev) * policy.multiplier)
                     : base;
  }
  next = std::min(next, std::max<Micros>(policy.max_backoff, base));
  *prev = next;
  return next;
}

bool RetryState::ShouldRetryClassified(bool retryable, const Status& s,
                                       Micros* delay_out) {
  if (delay_out != nullptr) *delay_out = 0;
  if (s.ok() || !retryable) return false;
  ++attempts_;
  // One retryable failure observed = one attempt counted, whether or not a
  // retry follows; chaos tests cross-check this against fault-point fires.
  FS_METRIC_COUNTER_FOR("retry.attempts", policy_.name).Increment();
  if (attempts_ >= policy_.max_attempts) {
    RecordGiveUp(policy_.name);
    return false;
  }
  Micros delay = NextBackoff(policy_, rng_, &prev_backoff_);
  if (std::optional<Micros> hint = RetryAfterHint(s); hint.has_value()) {
    delay = std::max(delay, *hint);
    prev_backoff_ = std::max(prev_backoff_, delay);
  }
  if (policy_.deadline > 0 && clock_ != nullptr &&
      clock_->NowMicros() + delay > policy_.deadline) {
    RecordGiveUp(policy_.name);
    return false;
  }
  if (delay_out != nullptr) *delay_out = delay;
  return true;
}

}  // namespace firestore
