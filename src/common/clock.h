// Clock abstraction. Production components take a Clock* so that the
// discrete-event simulation can drive them with virtual time.

#ifndef FIRESTORE_COMMON_CLOCK_H_
#define FIRESTORE_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace firestore {

// Microseconds since an arbitrary epoch.
using Micros = int64_t;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros NowMicros() const = 0;
};

// Wall-clock backed implementation (steady clock).
class RealClock : public Clock {
 public:
  Micros NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

// A clock that only moves when told to; the simulation kernel owns one, and
// unit tests use it to make time-dependent behaviour deterministic.
class ManualClock : public Clock {
 public:
  explicit ManualClock(Micros start = 0) : now_(start) {}

  Micros NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void AdvanceTo(Micros t) { now_.store(t, std::memory_order_relaxed); }
  void AdvanceBy(Micros delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  // Atomic so stress tests can advance time while worker threads read it.
  std::atomic<Micros> now_;
};

// Process-wide sleep hook. Production code that must actually block (today:
// injected-latency faults with no ManualClock attached) calls SleepFor()
// instead of std::this_thread::sleep_for, so deterministic tests can
// intercept the delay. The default implementation really sleeps.
using SleepFn = void (*)(Micros);

// Replaces the process sleep function; returns the previous one so tests
// can restore it. Passing nullptr restores the real-sleep default.
SleepFn SetSleepFn(SleepFn fn);

// Blocks the calling thread for `micros` via the installed hook.
void SleepFor(Micros micros);

}  // namespace firestore

#endif  // FIRESTORE_COMMON_CLOCK_H_
