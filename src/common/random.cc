#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace firestore {

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  FS_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

uint64_t Rng::NextUint64() { return engine_(); }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double Rng::LogNormal(double mu, double sigma) {
  std::lognormal_distribution<double> dist(mu, sigma);
  return dist(engine_);
}

std::string Rng::AlphaNumString(size_t n) {
  static constexpr char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string result;
  result.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    result.push_back(kChars[Uniform(0, sizeof(kChars) - 2)]);
  }
  return result;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  FS_CHECK_GT(n, 0u);
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  // Exact for small n; for large n uses the integral approximation, which is
  // standard practice in YCSB-style generators and accurate to within ~1%.
  if (n <= 10000) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
    return sum;
  }
  double sum = Zeta(10000, theta);
  // Integral of x^-theta from 10000 to n.
  sum += (std::pow(static_cast<double>(n), 1 - theta) -
          std::pow(10000.0, 1 - theta)) /
         (1 - theta);
  return sum;
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(static_cast<double>(n_) *
                               std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

}  // namespace firestore
