#include "common/trace.h"

#include <map>
#include <sstream>
#include <utility>

namespace firestore {
namespace {

// The thread's ambient trace. The shared_ptr keeps the state alive while
// installed; ScopedSpan reads the raw pointer (stack discipline guarantees
// the installing TraceScope outlives inner spans on the same thread).
struct Ambient {
  std::shared_ptr<internal::TraceState> state;
  int64_t parent_id = 0;
};

Ambient& ThreadAmbient() {
  thread_local Ambient ambient;
  return ambient;
}

// Opens a span and returns its id. Ids are assigned in push order under the
// trace mutex, so spans[id - 1] is the span with that id.
int64_t OpenSpan(internal::TraceState* state, const char* name,
                 int64_t parent_id) {
  const Micros now = state->clock->NowMicros();
  MutexLock lock(&state->mu);
  TraceSpan span;
  span.id = state->next_id++;
  span.parent_id = parent_id;
  span.name = name;
  span.start = now;
  state->spans.push_back(std::move(span));
  return state->spans.back().id;
}

void CloseSpan(internal::TraceState* state, int64_t id) {
  const Micros now = state->clock->NowMicros();
  MutexLock lock(&state->mu);
  TraceSpan& span = state->spans[static_cast<size_t>(id - 1)];
  if (span.end == 0) span.end = now;
}

}  // namespace

Trace::Trace(const Clock* clock, std::string name)
    : state_(std::make_shared<internal::TraceState>(clock)) {
  OpenSpan(state_.get(), name.c_str(), /*parent_id=*/0);
}

Trace::~Trace() { Finish(); }

void Trace::Finish() { CloseSpan(state_.get(), kRootId); }

Trace::Context Trace::context() const { return Context{state_, kRootId}; }

std::vector<TraceSpan> Trace::spans() const {
  MutexLock lock(&state_->mu);
  return state_->spans;
}

std::string Trace::Dump() const {
  const std::vector<TraceSpan> spans = this->spans();
  std::map<int64_t, std::vector<const TraceSpan*>> children;
  for (const TraceSpan& span : spans) {
    children[span.parent_id].push_back(&span);
  }
  const Micros origin = spans.empty() ? 0 : spans.front().start;
  std::ostringstream os;
  os << "trace \"" << (spans.empty() ? "?" : spans.front().name) << "\" ("
     << spans.size() << " spans)\n";
  // Children are already in id (open) order within each parent bucket.
  // Iterative DFS keeps this dependency-free of recursion depth limits.
  struct Frame {
    const TraceSpan* span;
    int depth;
  };
  std::vector<Frame> stack;
  auto push_children = [&](int64_t parent, int depth) {
    auto it = children.find(parent);
    if (it == children.end()) return;
    for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
      stack.push_back(Frame{*rit, depth});
    }
  };
  push_children(0, 1);
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    for (int i = 0; i < frame.depth; ++i) os << "  ";
    os << frame.span->name << "  +" << (frame.span->start - origin) << "us";
    if (frame.span->end != 0) {
      os << " dur=" << (frame.span->end - frame.span->start) << "us";
    } else {
      os << " (open)";
    }
    os << "\n";
    push_children(frame.span->id, frame.depth + 1);
  }
  return os.str();
}

TraceScope::TraceScope(const Trace& trace) : TraceScope(trace.context()) {}

TraceScope::TraceScope(const Trace::Context& context) {
  Ambient& ambient = ThreadAmbient();
  saved_state_ = std::move(ambient.state);
  saved_parent_ = ambient.parent_id;
  ambient.state = context.state;
  ambient.parent_id = context.parent_id;
}

TraceScope::~TraceScope() {
  Ambient& ambient = ThreadAmbient();
  ambient.state = std::move(saved_state_);
  ambient.parent_id = saved_parent_;
}

ScopedSpan::ScopedSpan(const char* name) {
  Ambient& ambient = ThreadAmbient();
  if (ambient.state == nullptr) return;  // untraced: no-op
  state_ = ambient.state.get();
  saved_parent_ = ambient.parent_id;
  id_ = OpenSpan(state_, name, saved_parent_);
  ambient.parent_id = id_;
}

ScopedSpan::~ScopedSpan() {
  if (state_ == nullptr) return;
  CloseSpan(state_, id_);
  ThreadAmbient().parent_id = saved_parent_;
}

Trace::Context CurrentTraceContext() {
  Ambient& ambient = ThreadAmbient();
  return Trace::Context{ambient.state, ambient.parent_id};
}

}  // namespace firestore
