// Frontend tasks (paper §IV-D4): terminate long-lived client connections,
// obtain initial query snapshots from the Backend, subscribe to the Query
// Matcher tasks covering each query's result set, and assemble incremental,
// timestamp-consistent snapshots from the per-range update streams.
//
// Consistency rules implemented here:
//  - a query only advances to timestamp t once every subscribed range's
//    watermark reaches t (all updates <= t received);
//  - queries multiplexed on one connection advance together: an update to t
//    is delivered only when every query on the connection can reach t
//    (paper: "queries on the same connection are only updated to a
//    timestamp t once all queries' max-commit-version has reached at
//    least t");
//  - an out-of-sync range resets the affected queries: accumulated state is
//    discarded and the initial-snapshot path re-runs.

#ifndef FIRESTORE_FRONTEND_FRONTEND_H_
#define FIRESTORE_FRONTEND_FRONTEND_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/read_service.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/trace.h"
#include "firestore/query/query.h"
#include "firestore/rules/rules.h"
#include "rtcache/changelog.h"
#include "rtcache/query_matcher.h"
#include "rtcache/range_ownership.h"

namespace firestore::frontend {

// Per-database state the Frontend needs to serve a query.
struct TenantAccess {
  index::IndexCatalog* catalog = nullptr;
  const rules::RuleSet* rules = nullptr;  // null => privileged access
  // Keeps the tenant that owns `catalog`/`rules` alive while this access is
  // in scope (the tenant may be deleted concurrently).
  std::shared_ptr<const void> keepalive;
};

using TenantResolver =
    std::function<StatusOr<TenantAccess>(const std::string& database_id)>;

enum class ChangeKind { kAdded, kModified, kRemoved };

struct SnapshotChange {
  ChangeKind kind = ChangeKind::kAdded;
  model::Document doc;  // for kRemoved, the last known contents
};

// One timestamped snapshot of a real-time query (paper §III-C): the delta
// from the previous snapshot plus the full result for convenience.
struct QuerySnapshot {
  spanner::Timestamp snapshot_ts = 0;
  // True for the initial snapshot and after an out-of-sync reset: `changes`
  // then lists every current document as kAdded.
  bool is_reset = false;
  std::vector<SnapshotChange> changes;
  std::vector<model::Document> documents;  // full result, query order
  // Terminal failure: set when out-of-sync recovery exhausted its retry
  // budget. The listen target has been removed; no further snapshots follow.
  Status error;
  // Trace context of the commit that produced this snapshot's first applied
  // change, so the notification leg (frontend.deliver) lands in the same
  // trace as the originating write. Inert for initial/reset snapshots.
  Trace::Context trace;
};

using SnapshotCallback = std::function<void(const QuerySnapshot&)>;

class Frontend {
 public:
  using ConnectionId = uint64_t;
  using TargetId = uint64_t;

  struct Options {
    // Budget and backoff for re-running an out-of-sync target's initial
    // snapshot. After max_attempts consecutive failures the target is torn
    // down and the listener receives a QuerySnapshot with `error` set.
    RetryPolicy reset_retry;
    uint64_t retry_seed = 0x5eed;
  };

  Frontend(const Clock* clock, backend::ReadService* reader,
           rtcache::QueryMatcher* matcher,
           const rtcache::RangeOwnership* ranges, TenantResolver tenants);
  Frontend(const Clock* clock, backend::ReadService* reader,
           rtcache::QueryMatcher* matcher,
           const rtcache::RangeOwnership* ranges, TenantResolver tenants,
           Options options);

  // Opens a long-lived connection for one end user to one database; the
  // tenant's security rules authorize every query with this auth context.
  ConnectionId OpenConnection(const std::string& database_id,
                              rules::AuthContext auth = {});
  // Privileged (Server SDK) connection: security rules are bypassed.
  ConnectionId OpenPrivilegedConnection(const std::string& database_id);
  void CloseConnection(ConnectionId connection);

  // Registers a real-time query. The initial snapshot is delivered to
  // `callback` synchronously before Listen returns; incremental snapshots
  // follow from Pump().
  StatusOr<TargetId> Listen(ConnectionId connection, query::Query q,
                            SnapshotCallback callback);
  Status StopListen(ConnectionId connection, TargetId target);

  // Drains buffered range events and delivers every snapshot that is
  // consistent under the rules above. Call after Changelog::Tick().
  void Pump();

  // -- Stats -- readable without the Frontend lock. Registry counters
  // (frontend.*, docs/OBSERVABILITY.md) are the source of truth; accessors
  // report the delta since this instance was built.
  int64_t snapshots_delivered() const {
    return snapshots_counter_.value() - snapshots_base_;
  }
  int64_t resets() const { return resets_counter_.value() - resets_base_; }
  int active_targets() const;

 private:
  struct Target {
    ConnectionId connection = 0;
    std::string database_id;
    query::Query query;
    SnapshotCallback callback;
    uint64_t subscription_id = 0;
    std::vector<rtcache::RangeId> ranges;
    // Snapshot the client has seen (max-commit-version).
    spanner::Timestamp max_commit_version = 0;
    // Current result set, keyed by canonical document name.
    std::map<std::string, model::Document> results;
    // Buffered relevant changes by commit timestamp.
    std::multimap<spanner::Timestamp, backend::DocumentChange> pending;
    // Latest watermark per subscribed range.
    std::map<rtcache::RangeId, spanner::Timestamp> watermarks;
    bool needs_reset = false;
    // Queries with limit/offset are re-run on every relevant change (the
    // frontend cannot know which document enters a truncated result set).
    bool delta_capable = true;
    // Out-of-sync recovery state: consecutive failed reset attempts, the
    // earliest time the next attempt may run, and the backoff memory.
    int reset_attempts = 0;
    Micros reset_retry_at = 0;
    Micros reset_prev_backoff = 0;
  };

  struct Connection {
    std::string database_id;
    rules::AuthContext auth;
    bool privileged = false;
    std::vector<TargetId> targets;
  };

  // Runs the query's initial snapshot and (re)subscribes. Fills result set
  // and max_commit_version; returns the snapshot to deliver.
  StatusOr<QuerySnapshot> ResetTargetLocked(TargetId id, Target& target)
      FS_REQUIRES(mu_);

  // Min watermark across the target's subscribed ranges.
  spanner::Timestamp RangeWatermarkLocked(const Target& target) const
      FS_REQUIRES(mu_);

  void OnRangeEvent(uint64_t subscription_id,
                    const rtcache::RangeEvent& event);

  QuerySnapshot BuildSnapshotLocked(Target& target, spanner::Timestamp t)
      FS_REQUIRES(mu_);

  const Clock* const clock_;
  backend::ReadService* const reader_;
  rtcache::QueryMatcher* matcher_;
  const rtcache::RangeOwnership* ranges_;
  const TenantResolver tenants_;
  const Options options_;

  // Held across snapshot construction and target resets, which fan out into
  // the cache, index, storage, and billing layers; every mutex reachable
  // from under it is declared here (string targets: the members are private
  // to their classes). spanner::TimestampOracle::mu_ is covered transitively
  // via Database::data_mu_'s own declaration.
  mutable Mutex mu_ FS_ACQUIRED_BEFORE(
      "backend::BillingLedger::mu_", "spanner::Database::data_mu_",
      "firestore::index::IndexCatalog::mu_", "spanner::LockManager::mu_",
      "rtcache::QueryMatcher::mu_", "rtcache::RangeOwnership::mu_");
  Rng retry_rng_ FS_GUARDED_BY(mu_){options_.retry_seed};
  uint64_t next_id_ FS_GUARDED_BY(mu_) = 1;
  std::map<ConnectionId, Connection> connections_ FS_GUARDED_BY(mu_);
  std::map<TargetId, Target> targets_ FS_GUARDED_BY(mu_);
  std::map<uint64_t, TargetId> by_subscription_ FS_GUARDED_BY(mu_);
  // Registry-backed stats (lock-free increments; see accessor comment).
  Counter& snapshots_counter_;
  Counter& resets_counter_;
  const int64_t snapshots_base_;
  const int64_t resets_base_;
};

}  // namespace firestore::frontend

#endif  // FIRESTORE_FRONTEND_FRONTEND_H_
