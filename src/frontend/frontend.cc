#include "frontend/frontend.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "firestore/index/layout.h"

namespace firestore::frontend {

using backend::DocumentChange;
using model::Document;
using spanner::Timestamp;

Frontend::Frontend(const Clock* clock, backend::ReadService* reader,
                   rtcache::QueryMatcher* matcher,
                   const rtcache::RangeOwnership* ranges,
                   TenantResolver tenants)
    : Frontend(clock, reader, matcher, ranges, std::move(tenants),
               Options()) {}

Frontend::Frontend(const Clock* clock, backend::ReadService* reader,
                   rtcache::QueryMatcher* matcher,
                   const rtcache::RangeOwnership* ranges,
                   TenantResolver tenants, Options options)
    : clock_(clock),
      reader_(reader),
      matcher_(matcher),
      ranges_(ranges),
      tenants_(std::move(tenants)),
      options_(options),
      snapshots_counter_(FS_METRIC_COUNTER("frontend.snapshots")),
      resets_counter_(FS_METRIC_COUNTER("frontend.resets")),
      snapshots_base_(snapshots_counter_.value()),
      resets_base_(resets_counter_.value()) {}

Frontend::ConnectionId Frontend::OpenConnection(
    const std::string& database_id, rules::AuthContext auth) {
  MutexLock lock(&mu_);
  ConnectionId id = next_id_++;
  connections_[id] = Connection{database_id, std::move(auth), false, {}};
  return id;
}

Frontend::ConnectionId Frontend::OpenPrivilegedConnection(
    const std::string& database_id) {
  MutexLock lock(&mu_);
  ConnectionId id = next_id_++;
  connections_[id] = Connection{database_id, {}, true, {}};
  return id;
}

void Frontend::CloseConnection(ConnectionId connection) {
  std::vector<uint64_t> to_unsubscribe;
  {
    MutexLock lock(&mu_);
    auto it = connections_.find(connection);
    if (it == connections_.end()) return;
    for (TargetId t : it->second.targets) {
      auto target = targets_.find(t);
      if (target == targets_.end()) continue;
      to_unsubscribe.push_back(target->second.subscription_id);
      by_subscription_.erase(target->second.subscription_id);
      targets_.erase(target);
    }
    connections_.erase(it);
  }
  for (uint64_t sub : to_unsubscribe) matcher_->Unsubscribe(sub);
}

StatusOr<Frontend::TargetId> Frontend::Listen(ConnectionId connection,
                                              query::Query q,
                                              SnapshotCallback callback) {
  FS_SPAN("frontend.listen");
  RETURN_IF_ERROR(q.Validate());
  QuerySnapshot initial;
  SnapshotCallback cb_copy;
  TargetId id;
  {
    MutexLock lock(&mu_);
    auto conn = connections_.find(connection);
    if (conn == connections_.end()) {
      return NotFoundError("no such connection");
    }
    id = next_id_++;
    Target target;
    target.connection = connection;
    target.database_id = conn->second.database_id;
    target.query = std::move(q);
    target.callback = std::move(callback);
    target.delta_capable =
        target.query.limit() == 0 && target.query.offset() == 0;
    ASSIGN_OR_RETURN(initial, ResetTargetLocked(id, target));
    cb_copy = target.callback;
    conn->second.targets.push_back(id);
    targets_.emplace(id, std::move(target));
  }
  snapshots_counter_.Increment();
  cb_copy(initial);
  return id;
}

Status Frontend::StopListen(ConnectionId connection, TargetId target_id) {
  uint64_t sub = 0;
  {
    MutexLock lock(&mu_);
    auto it = targets_.find(target_id);
    if (it == targets_.end() || it->second.connection != connection) {
      return NotFoundError("no such listen target");
    }
    sub = it->second.subscription_id;
    by_subscription_.erase(sub);
    targets_.erase(it);
    auto conn = connections_.find(connection);
    if (conn != connections_.end()) {
      auto& ts = conn->second.targets;
      ts.erase(std::remove(ts.begin(), ts.end(), target_id), ts.end());
    }
  }
  matcher_->Unsubscribe(sub);
  return Status::Ok();
}

StatusOr<QuerySnapshot> Frontend::ResetTargetLocked(TargetId id,
                                                    Target& target) {
  RETURN_IF_ERROR(FS_FAULT_POINT("frontend.initial_snapshot"));
  ASSIGN_OR_RETURN(TenantAccess tenant, tenants_(target.database_id));
  const rules::AuthContext* auth = nullptr;
  const rules::RuleSet* rules = nullptr;
  auto conn = connections_.find(target.connection);
  if (conn != connections_.end() && !conn->second.privileged) {
    // Third-party access must be authorized by security rules.
    if (tenant.rules == nullptr) {
      return PermissionDeniedError(
          "third-party access requires security rules");
    }
    rules = tenant.rules;
    auth = &conn->second.auth;
  }
  // Subscribe to the Query Matchers owning the document-name ranges that
  // cover the query's result set BEFORE taking the snapshot read. A commit
  // landing between the read and the subscription would otherwise be
  // released to the matcher with no subscriber and silently lost — too new
  // for the snapshot, never buffered for the target. Subscribing first
  // closes the window: concurrent deliveries block on mu_ until the reset
  // completes, and OnRangeEvent then discards anything the snapshot
  // already covers (event.ts <= max_commit_version).
  if (target.subscription_id != 0) {
    by_subscription_.erase(target.subscription_id);
    matcher_->Unsubscribe(target.subscription_id);
    target.subscription_id = 0;
  }
  std::string start = index::EntityKeyPrefixForCollection(
      target.database_id, target.query.CollectionPath());
  std::string limit = PrefixSuccessor(start);
  target.ranges = ranges_->RangesCovering(start, limit);
  target.subscription_id = next_id_++;
  by_subscription_[target.subscription_id] = id;
  matcher_->Subscribe(
      target.subscription_id, target.database_id, target.query,
      target.ranges,
      [this](uint64_t sub, const rtcache::RangeEvent& event) {
        OnRangeEvent(sub, event);
      });
  // Step 2 (paper): the Backend runs the query like any other query; the
  // response's timestamp becomes max-commit-version.
  auto initial_or = reader_->RunQuery(target.database_id, *tenant.catalog,
                                      target.query, /*read_ts=*/0,
                                      rules, auth);
  if (!initial_or.ok()) {
    // Roll the subscription back so a failed fresh Listen leaks nothing;
    // the out-of-sync retry loop re-subscribes on the next attempt, and
    // its strong read covers whatever was released meanwhile.
    by_subscription_.erase(target.subscription_id);
    matcher_->Unsubscribe(target.subscription_id);
    target.subscription_id = 0;
    return initial_or.status();
  }
  backend::RunQueryResult initial = std::move(initial_or).value();
  target.max_commit_version = initial.read_ts;
  target.results.clear();
  target.pending.clear();
  target.watermarks.clear();
  target.needs_reset = false;
  target.reset_attempts = 0;
  target.reset_retry_at = 0;
  target.reset_prev_backoff = 0;
  for (const Document& doc : initial.result.documents) {
    target.results.emplace(doc.name().CanonicalString(), doc);
  }

  QuerySnapshot snapshot;
  snapshot.snapshot_ts = target.max_commit_version;
  snapshot.is_reset = true;
  snapshot.documents = initial.result.documents;
  for (const Document& doc : snapshot.documents) {
    snapshot.changes.push_back({ChangeKind::kAdded, doc});
  }
  return snapshot;
}

void Frontend::OnRangeEvent(uint64_t subscription_id,
                            const rtcache::RangeEvent& event) {
  MutexLock lock(&mu_);
  auto sub = by_subscription_.find(subscription_id);
  if (sub == by_subscription_.end()) return;  // already unsubscribed
  auto it = targets_.find(sub->second);
  if (it == targets_.end()) return;
  Target& target = it->second;
  switch (event.type) {
    case rtcache::RangeEvent::Type::kChange:
      // Updates at or before the initial snapshot are already reflected.
      if (event.ts <= target.max_commit_version) return;
      target.pending.emplace(event.ts, event.change);
      break;
    case rtcache::RangeEvent::Type::kWatermark: {
      Timestamp& wm = target.watermarks[event.range];
      wm = std::max(wm, event.ts);
      break;
    }
    case rtcache::RangeEvent::Type::kOutOfSync:
      target.needs_reset = true;
      break;
  }
}

Timestamp Frontend::RangeWatermarkLocked(const Target& target) const {
  Timestamp wm = spanner::kMaxTimestamp;
  for (rtcache::RangeId r : target.ranges) {
    auto it = target.watermarks.find(r);
    Timestamp range_wm = it == target.watermarks.end() ? 0 : it->second;
    wm = std::min(wm, range_wm);
  }
  return wm;
}

QuerySnapshot Frontend::BuildSnapshotLocked(Target& target, Timestamp t) {
  // Apply pending changes with commit ts <= t in timestamp order, tracking
  // the net effect per document.
  QuerySnapshot snapshot;
  snapshot.snapshot_ts = t;
  std::map<std::string, DocumentChange> net;
  auto end = target.pending.upper_bound(t);
  // The earliest applied change lends the snapshot its trace context, so
  // that commit's trace covers the delivery below.
  if (target.pending.begin() != end) {
    snapshot.trace = target.pending.begin()->second.trace;
  }
  for (auto it = target.pending.begin(); it != end; ++it) {
    net[it->second.name.CanonicalString()] = it->second;
  }
  for (auto& [name, change] : net) {
    auto existing = target.results.find(name);
    bool was_present = existing != target.results.end();
    bool now_matches =
        change.new_doc.has_value() && target.query.Matches(*change.new_doc);
    if (now_matches) {
      SnapshotChange delta;
      delta.kind = was_present ? ChangeKind::kModified : ChangeKind::kAdded;
      delta.doc = *change.new_doc;
      // Suppress no-op modifications (same contents).
      if (!was_present || !(existing->second == *change.new_doc)) {
        snapshot.changes.push_back(std::move(delta));
      }
      target.results[name] = *change.new_doc;
    } else if (was_present) {
      SnapshotChange delta;
      delta.kind = ChangeKind::kRemoved;
      delta.doc = existing->second;
      snapshot.changes.push_back(std::move(delta));
      target.results.erase(existing);
    }
  }
  target.pending.erase(target.pending.begin(), end);
  target.max_commit_version = t;
  snapshot.documents.reserve(target.results.size());
  for (auto& [name, doc] : target.results) snapshot.documents.push_back(doc);
  std::sort(snapshot.documents.begin(), snapshot.documents.end(),
            [&](const Document& a, const Document& b) {
              return target.query.Compare(a, b) < 0;
            });
  return snapshot;
}

void Frontend::Pump() {
  // Deliveries are collected under the lock and fired outside it.
  std::vector<std::pair<SnapshotCallback, QuerySnapshot>> deliveries;
  std::vector<uint64_t> to_unsubscribe;
  {
    MutexLock lock(&mu_);
    // 1. Resets: out-of-sync targets and limit/offset targets with pending
    //    relevant changes re-run their initial snapshot. Failed re-reads
    //    retry with backoff; after the retry budget the target is torn down
    //    and the listener is told via a terminal error snapshot.
    for (auto it = targets_.begin(); it != targets_.end();) {
      TargetId id = it->first;
      Target& target = it->second;
      if (!target.needs_reset && !target.delta_capable &&
          !target.pending.empty()) {
        // Only reset when the pending changes are complete enough to have
        // been deliverable (otherwise we may reset repeatedly).
        if (RangeWatermarkLocked(target) >= target.pending.begin()->first) {
          target.needs_reset = true;
        }
      }
      if (!target.needs_reset ||
          clock_->NowMicros() < target.reset_retry_at) {
        ++it;
        continue;
      }
      resets_counter_.Increment();
      StatusOr<QuerySnapshot> snapshot = ResetTargetLocked(id, target);
      if (snapshot.ok()) {
        deliveries.emplace_back(target.callback, std::move(*snapshot));
        ++it;
        continue;
      }
      ++target.reset_attempts;
      if (target.reset_attempts < options_.reset_retry.max_attempts) {
        target.reset_retry_at =
            clock_->NowMicros() + NextBackoff(options_.reset_retry,
                                              retry_rng_,
                                              &target.reset_prev_backoff);
        ++it;
        continue;
      }
      // Budget exhausted: surface the failure and drop the target.
      QuerySnapshot failure;
      failure.snapshot_ts = target.max_commit_version;
      failure.error = snapshot.status();
      deliveries.emplace_back(target.callback, std::move(failure));
      if (target.subscription_id != 0) {
        by_subscription_.erase(target.subscription_id);
        to_unsubscribe.push_back(target.subscription_id);
      }
      auto conn = connections_.find(target.connection);
      if (conn != connections_.end()) {
        auto& ts = conn->second.targets;
        ts.erase(std::remove(ts.begin(), ts.end(), id), ts.end());
      }
      it = targets_.erase(it);
    }
    // 2. Connection-consistent incremental snapshots.
    for (auto& [conn_id, conn] : connections_) {
      if (conn.targets.empty()) continue;
      Timestamp t = spanner::kMaxTimestamp;
      for (TargetId tid : conn.targets) {
        const Target& target = targets_.at(tid);
        // An out-of-sync target cannot advance until its reset succeeds:
        // the Changelog discarded part of its update stream, so deltas
        // assembled now would silently skip the gap. It also pins the
        // connection (queries on one connection advance together).
        Timestamp achievable =
            target.needs_reset
                ? target.max_commit_version
                : std::max(target.max_commit_version,
                           RangeWatermarkLocked(target));
        t = std::min(t, achievable);
      }
      if (t == spanner::kMaxTimestamp) continue;
      for (TargetId tid : conn.targets) {
        Target& target = targets_.at(tid);
        if (target.needs_reset) continue;
        if (target.max_commit_version >= t) continue;
        if (RangeWatermarkLocked(target) < t) continue;  // cannot advance
        QuerySnapshot snapshot = BuildSnapshotLocked(target, t);
        if (!snapshot.changes.empty()) {
          deliveries.emplace_back(target.callback, std::move(snapshot));
        }
      }
    }
  }
  for (uint64_t sub : to_unsubscribe) matcher_->Unsubscribe(sub);
  for (auto& [callback, snapshot] : deliveries) {
    snapshots_counter_.Increment();
    // Resume the originating commit's trace for the notification leg: this
    // is the write-to-listener latency the paper's Figure 9 measures.
    TraceScope scope(snapshot.trace);
    FS_SPAN("frontend.deliver");
    callback(snapshot);
  }
}

int Frontend::active_targets() const {
  MutexLock lock(&mu_);
  return static_cast<int>(targets_.size());
}

}  // namespace firestore::frontend
