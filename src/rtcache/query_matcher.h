// Query Matcher tasks (paper §IV-D4, Figure 5): hold the real-time queries
// registered for each document-name range; match every forwarded document
// update against them and send matches to the subscribing Frontend.

#ifndef FIRESTORE_RTCACHE_QUERY_MATCHER_H_
#define FIRESTORE_RTCACHE_QUERY_MATCHER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "backend/types.h"
#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "firestore/query/query.h"
#include "rtcache/range_ownership.h"
#include "spanner/truetime.h"

namespace firestore::rtcache {

// Events flowing from the Real-time Cache to a Frontend subscription.
struct RangeEvent {
  enum class Type {
    kChange,     // a committed document update relevant to the query
    kWatermark,  // the range's update stream is complete through `ts`
    kOutOfSync,  // ordering lost; the Frontend must reset the query
  };

  Type type = Type::kWatermark;
  RangeId range = 0;
  spanner::Timestamp ts = 0;
  backend::DocumentChange change;  // kChange only
};

using EventSink = std::function<void(uint64_t subscription_id,
                                     const RangeEvent& event)>;

class QueryMatcher {
 public:
  QueryMatcher();

  // Registers a query for matching on `ranges` (the document-name ranges
  // covering its result set). The Subscribe carries the query itself so only
  // relevant changes are forwarded (unlike change streams that fan out whole
  // collections; see paper §VII on MongoDB). Events arrive via `sink`.
  void Subscribe(uint64_t subscription_id, const std::string& database_id,
                 const query::Query& q, const std::vector<RangeId>& ranges,
                 EventSink sink);

  void Unsubscribe(uint64_t subscription_id);

  // -- Feed from the Changelog --

  // A committed change, released in timestamp order per range.
  void OnDocumentChange(const std::string& database_id, RangeId range,
                        spanner::Timestamp ts,
                        const backend::DocumentChange& change);

  // Completeness heartbeat for a range.
  void OnWatermark(RangeId range, spanner::Timestamp ts);

  void OnOutOfSync(RangeId range);

  // -- Stats -- readable without the matcher lock. Registry counters
  // (rtcache.matcher.*, docs/OBSERVABILITY.md) are the source of truth;
  // accessors report the delta since this instance was built.
  int64_t documents_matched() const {
    return matched_counter_.value() - matched_base_;
  }
  int64_t documents_examined() const {
    return examined_counter_.value() - examined_base_;
  }
  int subscription_count() const;

 private:
  struct Subscription {
    std::string database_id;
    query::Query query;
    std::vector<RangeId> ranges;
    EventSink sink;
  };

  mutable Mutex mu_;
  std::map<uint64_t, Subscription> subscriptions_ FS_GUARDED_BY(mu_);
  // range -> subscription ids registered on it.
  std::map<RangeId, std::vector<uint64_t>> by_range_ FS_GUARDED_BY(mu_);
  // Registry-backed stats (lock-free increments; see accessor comment).
  Counter& matched_counter_;
  Counter& examined_counter_;
  const int64_t matched_base_;
  const int64_t examined_base_;
};

}  // namespace firestore::rtcache

#endif  // FIRESTORE_RTCACHE_QUERY_MATCHER_H_
