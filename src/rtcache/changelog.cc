#include "rtcache/changelog.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/trace.h"
#include "firestore/index/layout.h"

namespace firestore::rtcache {

using backend::DocumentChange;
using backend::PrepareHandle;
using backend::WriteOutcome;
using spanner::Timestamp;

Changelog::Changelog(const Clock* clock, const RangeOwnership* ranges,
                     QueryMatcher* matcher)
    : Changelog(clock, ranges, matcher, Options()) {}

Changelog::Changelog(const Clock* clock, const RangeOwnership* ranges,
                     QueryMatcher* matcher, Options options)
    : clock_(clock),
      ranges_(ranges),
      matcher_(matcher),
      options_(options),
      prepares_counter_(FS_METRIC_COUNTER("rtcache.prepares")),
      accepts_counter_(FS_METRIC_COUNTER("rtcache.accepts")),
      out_of_sync_counter_(FS_METRIC_COUNTER("rtcache.out_of_sync")),
      released_counter_(FS_METRIC_COUNTER("rtcache.released")),
      prepares_base_(prepares_counter_.value()),
      accepts_base_(accepts_counter_.value()),
      out_of_sync_base_(out_of_sync_counter_.value()),
      released_base_(released_counter_.value()) {}

void Changelog::set_unavailable(bool unavailable) {
  if (unavailable) {
    FaultConfig config;
    config.action =
        FaultAction::Fail(UnavailableError("Changelog unavailable (injected)"));
    FaultRegistry::Global().Arm("rtcache.prepare", std::move(config));
  } else {
    FaultRegistry::Global().Disarm("rtcache.prepare");
  }
}

StatusOr<PrepareHandle> Changelog::Prepare(
    const std::string& database_id,
    const std::vector<model::ResourcePath>& names,
    Timestamp max_commit_ts) {
  RETURN_IF_ERROR(FS_FAULT_POINT("rtcache.prepare"));
  MutexLock lock(&mu_);
  prepares_counter_.Increment();
  std::vector<RangeId> touched;
  for (const model::ResourcePath& name : names) {
    RangeId r = ranges_->OwnerOf(index::EntityKey(database_id, name));
    if (std::find(touched.begin(), touched.end(), r) == touched.end()) {
      touched.push_back(r);
    }
  }
  // The assigned minimum must exceed every affected range's watermark and
  // previously assigned minimum (so completeness is monotone), and be at
  // least the current time.
  Timestamp m = clock_->NowMicros();
  for (RangeId r : touched) {
    RangeState& state = range_states_[r];
    m = std::max(m, state.last_assigned_min + 1);
    m = std::max(m, state.watermark + 1);
  }
  for (RangeId r : touched) {
    RangeState& state = range_states_[r];
    state.last_assigned_min = m;
    state.outstanding[m] += 1;
  }
  PendingPrepare pending;
  pending.database_id = database_id;
  pending.min_ts = m;
  pending.expiry = max_commit_ts + options_.accept_grace;
  pending.ranges = touched;
  uint64_t token = next_token_++;
  pending_.emplace(token, std::move(pending));
  return PrepareHandle{m, token};
}

void Changelog::Accept(uint64_t token, WriteOutcome outcome,
                       Timestamp commit_ts,
                       const std::vector<DocumentChange>& changes) {
  // A dropped Accept leaves the Prepare pending until its expiry marks the
  // affected ranges out-of-sync — the paper's lost-Accept recovery leg.
  if (FS_FAULT_TRIGGERED("rtcache.accept.drop")) return;
  {
    MutexLock lock(&mu_);
    accepts_counter_.Increment();
    auto it = pending_.find(token);
    if (it == pending_.end()) {
      // The prepare already expired and its ranges were reset; drop.
      return;
    }
    PendingPrepare pending = std::move(it->second);
    pending_.erase(it);
    for (RangeId r : pending.ranges) {
      RangeState& state = range_states_[r];
      auto out = state.outstanding.find(pending.min_ts);
      if (out != state.outstanding.end() && --out->second == 0) {
        state.outstanding.erase(out);
      }
    }
    switch (outcome) {
      case WriteOutcome::kFailed:
        break;  // dropped
      case WriteOutcome::kUnknown:
        // Ordering can no longer be guaranteed for these ranges.
        for (RangeId r : pending.ranges) MarkOutOfSyncLocked(r);
        break;
      case WriteOutcome::kSuccess:
        FS_CHECK_GE(commit_ts, pending.min_ts);
        for (const DocumentChange& change : changes) {
          RangeId r = ranges_->OwnerOf(
              index::EntityKey(pending.database_id, change.name));
          range_states_[r].buffer.emplace(
              commit_ts, BufferedChange{pending.database_id, change});
        }
        break;
    }
    // Releasing may now be possible on the affected ranges.
    for (RangeId r : pending.ranges) {
      RangeState& state = range_states_[r];
      Timestamp releasable = state.outstanding.empty()
                                 ? state.watermark
                                 : state.outstanding.begin()->first - 1;
      while (!state.buffer.empty() &&
             state.buffer.begin()->first <= releasable) {
        auto entry = state.buffer.begin();
        notify_queue_.push_back({Notification::Kind::kRelease, r,
                                 entry->first,
                                 std::move(entry->second.database_id),
                                 std::move(entry->second.change)});
        state.buffer.erase(entry);
        released_counter_.Increment();
      }
    }
  }
  DrainNotifications();
}

void Changelog::Tick() {
  {
    MutexLock lock(&mu_);
    Timestamp now = clock_->NowMicros();
    // Expire overdue prepares: their ranges lose ordering guarantees.
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.expiry >= now) {
        ++it;
        continue;
      }
      for (RangeId r : it->second.ranges) MarkOutOfSyncLocked(r);
      it = pending_.erase(it);
    }
    // Advance watermarks and release complete prefixes.
    for (RangeId r = 0; r < ranges_->num_ranges(); ++r) {
      RangeState& state = range_states_[r];
      Timestamp w = state.outstanding.empty()
                        ? std::max(state.watermark, now)
                        : std::max(state.watermark,
                                   state.outstanding.begin()->first - 1);
      state.watermark = w;
      while (!state.buffer.empty() && state.buffer.begin()->first <= w) {
        auto entry = state.buffer.begin();
        notify_queue_.push_back({Notification::Kind::kRelease, r,
                                 entry->first,
                                 std::move(entry->second.database_id),
                                 std::move(entry->second.change)});
        state.buffer.erase(entry);
        released_counter_.Increment();
      }
      notify_queue_.push_back(
          {Notification::Kind::kWatermark, r, w, {}, {}});
    }
  }
  DrainNotifications();
}

void Changelog::MarkOutOfSyncLocked(RangeId range) {
  RangeState& state = range_states_[range];
  state.buffer.clear();
  state.outstanding.clear();
  state.watermark = clock_->NowMicros();
  state.last_assigned_min = std::max(state.last_assigned_min,
                                     state.watermark);
  out_of_sync_counter_.Increment();
  notify_queue_.push_back(
      {Notification::Kind::kOutOfSync, range, state.watermark, {}, {}});
}

void Changelog::DrainNotifications() {
  {
    MutexLock lock(&mu_);
    // The active drainer re-checks the queue after every entry, so anything
    // we just enqueued will be fired by it, in order.
    if (notifying_) return;
    notifying_ = true;
  }
  for (;;) {
    Notification n;
    {
      MutexLock lock(&mu_);
      if (notify_queue_.empty()) {
        notifying_ = false;
        return;
      }
      n = std::move(notify_queue_.front());
      notify_queue_.pop_front();
    }
    switch (n.kind) {
      case Notification::Kind::kRelease: {
        // Resume the originating commit's trace across the async hop: the
        // context rode in on the buffered DocumentChange, possibly long
        // after the committing thread returned.
        TraceScope scope(n.change.trace);
        FS_SPAN("rtcache.release");
        matcher_->OnDocumentChange(n.database_id, n.range, n.ts, n.change);
        break;
      }
      case Notification::Kind::kWatermark:
        matcher_->OnWatermark(n.range, n.ts);
        break;
      case Notification::Kind::kOutOfSync:
        matcher_->OnOutOfSync(n.range);
        break;
    }
  }
}

Timestamp Changelog::watermark(RangeId range) const {
  MutexLock lock(&mu_);
  auto it = range_states_.find(range);
  return it == range_states_.end() ? 0 : it->second.watermark;
}

}  // namespace firestore::rtcache
