#include "rtcache/changelog.h"

#include <algorithm>

#include "common/logging.h"
#include "firestore/index/layout.h"

namespace firestore::rtcache {

using backend::DocumentChange;
using backend::PrepareHandle;
using backend::WriteOutcome;
using spanner::Timestamp;

namespace {

// Deferred notifications, fired outside the Changelog lock so that sinks may
// re-enter the Real-time Cache.
struct Notifications {
  struct Release {
    std::string database_id;
    RangeId range;
    Timestamp ts;
    DocumentChange change;
  };
  std::vector<Release> releases;
  std::vector<std::pair<RangeId, Timestamp>> watermarks;
  std::vector<RangeId> out_of_sync;

  void FireTo(QueryMatcher* matcher) {
    for (RangeId r : out_of_sync) matcher->OnOutOfSync(r);
    for (Release& rel : releases) {
      matcher->OnDocumentChange(rel.database_id, rel.range, rel.ts,
                                rel.change);
    }
    for (auto& [range, ts] : watermarks) matcher->OnWatermark(range, ts);
  }
};

}  // namespace

Changelog::Changelog(const Clock* clock, const RangeOwnership* ranges,
                     QueryMatcher* matcher)
    : clock_(clock), ranges_(ranges), matcher_(matcher) {}

Changelog::Changelog(const Clock* clock, const RangeOwnership* ranges,
                     QueryMatcher* matcher, Options options)
    : clock_(clock), ranges_(ranges), matcher_(matcher), options_(options) {}

StatusOr<PrepareHandle> Changelog::Prepare(
    const std::string& database_id,
    const std::vector<model::ResourcePath>& names,
    Timestamp max_commit_ts) {
  if (unavailable_.load(std::memory_order_relaxed)) {
    return UnavailableError("Changelog unavailable (injected)");
  }
  MutexLock lock(&mu_);
  ++prepares_;
  std::vector<RangeId> touched;
  for (const model::ResourcePath& name : names) {
    RangeId r = ranges_->OwnerOf(index::EntityKey(database_id, name));
    if (std::find(touched.begin(), touched.end(), r) == touched.end()) {
      touched.push_back(r);
    }
  }
  // The assigned minimum must exceed every affected range's watermark and
  // previously assigned minimum (so completeness is monotone), and be at
  // least the current time.
  Timestamp m = clock_->NowMicros();
  for (RangeId r : touched) {
    RangeState& state = range_states_[r];
    m = std::max(m, state.last_assigned_min + 1);
    m = std::max(m, state.watermark + 1);
  }
  for (RangeId r : touched) {
    RangeState& state = range_states_[r];
    state.last_assigned_min = m;
    state.outstanding[m] += 1;
  }
  PendingPrepare pending;
  pending.database_id = database_id;
  pending.min_ts = m;
  pending.expiry = max_commit_ts + options_.accept_grace;
  pending.ranges = touched;
  uint64_t token = next_token_++;
  pending_.emplace(token, std::move(pending));
  return PrepareHandle{m, token};
}

void Changelog::Accept(uint64_t token, WriteOutcome outcome,
                       Timestamp commit_ts,
                       const std::vector<DocumentChange>& changes) {
  Notifications notify;
  {
    MutexLock lock(&mu_);
    ++accepts_;
    auto it = pending_.find(token);
    if (it == pending_.end()) {
      // The prepare already expired and its ranges were reset; drop.
      return;
    }
    PendingPrepare pending = std::move(it->second);
    pending_.erase(it);
    for (RangeId r : pending.ranges) {
      RangeState& state = range_states_[r];
      auto out = state.outstanding.find(pending.min_ts);
      if (out != state.outstanding.end() && --out->second == 0) {
        state.outstanding.erase(out);
      }
    }
    switch (outcome) {
      case WriteOutcome::kFailed:
        break;  // dropped
      case WriteOutcome::kUnknown:
        // Ordering can no longer be guaranteed for these ranges.
        for (RangeId r : pending.ranges) {
          MarkOutOfSyncLocked(r);
          notify.out_of_sync.push_back(r);
        }
        break;
      case WriteOutcome::kSuccess:
        FS_CHECK_GE(commit_ts, pending.min_ts);
        for (const DocumentChange& change : changes) {
          RangeId r = ranges_->OwnerOf(
              index::EntityKey(pending.database_id, change.name));
          range_states_[r].buffer.emplace(
              commit_ts, BufferedChange{pending.database_id, change});
        }
        break;
    }
    // Releasing may now be possible on the affected ranges.
    for (RangeId r : pending.ranges) {
      RangeState& state = range_states_[r];
      Timestamp releasable = state.outstanding.empty()
                                 ? state.watermark
                                 : state.outstanding.begin()->first - 1;
      while (!state.buffer.empty() &&
             state.buffer.begin()->first <= releasable) {
        auto entry = state.buffer.begin();
        notify.releases.push_back({entry->second.database_id, r,
                                   entry->first,
                                   std::move(entry->second.change)});
        state.buffer.erase(entry);
        ++mutations_released_;
      }
    }
  }
  notify.FireTo(matcher_);
}

void Changelog::Tick() {
  Notifications notify;
  {
    MutexLock lock(&mu_);
    Timestamp now = clock_->NowMicros();
    // Expire overdue prepares: their ranges lose ordering guarantees.
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.expiry >= now) {
        ++it;
        continue;
      }
      for (RangeId r : it->second.ranges) {
        MarkOutOfSyncLocked(r);
        notify.out_of_sync.push_back(r);
      }
      it = pending_.erase(it);
    }
    // Advance watermarks and release complete prefixes.
    for (RangeId r = 0; r < ranges_->num_ranges(); ++r) {
      RangeState& state = range_states_[r];
      Timestamp w = state.outstanding.empty()
                        ? std::max(state.watermark, now)
                        : std::max(state.watermark,
                                   state.outstanding.begin()->first - 1);
      state.watermark = w;
      while (!state.buffer.empty() && state.buffer.begin()->first <= w) {
        auto entry = state.buffer.begin();
        notify.releases.push_back({entry->second.database_id, r,
                                   entry->first,
                                   std::move(entry->second.change)});
        state.buffer.erase(entry);
        ++mutations_released_;
      }
      notify.watermarks.emplace_back(r, w);
    }
  }
  notify.FireTo(matcher_);
}

void Changelog::MarkOutOfSyncLocked(RangeId range) {
  RangeState& state = range_states_[range];
  state.buffer.clear();
  state.outstanding.clear();
  state.watermark = clock_->NowMicros();
  state.last_assigned_min = std::max(state.last_assigned_min,
                                     state.watermark);
  ++out_of_sync_events_;
}

Timestamp Changelog::watermark(RangeId range) const {
  MutexLock lock(&mu_);
  auto it = range_states_.find(range);
  return it == range_states_.end() ? 0 : it->second.watermark;
}

}  // namespace firestore::rtcache
