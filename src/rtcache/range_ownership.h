// Consistent ownership of document-name ranges (paper §IV-D4): "A separate
// mechanism establishes and shares consistent ownership of document-name
// ranges to specific Changelog and Query Matcher tasks", load-balanced by
// the Slicer auto-sharding framework.
//
// Ranges partition the multi-tenant Entities key space (database id +
// encoded document name). Each range is handled by one logical Changelog
// task and one logical Query Matcher task.

#ifndef FIRESTORE_RTCACHE_RANGE_OWNERSHIP_H_
#define FIRESTORE_RTCACHE_RANGE_OWNERSHIP_H_

#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace firestore::rtcache {

using RangeId = int;

class RangeOwnership {
 public:
  // Ranges are defined by sorted split points: range i covers
  // [points[i-1], points[i]), with unbounded first and last ranges.
  explicit RangeOwnership(std::vector<std::string> split_points = {});

  // Evenly spreads `n` ranges over the first key byte (a serviceable
  // stand-in for Slicer's load-based assignment).
  static RangeOwnership Uniform(int n);

  int num_ranges() const;

  RangeId OwnerOf(const std::string& key) const;

  // All ranges intersecting [start, limit); empty `limit` = unbounded.
  std::vector<RangeId> RangesCovering(const std::string& start,
                                      const std::string& limit) const;

  // Re-sharding (Slicer re-balancing): replaces the split points. Callers
  // (the service) must re-register affected subscriptions and reset
  // in-flight state, as production Firestore does via the out-of-sync path.
  void SetSplitPoints(std::vector<std::string> split_points);

  // Current generation; bumped by SetSplitPoints so stale references can be
  // detected.
  int64_t generation() const;

 private:
  RangeId OwnerOfLocked(const std::string& key) const
      FS_REQUIRES_SHARED(mu_);

  // Re-sharding happens while lookups are in flight: readers take mu_
  // shared, SetSplitPoints takes it exclusively.
  mutable SharedMutex mu_;
  std::vector<std::string> splits_ FS_GUARDED_BY(mu_);
  int64_t generation_ FS_GUARDED_BY(mu_) = 0;
};

}  // namespace firestore::rtcache

#endif  // FIRESTORE_RTCACHE_RANGE_OWNERSHIP_H_
