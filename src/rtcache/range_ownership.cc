#include "rtcache/range_ownership.h"

#include <algorithm>

#include "common/logging.h"

namespace firestore::rtcache {

RangeOwnership::RangeOwnership(std::vector<std::string> split_points)
    : splits_(std::move(split_points)) {
  FS_CHECK(std::is_sorted(splits_.begin(), splits_.end()));
}

RangeOwnership RangeOwnership::Uniform(int n) {
  FS_CHECK_GT(n, 0);
  std::vector<std::string> splits;
  for (int i = 1; i < n; ++i) {
    int byte = i * 256 / n;
    splits.push_back(std::string(1, static_cast<char>(byte)));
  }
  return RangeOwnership(std::move(splits));
}

int RangeOwnership::num_ranges() const {
  ReaderMutexLock lock(&mu_);
  return static_cast<int>(splits_.size()) + 1;
}

RangeId RangeOwnership::OwnerOfLocked(const std::string& key) const {
  // First split strictly greater than key determines the range.
  auto it = std::upper_bound(splits_.begin(), splits_.end(), key);
  return static_cast<RangeId>(it - splits_.begin());
}

RangeId RangeOwnership::OwnerOf(const std::string& key) const {
  ReaderMutexLock lock(&mu_);
  return OwnerOfLocked(key);
}

std::vector<RangeId> RangeOwnership::RangesCovering(
    const std::string& start, const std::string& limit) const {
  ReaderMutexLock lock(&mu_);
  RangeId first = OwnerOfLocked(start);
  RangeId last;
  if (limit.empty()) {
    last = static_cast<RangeId>(splits_.size());
  } else {
    // The limit key is exclusive; the range owning the last covered key is
    // the one owning limit minus epsilon, which equals OwnerOf(limit) unless
    // limit is exactly a split point.
    auto it = std::lower_bound(splits_.begin(), splits_.end(), limit);
    last = static_cast<RangeId>(it - splits_.begin());
  }
  std::vector<RangeId> result;
  for (RangeId r = first; r <= last; ++r) result.push_back(r);
  return result;
}

void RangeOwnership::SetSplitPoints(std::vector<std::string> split_points) {
  FS_CHECK(std::is_sorted(split_points.begin(), split_points.end()));
  WriterMutexLock lock(&mu_);
  splits_ = std::move(split_points);
  ++generation_;
}

int64_t RangeOwnership::generation() const {
  ReaderMutexLock lock(&mu_);
  return generation_;
}

}  // namespace firestore::rtcache
