#include "rtcache/query_matcher.h"

#include <algorithm>

#include "common/trace.h"

namespace firestore::rtcache {

QueryMatcher::QueryMatcher()
    : matched_counter_(FS_METRIC_COUNTER("rtcache.matcher.matched")),
      examined_counter_(FS_METRIC_COUNTER("rtcache.matcher.examined")),
      matched_base_(matched_counter_.value()),
      examined_base_(examined_counter_.value()) {}

void QueryMatcher::Subscribe(uint64_t subscription_id,
                             const std::string& database_id,
                             const query::Query& q,
                             const std::vector<RangeId>& ranges,
                             EventSink sink) {
  MutexLock lock(&mu_);
  Subscription sub{database_id, q, ranges, std::move(sink)};
  for (RangeId r : ranges) by_range_[r].push_back(subscription_id);
  subscriptions_[subscription_id] = std::move(sub);
}

void QueryMatcher::Unsubscribe(uint64_t subscription_id) {
  MutexLock lock(&mu_);
  auto it = subscriptions_.find(subscription_id);
  if (it == subscriptions_.end()) return;
  for (RangeId r : it->second.ranges) {
    auto& ids = by_range_[r];
    ids.erase(std::remove(ids.begin(), ids.end(), subscription_id),
              ids.end());
  }
  subscriptions_.erase(it);
}

void QueryMatcher::OnDocumentChange(const std::string& database_id,
                                    RangeId range, spanner::Timestamp ts,
                                    const backend::DocumentChange& change) {
  // Child of the Changelog's rtcache.release span (the caller resumed the
  // commit's trace context before this call).
  FS_SPAN("rtcache.match");
  // Copy the relevant sinks under the lock; call them outside it so a sink
  // may re-enter (e.g. to unsubscribe).
  std::vector<std::pair<uint64_t, EventSink>> targets;
  {
    MutexLock lock(&mu_);
    auto it = by_range_.find(range);
    if (it == by_range_.end()) return;
    for (uint64_t id : it->second) {
      const Subscription& sub = subscriptions_.at(id);
      if (sub.database_id != database_id) continue;
      examined_counter_.Increment();
      bool new_matches =
          change.new_doc.has_value() && sub.query.Matches(*change.new_doc);
      bool old_matches =
          change.old_doc.has_value() && sub.query.Matches(*change.old_doc);
      if (!new_matches && !old_matches) continue;  // irrelevant to query
      matched_counter_.Increment();
      targets.emplace_back(id, sub.sink);
    }
  }
  RangeEvent event;
  event.type = RangeEvent::Type::kChange;
  event.range = range;
  event.ts = ts;
  event.change = change;
  for (auto& [id, sink] : targets) sink(id, event);
}

void QueryMatcher::OnWatermark(RangeId range, spanner::Timestamp ts) {
  std::vector<std::pair<uint64_t, EventSink>> targets;
  {
    MutexLock lock(&mu_);
    auto it = by_range_.find(range);
    if (it == by_range_.end()) return;
    for (uint64_t id : it->second) {
      targets.emplace_back(id, subscriptions_.at(id).sink);
    }
  }
  RangeEvent event;
  event.type = RangeEvent::Type::kWatermark;
  event.range = range;
  event.ts = ts;
  for (auto& [id, sink] : targets) sink(id, event);
}

void QueryMatcher::OnOutOfSync(RangeId range) {
  std::vector<std::pair<uint64_t, EventSink>> targets;
  {
    MutexLock lock(&mu_);
    auto it = by_range_.find(range);
    if (it == by_range_.end()) return;
    for (uint64_t id : it->second) {
      targets.emplace_back(id, subscriptions_.at(id).sink);
    }
  }
  RangeEvent event;
  event.type = RangeEvent::Type::kOutOfSync;
  event.range = range;
  for (auto& [id, sink] : targets) sink(id, event);
}

int QueryMatcher::subscription_count() const {
  MutexLock lock(&mu_);
  return static_cast<int>(subscriptions_.size());
}

}  // namespace firestore::rtcache
