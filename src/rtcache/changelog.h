// In-memory Changelog tasks (paper §IV-D4, Figure 5).
//
// The Changelog is the Real-time Cache's 2PC participant for writes. For
// each document-name range it:
//  - assigns minimum commit timestamps to Prepares and remembers them,
//  - on Accept, buffers the committed mutations sorted by timestamp,
//  - releases mutations to the Query Matcher only up to the range's
//    completeness watermark (all Prepares with min-ts below it resolved),
//  - emits heartbeats for idle ranges so Frontends can advance,
//  - marks a range out-of-sync when a Prepare expires without an Accept or
//    an Accept reports an unknown outcome.

#ifndef FIRESTORE_RTCACHE_CHANGELOG_H_
#define FIRESTORE_RTCACHE_CHANGELOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "backend/types.h"
#include "common/thread_annotations.h"
#include "common/clock.h"
#include "rtcache/query_matcher.h"
#include "rtcache/range_ownership.h"

namespace firestore::rtcache {

class Changelog : public backend::RealTimeParticipant {
 public:
  struct Options {
    // Extra grace period after a Prepare's max timestamp before the range
    // is declared out-of-sync ("the maximum timestamp (plus a small margin)
    // sets how long the Changelog will wait for the corresponding Accept").
    Micros accept_grace = 500'000;
  };

  Changelog(const Clock* clock, const RangeOwnership* ranges,
            QueryMatcher* matcher);
  Changelog(const Clock* clock, const RangeOwnership* ranges,
            QueryMatcher* matcher, Options options);

  // -- RealTimeParticipant --
  StatusOr<backend::PrepareHandle> Prepare(
      const std::string& database_id,
      const std::vector<model::ResourcePath>& names,
      spanner::Timestamp max_commit_ts) override;

  void Accept(uint64_t token, backend::WriteOutcome outcome,
              spanner::Timestamp commit_ts,
              const std::vector<backend::DocumentChange>& changes) override;

  // Heartbeat pump ("Changelog tasks generate a heartbeat every few
  // milliseconds for every idle key range"): expires overdue Prepares,
  // advances watermarks, releases complete mutations in timestamp order,
  // and forwards watermarks to the Query Matcher.
  void Tick();

  // Fault injection: Prepares fail while unavailable. Atomic so the fault
  // can be injected while committers are in flight.
  void set_unavailable(bool unavailable) {
    unavailable_.store(unavailable, std::memory_order_relaxed);
  }

  spanner::Timestamp watermark(RangeId range) const;

  // -- Stats -- (atomics: read without the Changelog lock)
  int64_t prepares() const { return prepares_.load(); }
  int64_t accepts() const { return accepts_.load(); }
  int64_t out_of_sync_events() const { return out_of_sync_events_.load(); }
  int64_t mutations_released() const { return mutations_released_.load(); }

 private:
  struct PendingPrepare {
    std::string database_id;
    spanner::Timestamp min_ts = 0;
    spanner::Timestamp expiry = 0;  // max ts + grace
    std::vector<RangeId> ranges;
  };

  struct BufferedChange {
    std::string database_id;
    backend::DocumentChange change;
  };

  struct RangeState {
    // Outstanding prepare min-timestamps (multiset semantics via map
    // token -> min_ts handled globally; here we track counts per min_ts).
    std::map<spanner::Timestamp, int> outstanding;  // min_ts -> count
    // Committed mutations not yet released, sorted by commit timestamp.
    std::multimap<spanner::Timestamp, BufferedChange> buffer;
    spanner::Timestamp watermark = 0;
    spanner::Timestamp last_assigned_min = 0;
  };

  void MarkOutOfSyncLocked(RangeId range) FS_REQUIRES(mu_);

  const Clock* clock_;
  const RangeOwnership* ranges_;
  QueryMatcher* matcher_;
  Options options_;
  std::atomic<bool> unavailable_{false};

  mutable Mutex mu_;
  uint64_t next_token_ FS_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, PendingPrepare> pending_ FS_GUARDED_BY(mu_);
  std::map<RangeId, RangeState> range_states_ FS_GUARDED_BY(mu_);
  std::atomic<int64_t> prepares_{0};
  std::atomic<int64_t> accepts_{0};
  std::atomic<int64_t> out_of_sync_events_{0};
  std::atomic<int64_t> mutations_released_{0};
};

}  // namespace firestore::rtcache

#endif  // FIRESTORE_RTCACHE_CHANGELOG_H_
