// In-memory Changelog tasks (paper §IV-D4, Figure 5).
//
// The Changelog is the Real-time Cache's 2PC participant for writes. For
// each document-name range it:
//  - assigns minimum commit timestamps to Prepares and remembers them,
//  - on Accept, buffers the committed mutations sorted by timestamp,
//  - releases mutations to the Query Matcher only up to the range's
//    completeness watermark (all Prepares with min-ts below it resolved),
//  - emits heartbeats for idle ranges so Frontends can advance,
//  - marks a range out-of-sync when a Prepare expires without an Accept or
//    an Accept reports an unknown outcome.

#ifndef FIRESTORE_RTCACHE_CHANGELOG_H_
#define FIRESTORE_RTCACHE_CHANGELOG_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "backend/types.h"
#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "common/clock.h"
#include "rtcache/query_matcher.h"
#include "rtcache/range_ownership.h"

namespace firestore::rtcache {

class Changelog : public backend::RealTimeParticipant {
 public:
  struct Options {
    // Extra grace period after a Prepare's max timestamp before the range
    // is declared out-of-sync ("the maximum timestamp (plus a small margin)
    // sets how long the Changelog will wait for the corresponding Accept").
    Micros accept_grace = 500'000;
  };

  Changelog(const Clock* clock, const RangeOwnership* ranges,
            QueryMatcher* matcher);
  Changelog(const Clock* clock, const RangeOwnership* ranges,
            QueryMatcher* matcher, Options options);

  // -- RealTimeParticipant --
  StatusOr<backend::PrepareHandle> Prepare(
      const std::string& database_id,
      const std::vector<model::ResourcePath>& names,
      spanner::Timestamp max_commit_ts) override;

  void Accept(uint64_t token, backend::WriteOutcome outcome,
              spanner::Timestamp commit_ts,
              const std::vector<backend::DocumentChange>& changes) override;

  // Heartbeat pump ("Changelog tasks generate a heartbeat every few
  // milliseconds for every idle key range"): expires overdue Prepares,
  // advances watermarks, releases complete mutations in timestamp order,
  // and forwards watermarks to the Query Matcher.
  void Tick();

  // Legacy fault-injection shim: arms/disarms the global "rtcache.prepare"
  // fault point (common/fault_injection.h), under which Prepares fail
  // UNAVAILABLE. Process-global, like the registry it fronts.
  static void set_unavailable(bool unavailable);

  spanner::Timestamp watermark(RangeId range) const;

  // -- Stats -- readable without the Changelog lock. The process-global
  // MetricRegistry counters (rtcache.*, docs/OBSERVABILITY.md) are the
  // source of truth; these report the delta since this instance was built,
  // preserving the old per-instance accessor semantics.
  int64_t prepares() const {
    return prepares_counter_.value() - prepares_base_;
  }
  int64_t accepts() const { return accepts_counter_.value() - accepts_base_; }
  int64_t out_of_sync_events() const {
    return out_of_sync_counter_.value() - out_of_sync_base_;
  }
  int64_t mutations_released() const {
    return released_counter_.value() - released_base_;
  }

 private:
  struct PendingPrepare {
    std::string database_id;
    spanner::Timestamp min_ts = 0;
    spanner::Timestamp expiry = 0;  // max ts + grace
    std::vector<RangeId> ranges;
  };

  struct BufferedChange {
    std::string database_id;
    backend::DocumentChange change;
  };

  struct RangeState {
    // Outstanding prepare min-timestamps (multiset semantics via map
    // token -> min_ts handled globally; here we track counts per min_ts).
    std::map<spanner::Timestamp, int> outstanding;  // min_ts -> count
    // Committed mutations not yet released, sorted by commit timestamp.
    std::multimap<spanner::Timestamp, BufferedChange> buffer;
    spanner::Timestamp watermark = 0;
    spanner::Timestamp last_assigned_min = 0;
  };

  // A state mutation and the notification it implies are enqueued in the
  // same critical section, so queue order equals logical order. A single
  // active drainer fires entries FIFO outside the lock; this guarantees a
  // watermark never reaches the Query Matcher before the releases and
  // out-of-sync marks it covers — concurrent Accept/Tick callers firing
  // independently could otherwise let a Frontend claim a snapshot
  // timestamp whose mutations are still in flight on another thread.
  struct Notification {
    enum class Kind { kRelease, kWatermark, kOutOfSync };
    Kind kind = Kind::kWatermark;
    RangeId range = 0;
    spanner::Timestamp ts = 0;
    std::string database_id;            // kRelease only
    backend::DocumentChange change;     // kRelease only
  };

  void MarkOutOfSyncLocked(RangeId range) FS_REQUIRES(mu_);
  void DrainNotifications() FS_EXCLUDES(mu_);

  const Clock* const clock_;
  const RangeOwnership* ranges_;
  QueryMatcher* matcher_;
  const Options options_;

  // Prepare consults range ownership while holding mu_ (string target:
  // RangeOwnership::mu_ is private).
  mutable Mutex mu_ FS_ACQUIRED_BEFORE("rtcache::RangeOwnership::mu_");
  uint64_t next_token_ FS_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, PendingPrepare> pending_ FS_GUARDED_BY(mu_);
  std::map<RangeId, RangeState> range_states_ FS_GUARDED_BY(mu_);
  std::deque<Notification> notify_queue_ FS_GUARDED_BY(mu_);
  bool notifying_ FS_GUARDED_BY(mu_) = false;
  // Registry-backed stats (lock-free increments; see accessor comment).
  Counter& prepares_counter_;
  Counter& accepts_counter_;
  Counter& out_of_sync_counter_;
  Counter& released_counter_;
  const int64_t prepares_base_;
  const int64_t accepts_base_;
  const int64_t out_of_sync_base_;
  const int64_t released_base_;
};

}  // namespace firestore::rtcache

#endif  // FIRESTORE_RTCACHE_CHANGELOG_H_
