// YCSB workload generation and the open-loop runner used by the Fig. 7/8
// benchmarks (paper §V-B1): "workload A with 50% reads and 50% updates and
// workload B with 95% reads and 5% updates ... uniform key distribution with
// 900-byte sized documents, each composed of a single field of that size."

#ifndef FIRESTORE_YCSB_YCSB_H_
#define FIRESTORE_YCSB_YCSB_H_

#include <functional>
#include <string>

#include "common/histogram.h"
#include "common/random.h"
#include "service/service.h"
#include "sim/cpu_server.h"
#include "sim/latency_model.h"
#include "sim/simulation.h"

namespace firestore::ycsb {

enum class OpType { kRead, kUpdate };

struct WorkloadSpec {
  std::string name;
  double read_fraction = 0.5;  // A: 0.5, B: 0.95
  int64_t record_count = 1000;
  size_t value_bytes = 900;
  bool zipfian = false;  // paper uses uniform
};

inline WorkloadSpec WorkloadA(int64_t records = 1000) {
  return {"A", 0.5, records, 900, false};
}
inline WorkloadSpec WorkloadB(int64_t records = 1000) {
  return {"B", 0.95, records, 900, false};
}

// Generates keys/ops for a workload.
class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadSpec spec, uint64_t seed);

  OpType NextOp();
  // Document path of the next record, e.g. /usertable/user12345.
  std::string NextKey();
  model::Map MakeValue();

  const WorkloadSpec& spec() const { return spec_; }
  Rng& rng() { return rng_; }

 private:
  WorkloadSpec spec_;
  Rng rng_;
  ZipfianGenerator zipf_;
};

// Results of one target-QPS level.
struct RunResult {
  double target_qps = 0;
  double achieved_qps = 0;
  Histogram read_latency;    // micros
  Histogram update_latency;  // micros
};

// Open-loop YCSB run against a real FirestoreService inside the simulation:
// every operation performs the real engine work (reads, commits, index
// maintenance) and is charged simulated network/CPU latency. The Backend
// CPU pool autoscales, reproducing the ramp-up effects of §V-B1.
class YcsbRunner {
 public:
  struct Options {
    Micros measure_duration = 20'000'000;  // per level, virtual time
    Micros warmup_duration = 5'000'000;
    Micros backend_read_cost = 80;    // CPU cost of a point read
    Micros backend_update_cost = 250;
    int initial_backend_workers = 4;
    bool autoscale = true;
    bool multi_region = true;
  };

  YcsbRunner(WorkloadSpec spec, Options options, uint64_t seed = 42);

  // Loads `record_count` documents and runs one open-loop level.
  RunResult RunLevel(double target_qps);

 private:
  WorkloadSpec spec_;
  Options options_;
  uint64_t seed_;
};

}  // namespace firestore::ycsb

#endif  // FIRESTORE_YCSB_YCSB_H_
