#include "ycsb/ycsb.h"

#include "backend/types.h"
#include "sim/autoscaler.h"

namespace firestore::ycsb {

using backend::Mutation;
using model::Map;
using model::ResourcePath;
using model::Value;

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec, uint64_t seed)
    : spec_(std::move(spec)),
      rng_(seed),
      zipf_(static_cast<uint64_t>(spec_.record_count)) {}

OpType WorkloadGenerator::NextOp() {
  return rng_.Bernoulli(spec_.read_fraction) ? OpType::kRead
                                             : OpType::kUpdate;
}

std::string WorkloadGenerator::NextKey() {
  int64_t id = spec_.zipfian
                   ? static_cast<int64_t>(zipf_.Next(rng_))
                   : rng_.Uniform(0, spec_.record_count - 1);
  return "/usertable/user" + std::to_string(id);
}

Map WorkloadGenerator::MakeValue() {
  Map fields;
  fields["field0"] = Value::String(rng_.AlphaNumString(spec_.value_bytes));
  return fields;
}

YcsbRunner::YcsbRunner(WorkloadSpec spec, Options options, uint64_t seed)
    : spec_(std::move(spec)), options_(options), seed_(seed) {}

RunResult YcsbRunner::RunLevel(double target_qps) {
  sim::Simulation sim(1'000'000'000);
  service::FirestoreService service(sim.clock());
  const std::string db = "projects/bench/databases/ycsb";
  FS_CHECK_OK(service.CreateDatabase(db));

  WorkloadGenerator gen(spec_, seed_);
  // Load phase: not measured, no simulated latency.
  for (int64_t i = 0; i < spec_.record_count; ++i) {
    std::string path = "/usertable/user" + std::to_string(i);
    auto result = service.Commit(
        db, {Mutation::Set(model::ResourcePath::Parse(path).value(),
                           gen.MakeValue())});
    FS_CHECK(result.ok());
  }
  // Pre-split so commits can span tablets (paper §V-B2 methodology).
  service.spanner().RunLoadSplitting(/*load_threshold=*/256);

  sim::CpuServer::Options cpu_options;
  cpu_options.workers = options_.initial_backend_workers;
  sim::CpuServer backend(&sim, cpu_options);
  sim::Autoscaler::Options scale_options;
  scale_options.min_workers = options_.initial_backend_workers;
  sim::Autoscaler autoscaler(&sim, &backend, scale_options);
  if (options_.autoscale) autoscaler.Start();

  sim::LatencyModel::Options lat_options;
  lat_options.multi_region = options_.multi_region;
  sim::LatencyModel latency(lat_options);
  Rng lat_rng(seed_ ^ 0x9e3779b97f4a7c15ull);

  RunResult result;
  result.target_qps = target_qps;
  const Micros start = sim.now();
  const Micros measure_from = start + options_.warmup_duration;
  const Micros end =
      measure_from + options_.measure_duration;
  int64_t measured_ops = 0;

  // Open-loop arrivals (exponential inter-arrival at the target rate).
  std::function<void(Micros)> schedule_next = [&](Micros at) {
    if (at > end) return;
    sim.ScheduleAt(at, [&, at] {
      OpType op = gen.NextOp();
      std::string key = gen.NextKey();
      Micros submitted = sim.now();
      // Client -> Frontend -> Backend hops.
      Micros ingress = latency.RpcHop(lat_rng) + latency.RpcHop(lat_rng);
      sim.After(ingress, [&, op, key, submitted] {
        Micros cpu = op == OpType::kRead ? options_.backend_read_cost
                                         : options_.backend_update_cost;
        backend.Submit(db, cpu, [&, op, key, submitted] {
          // The real engine operation, then the Spanner latency it implies.
          Micros spanner_lat = 0;
          if (op == OpType::kRead) {
            auto doc = service.Get(
                db, model::ResourcePath::Parse(key).value());
            FS_CHECK(doc.ok());
            spanner_lat = latency.SpannerStrongRead(lat_rng);
          } else {
            auto commit = service.Commit(
                db, {Mutation::Set(model::ResourcePath::Parse(key).value(),
                                   gen.MakeValue())});
            FS_CHECK(commit.ok());
            spanner_lat = latency.SpannerCommit(
                lat_rng, commit->spanner_participants,
                static_cast<int64_t>(spec_.value_bytes),
                commit->index_entries_written);
          }
          Micros egress = latency.RpcHop(lat_rng) + latency.RpcHop(lat_rng);
          sim.After(spanner_lat + egress, [&, op, submitted] {
            Micros total = sim.now() - submitted;
            if (submitted >= measure_from) {
              ++measured_ops;
              if (op == OpType::kRead) {
                result.read_latency.Record(static_cast<double>(total));
              } else {
                result.update_latency.Record(static_cast<double>(total));
              }
            }
          });
        });
      });
      Micros gap = static_cast<Micros>(
          gen.rng().Exponential(1e6 / target_qps));
      schedule_next(sim.now() + std::max<Micros>(1, gap));
    });
  };
  // Periodic service pump: Changelog heartbeats + tablet maintenance.
  std::function<void()> pump = [&] {
    service.Pump();
    if (sim.now() < end) sim.After(500'000, pump);
  };
  sim.After(500'000, pump);

  schedule_next(start + 1);
  // The autoscaler re-arms itself indefinitely; bound the run and leave a
  // drain margin for in-flight operations.
  sim.Run(end + 2'000'000);

  result.achieved_qps =
      static_cast<double>(measured_ops) /
      (static_cast<double>(options_.measure_duration) / 1e6);
  return result;
}

}  // namespace firestore::ycsb
