// The Spanner database facade: tables, transactions, snapshot reads,
// directories, and the transactional message queue.
//
// Firestore maps each logical database to a directory (a key prefix guiding
// sharding/placement) within a small number of pre-initialized Spanner
// databases per region (paper §IV-D1). One spanner::Database instance here
// plays the role of one of those regional Spanner databases, hosting many
// Firestore tenants.

#ifndef FIRESTORE_SPANNER_DATABASE_H_
#define FIRESTORE_SPANNER_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "spanner/lock_manager.h"
#include "spanner/message_queue.h"
#include "spanner/storage.h"
#include "spanner/truetime.h"

namespace firestore::spanner {

class Database;

struct ScanRow {
  Key key;
  std::string value;
  Timestamp version = 0;  // commit timestamp of the returned version
};

struct CommitResult {
  Timestamp commit_ts = 0;
  // Number of distinct tablets written (2PC participants), for latency
  // modeling: a multi-tablet commit pays the two-phase-commit cost.
  int participants = 0;
};

// A lock-based read-write transaction (Spanner semantics: 2PL for reads,
// exclusive locks on written rows acquired at commit, commit timestamp from
// the oracle within a caller-supplied window).
class ReadWriteTransaction {
 public:
  ~ReadWriteTransaction();

  ReadWriteTransaction(const ReadWriteTransaction&) = delete;
  ReadWriteTransaction& operator=(const ReadWriteTransaction&) = delete;

  TxnId id() const { return id_; }

  // Reads the latest committed value, taking a shared (or exclusive) lock.
  // Sees this transaction's own buffered writes (their version reads as 0).
  // `version` (optional) receives the version's commit timestamp.
  StatusOr<RowValue> Read(const std::string& table, const Key& key,
                          LockMode mode = LockMode::kShared,
                          Timestamp* version = nullptr);

  // Scans latest committed rows in [start, limit), taking shared locks on
  // every returned row. `max_rows` of 0 means unlimited. Buffered writes of
  // this transaction are merged into the result.
  StatusOr<std::vector<ScanRow>> Scan(const std::string& table,
                                      const Key& start, const Key& limit,
                                      int64_t max_rows = 0);

  // Buffers a write / delete. Locks are acquired during Commit.
  void Put(const std::string& table, const Key& key, std::string value);
  void Delete(const std::string& table, const Key& key);

  // Buffers a transactional message (delivered iff the commit succeeds).
  void AddMessage(const std::string& topic, std::string payload);

  // Two-phase commit: acquires exclusive locks on the write set, allocates a
  // timestamp in [min_allowed, max_allowed], applies atomically. On error
  // the transaction is fully rolled back and unusable.
  StatusOr<CommitResult> Commit(Timestamp min_allowed = 0,
                                Timestamp max_allowed = kMaxTimestamp);

  void Abort();

 private:
  friend class Database;
  ReadWriteTransaction(Database* db, TxnId id) : db_(db), id_(id) {}

  std::string LockKey(const std::string& table, const Key& key) const;

  Database* db_;
  TxnId id_;
  bool finished_ = false;
  // table -> key -> value-or-tombstone
  std::map<std::string, std::map<Key, RowValue>> writes_;
  std::vector<QueueMessage> messages_;
};

class Database {
 public:
  explicit Database(const Clock* clock, Micros truetime_uncertainty = 1000);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Table management. Creating an existing table is an error.
  Status CreateTable(const std::string& name);
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  std::unique_ptr<ReadWriteTransaction> BeginTransaction();

  // Lock-free timestamped reads (paper §IV-D1: "the serializability
  // guarantee on timestamps allows Firestore to perform lock-free consistent
  // reads across a database without blocking writes").
  StatusOr<RowValue> SnapshotRead(const std::string& table, const Key& key,
                                  Timestamp ts,
                                  Timestamp* version = nullptr) const;
  StatusOr<std::vector<ScanRow>> SnapshotScan(const std::string& table,
                                              const Key& start,
                                              const Key& limit, Timestamp ts,
                                              int64_t max_rows = 0) const;

  // Timestamp for a strongly-consistent read of current data.
  Timestamp StrongReadTimestamp() const {
    return oracle_.StrongReadTimestamp();
  }
  Timestamp last_commit_ts() const { return oracle_.last_allocated(); }

  const TrueTime& truetime() const { return truetime_; }
  MessageQueue& queue() { return queue_; }
  LockManager& lock_manager() { return lock_manager_; }

  // Background maintenance: load-based tablet splitting across all tables.
  // Returns splits performed.
  int RunLoadSplitting(int64_t load_threshold);

  // MVCC garbage collection of versions older than `horizon`.
  int64_t GarbageCollect(Timestamp horizon);

  // Lock wait timeout applied to transactional reads/commits.
  void set_lock_timeout_ms(int64_t ms) {
    lock_timeout_ms_.store(ms, std::memory_order_relaxed);
  }

 private:
  friend class ReadWriteTransaction;

  int64_t lock_timeout_ms() const {
    return lock_timeout_ms_.load(std::memory_order_relaxed);
  }

  const Clock* const clock_;
  const TrueTime truetime_;
  TimestampOracle oracle_;
  LockManager lock_manager_;
  MessageQueue queue_;
  std::atomic<TxnId> next_txn_id_{1};
  // Atomic: tests adjust it while transactions are in flight.
  std::atomic<int64_t> lock_timeout_ms_{2000};

  // Guards table structure and row data: commits take it exclusively,
  // snapshot reads take it shared. Commit allocates its timestamp while
  // holding it (string target: TimestampOracle::mu_ is private).
  mutable SharedMutex data_mu_
      FS_ACQUIRED_BEFORE("spanner::TimestampOracle::mu_");
  std::map<std::string, std::unique_ptr<Table>> tables_
      FS_GUARDED_BY(data_mu_);
};

}  // namespace firestore::spanner

#endif  // FIRESTORE_SPANNER_DATABASE_H_
