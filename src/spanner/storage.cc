#include "spanner/storage.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"

namespace firestore::spanner {

bool Tablet::Contains(const Key& key) const {
  if (key < start_key_) return false;
  return limit_key_.empty() || key < limit_key_;
}

void Tablet::Apply(const Key& key, RowValue value, Timestamp ts) {
  FS_CHECK(Contains(key));
  Versions& versions = rows_[key];
  if (!versions.empty()) {
    FS_CHECK_GT(ts, versions.rbegin()->first);
    // Replace the byte accounting of the previous latest version.
    const RowValue& prev = versions.rbegin()->second;
    if (prev.has_value()) {
      stats_.bytes -= static_cast<int64_t>(prev->size() + key.size());
    }
  }
  if (value.has_value()) {
    stats_.bytes += static_cast<int64_t>(value->size() + key.size());
  }
  ++stats_.writes;
  // Registry mirror of the per-tablet load stats (which reset on split and
  // stay functional for load splitting): process-wide monotonic totals.
  FS_METRIC_COUNTER("spanner.rows.written").Increment();
  versions.emplace(ts, std::move(value));
}

RowValue Tablet::ReadAt(const Key& key, Timestamp ts,
                        Timestamp* version) const {
  ++stats_.reads;
  FS_METRIC_COUNTER("spanner.rows.read").Increment();
  if (version != nullptr) *version = 0;
  auto row = rows_.find(key);
  if (row == rows_.end()) return std::nullopt;
  const Versions& versions = row->second;
  // Latest version with timestamp <= ts.
  auto it = versions.upper_bound(ts);
  if (it == versions.begin()) return std::nullopt;
  --it;
  if (version != nullptr) *version = it->first;
  return it->second;
}

int64_t Tablet::ScanAt(
    const Key& start, const Key& limit, Timestamp ts,
    const std::function<bool(const Key&, const std::string&, Timestamp)>& cb)
    const {
  int64_t visited = 0;
  auto it = rows_.lower_bound(std::max(start, start_key_));
  for (; it != rows_.end(); ++it) {
    if (!limit.empty() && it->first >= limit) break;
    if (!limit_key_.empty() && it->first >= limit_key_) break;
    const Versions& versions = it->second;
    auto vit = versions.upper_bound(ts);
    if (vit == versions.begin()) continue;
    --vit;
    if (!vit->second.has_value()) continue;  // tombstone
    ++visited;
    ++stats_.reads;
    FS_METRIC_COUNTER("spanner.rows.scanned").Increment();
    if (!cb(it->first, *vit->second, vit->first)) break;
  }
  return visited;
}

std::unique_ptr<Tablet> Tablet::SplitAt(const Key& split_key) {
  FS_CHECK(Contains(split_key));
  FS_CHECK(split_key != start_key_);
  auto upper = std::make_unique<Tablet>(split_key, limit_key_);
  limit_key_ = split_key;
  auto first_moved = rows_.lower_bound(split_key);
  for (auto it = first_moved; it != rows_.end(); ++it) {
    upper->rows_.emplace(it->first, std::move(it->second));
  }
  rows_.erase(first_moved, rows_.end());
  // Split byte accounting approximately in half; load counters reset.
  upper->stats_.bytes = stats_.bytes / 2;
  stats_.bytes -= upper->stats_.bytes;
  stats_.reads = 0;
  stats_.writes = 0;
  return upper;
}

std::optional<Key> Tablet::MedianKey() const {
  if (rows_.size() < 2) return std::nullopt;
  auto it = rows_.begin();
  std::advance(it, rows_.size() / 2);
  if (it->first == start_key_) return std::nullopt;
  return it->first;
}

int64_t Tablet::GarbageCollect(Timestamp horizon) {
  int64_t dropped = 0;
  for (auto row = rows_.begin(); row != rows_.end();) {
    Versions& versions = row->second;
    // Keep the newest version <= horizon plus everything after horizon.
    auto keep = versions.upper_bound(horizon);
    if (keep != versions.begin()) --keep;
    dropped += std::distance(versions.begin(), keep);
    versions.erase(versions.begin(), keep);
    // Drop rows reduced to a single old tombstone.
    if (versions.size() == 1 && versions.begin()->first <= horizon &&
        !versions.begin()->second.has_value()) {
      ++dropped;
      row = rows_.erase(row);
    } else {
      ++row;
    }
  }
  return dropped;
}

void Tablet::ResetLoadStats() {
  stats_.reads = 0;
  stats_.writes = 0;
}

Table::Table(std::string name) : name_(std::move(name)) {
  tablets_.push_back(std::make_unique<Tablet>(Key(), Key()));
}

size_t Table::TabletIndexForKey(const Key& key) const {
  // Binary search over start keys: last tablet with start_key <= key.
  size_t lo = 0, hi = tablets_.size();
  while (hi - lo > 1) {
    size_t mid = (lo + hi) / 2;
    if (tablets_[mid]->start_key() <= key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Tablet* Table::TabletForKey(const Key& key) {
  return tablets_[TabletIndexForKey(key)].get();
}

const Tablet* Table::TabletForKey(const Key& key) const {
  return tablets_[TabletIndexForKey(key)].get();
}

void Table::Apply(const Key& key, RowValue value, Timestamp ts) {
  TabletForKey(key)->Apply(key, std::move(value), ts);
}

RowValue Table::ReadAt(const Key& key, Timestamp ts,
                       Timestamp* version) const {
  return TabletForKey(key)->ReadAt(key, ts, version);
}

void Table::ScanAt(
    const Key& start, const Key& limit, Timestamp ts,
    const std::function<bool(const Key&, const std::string&, Timestamp)>& cb)
    const {
  bool stopped = false;
  auto wrapped = [&](const Key& k, const std::string& v, Timestamp ver) {
    bool cont = cb(k, v, ver);
    if (!cont) stopped = true;
    return cont;
  };
  for (size_t i = TabletIndexForKey(start); i < tablets_.size(); ++i) {
    const Tablet& tablet = *tablets_[i];
    if (!limit.empty() && tablet.start_key() >= limit) break;
    tablet.ScanAt(start, limit, ts, wrapped);
    if (stopped) break;
  }
}

int Table::MaybeSplit(int64_t load_threshold) {
  int splits = 0;
  for (size_t i = 0; i < tablets_.size(); ++i) {
    Tablet& tablet = *tablets_[i];
    const TabletStats& s = tablet.stats();
    if (s.reads + s.writes < load_threshold) continue;
    std::optional<Key> median = tablet.MedianKey();
    if (!median.has_value()) {
      tablet.ResetLoadStats();
      continue;
    }
    std::unique_ptr<Tablet> upper = tablet.SplitAt(*median);
    tablets_.insert(tablets_.begin() + static_cast<ptrdiff_t>(i) + 1,
                    std::move(upper));
    ++splits;
    ++i;  // skip the new upper half this round
  }
  return splits;
}

Status Table::SplitAt(const Key& split_key) {
  size_t idx = TabletIndexForKey(split_key);
  Tablet& tablet = *tablets_[idx];
  if (split_key == tablet.start_key()) {
    return AlreadyExistsError("split point is already a tablet boundary");
  }
  std::unique_ptr<Tablet> upper = tablet.SplitAt(split_key);
  tablets_.insert(tablets_.begin() + static_cast<ptrdiff_t>(idx) + 1,
                  std::move(upper));
  return Status::Ok();
}

int64_t Table::GarbageCollect(Timestamp horizon) {
  int64_t dropped = 0;
  for (auto& tablet : tablets_) dropped += tablet->GarbageCollect(horizon);
  return dropped;
}

int Table::ParticipantCount(const std::vector<Key>& keys) const {
  std::vector<const Tablet*> seen;
  for (const Key& key : keys) {
    const Tablet* t = TabletForKey(key);
    if (std::find(seen.begin(), seen.end(), t) == seen.end()) {
      seen.push_back(t);
    }
  }
  return static_cast<int>(seen.size());
}

}  // namespace firestore::spanner
