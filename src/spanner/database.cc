#include "spanner/database.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace firestore::spanner {

namespace {
constexpr char kLockSeparator = '\x1f';
}  // namespace

// ---------------------------------------------------------------------------
// ReadWriteTransaction

ReadWriteTransaction::~ReadWriteTransaction() {
  if (!finished_) Abort();
}

std::string ReadWriteTransaction::LockKey(const std::string& table,
                                          const Key& key) const {
  std::string result = table;
  result.push_back(kLockSeparator);
  result.append(key);
  return result;
}

StatusOr<RowValue> ReadWriteTransaction::Read(const std::string& table,
                                              const Key& key, LockMode mode,
                                              Timestamp* version) {
  if (finished_) return FailedPreconditionError("transaction finished");
  if (version != nullptr) *version = 0;
  RETURN_IF_ERROR(FS_FAULT_POINT("spanner.txn.read"));
  RETURN_IF_ERROR(db_->lock_manager_.Acquire(id_, LockKey(table, key), mode,
                                             db_->lock_timeout_ms()));
  // Read-your-writes.
  auto tit = writes_.find(table);
  if (tit != writes_.end()) {
    auto wit = tit->second.find(key);
    if (wit != tit->second.end()) return wit->second;
  }
  ReaderMutexLock data_lock(&db_->data_mu_);
  auto table_it = db_->tables_.find(table);
  if (table_it == db_->tables_.end()) {
    return NotFoundError("no such table: " + table);
  }
  return table_it->second->ReadAt(key, kMaxTimestamp, version);
}

StatusOr<std::vector<ScanRow>> ReadWriteTransaction::Scan(
    const std::string& table, const Key& start, const Key& limit,
    int64_t max_rows) {
  if (finished_) return FailedPreconditionError("transaction finished");
  RETURN_IF_ERROR(FS_FAULT_POINT("spanner.txn.scan"));
  std::vector<ScanRow> rows;
  {
    ReaderMutexLock data_lock(&db_->data_mu_);
    auto table_it = db_->tables_.find(table);
    if (table_it == db_->tables_.end()) {
      return NotFoundError("no such table: " + table);
    }
    table_it->second->ScanAt(start, limit, kMaxTimestamp,
                             [&](const Key& k, const std::string& v,
                                 Timestamp ver) {
                               rows.push_back({k, v, ver});
                               return max_rows == 0 ||
                                      static_cast<int64_t>(rows.size()) <
                                          max_rows;
                             });
  }
  // Merge this transaction's buffered writes within the range.
  auto tit = writes_.find(table);
  if (tit != writes_.end()) {
    for (const auto& [k, v] : tit->second) {
      if (k < start || (!limit.empty() && k >= limit)) continue;
      auto pos = std::lower_bound(
          rows.begin(), rows.end(), k,
          [](const ScanRow& r, const Key& key) { return r.key < key; });
      if (pos != rows.end() && pos->key == k) {
        if (v.has_value()) {
          pos->value = *v;
        } else {
          rows.erase(pos);
        }
      } else if (v.has_value()) {
        rows.insert(pos, {k, *v, 0});
      }
    }
    if (max_rows > 0 && static_cast<int64_t>(rows.size()) > max_rows) {
      rows.resize(max_rows);
    }
  }
  // 2PL: lock the rows the scan observed.
  for (const ScanRow& row : rows) {
    RETURN_IF_ERROR(db_->lock_manager_.Acquire(id_, LockKey(table, row.key),
                                               LockMode::kShared,
                                               db_->lock_timeout_ms()));
  }
  return rows;
}

void ReadWriteTransaction::Put(const std::string& table, const Key& key,
                               std::string value) {
  writes_[table][key] = std::move(value);
}

void ReadWriteTransaction::Delete(const std::string& table, const Key& key) {
  writes_[table][key] = std::nullopt;
}

void ReadWriteTransaction::AddMessage(const std::string& topic,
                                      std::string payload) {
  messages_.push_back(QueueMessage{topic, std::move(payload), 0});
}

StatusOr<CommitResult> ReadWriteTransaction::Commit(Timestamp min_allowed,
                                                    Timestamp max_allowed) {
  if (finished_) return FailedPreconditionError("transaction finished");
  FS_SPAN("spanner.commit");
  // Injected commit failures happen before any locks or data are touched,
  // so they are always definitive (safe to retry).
  if (Status fault = FS_FAULT_POINT("spanner.txn.commit"); !fault.ok()) {
    Abort();
    return fault;
  }
  if (db_->lock_manager_.IsWounded(id_)) {
    Abort();
    return AbortedError("transaction wounded by an older transaction");
  }
  // Acquire exclusive locks on the write set (paper §IV-D2 step 6: "Spanner
  // acquires additional exclusive locks on the specific IndexEntries rows").
  for (const auto& [table, keys] : writes_) {
    for (const auto& [key, value] : keys) {
      (void)value;
      Status s = db_->lock_manager_.Acquire(
          id_, LockKey(table, key), LockMode::kExclusive,
          db_->lock_timeout_ms());
      if (!s.ok()) {
        Abort();
        return s;
      }
    }
  }
  CommitResult result;
  {
    WriterMutexLock data_lock(&db_->data_mu_);
    StatusOr<Timestamp> ts = db_->oracle_.Allocate(min_allowed, max_allowed);
    if (!ts.ok()) {
      data_lock.Unlock();
      Abort();
      return ts.status();
    }
    result.commit_ts = *ts;
    for (const auto& [table, keys] : writes_) {
      auto table_it = db_->tables_.find(table);
      if (table_it == db_->tables_.end()) {
        data_lock.Unlock();
        Abort();
        return NotFoundError("no such table: " + table);
      }
      std::vector<Key> key_list;
      key_list.reserve(keys.size());
      for (const auto& [key, value] : keys) key_list.push_back(key);
      result.participants +=
          table_it->second->ParticipantCount(key_list);
      for (const auto& [key, value] : keys) {
        table_it->second->Apply(key, value, *ts);
      }
    }
  }
  for (QueueMessage& m : messages_) {
    m.commit_ts = result.commit_ts;
    db_->queue_.Push(std::move(m));
  }
  finished_ = true;
  db_->lock_manager_.ReleaseAll(id_);
  FS_METRIC_COUNTER("spanner.txn.commits").Increment();
  return result;
}

void ReadWriteTransaction::Abort() {
  finished_ = true;
  db_->lock_manager_.ReleaseAll(id_);
  writes_.clear();
  messages_.clear();
  FS_METRIC_COUNTER("spanner.txn.aborts").Increment();
}

// ---------------------------------------------------------------------------
// Database

Database::Database(const Clock* clock, Micros truetime_uncertainty)
    : clock_(clock),
      truetime_(clock, truetime_uncertainty),
      oracle_(clock) {}

Status Database::CreateTable(const std::string& name) {
  WriterMutexLock lock(&data_mu_);
  if (tables_.count(name) != 0) {
    return AlreadyExistsError("table exists: " + name);
  }
  tables_.emplace(name, std::make_unique<Table>(name));
  return Status::Ok();
}

Table* Database::GetTable(const std::string& name) {
  ReaderMutexLock lock(&data_mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  ReaderMutexLock lock(&data_mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::unique_ptr<ReadWriteTransaction> Database::BeginTransaction() {
  TxnId id = next_txn_id_.fetch_add(1);
  return std::unique_ptr<ReadWriteTransaction>(
      new ReadWriteTransaction(this, id));
}

StatusOr<RowValue> Database::SnapshotRead(const std::string& table,
                                          const Key& key, Timestamp ts,
                                          Timestamp* version) const {
  RETURN_IF_ERROR(FS_FAULT_POINT("spanner.snapshot.read"));
  ReaderMutexLock lock(&data_mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return NotFoundError("no such table: " + table);
  return it->second->ReadAt(key, ts, version);
}

StatusOr<std::vector<ScanRow>> Database::SnapshotScan(
    const std::string& table, const Key& start, const Key& limit,
    Timestamp ts, int64_t max_rows) const {
  RETURN_IF_ERROR(FS_FAULT_POINT("spanner.snapshot.scan"));
  ReaderMutexLock lock(&data_mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return NotFoundError("no such table: " + table);
  std::vector<ScanRow> rows;
  it->second->ScanAt(start, limit, ts,
                     [&](const Key& k, const std::string& v, Timestamp ver) {
                       rows.push_back({k, v, ver});
                       return max_rows == 0 ||
                              static_cast<int64_t>(rows.size()) < max_rows;
                     });
  return rows;
}

int Database::RunLoadSplitting(int64_t load_threshold) {
  WriterMutexLock lock(&data_mu_);
  int splits = 0;
  for (auto& [name, table] : tables_) {
    (void)name;
    splits += table->MaybeSplit(load_threshold);
  }
  return splits;
}

int64_t Database::GarbageCollect(Timestamp horizon) {
  WriterMutexLock lock(&data_mu_);
  int64_t dropped = 0;
  for (auto& [name, table] : tables_) {
    (void)name;
    dropped += table->GarbageCollect(horizon);
  }
  return dropped;
}

}  // namespace firestore::spanner
