// TrueTime simulation and commit-timestamp allocation.
//
// Spanner assigns globally-consistent, causally-ordered commit timestamps via
// TrueTime (paper §IV-D1/§IV-D4 rely on this). In a single process we get
// causal ordering for free from a monotonic oracle; the TrueTime interval is
// still modeled so commit-wait cost can be charged in the simulation.

#ifndef FIRESTORE_SPANNER_TRUETIME_H_
#define FIRESTORE_SPANNER_TRUETIME_H_

#include <limits>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace firestore::spanner {

// Commit timestamps are microseconds (shared epoch with Clock).
using Timestamp = int64_t;

inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<int64_t>::max();

struct TrueTimeInterval {
  Timestamp earliest;
  Timestamp latest;
};

class TrueTime {
 public:
  // `uncertainty` is the half-width epsilon of the interval.
  TrueTime(const Clock* clock, Micros uncertainty)
      : clock_(clock), uncertainty_(uncertainty) {}

  TrueTimeInterval Now() const {
    Micros t = clock_->NowMicros();
    return {t - uncertainty_, t + uncertainty_};
  }

  Micros uncertainty() const { return uncertainty_; }

 private:
  const Clock* clock_;
  Micros uncertainty_;
};

// Allocates strictly-increasing commit timestamps that are >= real time and
// respect a caller-supplied [min_allowed, max_allowed] window (the window is
// how the Firestore Backend coordinates with the Real-time Cache's Prepare
// responses, paper §IV-D2 steps 5-6).
class TimestampOracle {
 public:
  explicit TimestampOracle(const Clock* clock) : clock_(clock) {}

  // Returns ABORTED if the allocation floor exceeds max_allowed.
  StatusOr<Timestamp> Allocate(Timestamp min_allowed, Timestamp max_allowed);

  // Latest timestamp handed out (0 if none). A snapshot read at or below
  // this value sees a stable prefix of commits.
  Timestamp last_allocated() const;

  // A strong read timestamp: now, but never below the last commit.
  Timestamp StrongReadTimestamp() const;

 private:
  const Clock* const clock_;
  mutable Mutex mu_;
  mutable Timestamp last_ FS_GUARDED_BY(mu_) = 0;
};

}  // namespace firestore::spanner

#endif  // FIRESTORE_SPANNER_TRUETIME_H_
