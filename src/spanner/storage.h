// Multi-version row storage: Tablet and Table.
//
// A Table's key space is partitioned into Tablets, each holding a consecutive
// key range (paper §IV-D1: "Spanner's automatic load-based splitting and
// merging of rows into tablets"). Rows are multi-versioned: every committed
// write adds a (timestamp, value-or-tombstone) version, enabling lock-free
// snapshot reads at any past timestamp.
//
// Thread-compatible: the Database serializes access (commits exclusive,
// snapshot reads shared).

#ifndef FIRESTORE_SPANNER_STORAGE_H_
#define FIRESTORE_SPANNER_STORAGE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "spanner/truetime.h"

namespace firestore::spanner {

using Key = std::string;
// nullopt == tombstone (row deleted at that version).
using RowValue = std::optional<std::string>;

struct TabletStats {
  // Load counters are atomic: snapshot reads bump them while holding the
  // database lock only in shared mode, racing other readers and the
  // load-splitting scan.
  std::atomic<int64_t> reads{0};
  std::atomic<int64_t> writes{0};
  int64_t bytes = 0;  // approximate stored bytes (latest versions)
};

// One contiguous key range [start_key, limit_key) of a table. An empty
// limit_key means "unbounded above".
class Tablet {
 public:
  Tablet(Key start_key, Key limit_key)
      : start_key_(std::move(start_key)), limit_key_(std::move(limit_key)) {}

  const Key& start_key() const { return start_key_; }
  const Key& limit_key() const { return limit_key_; }
  bool Contains(const Key& key) const;

  // Adds a version. Timestamps for one key must arrive in increasing order
  // (guaranteed by the commit protocol).
  void Apply(const Key& key, RowValue value, Timestamp ts);

  // Latest version at or before `ts`; nullopt if the row does not exist at
  // `ts` (never written, or tombstoned). If `version` is non-null it
  // receives the returned version's commit timestamp (0 when absent).
  RowValue ReadAt(const Key& key, Timestamp ts,
                  Timestamp* version = nullptr) const;

  // In-order scan of live rows in [start, limit) at `ts`. `limit` empty =
  // unbounded. Callback (key, value, version) returns false to stop.
  // Returns rows visited.
  int64_t ScanAt(const Key& start, const Key& limit, Timestamp ts,
                 const std::function<bool(const Key&, const std::string&,
                                          Timestamp)>& cb) const;

  // Splits this tablet at `split_key` (must lie strictly inside the range);
  // returns the new upper tablet.
  std::unique_ptr<Tablet> SplitAt(const Key& split_key);

  // Key that divides this tablet's rows roughly in half; nullopt if fewer
  // than two rows.
  std::optional<Key> MedianKey() const;

  // Drops versions older than `horizon` that are shadowed by newer ones
  // (MVCC garbage collection). Returns versions dropped.
  int64_t GarbageCollect(Timestamp horizon);

  const TabletStats& stats() const { return stats_; }
  void ResetLoadStats();
  int64_t row_count() const { return static_cast<int64_t>(rows_.size()); }

 private:
  friend class Table;

  using Versions = std::map<Timestamp, RowValue>;

  Key start_key_;
  Key limit_key_;
  std::map<Key, Versions> rows_;
  mutable TabletStats stats_;
};

// An ordered collection of tablets covering the whole key space.
class Table {
 public:
  explicit Table(std::string name);

  const std::string& name() const { return name_; }

  void Apply(const Key& key, RowValue value, Timestamp ts);
  RowValue ReadAt(const Key& key, Timestamp ts,
                  Timestamp* version = nullptr) const;

  // Scans across tablets; same contract as Tablet::ScanAt.
  void ScanAt(const Key& start, const Key& limit, Timestamp ts,
              const std::function<bool(const Key&, const std::string&,
                                       Timestamp)>& cb) const;

  // The tablet owning `key`.
  Tablet* TabletForKey(const Key& key);
  const Tablet* TabletForKey(const Key& key) const;

  // Load-based maintenance: splits every tablet whose accumulated write+read
  // count exceeds `load_threshold` (at its median key) and resets load
  // counters. Returns the number of splits performed.
  int MaybeSplit(int64_t load_threshold);

  // Explicit pre-split, e.g. to initialize a database "with enough data to
  // ensure that commits spanned multiple tablets" (paper §V-B2).
  Status SplitAt(const Key& split_key);

  int64_t GarbageCollect(Timestamp horizon);

  size_t tablet_count() const { return tablets_.size(); }
  const std::vector<std::unique_ptr<Tablet>>& tablets() const {
    return tablets_;
  }

  // Distinct tablets touched by a set of keys (the 2PC participant count).
  int ParticipantCount(const std::vector<Key>& keys) const;

 private:
  size_t TabletIndexForKey(const Key& key) const;

  std::string name_;
  std::vector<std::unique_ptr<Tablet>> tablets_;  // sorted by start_key
};

}  // namespace firestore::spanner

#endif  // FIRESTORE_SPANNER_STORAGE_H_
