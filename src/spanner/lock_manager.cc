#include "spanner/lock_manager.h"

#include <chrono>

#include "common/fault_injection.h"
#include "common/metrics.h"

namespace firestore::spanner {

bool LockManager::Compatible(const LockState& state, TxnId txn,
                             LockMode mode) {
  for (const auto& [holder, held_mode] : state.holders) {
    if (holder == txn) continue;  // own locks never conflict
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status LockManager::Acquire(TxnId txn, const std::string& key, LockMode mode,
                            int64_t timeout_ms) {
  RETURN_IF_ERROR(FS_FAULT_POINT("spanner.lock.acquire"));
  MutexLock lock(&mu_);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (true) {
    if (wounded_.count(txn) != 0) {
      return AbortedError("transaction wounded by an older transaction");
    }
    LockState& state = locks_[key];
    auto self = state.holders.find(txn);
    if (self != state.holders.end()) {
      if (self->second == LockMode::kExclusive ||
          mode == LockMode::kShared) {
        return Status::Ok();  // already sufficient
      }
      // Upgrade shared -> exclusive: falls through to the conflict check.
    }
    if (Compatible(state, txn, mode)) {
      state.holders[txn] = (self != state.holders.end() &&
                            mode == LockMode::kShared)
                               ? self->second
                               : mode;
      held_[txn].insert(key);
      return Status::Ok();
    }
    // Wound-wait: wound every younger conflicting holder, then wait.
    bool wounded_someone = false;
    for (const auto& [holder, held_mode] : state.holders) {
      (void)held_mode;
      if (holder == txn) continue;
      if (holder > txn) {  // younger
        wounded_.insert(holder);
        wounded_someone = true;
        FS_METRIC_COUNTER("spanner.lock.wounds").Increment();
      }
    }
    if (wounded_someone) cv_.NotifyAll();
    FS_METRIC_COUNTER("spanner.lock.waits").Increment();
    if (timeout_ms > 0) {
      if (!cv_.WaitUntil(&mu_, deadline)) {
        FS_METRIC_COUNTER("spanner.lock.timeouts").Increment();
        return DeadlineExceededError("lock wait timeout");
      }
    } else {
      cv_.Wait(&mu_);
    }
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  MutexLock lock(&mu_);
  auto it = held_.find(txn);
  if (it != held_.end()) {
    for (const std::string& key : it->second) {
      auto lit = locks_.find(key);
      if (lit == locks_.end()) continue;
      lit->second.holders.erase(txn);
      if (lit->second.holders.empty()) locks_.erase(lit);
    }
    held_.erase(it);
  }
  wounded_.erase(txn);
  cv_.NotifyAll();
}

void LockManager::Wound(TxnId txn) {
  MutexLock lock(&mu_);
  wounded_.insert(txn);
  cv_.NotifyAll();
}

bool LockManager::IsWounded(TxnId txn) const {
  MutexLock lock(&mu_);
  return wounded_.count(txn) != 0;
}

int LockManager::LockCount() const {
  MutexLock lock(&mu_);
  return static_cast<int>(locks_.size());
}

}  // namespace firestore::spanner
