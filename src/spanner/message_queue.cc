#include "spanner/message_queue.h"

#include "common/fault_injection.h"

namespace firestore::spanner {

void MessageQueue::Push(QueueMessage message) {
  bool drop = FS_FAULT_TRIGGERED("spanner.queue.push.drop");
  bool reorder = !drop && FS_FAULT_TRIGGERED("spanner.queue.push.reorder");
  MutexLock lock(&mu_);
  if (drop) {
    ++dropped_;
    return;
  }
  if (reorder) {
    topics_[message.topic].push_front(std::move(message));
    return;
  }
  topics_[message.topic].push_back(std::move(message));
}

std::optional<QueueMessage> MessageQueue::Pop(const std::string& topic) {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end() || it->second.empty()) return std::nullopt;
  QueueMessage message = std::move(it->second.front());
  it->second.pop_front();
  return message;
}

size_t MessageQueue::Size(const std::string& topic) const {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.size();
}

int64_t MessageQueue::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

}  // namespace firestore::spanner
