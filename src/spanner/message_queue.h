// Transactional message queue.
//
// "Spanner also has a transactional messaging system that allows its user to
// persist information that can be used to perform asynchronous work"
// (paper §IV-D2). The Firestore Backend uses it to implement write triggers:
// messages buffered in a read-write transaction become visible only if the
// transaction commits, tagged with its commit timestamp.

#ifndef FIRESTORE_SPANNER_MESSAGE_QUEUE_H_
#define FIRESTORE_SPANNER_MESSAGE_QUEUE_H_

#include <deque>
#include <map>
#include <optional>
#include <string>

#include "common/thread_annotations.h"
#include "spanner/truetime.h"

namespace firestore::spanner {

struct QueueMessage {
  std::string topic;
  std::string payload;
  Timestamp commit_ts = 0;
};

class MessageQueue {
 public:
  // Appends the message to its topic. Fault points "spanner.queue.push.drop"
  // and "spanner.queue.push.reorder" can drop the message entirely (counted
  // in dropped()) or push it at the front of the topic, simulating a lossy /
  // reordering delivery fabric.
  void Push(QueueMessage message);

  // Oldest message on `topic`, removed; nullopt if the topic is empty.
  std::optional<QueueMessage> Pop(const std::string& topic);

  size_t Size(const std::string& topic) const;

  // Messages discarded by the injected drop fault.
  int64_t dropped() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::deque<QueueMessage>> topics_ FS_GUARDED_BY(mu_);
  int64_t dropped_ FS_GUARDED_BY(mu_) = 0;
};

}  // namespace firestore::spanner

#endif  // FIRESTORE_SPANNER_MESSAGE_QUEUE_H_
