#include "spanner/truetime.h"

#include <algorithm>

#include "common/metrics.h"

namespace firestore::spanner {

StatusOr<Timestamp> TimestampOracle::Allocate(Timestamp min_allowed,
                                              Timestamp max_allowed) {
  MutexLock lock(&mu_);
  Timestamp floor = std::max<Timestamp>(last_ + 1, clock_->NowMicros());
  floor = std::max(floor, min_allowed);
  if (floor > max_allowed) {
    FS_METRIC_COUNTER("spanner.ts.allocation_failures").Increment();
    return AbortedError("cannot allocate commit timestamp <= max_allowed");
  }
  last_ = floor;
  return last_;
}

Timestamp TimestampOracle::last_allocated() const {
  MutexLock lock(&mu_);
  return last_;
}

Timestamp TimestampOracle::StrongReadTimestamp() const {
  FS_METRIC_COUNTER("spanner.ts.strong_reads").Increment();
  MutexLock lock(&mu_);
  // Reserve the returned timestamp: commits after a strong read must be
  // strictly greater, so the snapshot the read observed stays immutable.
  last_ = std::max<Timestamp>(last_, clock_->NowMicros());
  return last_;
}

}  // namespace firestore::spanner
