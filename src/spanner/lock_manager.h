// Row-granular two-phase locking with wound-wait deadlock avoidance.
//
// Spanner transactions "are lock-based and use two-phase-commits across
// tablets" (paper §IV-D1); contention between Firestore transactional
// queries and writes is resolved "by failing and retrying such transactions"
// (§IV-D3). Wound-wait gives us deadlock freedom with deterministic victim
// selection: an older transaction requesting a lock held by a younger one
// wounds (aborts) the younger; a younger requester waits for the older.

#ifndef FIRESTORE_SPANNER_LOCK_MANAGER_H_
#define FIRESTORE_SPANNER_LOCK_MANAGER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace firestore::spanner {

using TxnId = uint64_t;  // monotonically increasing; lower id == older

enum class LockMode { kShared, kExclusive };

class LockManager {
 public:
  // Blocks until the lock is granted, the transaction is wounded, or
  // `timeout_ms` elapses (0 = no timeout). Keys are namespaced by table via
  // the caller ("table/key"). Re-entrant: upgrading shared->exclusive is
  // supported and subject to the same wound-wait rules.
  Status Acquire(TxnId txn, const std::string& key, LockMode mode,
                 int64_t timeout_ms = 0);

  // Releases every lock held by `txn` and clears its wounded flag.
  void ReleaseAll(TxnId txn);

  // Marks `txn` wounded; its current and future Acquire calls return ABORTED.
  void Wound(TxnId txn);
  bool IsWounded(TxnId txn) const;

  // Introspection for tests.
  int LockCount() const;

 private:
  struct LockState {
    // Holders: txn -> mode. Multiple shared holders, or one exclusive.
    std::map<TxnId, LockMode> holders;
  };

  // Returns true if `txn` can be granted `mode` on `state` right now.
  static bool Compatible(const LockState& state, TxnId txn, LockMode mode);

  mutable Mutex mu_;
  CondVar cv_;
  std::map<std::string, LockState> locks_ FS_GUARDED_BY(mu_);
  std::set<TxnId> wounded_ FS_GUARDED_BY(mu_);
  // txn -> keys
  std::map<TxnId, std::set<std::string>> held_ FS_GUARDED_BY(mu_);
};

}  // namespace firestore::spanner

#endif  // FIRESTORE_SPANNER_LOCK_MANAGER_H_
