#include "client/client.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/logging.h"

namespace firestore::client {

using backend::Mutation;
using model::Document;
using model::Map;
using model::ResourcePath;

// ---------------------------------------------------------------------------
// ClientTransaction

StatusOr<std::optional<Document>> ClientTransaction::Get(
    const ResourcePath& name) {
  if (!client_->network_enabled()) {
    return UnavailableError("transactions require connectivity");
  }
  StatusOr<std::optional<Document>> doc =
      client_->options_.third_party
          ? client_->service_->GetAsUser(client_->database_id_,
                                         client_->auth_, name)
          : client_->service_->Get(client_->database_id_, name);
  if (doc.ok()) {
    read_versions_[name.CanonicalString()] =
        doc->has_value() ? (*doc)->update_time() : 0;
  }
  return doc;
}

void ClientTransaction::Set(ResourcePath name, Map fields) {
  mutations_.push_back(Mutation::Set(std::move(name), std::move(fields)));
}

void ClientTransaction::Merge(ResourcePath name, Map fields) {
  mutations_.push_back(Mutation::Merge(std::move(name), std::move(fields)));
}

void ClientTransaction::Delete(ResourcePath name) {
  mutations_.push_back(Mutation::Delete(std::move(name)));
}

// ---------------------------------------------------------------------------
// FirestoreClient

FirestoreClient::FirestoreClient(service::FirestoreService* service,
                                 std::string database_id,
                                 rules::AuthContext auth, Options options)
    : service_(service),
      database_id_(std::move(database_id)),
      auth_(std::move(auth)),
      options_(options) {
  connection_ =
      options_.third_party
          ? service_->frontend().OpenConnection(database_id_, auth_)
          : service_->frontend().OpenPrivilegedConnection(database_id_);
}

FirestoreClient::~FirestoreClient() {
  service_->frontend().CloseConnection(connection_);
}

void FirestoreClient::SetNetworkEnabled(bool enabled) {
  if (enabled == online_) return;
  online_ = enabled;
  if (online_) {
    // Reconnection: flush queued writes, then re-attach listeners so each
    // gets a fresh authoritative snapshot (reconciliation).
    (void)FlushPending();
    for (auto& [id, listener] : listeners_) {
      AttachListener(id, listener);
    }
  } else {
    for (auto& [id, listener] : listeners_) DetachListener(listener);
  }
}

void FirestoreClient::Restart() {
  if (options_.persist_cache) {
    persisted_cache_ = store_.Serialize();
  }
  for (auto& [id, listener] : listeners_) DetachListener(listener);
  listeners_.clear();
  store_.Clear();
  if (options_.persist_cache && !persisted_cache_.empty()) {
    StatusOr<LocalStore> restored = LocalStore::Parse(persisted_cache_);
    if (restored.ok()) {
      store_ = std::move(restored).value();
    } else {
      // Corrupt on-device cache (checksum mismatch): start cold rather than
      // trust it.
      FS_LOG(WARNING) << "discarding corrupt persisted cache: "
                      << restored.status();
    }
  }
}

Status FirestoreClient::EnqueueWrite(Mutation mutation) {
  // Acknowledged immediately after updating the local cache (paper §IV-E);
  // flushing happens asynchronously in Pump.
  store_.Enqueue(std::move(mutation));
  for (auto& [id, listener] : listeners_) DeliverView(listener);
  return Status::Ok();
}

Status FirestoreClient::Set(const ResourcePath& name, Map fields) {
  return EnqueueWrite(Mutation::Set(name, std::move(fields)));
}

Status FirestoreClient::Merge(const ResourcePath& name, Map fields) {
  return EnqueueWrite(Mutation::Merge(name, std::move(fields)));
}

Status FirestoreClient::Delete(const ResourcePath& name) {
  return EnqueueWrite(Mutation::Delete(name));
}

StatusOr<std::optional<Document>> FirestoreClient::Get(
    const ResourcePath& name) {
  bool known = false;
  std::optional<Document> local = store_.OverlayDocument(name, &known);
  if (known) return local;
  if (!online_) {
    return UnavailableError("document not cached and the client is offline");
  }
  StatusOr<std::optional<Document>> remote =
      options_.third_party ? service_->GetAsUser(database_id_, auth_, name)
                           : service_->Get(database_id_, name);
  if (remote.ok()) {
    int64_t ts = remote->has_value() ? (*remote)->update_time() : 0;
    store_.ApplyServerDocument(name, *remote, ts);
  }
  return remote;
}

StatusOr<ViewSnapshot> FirestoreClient::RunQuery(const query::Query& q) {
  if (online_) {
    StatusOr<backend::RunQueryResult> result =
        options_.third_party
            ? service_->RunQueryAsUser(database_id_, auth_, q)
            : service_->RunQuery(database_id_, q);
    RETURN_IF_ERROR(result.status());
    for (const Document& doc : result->result.documents) {
      store_.ApplyServerDocument(doc.name(), doc, result->read_ts);
    }
    ViewSnapshot view;
    view.snapshot_ts = result->read_ts;
    view.from_cache = false;
    view.has_pending_writes = store_.PendingAffects(q);
    view.documents = view.has_pending_writes ? store_.RunLocalQuery(q)
                                             : result->result.documents;
    return view;
  }
  ViewSnapshot view;
  view.documents = store_.RunLocalQuery(q);
  view.from_cache = true;
  view.has_pending_writes = store_.PendingAffects(q);
  return view;
}

StatusOr<FirestoreClient::ListenerId> FirestoreClient::OnSnapshot(
    query::Query q, ViewCallback callback) {
  RETURN_IF_ERROR(q.Validate());
  ListenerId id = next_listener_id_++;
  Listener listener;
  listener.query = std::move(q);
  listener.callback = std::move(callback);
  auto [it, inserted] = listeners_.emplace(id, std::move(listener));
  FS_CHECK(inserted);
  if (online_) {
    AttachListener(id, it->second);
    if (!it->second.attached) {
      // Initial listen failed (e.g. permission denied): surface the error.
      Status status = PermissionDeniedError(
          "listen rejected; check security rules");
      listeners_.erase(it);
      return status;
    }
  } else {
    DeliverView(it->second);  // cache-only initial view
  }
  return id;
}

void FirestoreClient::RemoveListener(ListenerId id) {
  auto it = listeners_.find(id);
  if (it == listeners_.end()) return;
  DetachListener(it->second);
  listeners_.erase(it);
}

void FirestoreClient::AttachListener(ListenerId id, Listener& listener) {
  DetachListener(listener);
  StatusOr<frontend::Frontend::TargetId> target =
      service_->frontend().Listen(
          connection_, listener.query,
          [this, id](const frontend::QuerySnapshot& s) {
            OnServerSnapshot(id, s);
          });
  if (!target.ok()) {
    FS_LOG(WARNING) << "listen failed: " << target.status();
    listener.attached = false;
    return;
  }
  listener.attached = true;
  listener.target = *target;
}

void FirestoreClient::DetachListener(Listener& listener) {
  if (!listener.attached) return;
  (void)service_->frontend().StopListen(connection_, listener.target);
  listener.attached = false;
}

void FirestoreClient::OnServerSnapshot(ListenerId id,
                                       const frontend::QuerySnapshot& s) {
  auto it = listeners_.find(id);
  if (it == listeners_.end()) return;
  Listener& listener = it->second;
  if (!s.error.ok()) {
    // Terminal: the frontend exhausted its out-of-sync recovery budget and
    // removed the target. Fall back to cache-backed views; reconnecting
    // (SetNetworkEnabled) re-attaches.
    FS_LOG(WARNING) << "listen terminated: " << s.error;
    listener.attached = false;
    listener.has_server_snapshot = false;
    DeliverView(listener);
    return;
  }
  if (s.is_reset) listener.server_docs.clear();
  for (const frontend::SnapshotChange& change : s.changes) {
    const std::string name = change.doc.name().CanonicalString();
    if (change.kind == frontend::ChangeKind::kRemoved) {
      listener.server_docs.erase(name);
      store_.ApplyServerDocument(change.doc.name(), std::nullopt,
                                 s.snapshot_ts);
    } else {
      listener.server_docs[name] = change.doc;
      store_.ApplyServerDocument(change.doc.name(), change.doc,
                                 s.snapshot_ts);
    }
  }
  listener.server_snapshot_ts = s.snapshot_ts;
  listener.has_server_snapshot = true;
  DeliverView(listener);
}

void FirestoreClient::DeliverView(Listener& listener) {
  ViewSnapshot view;
  view.snapshot_ts = listener.server_snapshot_ts;
  view.from_cache = !listener.has_server_snapshot || !online_;
  view.has_pending_writes = store_.PendingAffects(listener.query);

  // Start from the authoritative result set, overlay pending mutations, and
  // include locally-mutated documents that now match.
  std::map<std::string, Document> docs = listener.server_docs;
  for (const PendingMutation& p : store_.pending()) {
    const std::string name = p.mutation.name.CanonicalString();
    std::optional<Document> overlaid =
        store_.OverlayDocument(p.mutation.name);
    if (overlaid.has_value() && listener.query.Matches(*overlaid)) {
      docs[name] = *overlaid;
    } else {
      docs.erase(name);
    }
  }
  view.documents.reserve(docs.size());
  for (auto& [name, doc] : docs) view.documents.push_back(doc);
  std::sort(view.documents.begin(), view.documents.end(),
            [&](const Document& a, const Document& b) {
              return listener.query.Compare(a, b) < 0;
            });
  if (listener.query.limit() > 0 &&
      static_cast<int64_t>(view.documents.size()) > listener.query.limit()) {
    view.documents.resize(listener.query.limit());
  }
  listener.callback(view);
}

StatusOr<backend::CommitResponse> FirestoreClient::SendCommit(
    const std::vector<Mutation>& mutations) {
  if (options_.third_party) {
    return service_->CommitAsUser(database_id_, auth_, mutations);
  }
  return service_->Commit(database_id_, mutations);
}

Status FirestoreClient::FlushPending() {
  if (service_->clock().NowMicros() < flush_retry_at_) {
    return Status::Ok();  // backing off after a transient failure
  }
  while (store_.HasPending()) {
    const PendingMutation& next = store_.pending().front();
    Status fault = FS_FAULT_POINT("client.flush");
    StatusOr<backend::CommitResponse> result =
        fault.ok() ? SendCommit({next.mutation})
                   : StatusOr<backend::CommitResponse>(fault);
    if (result.ok()) {
      ++writes_flushed_;
      flush_retry_at_ = 0;
      flush_prev_backoff_ = 0;
      for (const backend::DocumentChange& change : result->changes) {
        store_.ApplyServerDocument(
            change.name,
            change.deleted ? std::nullopt : change.new_doc,
            result->commit_ts);
      }
      store_.AckThrough(next.sequence);
    } else if (IsRetryableWriteStatus(result.status()) ||
               result.status().code() == StatusCode::kDeadlineExceeded) {
      // Transient (mutations are blind last-write-wins, so even an
      // unknown-outcome DEADLINE_EXCEEDED is safe to resend): back off and
      // retry on a later pump, honoring any server retry-after hint.
      Micros delay = NextBackoff(options_.flush_retry, flush_rng_,
                                 &flush_prev_backoff_);
      if (std::optional<Micros> hint = RetryAfterHint(result.status())) {
        delay = std::max(delay, *hint);
      }
      flush_retry_at_ = service_->clock().NowMicros() + delay;
      return result.status();
    } else {
      // Permanent rejection (e.g. permission denied): drop the mutation so
      // the queue does not wedge; local view reconciles to server state.
      ++write_errors_;
      FS_LOG(WARNING) << "dropping rejected write: " << result.status();
      store_.AckThrough(next.sequence);
      for (auto& [id, listener] : listeners_) DeliverView(listener);
    }
  }
  return Status::Ok();
}

Status FirestoreClient::RunTransaction(const TransactionFn& fn,
                                       int max_attempts) {
  if (!online_) {
    return UnavailableError("transactions require connectivity");
  }
  Status last = AbortedError("no attempts made");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ClientTransaction txn(this);
    Status body = fn(txn);
    if (!body.ok()) return body;  // user aborted
    // Attach freshness preconditions for every read document.
    std::vector<Mutation> to_commit = std::move(txn.mutations_);
    for (Mutation& m : to_commit) {
      auto it = txn.read_versions_.find(m.name.CanonicalString());
      if (it != txn.read_versions_.end() &&
          m.precondition == Mutation::Precondition::kNone) {
        m.precondition = Mutation::Precondition::kUpdateTimeEquals;
        m.expected_update_time = it->second;
      }
    }
    if (to_commit.empty()) return Status::Ok();
    StatusOr<backend::CommitResponse> result = SendCommit(to_commit);
    if (result.ok()) {
      for (const backend::DocumentChange& change : result->changes) {
        store_.ApplyServerDocument(
            change.name, change.deleted ? std::nullopt : change.new_doc,
            result->commit_ts);
      }
      return Status::Ok();
    }
    last = result.status();
    if (last.code() != StatusCode::kFailedPrecondition &&
        last.code() != StatusCode::kAborted) {
      return last;  // not a contention failure
    }
  }
  return last;
}

void FirestoreClient::Pump() {
  if (online_) (void)FlushPending();
}

}  // namespace firestore::client
