// Client-side local cache and mutation queue (paper §IV-E).
//
// "The Client (Mobile and Web) SDKs build a local cache of the documents
// accessed by the client ... Mutations to documents by the client are
// acknowledged immediately after updating the local cache; the updates are
// also flushed to the Firestore API asynchronously."
//
// The LocalStore holds (a) the latest authoritative server view of each
// document the client has seen, (b) the queue of not-yet-acknowledged
// local mutations, and (c) local single-field indexes over the cached
// documents ("together with the necessary local indexes") so offline
// queries with equality filters touch only candidate documents instead of
// scanning the whole cache. Reads overlay (b) on (a) — latency
// compensation.

#ifndef FIRESTORE_CLIENT_LOCAL_STORE_H_
#define FIRESTORE_CLIENT_LOCAL_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "backend/types.h"
#include "common/status.h"
#include "firestore/model/document.h"
#include "firestore/query/query.h"

namespace firestore::client {

struct CacheEntry {
  // nullopt = the server confirmed the document does not exist.
  std::optional<model::Document> doc;
  // Server timestamp at which this view was current.
  int64_t snapshot_ts = 0;
};

struct PendingMutation {
  uint64_t sequence = 0;
  backend::Mutation mutation;
};

class LocalStore {
 public:
  // -- Authoritative (server) state --

  void ApplyServerDocument(const model::ResourcePath& name,
                           std::optional<model::Document> doc,
                           int64_t snapshot_ts);
  std::optional<CacheEntry> LookupServer(
      const model::ResourcePath& name) const;

  // -- Mutation queue --

  uint64_t Enqueue(backend::Mutation mutation);
  const std::vector<PendingMutation>& pending() const { return pending_; }
  bool HasPending() const { return !pending_.empty(); }
  // Drops every mutation with sequence <= `sequence` (they were committed
  // or rejected).
  void AckThrough(uint64_t sequence);

  // -- Overlay reads (latency compensation) --

  // The document as the client should see it: server view + pending
  // mutations applied in order. `known` is false when neither the cache nor
  // the queue knows anything about the document.
  std::optional<model::Document> OverlayDocument(
      const model::ResourcePath& name, bool* known = nullptr) const;

  // Runs `q` against the cache (server views + overlay). Results are only
  // as complete as the cache — the expected behavior for offline queries.
  // Equality filters are served from the local indexes.
  std::vector<model::Document> RunLocalQuery(const query::Query& q) const;

  // Documents examined by the last RunLocalQuery (tests assert the local
  // index narrows the candidate set).
  int64_t last_query_docs_examined() const {
    return last_query_docs_examined_;
  }

  // Whether any pending mutation touches a document matching `q` or in its
  // current result set.
  bool PendingAffects(const query::Query& q) const;

  // -- Persistence (paper §IV-E: optional persisted cache => warm start) --

  std::string Serialize() const;
  static StatusOr<LocalStore> Parse(std::string_view data);

  void Clear();
  size_t cached_documents() const { return server_docs_.size(); }

 private:
  static std::optional<model::Document> ApplyMutationToDoc(
      const backend::Mutation& m, std::optional<model::Document> base);

  // Local index maintenance on every server-view change.
  void IndexDocument(const std::string& name,
                     const std::optional<model::Document>& old_doc,
                     const std::optional<model::Document>& new_doc);

  std::map<std::string, CacheEntry> server_docs_;  // by canonical name
  std::vector<PendingMutation> pending_;
  uint64_t next_sequence_ = 1;
  // (collection id, field path, encoded value) -> document names. Only
  // server-confirmed documents are indexed; the pending overlay is merged
  // at query time.
  std::map<std::tuple<std::string, std::string, std::string>,
           std::set<std::string>>
      local_index_;
  mutable int64_t last_query_docs_examined_ = 0;
};

}  // namespace firestore::client

#endif  // FIRESTORE_CLIENT_LOCAL_STORE_H_
