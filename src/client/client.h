// The Mobile/Web SDK simulation (paper §III-E, §IV-E): latency-compensated
// reads and writes over a local cache, real-time listeners, fully
// disconnected operation with automatic reconciliation on reconnect, and
// optimistic-concurrency transactions while connected.

#ifndef FIRESTORE_CLIENT_CLIENT_H_
#define FIRESTORE_CLIENT_CLIENT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/local_store.h"
#include "common/random.h"
#include "common/retry.h"
#include "service/service.h"

namespace firestore::client {

// The view of a query delivered to onSnapshot listeners.
struct ViewSnapshot {
  std::vector<model::Document> documents;
  // True when local mutations not yet acknowledged by the server are
  // reflected in `documents` (latency compensation).
  bool has_pending_writes = false;
  // True when served from the local cache without server confirmation
  // (offline, or before the first server snapshot).
  bool from_cache = false;
  int64_t snapshot_ts = 0;
};

using ViewCallback = std::function<void(const ViewSnapshot&)>;

class FirestoreClient;

// Optimistic client transaction context ("all data read by the transaction
// is revalidated for freshness at the time of the commit").
class ClientTransaction {
 public:
  StatusOr<std::optional<model::Document>> Get(const model::ResourcePath&);
  void Set(model::ResourcePath name, model::Map fields);
  void Merge(model::ResourcePath name, model::Map fields);
  void Delete(model::ResourcePath name);

 private:
  friend class FirestoreClient;
  explicit ClientTransaction(FirestoreClient* client) : client_(client) {}

  FirestoreClient* client_;
  std::map<std::string, int64_t> read_versions_;  // name -> update_time (0 = absent)
  std::vector<backend::Mutation> mutations_;
};

class FirestoreClient {
 public:
  struct Options {
    // When false, security rules are bypassed (Server SDK behavior); when
    // true the client is a third-party end-user device.
    bool third_party = true;
    // Persist the local cache across Restart() (end-user privacy choice,
    // paper §IV-E).
    bool persist_cache = true;
    // Backoff shape for the mutation queue's flush retries ("automatic
    // retry with backoff", paper §III-D). max_attempts is ignored: queued
    // writes are already acknowledged locally, so transient flush failures
    // retry indefinitely with capped backoff.
    RetryPolicy flush_retry;
    uint64_t flush_retry_seed = 0x5eed;
  };

  FirestoreClient(service::FirestoreService* service, std::string database_id,
                  rules::AuthContext auth, Options options);
  FirestoreClient(service::FirestoreService* service, std::string database_id,
                  rules::AuthContext auth = {})
      : FirestoreClient(service, std::move(database_id), std::move(auth),
                        Options()) {}
  ~FirestoreClient();

  FirestoreClient(const FirestoreClient&) = delete;
  FirestoreClient& operator=(const FirestoreClient&) = delete;

  // -- Connectivity --

  // Disables/enables the network. While disabled, reads serve from cache,
  // writes queue locally, and listeners keep firing on local changes.
  void SetNetworkEnabled(bool enabled);
  bool network_enabled() const { return online_; }

  // Simulates an app restart: all in-memory state is dropped; with
  // persist_cache the local cache (including queued offline writes) is
  // restored, giving a warm start.
  void Restart();

  // -- Writes (blind; last-update-wins; acknowledged immediately) --

  Status Set(const model::ResourcePath& name, model::Map fields);
  Status Merge(const model::ResourcePath& name, model::Map fields);
  Status Delete(const model::ResourcePath& name);

  // -- Reads --

  // Cache-first document read; falls through to the server when online and
  // the document is not cached.
  StatusOr<std::optional<model::Document>> Get(
      const model::ResourcePath& name);

  // One-shot query: server when online (cache updated), local cache
  // otherwise.
  StatusOr<ViewSnapshot> RunQuery(const query::Query& q);

  // -- Real-time listeners --

  using ListenerId = uint64_t;
  StatusOr<ListenerId> OnSnapshot(query::Query q, ViewCallback callback);
  void RemoveListener(ListenerId id);

  // -- Transactions (connected only) --

  using TransactionFn = std::function<Status(ClientTransaction&)>;
  Status RunTransaction(const TransactionFn& fn, int max_attempts = 5);

  // Flushes queued mutations (when online) and re-delivers views as needed.
  // The test/sim driver calls service->Pump() separately.
  void Pump();

  // -- Introspection --
  const LocalStore& local_store() const { return store_; }
  int64_t writes_flushed() const { return writes_flushed_; }
  int64_t write_errors() const { return write_errors_; }

 private:
  friend class ClientTransaction;

  struct Listener {
    query::Query query;
    ViewCallback callback;
    // Online plumbing.
    bool attached = false;
    frontend::Frontend::TargetId target = 0;
    // Latest authoritative result from the frontend (by name).
    std::map<std::string, model::Document> server_docs;
    int64_t server_snapshot_ts = 0;
    bool has_server_snapshot = false;
  };

  Status EnqueueWrite(backend::Mutation mutation);
  void AttachListener(ListenerId id, Listener& listener);
  void DetachListener(Listener& listener);
  void OnServerSnapshot(ListenerId id, const frontend::QuerySnapshot& s);
  // Recomputes a listener's latency-compensated view and fires its callback.
  void DeliverView(Listener& listener);
  Status FlushPending();
  StatusOr<backend::CommitResponse> SendCommit(
      const std::vector<backend::Mutation>& mutations);

  service::FirestoreService* service_;
  std::string database_id_;
  rules::AuthContext auth_;
  Options options_;
  bool online_ = true;
  LocalStore store_;
  std::string persisted_cache_;
  frontend::Frontend::ConnectionId connection_ = 0;
  uint64_t next_listener_id_ = 1;
  std::map<ListenerId, Listener> listeners_;
  int64_t writes_flushed_ = 0;
  int64_t write_errors_ = 0;
  // Flush backoff state: no flush is attempted before flush_retry_at_.
  Rng flush_rng_{options_.flush_retry_seed};
  Micros flush_retry_at_ = 0;
  Micros flush_prev_backoff_ = 0;
};

}  // namespace firestore::client

#endif  // FIRESTORE_CLIENT_CLIENT_H_
