#include "client/local_store.h"

#include <algorithm>

#include "common/checksum.h"
#include "firestore/codec/document_codec.h"
#include "firestore/codec/value_codec.h"

namespace firestore::client {

using backend::Mutation;
using model::Document;
using model::Map;
using model::ResourcePath;

void LocalStore::ApplyServerDocument(const ResourcePath& name,
                                     std::optional<Document> doc,
                                     int64_t snapshot_ts) {
  CacheEntry& entry = server_docs_[name.CanonicalString()];
  if (snapshot_ts < entry.snapshot_ts) return;  // stale update
  IndexDocument(name.CanonicalString(), entry.doc, doc);
  entry.doc = std::move(doc);
  entry.snapshot_ts = snapshot_ts;
}

void LocalStore::IndexDocument(const std::string& name,
                               const std::optional<Document>& old_doc,
                               const std::optional<Document>& new_doc) {
  auto entries_of = [](const std::optional<Document>& doc) {
    std::vector<std::tuple<std::string, std::string, std::string>> keys;
    if (!doc.has_value()) return keys;
    std::string collection = doc->name().Parent().last_segment();
    for (const auto& [field, value] : doc->fields()) {
      keys.emplace_back(collection, field, codec::EncodeValueAsc(value));
    }
    return keys;
  };
  for (const auto& key : entries_of(old_doc)) {
    auto it = local_index_.find(key);
    if (it != local_index_.end()) {
      it->second.erase(name);
      if (it->second.empty()) local_index_.erase(it);
    }
  }
  for (const auto& key : entries_of(new_doc)) {
    local_index_[key].insert(name);
  }
}

std::optional<CacheEntry> LocalStore::LookupServer(
    const ResourcePath& name) const {
  auto it = server_docs_.find(name.CanonicalString());
  if (it == server_docs_.end()) return std::nullopt;
  return it->second;
}

uint64_t LocalStore::Enqueue(Mutation mutation) {
  uint64_t seq = next_sequence_++;
  pending_.push_back({seq, std::move(mutation)});
  return seq;
}

void LocalStore::AckThrough(uint64_t sequence) {
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [&](const PendingMutation& p) {
                                  return p.sequence <= sequence;
                                }),
                 pending_.end());
}

std::optional<Document> LocalStore::ApplyMutationToDoc(
    const Mutation& m, std::optional<Document> base) {
  switch (m.kind) {
    case Mutation::Kind::kDelete:
      return std::nullopt;
    case Mutation::Kind::kSet:
      return Document(m.name, m.fields);
    case Mutation::Kind::kMerge: {
      Map merged = base.has_value() ? base->fields() : Map();
      for (const auto& [k, v] : m.fields) merged[k] = v;
      return Document(m.name, std::move(merged));
    }
  }
  return base;
}

std::optional<Document> LocalStore::OverlayDocument(const ResourcePath& name,
                                                    bool* known) const {
  std::optional<Document> doc;
  bool have_info = false;
  auto it = server_docs_.find(name.CanonicalString());
  if (it != server_docs_.end()) {
    doc = it->second.doc;
    have_info = true;
  }
  for (const PendingMutation& p : pending_) {
    if (!(p.mutation.name == name)) continue;
    doc = ApplyMutationToDoc(p.mutation, std::move(doc));
    have_info = true;
  }
  if (known != nullptr) *known = have_info;
  return doc;
}

std::vector<Document> LocalStore::RunLocalQuery(const query::Query& q) const {
  // Candidate names: from a local index when the query has an equality
  // filter on a top-level field, otherwise every cached document. Pending
  // mutations are always candidates (their effects are not indexed).
  std::vector<std::string> names;
  const query::FieldFilter* indexable = nullptr;
  for (const query::FieldFilter& f : q.filters()) {
    if (f.op == query::Operator::kEqual && f.field.size() == 1) {
      indexable = &f;
      break;
    }
  }
  if (indexable != nullptr) {
    auto it = local_index_.find(std::make_tuple(
        q.collection_id(), indexable->field.CanonicalString(),
        codec::EncodeValueAsc(indexable->value)));
    if (it != local_index_.end()) {
      names.assign(it->second.begin(), it->second.end());
    }
  } else {
    for (const auto& [name, entry] : server_docs_) names.push_back(name);
  }
  for (const PendingMutation& p : pending_) {
    names.push_back(p.mutation.name.CanonicalString());
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());

  last_query_docs_examined_ = static_cast<int64_t>(names.size());
  std::vector<Document> results;
  for (const std::string& name : names) {
    auto path = ResourcePath::Parse(name);
    if (!path.ok()) continue;
    std::optional<Document> doc = OverlayDocument(*path);
    if (doc.has_value() && q.Matches(*doc)) results.push_back(*doc);
  }
  std::sort(results.begin(), results.end(),
            [&](const Document& a, const Document& b) {
              return q.Compare(a, b) < 0;
            });
  if (q.offset() > 0) {
    results.erase(results.begin(),
                  results.begin() + std::min<size_t>(q.offset(),
                                                     results.size()));
  }
  if (q.limit() > 0 && static_cast<int64_t>(results.size()) > q.limit()) {
    results.resize(q.limit());
  }
  return results;
}

bool LocalStore::PendingAffects(const query::Query& q) const {
  for (const PendingMutation& p : pending_) {
    const ResourcePath& name = p.mutation.name;
    if (name.Parent() == q.CollectionPath()) return true;
  }
  return false;
}

std::string LocalStore::Serialize() const {
  std::string out;
  codec::AppendVarint(out, server_docs_.size());
  for (const auto& [name, entry] : server_docs_) {
    codec::AppendVarint(out, name.size());
    out += name;
    out.push_back(entry.doc.has_value() ? 1 : 0);
    codec::AppendVarint(out, static_cast<uint64_t>(entry.snapshot_ts));
    if (entry.doc.has_value()) {
      std::string doc_bytes = codec::SerializeDocument(*entry.doc);
      codec::AppendVarint(out, doc_bytes.size());
      out += doc_bytes;
    }
  }
  // Pending mutations are persisted too (offline writes survive restarts).
  codec::AppendVarint(out, pending_.size());
  for (const PendingMutation& p : pending_) {
    codec::AppendVarint(out, p.sequence);
    out.push_back(static_cast<char>(p.mutation.kind));
    Document holder(p.mutation.name, p.mutation.fields);
    std::string bytes = codec::SerializeDocument(holder);
    codec::AppendVarint(out, bytes.size());
    out += bytes;
  }
  // Persisted caches carry an end-to-end checksum: a corrupted on-device
  // store is detected and rebuilt rather than trusted.
  AppendChecksum(out);
  return out;
}

StatusOr<LocalStore> LocalStore::Parse(std::string_view data) {
  if (!VerifyAndStripChecksum(&data)) {
    return InternalError("corrupt cache: checksum mismatch");
  }
  LocalStore store;
  uint64_t num_docs;
  if (!codec::ParseVarint(&data, &num_docs)) {
    return InternalError("corrupt cache: header");
  }
  for (uint64_t i = 0; i < num_docs; ++i) {
    uint64_t name_len;
    if (!codec::ParseVarint(&data, &name_len) || data.size() < name_len + 1) {
      return InternalError("corrupt cache: name");
    }
    std::string name(data.substr(0, name_len));
    data.remove_prefix(name_len);
    bool has_doc = data.front() != 0;
    data.remove_prefix(1);
    uint64_t ts;
    if (!codec::ParseVarint(&data, &ts)) {
      return InternalError("corrupt cache: ts");
    }
    CacheEntry entry;
    entry.snapshot_ts = static_cast<int64_t>(ts);
    if (has_doc) {
      uint64_t len;
      if (!codec::ParseVarint(&data, &len) || data.size() < len) {
        return InternalError("corrupt cache: doc");
      }
      ASSIGN_OR_RETURN(Document doc,
                       codec::ParseDocument(data.substr(0, len)));
      data.remove_prefix(len);
      entry.doc = std::move(doc);
    }
    store.IndexDocument(name, std::nullopt, entry.doc);
    store.server_docs_.emplace(std::move(name), std::move(entry));
  }
  uint64_t num_pending;
  if (!codec::ParseVarint(&data, &num_pending)) {
    return InternalError("corrupt cache: pending header");
  }
  for (uint64_t i = 0; i < num_pending; ++i) {
    uint64_t seq, len;
    if (!codec::ParseVarint(&data, &seq) || data.empty()) {
      return InternalError("corrupt cache: pending seq");
    }
    auto kind = static_cast<Mutation::Kind>(data.front());
    data.remove_prefix(1);
    if (!codec::ParseVarint(&data, &len) || data.size() < len) {
      return InternalError("corrupt cache: pending doc");
    }
    ASSIGN_OR_RETURN(Document holder,
                     codec::ParseDocument(data.substr(0, len)));
    data.remove_prefix(len);
    PendingMutation p;
    p.sequence = seq;
    p.mutation.kind = kind;
    p.mutation.name = holder.name();
    p.mutation.fields = holder.fields();
    store.pending_.push_back(std::move(p));
    store.next_sequence_ = std::max(store.next_sequence_, seq + 1);
  }
  if (!data.empty()) return InternalError("corrupt cache: trailing bytes");
  return store;
}

void LocalStore::Clear() {
  server_docs_.clear();
  pending_.clear();
  local_index_.clear();
}

}  // namespace firestore::client
