// Cloud Functions stand-in (paper §III-F): write triggers persist messages
// on Spanner's transactional queue; this dispatcher drains the queue and
// invokes the registered handlers with the change delta.

#ifndef FIRESTORE_FUNCTIONS_FUNCTIONS_H_
#define FIRESTORE_FUNCTIONS_FUNCTIONS_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>

#include "backend/committer.h"
#include "common/thread_annotations.h"
#include "spanner/database.h"

namespace firestore::functions {

// Handler receives the trigger event; returning a non-OK status requeues the
// message (at-least-once delivery).
using Handler = std::function<Status(const backend::TriggerEvent&)>;

class FunctionRegistry {
 public:
  void Register(const std::string& function_name, Handler handler);
  void Unregister(const std::string& function_name);

  // Dispatches up to `max_messages` queued trigger events (0 = drain).
  // Returns the number successfully handled. Events for unregistered
  // functions are dropped (with a warning), mirroring a deploy race.
  int DispatchPending(spanner::Database& spanner, int max_messages = 0);

  int64_t dispatched() const { return dispatched_.load(); }
  int64_t failed() const { return failed_.load(); }

 private:
  mutable Mutex mu_;
  std::map<std::string, Handler> handlers_ FS_GUARDED_BY(mu_);
  // Atomics: bumped during dispatch and read by stats accessors without
  // the registry lock.
  std::atomic<int64_t> dispatched_{0};
  std::atomic<int64_t> failed_{0};
};

}  // namespace firestore::functions

#endif  // FIRESTORE_FUNCTIONS_FUNCTIONS_H_
