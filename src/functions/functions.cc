#include "functions/functions.h"

#include "common/logging.h"

namespace firestore::functions {

void FunctionRegistry::Register(const std::string& function_name,
                                Handler handler) {
  MutexLock lock(&mu_);
  handlers_[function_name] = std::move(handler);
}

void FunctionRegistry::Unregister(const std::string& function_name) {
  MutexLock lock(&mu_);
  handlers_.erase(function_name);
}

int FunctionRegistry::DispatchPending(spanner::Database& spanner,
                                      int max_messages) {
  int handled = 0;
  int attempts = 0;
  while (max_messages == 0 || attempts < max_messages) {
    std::optional<spanner::QueueMessage> message =
        spanner.queue().Pop(backend::kTriggerTopic);
    if (!message.has_value()) break;
    ++attempts;
    StatusOr<backend::TriggerEvent> event =
        backend::TriggerEvent::Parse(message->payload);
    if (!event.ok()) {
      FS_LOG(WARNING) << "dropping corrupt trigger message: "
                      << event.status();
      continue;
    }
    Handler handler;
    {
      MutexLock lock(&mu_);
      auto it = handlers_.find(event->function_name);
      if (it == handlers_.end()) {
        FS_LOG(WARNING) << "no handler for function '"
                        << event->function_name << "', dropping";
        continue;
      }
      handler = it->second;
    }
    Status status = handler(*event);
    if (status.ok()) {
      ++handled;
      ++dispatched_;
    } else {
      // At-least-once: push the message back for a later attempt.
      spanner.queue().Push(*message);
      ++failed_;
      if (max_messages == 0) break;  // avoid spinning on a poison message
    }
  }
  return handled;
}

}  // namespace firestore::functions
