#include "sim/cpu_server.h"

namespace firestore::sim {

bool CpuServer::Submit(const std::string& key, Micros cost,
                       std::function<void()> done, bool batch) {
  if (options_.max_queue != 0 && queued_ >= options_.max_queue) {
    ++shed_;
    return false;
  }
  // FIFO collapses every key into one queue.
  auto& band = batch ? batch_queues_ : queues_;
  band[options_.fair_share ? key : std::string()].push_back(
      Job{cost, std::move(done)});
  ++queued_;
  TryDispatch();
  return true;
}

bool CpuServer::PopFromBand(std::map<std::string, std::deque<Job>>& queues,
                            bool fair_share, std::string& cursor, Job* job) {
  if (!fair_share) {
    auto it = queues.find(std::string());
    if (it == queues.end() || it->second.empty()) return false;
    *job = std::move(it->second.front());
    it->second.pop_front();
    return true;
  }
  // Round-robin over non-empty per-key queues, starting after the cursor.
  auto it = queues.upper_bound(cursor);
  for (size_t i = 0; i <= queues.size(); ++i) {
    if (it == queues.end()) it = queues.begin();
    if (it == queues.end()) return false;  // no queues at all
    if (!it->second.empty()) {
      *job = std::move(it->second.front());
      it->second.pop_front();
      cursor = it->first;
      return true;
    }
    ++it;
  }
  return false;
}

bool CpuServer::PopNext(Job* job) {
  if (queued_ == 0) return false;
  // Latency-sensitive band first; batch only when it is drained.
  if (PopFromBand(queues_, options_.fair_share, rr_cursor_, job)) {
    --queued_;
    return true;
  }
  if (PopFromBand(batch_queues_, options_.fair_share, batch_rr_cursor_,
                  job)) {
    --queued_;
    return true;
  }
  return false;
}

void CpuServer::TryDispatch() {
  while (idle_workers_ > 0) {
    Job job;
    if (!PopNext(&job)) return;
    --idle_workers_;
    busy_micros_ += job.cost;
    sim_->After(job.cost, [this, done = std::move(job.done)]() mutable {
      ++idle_workers_;
      ++completed_;
      if (done) done();
      TryDispatch();
    });
  }
}

void CpuServer::SetWorkers(int workers) {
  if (workers < 1) workers = 1;
  int delta = workers - options_.workers;
  options_.workers = workers;
  idle_workers_ += delta;
  // Note: shrinking can drive idle_workers_ negative; in-flight jobs finish
  // and the pool converges to the new size.
  if (delta > 0) TryDispatch();
}

double CpuServer::utilization(Micros window_start) const {
  Micros elapsed = sim_->now() - window_start;
  if (elapsed <= 0) return 0;
  return static_cast<double>(busy_micros_) /
         static_cast<double>(elapsed * options_.workers);
}

}  // namespace firestore::sim
