#include "sim/autoscaler.h"

#include <algorithm>
#include <cmath>

namespace firestore::sim {

void Autoscaler::Start() {
  sim_->After(options_.interval, [this] { Evaluate(); });
}

void Autoscaler::Evaluate() {
  double queue_per_worker =
      static_cast<double>(server_->queue_depth()) /
      std::max(1, server_->workers());
  if (queue_per_worker > options_.scale_up_queue_per_worker) {
    ++over_threshold_streak_;
    idle_streak_ = 0;
    if (over_threshold_streak_ >= options_.samples_before_scale) {
      int target = std::min<int>(
          options_.max_workers,
          static_cast<int>(std::ceil(server_->workers() *
                                     options_.scale_factor)));
      if (target > server_->workers()) {
        server_->SetWorkers(target);
        ++scale_ups_;
      }
      over_threshold_streak_ = 0;
    }
  } else if (server_->queue_depth() == 0) {
    over_threshold_streak_ = 0;
    ++idle_streak_;
    // Scale down slowly after sustained idleness.
    if (idle_streak_ >= options_.samples_before_scale * 4 &&
        server_->workers() > options_.min_workers) {
      server_->SetWorkers(std::max(
          options_.min_workers,
          static_cast<int>(server_->workers() / options_.scale_factor)));
      ++scale_downs_;
      idle_streak_ = 0;
    }
  } else {
    over_threshold_streak_ = 0;
    idle_streak_ = 0;
  }
  sim_->After(options_.interval, [this] { Evaluate(); });
}

}  // namespace firestore::sim
