// Latency model for the simulated deployment.
//
// Calibrated loosely against the public shape of Firestore latencies: a
// regional deployment commits in a few milliseconds; the nam5 multi-region
// used in the paper's benchmarks pays a replication quorum across sites, so
// strong reads land around ~15 ms and commits around ~35 ms, growing with
// two-phase-commit participants and payload size. Values are medians of a
// lognormal jitter distribution; absolute numbers are not the point — the
// paper reports trends, not axes (§V).

#ifndef FIRESTORE_SIM_LATENCY_MODEL_H_
#define FIRESTORE_SIM_LATENCY_MODEL_H_

#include <algorithm>

#include "common/clock.h"
#include "common/random.h"

namespace firestore::sim {

class LatencyModel {
 public:
  struct Options {
    bool multi_region = true;
    // Medians (micros).
    Micros rpc_hop = 500;              // client<->frontend<->backend hop
    Micros spanner_read_regional = 1'500;
    Micros spanner_read_multi = 9'000;
    Micros spanner_commit_regional = 4'000;
    Micros spanner_commit_multi = 26'000;
    // Extra per additional 2PC participant tablet.
    Micros per_participant = 2'500;
    // Extra per KiB of commit payload (replication bandwidth).
    Micros per_payload_kib = 18;
    // Extra per index entry written (fanout to IndexEntries tablets).
    Micros per_index_entry = 60;
    // Lognormal sigma for jitter (tail heaviness).
    double sigma = 0.25;
  };

  LatencyModel() = default;
  explicit LatencyModel(Options options) : options_(options) {}

  Micros RpcHop(Rng& rng) const { return Jitter(rng, options_.rpc_hop); }

  Micros SpannerStrongRead(Rng& rng) const {
    return Jitter(rng, options_.multi_region
                           ? options_.spanner_read_multi
                           : options_.spanner_read_regional);
  }

  // Commit latency as a function of the work the engine actually did.
  Micros SpannerCommit(Rng& rng, int participants, int64_t payload_bytes,
                       int64_t index_entries) const {
    Micros base = options_.multi_region ? options_.spanner_commit_multi
                                        : options_.spanner_commit_regional;
    base += options_.per_participant *
            std::max(0, participants - 1);
    base += options_.per_payload_kib * (payload_bytes / 1024);
    base += options_.per_index_entry * index_entries;
    return Jitter(rng, base);
  }

  const Options& options() const { return options_; }

 private:
  Micros Jitter(Rng& rng, Micros median) const {
    if (median <= 0) return 0;
    double factor = rng.LogNormal(0.0, options_.sigma);
    return static_cast<Micros>(static_cast<double>(median) * factor);
  }

  Options options_;
};

}  // namespace firestore::sim

#endif  // FIRESTORE_SIM_LATENCY_MODEL_H_
