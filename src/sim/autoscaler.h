// Autoscaling for CpuServer pools (paper §IV-C: "all components build on
// Google's auto-scaling infrastructure, so the number of tasks in a given
// component adjusts in response to load", with deliberate delays because
// "short-lived traffic spikes do not merit auto-scaling").

#ifndef FIRESTORE_SIM_AUTOSCALER_H_
#define FIRESTORE_SIM_AUTOSCALER_H_

#include "sim/cpu_server.h"
#include "sim/simulation.h"

namespace firestore::sim {

class Autoscaler {
 public:
  struct Options {
    int min_workers = 1;
    int max_workers = 1024;
    // Sampling cadence.
    Micros interval = 1'000'000;
    // Scale up when queued jobs per worker exceed this.
    double scale_up_queue_per_worker = 2.0;
    // Multiplier per scale-up step.
    double scale_factor = 1.5;
    // Consecutive over-threshold samples required before scaling (the
    // reaction delay that makes rapid ramps briefly painful, §V-B1).
    int samples_before_scale = 2;
  };

  Autoscaler(Simulation* sim, CpuServer* server, Options options)
      : sim_(sim), server_(server), options_(options) {}

  // Begins periodic evaluation; runs for the lifetime of the simulation.
  void Start();

  int scale_ups() const { return scale_ups_; }
  int scale_downs() const { return scale_downs_; }

 private:
  void Evaluate();

  Simulation* sim_;
  CpuServer* server_;
  Options options_;
  int over_threshold_streak_ = 0;
  int idle_streak_ = 0;
  int scale_ups_ = 0;
  int scale_downs_ = 0;
};

}  // namespace firestore::sim

#endif  // FIRESTORE_SIM_AUTOSCALER_H_
