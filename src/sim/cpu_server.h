// A simulated multi-worker CPU server with optional fair scheduling and
// priority bands.
//
// Models one Firestore component's task pool (e.g. the Backend). Jobs carry
// a scheduling key — the database id — and a cost in CPU-microseconds.
// With fair_share=false, jobs run FIFO; with fair_share=true, idle workers
// pick the next job round-robin across the per-key queues, implementing the
// fair-CPU-share scheduler of paper §IV-C ("we use a fair-CPU-share
// scheduler in our Backend tasks, keyed by database ID").
//
// Jobs tagged `batch` are only dispatched when no latency-sensitive job is
// queued (§IV-C: "certain batch and internal workloads set custom tags on
// their RPCs, which allow schedulers to prioritize latency-sensitive
// workloads over such RPCs").

#ifndef FIRESTORE_SIM_CPU_SERVER_H_
#define FIRESTORE_SIM_CPU_SERVER_H_

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "sim/simulation.h"

namespace firestore::sim {

class CpuServer {
 public:
  struct Options {
    int workers = 1;
    bool fair_share = false;
    // Jobs queued beyond this are rejected (load shedding); 0 = unbounded.
    size_t max_queue = 0;
  };

  CpuServer(Simulation* sim, Options options)
      : sim_(sim), options_(options), idle_workers_(options.workers) {}

  // Enqueues a job; `done` runs at completion (latency = completion -
  // submit, computed by the caller from sim->now()). Batch jobs yield to
  // latency-sensitive ones. Returns false if shed.
  bool Submit(const std::string& key, Micros cost,
              std::function<void()> done, bool batch = false);

  // Adjusts the worker count (autoscaling); new workers start draining the
  // queue immediately.
  void SetWorkers(int workers);
  int workers() const { return options_.workers; }

  size_t queue_depth() const { return queued_; }
  int64_t completed() const { return completed_; }
  int64_t shed() const { return shed_; }
  double utilization(Micros window_start) const;

 private:
  struct Job {
    Micros cost;
    std::function<void()> done;
  };

  void TryDispatch();
  // Picks the next job honoring the discipline; false if none queued.
  bool PopNext(Job* job);
  static bool PopFromBand(std::map<std::string, std::deque<Job>>& queues,
                          bool fair_share, std::string& cursor, Job* job);

  Simulation* sim_;
  Options options_;
  int idle_workers_;
  size_t queued_ = 0;
  // FIFO discipline uses the single queue keyed ""; fair share uses one
  // queue per key with round-robin. Batch jobs wait in their own band.
  std::map<std::string, std::deque<Job>> queues_;
  std::map<std::string, std::deque<Job>> batch_queues_;
  std::string rr_cursor_;
  std::string batch_rr_cursor_;
  int64_t completed_ = 0;
  int64_t shed_ = 0;
  Micros busy_micros_ = 0;
};

}  // namespace firestore::sim

#endif  // FIRESTORE_SIM_CPU_SERVER_H_
