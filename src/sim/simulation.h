// Deterministic discrete-event simulation kernel.
//
// The paper's evaluation ran against production Firestore on Google's fleet
// (autoscaling tasks, Spanner replication quorums, real networks). The
// benchmark harness reproduces the *shapes* of those figures by running the
// real engine code for the work and this kernel for time: RPC hops, quorum
// commits, and CPU service are events on a virtual clock, so a "10 minute"
// experiment completes in seconds and is exactly reproducible.

#ifndef FIRESTORE_SIM_SIMULATION_H_
#define FIRESTORE_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"

namespace firestore::sim {

class Simulation {
 public:
  explicit Simulation(Micros start = 0) : clock_(start) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Micros now() const { return clock_.NowMicros(); }
  const Clock* clock() const { return &clock_; }

  // Schedules `fn` at absolute virtual time `at` (>= now).
  void ScheduleAt(Micros at, std::function<void()> fn);
  void After(Micros delay, std::function<void()> fn) {
    ScheduleAt(now() + delay, std::move(fn));
  }

  // Runs events until the queue is empty (or `until`, if positive).
  void Run(Micros until = 0);

  int64_t events_processed() const { return events_processed_; }
  bool empty() const { return events_.empty(); }

 private:
  struct Event {
    Micros at;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  ManualClock clock_;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  uint64_t next_seq_ = 0;
  int64_t events_processed_ = 0;
};

}  // namespace firestore::sim

#endif  // FIRESTORE_SIM_SIMULATION_H_
