#include "sim/simulation.h"

namespace firestore::sim {

void Simulation::ScheduleAt(Micros at, std::function<void()> fn) {
  FS_CHECK_GE(at, now());
  events_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulation::Run(Micros until) {
  while (!events_.empty()) {
    // Copy out the top event; priority_queue::top() is const.
    const Event& top = events_.top();
    if (until > 0 && top.at > until) break;
    Micros at = top.at;
    std::function<void()> fn = std::move(const_cast<Event&>(top).fn);
    events_.pop();
    clock_.AdvanceTo(at);
    ++events_processed_;
    fn();
  }
  if (until > 0 && clock_.NowMicros() < until) clock_.AdvanceTo(until);
}

}  // namespace firestore::sim
