// Global routing (paper §IV-A): "The Firestore service is available in
// several geographical regions of the world; a customer picks the location
// of a database at creation time. ... Firestore RPCs from the application
// get routed and distributed across the Frontend tasks in the region where
// the database is located."
//
// The GlobalRouter owns the database→region mapping and forwards data-plane
// calls to the right regional FirestoreService. Clients anywhere in the
// world talk to the router; only the owning region's tasks touch the data.

#ifndef FIRESTORE_SERVICE_GLOBAL_ROUTER_H_
#define FIRESTORE_SERVICE_GLOBAL_ROUTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "service/service.h"

namespace firestore::service {

class GlobalRouter {
 public:
  GlobalRouter() = default;

  GlobalRouter(const GlobalRouter&) = delete;
  GlobalRouter& operator=(const GlobalRouter&) = delete;

  // Registers a region (e.g. "nam5", "eur3"). The router does not own the
  // service.
  Status AddRegion(const std::string& region, FirestoreService* service);
  std::vector<std::string> Regions() const;

  // Creates a database in the chosen region and records the routing entry.
  Status CreateDatabase(const std::string& database_id,
                        const std::string& region,
                        DatabaseOptions options = {});
  Status DeleteDatabase(const std::string& database_id);

  // Region lookup; NOT_FOUND for unknown databases.
  StatusOr<std::string> RegionOf(const std::string& database_id) const;

  // The regional service hosting the database — the core routing primitive;
  // everything below is convenience passthrough.
  StatusOr<FirestoreService*> Route(const std::string& database_id) const;

  // -- Data-plane passthroughs (privileged) --

  StatusOr<backend::CommitResponse> Commit(
      const std::string& database_id,
      const std::vector<backend::Mutation>& mutations);
  StatusOr<std::optional<model::Document>> Get(
      const std::string& database_id, const model::ResourcePath& name);
  StatusOr<backend::RunQueryResult> RunQuery(const std::string& database_id,
                                             const query::Query& q);

  // Requests routed per region (for balancing/ops visibility).
  int64_t routed(const std::string& region) const;

 private:
  mutable Mutex mu_;
  std::map<std::string, FirestoreService*> regions_ FS_GUARDED_BY(mu_);
  std::map<std::string, std::string> database_region_ FS_GUARDED_BY(mu_);
  mutable std::map<std::string, int64_t> routed_ FS_GUARDED_BY(mu_);
};

}  // namespace firestore::service

#endif  // FIRESTORE_SERVICE_GLOBAL_ROUTER_H_
