#include "service/datastore_api.h"

#include "common/fault_injection.h"

namespace firestore::datastore {

using backend::Mutation;
using model::Document;
using model::ResourcePath;

model::ResourcePath Key::ToResourcePath() const {
  std::vector<std::string> segments;
  segments.reserve(path.size() * 2);
  for (const auto& [kind, name] : path) {
    segments.push_back(kind);
    segments.push_back(name);
  }
  return ResourcePath(std::move(segments));
}

StatusOr<Key> Key::FromResourcePath(const ResourcePath& path) {
  if (!path.IsDocumentPath()) {
    return InvalidArgumentError("not an entity path: " +
                                path.CanonicalString());
  }
  Key key;
  const auto& segments = path.segments();
  for (size_t i = 0; i + 1 < segments.size(); i += 2) {
    key.path.emplace_back(segments[i], segments[i + 1]);
  }
  return key;
}

spanner::Timestamp DatastoreClient::ReadTimestampFor(
    ReadConsistency consistency) const {
  if (consistency == ReadConsistency::kStrong) return 0;  // strong read
  // Bounded staleness: a recent timestamp strictly before "now", which
  // Spanner serves lock-free without blocking writers.
  spanner::Timestamp recent =
      service_->spanner().last_commit_ts();
  return recent > 0 ? recent : service_->spanner().StrongReadTimestamp();
}

Status DatastoreClient::Put(const Entity& entity) {
  return PutBatch({entity});
}

Status DatastoreClient::PutBatch(const std::vector<Entity>& entities) {
  RETURN_IF_ERROR(FS_FAULT_POINT("datastore.put_batch"));
  std::vector<Mutation> mutations;
  mutations.reserve(entities.size());
  for (const Entity& entity : entities) {
    mutations.push_back(
        Mutation::Set(entity.key.ToResourcePath(), entity.properties));
  }
  return service_->Commit(database_id_, mutations).status();
}

StatusOr<std::optional<Entity>> DatastoreClient::Lookup(
    const Key& key, ReadConsistency consistency) {
  RETURN_IF_ERROR(FS_FAULT_POINT("datastore.lookup"));
  ASSIGN_OR_RETURN(std::optional<Document> doc,
                   service_->Get(database_id_, key.ToResourcePath(),
                                 ReadTimestampFor(consistency)));
  if (!doc.has_value()) return std::optional<Entity>();
  Entity entity;
  entity.key = key;
  entity.properties = doc->fields();
  return std::optional<Entity>(std::move(entity));
}

Status DatastoreClient::Delete(const Key& key) {
  RETURN_IF_ERROR(FS_FAULT_POINT("datastore.delete"));
  return service_
      ->Commit(database_id_, {Mutation::Delete(key.ToResourcePath())})
      .status();
}

StatusOr<std::vector<Entity>> DatastoreClient::RunQuery(
    const query::Query& q, ReadConsistency consistency) {
  RETURN_IF_ERROR(FS_FAULT_POINT("datastore.run_query"));
  ASSIGN_OR_RETURN(backend::RunQueryResult result,
                   service_->RunQuery(database_id_, q,
                                      ReadTimestampFor(consistency)));
  std::vector<Entity> entities;
  entities.reserve(result.result.documents.size());
  for (const Document& doc : result.result.documents) {
    ASSIGN_OR_RETURN(Key key, Key::FromResourcePath(doc.name()));
    entities.push_back(Entity{std::move(key), doc.fields()});
  }
  return entities;
}

StatusOr<std::vector<Entity>> DatastoreClient::AncestorQuery(
    const Key& ancestor, const std::string& kind,
    ReadConsistency consistency) {
  query::Query q(ancestor.ToResourcePath(), kind);
  return RunQuery(q, consistency);
}

StatusOr<backend::CommitResponse> DatastoreClient::RunTransaction(
    const TransactionBody& body) {
  return service_->RunTransaction(database_id_, body);
}

}  // namespace firestore::datastore
