// The Datastore API surface (paper §II).
//
// "Both Firestore and Datastore have a common data model, and provide
// similar access to the underlying data — Firestore calls them documents and
// Datastore calls them entities ... Additionally, both APIs can be used to
// read from and write to the same database." The Datastore API lacks
// real-time queries and speaks in entities/kinds/lookups; everything maps
// onto the same Entities/IndexEntries rows, so a Datastore client and a
// Firestore client interoperate on one database.

#ifndef FIRESTORE_SERVICE_DATASTORE_API_H_
#define FIRESTORE_SERVICE_DATASTORE_API_H_

#include <optional>
#include <string>
#include <vector>

#include "service/service.h"

namespace firestore::datastore {

// A Datastore key: a kind plus a name, optionally under ancestor keys —
// directly equivalent to a document path /kind/name[/kind2/name2...].
struct Key {
  // Alternating (kind, name) pairs, outermost ancestor first.
  std::vector<std::pair<std::string, std::string>> path;

  static Key Of(std::string kind, std::string name) {
    Key k;
    k.path.emplace_back(std::move(kind), std::move(name));
    return k;
  }
  Key Child(std::string kind, std::string name) const {
    Key k = *this;
    k.path.emplace_back(std::move(kind), std::move(name));
    return k;
  }

  model::ResourcePath ToResourcePath() const;
  static StatusOr<Key> FromResourcePath(const model::ResourcePath& path);
};

// An entity is a key plus properties — the same data a Firestore document
// holds.
struct Entity {
  Key key;
  model::Map properties;
};

enum class ReadConsistency {
  kStrong,
  // Reads at a slightly stale timestamp (lock-free, cheaper): the Megastore
  // heritage's "eventual" option, now just a bounded-staleness snapshot.
  kEventual,
};

class DatastoreClient {
 public:
  DatastoreClient(service::FirestoreService* service, std::string database_id)
      : service_(service), database_id_(std::move(database_id)) {}

  // -- Entity operations --

  Status Put(const Entity& entity);
  Status PutBatch(const std::vector<Entity>& entities);  // atomic
  StatusOr<std::optional<Entity>> Lookup(
      const Key& key, ReadConsistency consistency = ReadConsistency::kStrong);
  Status Delete(const Key& key);

  // -- Queries (no real-time; same engine underneath) --

  // A "kind query": all entities of a kind, optionally filtered/sorted via
  // the standard query builder.
  StatusOr<std::vector<Entity>> RunQuery(
      const query::Query& q,
      ReadConsistency consistency = ReadConsistency::kStrong);

  // Datastore-style ancestor query: entities of `kind` under `ancestor`.
  StatusOr<std::vector<Entity>> AncestorQuery(
      const Key& ancestor, const std::string& kind,
      ReadConsistency consistency = ReadConsistency::kStrong);

  // -- Transactions (server-side, like the Server SDKs) --

  using TransactionBody = backend::Committer::TransactionBody;
  StatusOr<backend::CommitResponse> RunTransaction(
      const TransactionBody& body);

 private:
  spanner::Timestamp ReadTimestampFor(ReadConsistency consistency) const;

  service::FirestoreService* service_;
  std::string database_id_;
};

}  // namespace firestore::datastore

#endif  // FIRESTORE_SERVICE_DATASTORE_API_H_
