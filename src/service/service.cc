#include "service/service.h"

#include <sstream>

#include "common/bytes.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "firestore/index/layout.h"

namespace firestore::service {

using backend::CommitResponse;
using backend::Mutation;
using model::Document;
using model::ResourcePath;
using spanner::Timestamp;

namespace {

// Per-tenant request accounting (paper Fig. 6: tenant load spans nine orders
// of magnitude — the registry label keeps the breakdown without a per-tenant
// metric name).
void RecordTenantRequest(const std::string& database_id) {
  FS_METRIC_COUNTER_FOR("service.tenant.requests", database_id).Increment();
}

// Single call site for the tenant-count gauge (metric names are one-site,
// like fault points; see the fslint metric-name-registry rule).
void SetTenantGauge(size_t tenants) {
  FS_METRIC_GAUGE("service.tenants").Set(static_cast<int64_t>(tenants));
}

}  // namespace

FirestoreService::FirestoreService(const Clock* clock)
    : FirestoreService(clock, Options()) {}

FirestoreService::FirestoreService(const Clock* clock, Options options)
    : clock_(clock),
      options_(options),
      spanner_(clock, options.truetime_uncertainty),
      committer_(&spanner_, clock),
      reader_(&spanner_),
      backfill_(&spanner_),
      ranges_(options.realtime_split_points.empty()
                  ? rtcache::RangeOwnership::Uniform(options.realtime_ranges)
                  : rtcache::RangeOwnership(options.realtime_split_points)) {
  FS_CHECK_OK(spanner_.CreateTable(index::kEntitiesTable));
  FS_CHECK_OK(spanner_.CreateTable(index::kIndexEntriesTable));
  changelog_ =
      std::make_unique<rtcache::Changelog>(clock, &ranges_, &matcher_);
  committer_.set_realtime(changelog_.get());
  committer_.set_billing(&billing_);
  reader_.set_billing(&billing_);
  frontend_ = std::make_unique<frontend::Frontend>(
      clock, &reader_, &matcher_, &ranges_,
      [this](const std::string& db) -> StatusOr<frontend::TenantAccess> {
        MutexLock lock(&mu_);
        auto it = tenants_.find(db);
        if (it == tenants_.end()) {
          return NotFoundError("no such database: " + db);
        }
        frontend::TenantAccess access;
        access.catalog = &it->second->catalog;
        access.rules = it->second->rules.get();
        access.keepalive = it->second;
        return access;
      },
      options.frontend_options);
}

Status FirestoreService::CreateDatabase(const std::string& database_id,
                                        DatabaseOptions options) {
  if (database_id.empty()) {
    return InvalidArgumentError("empty database id");
  }
  std::unique_ptr<rules::RuleSet> rules;
  if (!options.rules_source.empty()) {
    ASSIGN_OR_RETURN(rules::RuleSet parsed,
                     rules::RuleSet::Parse(options.rules_source));
    rules = std::make_unique<rules::RuleSet>(std::move(parsed));
  }
  MutexLock lock(&mu_);
  if (tenants_.count(database_id) != 0) {
    return AlreadyExistsError("database exists: " + database_id);
  }
  auto tenant = std::make_shared<Tenant>();
  tenant->options = std::move(options);
  tenant->rules = std::move(rules);
  tenants_.emplace(database_id, std::move(tenant));
  SetTenantGauge(tenants_.size());
  return Status::Ok();
}

Status FirestoreService::DeleteDatabase(const std::string& database_id) {
  {
    MutexLock lock(&mu_);
    if (tenants_.erase(database_id) == 0) {
      return NotFoundError("no such database: " + database_id);
    }
    SetTenantGauge(tenants_.size());
  }
  // Physically remove the tenant's rows (both tables share the database-id
  // prefix).
  for (const char* table : {index::kEntitiesTable, index::kIndexEntriesTable}) {
    std::string start = index::EntityKeyPrefixForDatabase(database_id);
    std::string limit = PrefixSuccessor(start);
    while (true) {
      auto txn = spanner_.BeginTransaction();
      auto rows = txn->Scan(table, start, limit, 256);
      if (!rows.ok()) return rows.status();
      if (rows->empty()) {
        txn->Abort();
        break;
      }
      for (const auto& row : *rows) txn->Delete(table, row.key);
      auto commit = txn->Commit();
      if (!commit.ok()) return commit.status();
      start = KeySuccessor(rows->back().key);
    }
  }
  return Status::Ok();
}

bool FirestoreService::DatabaseExists(const std::string& database_id) const {
  MutexLock lock(&mu_);
  return tenants_.count(database_id) != 0;
}

std::vector<std::string> FirestoreService::ListDatabases() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

StatusOr<std::shared_ptr<FirestoreService::Tenant>>
FirestoreService::GetTenant(const std::string& database_id) {
  MutexLock lock(&mu_);
  auto it = tenants_.find(database_id);
  if (it == tenants_.end()) {
    return NotFoundError("no such database: " + database_id);
  }
  return it->second;
}

Status FirestoreService::SetRules(const std::string& database_id,
                                  const std::string& source) {
  ASSIGN_OR_RETURN(rules::RuleSet parsed, rules::RuleSet::Parse(source));
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> tenant,
                   GetTenant(database_id));
  tenant->rules = std::make_unique<rules::RuleSet>(std::move(parsed));
  return Status::Ok();
}

Status FirestoreService::AddFieldExemption(const std::string& database_id,
                                           const std::string& collection_id,
                                           const model::FieldPath& field) {
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> tenant,
                   GetTenant(database_id));
  tenant->catalog.AddExemption(collection_id, field);
  return backfill_.RemoveExemptedFieldEntries(tenant->catalog, database_id,
                                              collection_id, field);
}

StatusOr<index::IndexId> FirestoreService::CreateCompositeIndex(
    const std::string& database_id, const std::string& collection_id,
    std::vector<index::IndexSegment> segments) {
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> tenant,
                   GetTenant(database_id));
  return backfill_.CreateIndex(tenant->catalog, database_id, collection_id,
                               std::move(segments));
}

Status FirestoreService::DropIndex(const std::string& database_id,
                                   index::IndexId id) {
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> tenant,
                   GetTenant(database_id));
  return backfill_.DropIndex(tenant->catalog, database_id, id);
}

Status FirestoreService::RegisterTrigger(
    const std::string& database_id, const std::string& function_name,
    const std::vector<std::string>& pattern) {
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> tenant,
                   GetTenant(database_id));
  backend::TriggerDefinition def;
  def.function_name = function_name;
  def.pattern = pattern;
  tenant->triggers.push_back(std::move(def));
  return Status::Ok();
}

StatusOr<CommitResponse> FirestoreService::Commit(
    const std::string& database_id,
    const std::vector<Mutation>& mutations) {
  FS_SPAN("service.commit");
  ScopedTimer timer(FS_METRIC_TIMER("service.commit.latency"), clock_);
  FS_METRIC_COUNTER("service.commits").Increment();
  RecordTenantRequest(database_id);
  RETURN_IF_ERROR(FS_FAULT_POINT("service.commit"));
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> tenant,
                   GetTenant(database_id));
  return committer_.Commit(database_id, tenant->catalog, mutations,
                           tenant->triggers);
}

StatusOr<std::optional<Document>> FirestoreService::Get(
    const std::string& database_id, const ResourcePath& name,
    Timestamp read_ts) {
  FS_SPAN("service.get");
  ScopedTimer timer(FS_METRIC_TIMER("service.get.latency"), clock_);
  FS_METRIC_COUNTER("service.gets").Increment();
  RecordTenantRequest(database_id);
  RETURN_IF_ERROR(FS_FAULT_POINT("service.get"));
  RETURN_IF_ERROR(GetTenant(database_id).status());
  return reader_.GetDocument(database_id, name, read_ts);
}

StatusOr<backend::RunQueryResult> FirestoreService::RunQuery(
    const std::string& database_id, const query::Query& q,
    Timestamp read_ts) {
  FS_SPAN("service.query");
  ScopedTimer timer(FS_METRIC_TIMER("service.query.latency"), clock_);
  FS_METRIC_COUNTER("service.queries").Increment();
  RecordTenantRequest(database_id);
  RETURN_IF_ERROR(FS_FAULT_POINT("service.query"));
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> tenant,
                   GetTenant(database_id));
  return reader_.RunQuery(database_id, tenant->catalog, q, read_ts);
}

StatusOr<backend::RunCountResult> FirestoreService::RunCountQuery(
    const std::string& database_id, const query::Query& q,
    Timestamp read_ts) {
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> tenant,
                   GetTenant(database_id));
  return reader_.RunCountQuery(database_id, tenant->catalog, q, read_ts);
}

StatusOr<backend::RunAggregateResult> FirestoreService::RunSumQuery(
    const std::string& database_id, const query::Query& q,
    const model::FieldPath& field, Timestamp read_ts) {
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> tenant,
                   GetTenant(database_id));
  return reader_.RunSumQuery(database_id, tenant->catalog, q, field,
                             read_ts);
}

StatusOr<CommitResponse> FirestoreService::RunTransaction(
    const std::string& database_id,
    const backend::Committer::TransactionBody& body) {
  FS_SPAN("service.run_transaction");
  FS_METRIC_COUNTER("service.transactions").Increment();
  RecordTenantRequest(database_id);
  RETURN_IF_ERROR(FS_FAULT_POINT("service.run_transaction"));
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> tenant,
                   GetTenant(database_id));
  return committer_.RunTransaction(database_id, tenant->catalog, body,
                                   tenant->triggers);
}

StatusOr<CommitResponse> FirestoreService::CommitAsUser(
    const std::string& database_id, const rules::AuthContext& auth,
    const std::vector<Mutation>& mutations) {
  FS_SPAN("service.commit_as_user");
  RecordTenantRequest(database_id);
  RETURN_IF_ERROR(FS_FAULT_POINT("service.commit_as_user"));
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> tenant,
                   GetTenant(database_id));
  if (tenant->rules == nullptr) {
    return PermissionDeniedError(
        "third-party access requires security rules");
  }
  return committer_.Commit(database_id, tenant->catalog, mutations,
                           tenant->triggers, tenant->rules.get(), &auth);
}

StatusOr<std::optional<Document>> FirestoreService::GetAsUser(
    const std::string& database_id, const rules::AuthContext& auth,
    const ResourcePath& name) {
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> tenant,
                   GetTenant(database_id));
  if (tenant->rules == nullptr) {
    return PermissionDeniedError(
        "third-party access requires security rules");
  }
  return reader_.GetDocument(database_id, name, 0, tenant->rules.get(),
                             &auth);
}

StatusOr<backend::RunQueryResult> FirestoreService::RunQueryAsUser(
    const std::string& database_id, const rules::AuthContext& auth,
    const query::Query& q) {
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> tenant,
                   GetTenant(database_id));
  if (tenant->rules == nullptr) {
    return PermissionDeniedError(
        "third-party access requires security rules");
  }
  return reader_.RunQuery(database_id, tenant->catalog, q, 0,
                          tenant->rules.get(), &auth);
}

index::IndexCatalog* FirestoreService::catalog(
    const std::string& database_id) {
  MutexLock lock(&mu_);
  auto it = tenants_.find(database_id);
  return it == tenants_.end() ? nullptr : &it->second->catalog;
}

std::string FirestoreService::DebugDump() const {
  std::ostringstream os;
  os << "== metrics ==\n";
  os << MetricRegistry::Global().Snapshot().ToText();
  os << "== fault points ==\n";
  for (const FaultPointStats& point : FaultRegistry::Global().KnownPoints()) {
    os << point.name << (point.armed ? " armed" : " idle")
       << " hits=" << point.total_hits << " fires=" << point.total_fires
       << "\n";
  }
  return os.str();
}

void FirestoreService::Pump() {
  changelog_->Tick();
  frontend_->Pump();
  functions_.DispatchPending(spanner_);
  spanner_.RunLoadSplitting(/*load_threshold=*/10'000);
  // MVCC garbage collection up to the retention horizon.
  Micros horizon = clock_->NowMicros() - options_.version_retention;
  if (horizon > 0) spanner_.GarbageCollect(horizon);
}

}  // namespace firestore::service
