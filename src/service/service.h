// FirestoreService: the multi-tenant assembly (paper §IV, Figure 4).
//
// One FirestoreService instance plays the role of a Firestore region: a
// small number of pre-initialized Spanner databases shared by every tenant
// (we model one), the Backend (committer + read service), the Real-time
// Cache (Changelog + Query Matcher over shared range ownership), Frontend
// tasks, billing, and the trigger pipeline. Creating a Firestore database
// is a metadata-only operation — this is what makes "initialize a database
// and go" serverless provisioning instant (§V-D) and idle databases free.

#ifndef FIRESTORE_SERVICE_SERVICE_H_
#define FIRESTORE_SERVICE_SERVICE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/committer.h"
#include "common/thread_annotations.h"
#include "backend/read_service.h"
#include "common/clock.h"
#include "firestore/index/backfill.h"
#include "frontend/frontend.h"
#include "functions/functions.h"
#include "rtcache/changelog.h"
#include "rtcache/query_matcher.h"
#include "rtcache/range_ownership.h"
#include "spanner/database.h"

namespace firestore::service {

struct DatabaseOptions {
  // Security rules enforced for third-party (end-user) requests; empty =>
  // deny all third-party access until SetRules is called.
  std::string rules_source;
  // Multi-regional deployments pay quorum latency on writes (modeled by the
  // benchmarks' latency model; recorded here as metadata).
  bool multi_region = false;
};

class FirestoreService {
 public:
  struct Options {
    int realtime_ranges = 16;
    // MVCC version retention (Spanner keeps ~1 hour): Pump() garbage
    // collects versions older than now - retention. Snapshot reads at or
    // after the horizon keep working; older reads are out of retention.
    Micros version_retention = 3'600'000'000;
    // Non-empty overrides realtime_ranges with explicit split points
    // (Slicer-style custom sharding; used by tests and benchmarks to place
    // range boundaries inside a tenant's key space).
    std::vector<std::string> realtime_split_points;
    Micros truetime_uncertainty = 1000;
    // Passed through to the Frontend (out-of-sync recovery budget/backoff).
    frontend::Frontend::Options frontend_options;
  };

  explicit FirestoreService(const Clock* clock);
  FirestoreService(const Clock* clock, Options options);

  FirestoreService(const FirestoreService&) = delete;
  FirestoreService& operator=(const FirestoreService&) = delete;

  // -- Admin plane --

  Status CreateDatabase(const std::string& database_id,
                        DatabaseOptions options = {});
  Status DeleteDatabase(const std::string& database_id);
  bool DatabaseExists(const std::string& database_id) const;
  std::vector<std::string> ListDatabases() const;

  Status SetRules(const std::string& database_id, const std::string& source);
  Status AddFieldExemption(const std::string& database_id,
                           const std::string& collection_id,
                           const model::FieldPath& field);
  StatusOr<index::IndexId> CreateCompositeIndex(
      const std::string& database_id, const std::string& collection_id,
      std::vector<index::IndexSegment> segments);
  Status DropIndex(const std::string& database_id, index::IndexId id);

  Status RegisterTrigger(const std::string& database_id,
                         const std::string& function_name,
                         const std::vector<std::string>& pattern);

  // -- Data plane: privileged (Server SDK) --

  StatusOr<backend::CommitResponse> Commit(
      const std::string& database_id,
      const std::vector<backend::Mutation>& mutations);
  StatusOr<std::optional<model::Document>> Get(
      const std::string& database_id, const model::ResourcePath& name,
      spanner::Timestamp read_ts = 0);
  StatusOr<backend::RunQueryResult> RunQuery(const std::string& database_id,
                                             const query::Query& q,
                                             spanner::Timestamp read_ts = 0);
  StatusOr<backend::RunCountResult> RunCountQuery(
      const std::string& database_id, const query::Query& q,
      spanner::Timestamp read_ts = 0);
  StatusOr<backend::RunAggregateResult> RunSumQuery(
      const std::string& database_id, const query::Query& q,
      const model::FieldPath& field, spanner::Timestamp read_ts = 0);
  StatusOr<backend::CommitResponse> RunTransaction(
      const std::string& database_id,
      const backend::Committer::TransactionBody& body);

  // -- Data plane: third-party (Mobile/Web SDK; rules enforced) --

  StatusOr<backend::CommitResponse> CommitAsUser(
      const std::string& database_id, const rules::AuthContext& auth,
      const std::vector<backend::Mutation>& mutations);
  StatusOr<std::optional<model::Document>> GetAsUser(
      const std::string& database_id, const rules::AuthContext& auth,
      const model::ResourcePath& name);
  StatusOr<backend::RunQueryResult> RunQueryAsUser(
      const std::string& database_id, const rules::AuthContext& auth,
      const query::Query& q);

  // -- Real-time --
  frontend::Frontend& frontend() { return *frontend_; }

  // Drives the asynchronous machinery one step: Changelog heartbeats,
  // Frontend snapshot assembly, trigger dispatch, Spanner maintenance.
  void Pump();

  // -- Introspection --

  // Operator view of the process: the full metrics snapshot
  // (docs/OBSERVABILITY.md) plus fault-point status, as text. Not a stable
  // format; for humans, tests, and bench dumps.
  std::string DebugDump() const;

  spanner::Database& spanner() { return spanner_; }
  backend::BillingLedger& billing() { return billing_; }
  functions::FunctionRegistry& functions() { return functions_; }
  rtcache::Changelog& changelog() { return *changelog_; }
  rtcache::QueryMatcher& matcher() { return matcher_; }
  backend::Committer& committer() { return committer_; }
  index::IndexCatalog* catalog(const std::string& database_id);
  const Clock& clock() const { return *clock_; }

 private:
  struct Tenant {
    DatabaseOptions options;
    index::IndexCatalog catalog;
    std::unique_ptr<rules::RuleSet> rules;
    std::vector<backend::TriggerDefinition> triggers;
  };

  // Shared ownership keeps a tenant alive for the duration of a data-plane
  // call even if DeleteDatabase races it (the routing entry disappears
  // immediately; in-flight requests finish against the doomed tenant).
  StatusOr<std::shared_ptr<Tenant>> GetTenant(const std::string& database_id);

  const Clock* const clock_;
  const Options options_;
  spanner::Database spanner_;
  backend::BillingLedger billing_;
  // fslint: allow(guarded-member) -- stateless facade over the synchronized Database; wired once in the constructor
  backend::Committer committer_;
  // fslint: allow(guarded-member) -- stateless facade over the synchronized Database; wired once in the constructor
  backend::ReadService reader_;
  // fslint: allow(guarded-member) -- stateless facade over the synchronized Database; wired once in the constructor
  index::IndexBackfillService backfill_;
  rtcache::RangeOwnership ranges_;
  rtcache::QueryMatcher matcher_;
  std::unique_ptr<rtcache::Changelog> changelog_;
  std::unique_ptr<frontend::Frontend> frontend_;
  functions::FunctionRegistry functions_;

  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_ FS_GUARDED_BY(mu_);
};

}  // namespace firestore::service

#endif  // FIRESTORE_SERVICE_SERVICE_H_
