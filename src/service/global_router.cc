#include "service/global_router.h"

namespace firestore::service {

Status GlobalRouter::AddRegion(const std::string& region,
                               FirestoreService* service) {
  MutexLock lock(&mu_);
  if (regions_.count(region) != 0) {
    return AlreadyExistsError("region exists: " + region);
  }
  regions_.emplace(region, service);
  return Status::Ok();
}

std::vector<std::string> GlobalRouter::Regions() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  for (const auto& [name, service] : regions_) names.push_back(name);
  return names;
}

Status GlobalRouter::CreateDatabase(const std::string& database_id,
                                    const std::string& region,
                                    DatabaseOptions options) {
  FirestoreService* service = nullptr;
  {
    MutexLock lock(&mu_);
    auto it = regions_.find(region);
    if (it == regions_.end()) {
      return InvalidArgumentError("no such region: " + region);
    }
    if (database_region_.count(database_id) != 0) {
      return AlreadyExistsError("database exists: " + database_id);
    }
    service = it->second;
  }
  RETURN_IF_ERROR(service->CreateDatabase(database_id, std::move(options)));
  MutexLock lock(&mu_);
  database_region_.emplace(database_id, region);
  return Status::Ok();
}

Status GlobalRouter::DeleteDatabase(const std::string& database_id) {
  ASSIGN_OR_RETURN(FirestoreService * service, Route(database_id));
  RETURN_IF_ERROR(service->DeleteDatabase(database_id));
  MutexLock lock(&mu_);
  database_region_.erase(database_id);
  return Status::Ok();
}

StatusOr<std::string> GlobalRouter::RegionOf(
    const std::string& database_id) const {
  MutexLock lock(&mu_);
  auto it = database_region_.find(database_id);
  if (it == database_region_.end()) {
    return NotFoundError("no such database: " + database_id);
  }
  return it->second;
}

StatusOr<FirestoreService*> GlobalRouter::Route(
    const std::string& database_id) const {
  MutexLock lock(&mu_);
  auto it = database_region_.find(database_id);
  if (it == database_region_.end()) {
    return NotFoundError("no such database: " + database_id);
  }
  ++routed_[it->second];
  return regions_.at(it->second);
}

StatusOr<backend::CommitResponse> GlobalRouter::Commit(
    const std::string& database_id,
    const std::vector<backend::Mutation>& mutations) {
  ASSIGN_OR_RETURN(FirestoreService * service, Route(database_id));
  return service->Commit(database_id, mutations);
}

StatusOr<std::optional<model::Document>> GlobalRouter::Get(
    const std::string& database_id, const model::ResourcePath& name) {
  ASSIGN_OR_RETURN(FirestoreService * service, Route(database_id));
  return service->Get(database_id, name);
}

StatusOr<backend::RunQueryResult> GlobalRouter::RunQuery(
    const std::string& database_id, const query::Query& q) {
  ASSIGN_OR_RETURN(FirestoreService * service, Route(database_id));
  return service->RunQuery(database_id, q);
}

int64_t GlobalRouter::routed(const std::string& region) const {
  MutexLock lock(&mu_);
  auto it = routed_.find(region);
  return it == routed_.end() ? 0 : it->second;
}

}  // namespace firestore::service
