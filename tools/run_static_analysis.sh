#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every translation unit in src/
# and fails on any diagnostic. Usage:
#
#   tools/run_static_analysis.sh [build-dir]
#
# The build dir must contain compile_commands.json; when omitted, the script
# configures the `tidy` CMake preset (which also turns on -Wthread-safety via
# the clang toolchain). On machines without clang-tidy the script reports
# SKIPPED and exits 0 so non-clang environments keep working; set
# FS_REQUIRE_TOOLS=1 (as CI does) to make a missing tool a hard failure.

set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

missing_tool() {
  if [[ "${FS_REQUIRE_TOOLS:-0}" == "1" ]]; then
    echo "ERROR: $1 not found and FS_REQUIRE_TOOLS=1" >&2
    exit 1
  fi
  echo "SKIPPED: $1 not found; install clang tooling to run static analysis" >&2
  exit 0
}

tidy_bin="${CLANG_TIDY:-clang-tidy}"
command -v "$tidy_bin" >/dev/null 2>&1 || missing_tool "$tidy_bin"

build_dir="${1:-}"
if [[ -z "$build_dir" ]]; then
  build_dir="build-tidy"
  if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    command -v clang++ >/dev/null 2>&1 || missing_tool clang++
    cmake --preset tidy >/dev/null || exit 1
  fi
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "ERROR: $build_dir/compile_commands.json not found" >&2
  exit 1
fi

mapfile -t sources < <(find src -name '*.cc' | sort)
echo "clang-tidy: ${#sources[@]} files, build dir $build_dir"

# run-clang-tidy parallelizes when available; otherwise loop.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$tidy_bin" -p "$build_dir" -quiet \
      "${sources[@]/#/$repo_root/}"
  status=$?
else
  status=0
  for f in "${sources[@]}"; do
    "$tidy_bin" -p "$build_dir" --quiet "$f" || status=1
  done
fi

if [[ $status -ne 0 ]]; then
  echo "FAIL: clang-tidy reported diagnostics (WarningsAsErrors: '*')" >&2
  exit 1
fi
echo "OK: clang-tidy clean"
