#!/usr/bin/env bash
# Static-analysis gate, in three stages:
#
#   1. fslint (tools/fslint) — the project-invariant linter, including the
#      whole-program lock-graph and layering passes. Dependency-free C++20,
#      so it builds and runs under plain GCC and NEVER skips.
#   2. lock-graph drift — the committed docs/lock_graph.dot must match a
#      fresh `fslint --dump-lock-graph` of the tree.
#   3. clang-tidy (config: .clang-tidy) over every translation unit in src/.
#      On machines without clang tooling this stage reports SKIPPED and the
#      script's verdict rests on fslint alone; set FS_REQUIRE_TOOLS=1 (as CI's
#      tidy job does) to make a missing clang-tidy a hard failure.
#
# Usage:
#   tools/run_static_analysis.sh [build-dir]
#
# The build dir must contain compile_commands.json for the clang-tidy stage;
# when omitted, the script configures the `tidy` CMake preset (which also
# turns on -Wthread-safety via the clang toolchain).

set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

# --- Stage 1: fslint (always runs) -----------------------------------------

fslint_bin=""
for candidate in build/tools/fslint/fslint build-tidy/tools/fslint/fslint; do
  if [[ -x "$candidate" ]]; then
    fslint_bin="$candidate"
    break
  fi
done
if [[ -z "$fslint_bin" ]]; then
  # No configured build tree: compile it directly; it is four files of
  # plain C++20 with no dependencies.
  cxx="${CXX:-g++}"
  command -v "$cxx" >/dev/null 2>&1 || { echo "ERROR: no C++ compiler" >&2; exit 1; }
  fslint_bin="$(mktemp -d)/fslint"
  "$cxx" -std=c++20 -O1 -o "$fslint_bin" tools/fslint/*.cc || exit 1
fi

# Needs the .dot suffix: the dump format is keyed off the file extension.
fresh_dot="$(mktemp --suffix=.dot)"
if "$fslint_bin" --root "$repo_root" --dump-lock-graph "$fresh_dot"; then
  fslint_verdict="OK"
else
  fslint_verdict="FAIL"
fi

# --- Stage 2: lock-graph drift ----------------------------------------------

if diff -u docs/lock_graph.dot "$fresh_dot"; then
  lock_graph_verdict="OK"
else
  echo "FAIL: docs/lock_graph.dot is stale; regenerate with" \
       "'fslint --root . --dump-lock-graph docs/lock_graph.dot'" >&2
  lock_graph_verdict="FAIL"
fi
rm -f "$fresh_dot"

# --- Stage 3: clang-tidy (skips without clang tooling) ----------------------

tidy_verdict="SKIPPED"

missing_tool() {
  if [[ "${FS_REQUIRE_TOOLS:-0}" == "1" ]]; then
    echo "ERROR: $1 not found and FS_REQUIRE_TOOLS=1" >&2
    exit 1
  fi
  echo "SKIPPED: $1 not found; install clang tooling for the clang-tidy stage" >&2
}

run_clang_tidy() {
  tidy_bin="${CLANG_TIDY:-clang-tidy}"
  if ! command -v "$tidy_bin" >/dev/null 2>&1; then
    missing_tool "$tidy_bin"
    return 0
  fi

  build_dir="${1:-}"
  if [[ -z "$build_dir" ]]; then
    build_dir="build-tidy"
    if [[ ! -f "$build_dir/compile_commands.json" ]]; then
      if ! command -v clang++ >/dev/null 2>&1; then
        missing_tool clang++
        return 0
      fi
      cmake --preset tidy >/dev/null || { tidy_verdict="FAIL"; return 0; }
    fi
  fi

  if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "ERROR: $build_dir/compile_commands.json not found" >&2
    tidy_verdict="FAIL"
    return 0
  fi

  mapfile -t sources < <(find src -name '*.cc' | sort)
  echo "clang-tidy: ${#sources[@]} files, build dir $build_dir"

  # run-clang-tidy parallelizes when available; otherwise loop.
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -clang-tidy-binary "$tidy_bin" -p "$build_dir" -quiet \
        "${sources[@]/#/$repo_root/}"
    status=$?
  else
    status=0
    for f in "${sources[@]}"; do
      "$tidy_bin" -p "$build_dir" --quiet "$f" || status=1
    done
  fi

  if [[ $status -ne 0 ]]; then
    echo "FAIL: clang-tidy reported diagnostics (WarningsAsErrors: '*')" >&2
    tidy_verdict="FAIL"
  else
    tidy_verdict="OK"
  fi
}

run_clang_tidy "${1:-}"

# --- Combined verdict -------------------------------------------------------

echo "static-analysis: fslint=$fslint_verdict lock-graph=$lock_graph_verdict clang-tidy=$tidy_verdict"
if [[ "$fslint_verdict" != "OK" || "$lock_graph_verdict" != "OK" || \
      "$tidy_verdict" == "FAIL" ]]; then
  exit 1
fi
exit 0
