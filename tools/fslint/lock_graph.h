// Whole-program lock-acquisition graph (docs/STATIC_ANALYSIS.md,
// "lock-cycle" / "lock-order-*" rules).
//
// BuildLockGraph() runs a structural pass over every `src/` file: it
// collects each class's Mutex/SharedMutex members with their
// FS_ACQUIRED_BEFORE / FS_ACQUIRED_AFTER declarations, every function's
// FS_REQUIRES / FS_ACQUIRE annotations and body, then symbolically walks
// the bodies tracking RAII (`MutexLock lock(&chain)`) and explicit
// (`chain.Lock()`) acquisitions plus call edges through resolvable member /
// parameter / local chains. A fixpoint propagates "locks (transitively)
// acquired" through the call graph, and every acquisition performed while
// another lock is held becomes an observed edge `held -> acquired`.
//
// Nodes are type-granular: one node per `Class::member` mutex, not per
// instance. That matches the runtime LockOrderChecker and keeps the graph
// independent of object identity; instance-level cycles (two locks of the
// same class member) surface as self-edges.
//
// Known, deliberate imprecision (documented in docs/STATIC_ANALYSIS.md):
// calls through std::function members and unexpanded macros (e.g.
// FS_FAULT_POINT's registry lookup) are invisible — declare those edges
// with FS_ACQUIRED_BEFORE string targets; the runtime checker covers them
// dynamically.

#ifndef FSLINT_LOCK_GRAPH_H_
#define FSLINT_LOCK_GRAPH_H_

#include <string>
#include <vector>

#include "lint.h"
#include "source_file.h"

namespace fslint {

// An edge in the lock-acquisition graph. `from`/`to` are "Class::member".
// At least one of observed/declared is set; an edge can be both.
struct LockEdge {
  std::string from;
  std::string to;
  bool observed = false;
  bool declared = false;
  // True when (from, to) lies in the transitive closure of the declared
  // edges — i.e. the observed order is sanctioned, directly or via a chain
  // of FS_ACQUIRED_BEFORE declarations.
  bool covered = false;
  // Observed-edge witness: the function holding `from` when `to` was
  // acquired, the call/acquisition site, and — when the acquisition happens
  // inside a (transitive) callee — that callee's name.
  std::string via_function;
  std::string via_callee;  // empty for a direct in-body acquisition
  std::string path;
  int line = 0;
  // Declared-edge annotation site.
  std::string declared_path;
  int declared_line = 0;
};

struct LockGraph {
  std::vector<std::string> nodes;  // sorted "Class::member"
  std::vector<LockEdge> edges;     // sorted by (from, to)
};

// Builds the graph from the lexed+tokenized program. Only files under
// `src/` (by repo-relative path) contribute symbols, so fixtures presented
// under virtual src/ paths participate while tests/ and tools/ stay out.
// Dangling FS_ACQUIRED_BEFORE/AFTER targets that name no known mutex are
// reported as `lock-order-contradiction` findings.
LockGraph BuildLockGraph(const std::vector<SourceFile>& files,
                         const std::vector<std::vector<Token>>& tokens,
                         std::vector<Finding>* out);

// Reports lock-cycle, lock-order-contradiction, and lock-order-undeclared
// findings for `graph` (see docs/STATIC_ANALYSIS.md for exact semantics).
void CheckLockGraph(const LockGraph& graph, std::vector<Finding>* out);

// Renders the graph. DOT omits file:line witnesses so the committed
// artifact only changes when the graph itself changes (the drift gate in CI
// diffs it); JSON carries full witness detail.
std::string LockGraphToDot(const LockGraph& graph);
std::string LockGraphToJson(const LockGraph& graph);

}  // namespace fslint

#endif  // FSLINT_LOCK_GRAPH_H_
