#include "lint.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "lock_graph.h"

namespace fslint {
namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsIdent(const std::string& t) {
  return !t.empty() &&
         (std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_');
}

bool Contains(const std::vector<Token>& toks, std::string_view text) {
  for (const Token& t : toks) {
    if (t.text == text) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Structural pass: splits the token stream into declaration statements at
// namespace/class scope (function and initializer bodies are skipped), and
// groups class-member statements per class. This is what lets the
// declaration-shape rules (locked-suffix, guarded-member, header-hygiene)
// run without a real C++ parser: at declaration scope there are no calls,
// so `Name(` is a declarator, not an invocation.
// ---------------------------------------------------------------------------

enum class ScopeKind { kNamespace, kClass };

struct Stmt {
  std::vector<Token> toks;
  ScopeKind scope = ScopeKind::kNamespace;
  bool ends_with_brace = false;  // function-definition head
};

struct ClassInfo {
  std::string name;
  int line = 0;
  std::vector<Stmt> members;  // data/member declarations ending in ';'
};

struct Structure {
  std::vector<Stmt> decls;  // all declaration statements (incl. members)
  std::vector<ClassInfo> classes;
};

// True if `toks` contains a class-key at template-angle and paren depth 0.
bool HasClassKeyAtTopLevel(const std::vector<Token>& toks) {
  int angle = 0;
  int paren = 0;
  for (const Token& t : toks) {
    if (t.text == "<") ++angle;
    else if (t.text == ">" && angle > 0) --angle;
    else if (t.text == "(") ++paren;
    else if (t.text == ")" && paren > 0) --paren;
    else if (angle == 0 && paren == 0 &&
             (t.text == "class" || t.text == "struct" || t.text == "union")) {
      return true;
    }
  }
  return false;
}

// Index of the first '(' outside template angles, or npos.
size_t FirstParenAtTopLevel(const std::vector<Token>& toks) {
  int angle = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") ++angle;
    else if (t == ">" && angle > 0) --angle;
    else if (t == "(" && angle == 0) return i;
  }
  return static_cast<size_t>(-1);
}

// Class name: first identifier after the class-key, skipping attribute
// macros (FS_*) and their argument lists.
std::string ExtractClassName(const std::vector<Token>& toks) {
  size_t i = 0;
  while (i < toks.size() && toks[i].text != "class" &&
         toks[i].text != "struct" && toks[i].text != "union") {
    ++i;
  }
  for (++i; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t.rfind("FS_", 0) == 0) {
      if (i + 1 < toks.size() && toks[i + 1].text == "(") {
        int depth = 0;
        for (++i; i < toks.size(); ++i) {
          if (toks[i].text == "(") ++depth;
          else if (toks[i].text == ")" && --depth == 0) break;
        }
      }
      continue;
    }
    if (IsIdent(t)) return t;
  }
  return "<anonymous>";
}

Structure Analyze(const std::vector<Token>& tokens) {
  Structure out;

  struct Frame {
    ScopeKind kind;
    int class_id = -1;  // index into out.classes when kind == kClass
    std::vector<Token> pending;
  };
  std::vector<Frame> frames;
  frames.push_back(Frame{ScopeKind::kNamespace, -1, {}});
  int skip_depth = 0;  // inside a function / enum / initializer body

  auto finalize = [&](Frame& frame, bool ends_with_brace) {
    if (frame.pending.empty()) return;
    Stmt stmt;
    stmt.toks = frame.pending;
    stmt.scope = frame.kind;
    stmt.ends_with_brace = ends_with_brace;
    if (frame.kind == ScopeKind::kClass && !ends_with_brace) {
      out.classes[frame.class_id].members.push_back(stmt);
    }
    out.decls.push_back(std::move(stmt));
    frame.pending.clear();
  };

  for (const Token& tok : tokens) {
    if (tok.is_string) continue;  // literal text never shapes declarations
    if (skip_depth > 0) {
      if (tok.text == "{") ++skip_depth;
      else if (tok.text == "}") --skip_depth;
      continue;
    }
    Frame& frame = frames.back();
    const std::string& t = tok.text;

    if (t == ";") {
      finalize(frame, /*ends_with_brace=*/false);
      continue;
    }
    if (t == ":") {
      // Access specifiers are statement boundaries inside a class.
      if (frame.kind == ScopeKind::kClass && frame.pending.size() == 1 &&
          (frame.pending[0].text == "public" ||
           frame.pending[0].text == "private" ||
           frame.pending[0].text == "protected")) {
        frame.pending.clear();
        continue;
      }
      frame.pending.push_back(tok);
      continue;
    }
    if (t == "{") {
      const std::vector<Token>& p = frame.pending;
      if (Contains(p, "namespace")) {
        frames.push_back(Frame{ScopeKind::kNamespace, -1, {}});
        frames[frames.size() - 2].pending.clear();
      } else if (Contains(p, "enum")) {
        frame.pending.clear();
        skip_depth = 1;
      } else if (HasClassKeyAtTopLevel(p)) {
        ClassInfo info;
        info.name = ExtractClassName(p);
        info.line = p.empty() ? tok.line : p.front().line;
        out.classes.push_back(std::move(info));
        int id = static_cast<int>(out.classes.size()) - 1;
        frame.pending.clear();
        frames.push_back(Frame{ScopeKind::kClass, id, {}});
      } else if (p.empty()) {
        skip_depth = 1;  // bare block
      } else if (Contains(p, "operator") ||
                 FirstParenAtTopLevel(p) != static_cast<size_t>(-1)) {
        // Function definition: record the head, skip the body.
        finalize(frame, /*ends_with_brace=*/true);
        skip_depth = 1;
      } else {
        // Brace initializer: skip contents, keep accumulating the
        // declaration afterwards.
        skip_depth = 1;
      }
      continue;
    }
    if (t == "}") {
      frame.pending.clear();
      if (frames.size() > 1) frames.pop_back();
      continue;
    }
    frame.pending.push_back(tok);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token-stream rules: raw-sync, determinism.
// ---------------------------------------------------------------------------

const std::set<std::string>& RawSyncBannedTypes() {
  static const std::set<std::string> kBanned = {
      "mutex",          "shared_mutex",           "recursive_mutex",
      "timed_mutex",    "recursive_timed_mutex",  "shared_timed_mutex",
      "condition_variable", "condition_variable_any",
      "lock_guard",     "scoped_lock",            "unique_lock",
      "shared_lock",
  };
  return kBanned;
}

void CheckRawSync(const SourceFile& file, const std::vector<Token>& toks,
                  std::vector<Finding>* out) {
  for (size_t i = 2; i < toks.size(); ++i) {
    if (toks[i].is_string || toks[i - 1].is_string || toks[i - 2].is_string) {
      continue;
    }
    if (toks[i - 2].text == "std" && toks[i - 1].text == "::" &&
        RawSyncBannedTypes().count(toks[i].text) > 0) {
      out->push_back({kRuleRawSync, file.path, toks[i].line,
                      "raw std::" + toks[i].text +
                          "; use the annotated wrappers in "
                          "common/thread_annotations.h"});
    }
  }
}

void CheckDeterminism(const SourceFile& file, const std::vector<Token>& toks,
                      std::vector<Finding>* out) {
  auto add = [&](int line, const std::string& what, const std::string& fix) {
    out->push_back({kRuleDeterminism, file.path, line,
                    what + " is nondeterministic under seeded tests; " + fix});
  };
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].is_string) continue;
    const std::string& t = toks[i].text;
    const std::string* prev =
        i > 0 && !toks[i - 1].is_string ? &toks[i - 1].text : nullptr;
    const std::string* next = i + 1 < toks.size() && !toks[i + 1].is_string
                                  ? &toks[i + 1].text
                                  : nullptr;
    if (t == "random_device" && prev != nullptr && *prev == "::") {
      add(toks[i].line, "std::random_device", "seed an Rng (common/random.h)");
    } else if ((t == "rand" || t == "srand") && next != nullptr &&
               *next == "(" &&
               (prev == nullptr || (*prev != "." && *prev != "->"))) {
      add(toks[i].line, t + "()", "use Rng (common/random.h)");
    } else if (t == "time" && prev != nullptr && *prev == "::" &&
               next != nullptr && *next == "(") {
      add(toks[i].line, "::time()", "take a Clock* (common/clock.h)");
    } else if (t == "system_clock") {
      add(toks[i].line, "std::chrono::system_clock",
          "take a Clock* (common/clock.h)");
    } else if ((t == "sleep_for" || t == "sleep_until") && prev != nullptr &&
               *prev == "::" && i >= 2 && toks[i - 2].text == "this_thread") {
      add(toks[i].line, "std::this_thread::" + t,
          "route through SleepFor (common/clock.h) so tests can virtualize "
          "the delay");
    }
  }
}

// ---------------------------------------------------------------------------
// Declaration rules: locked-suffix, guarded-member, header-hygiene.
// ---------------------------------------------------------------------------

void CheckLockedSuffix(const SourceFile& file, const Structure& structure,
                       std::vector<Finding>* out) {
  for (const Stmt& stmt : structure.decls) {
    const std::vector<Token>& toks = stmt.toks;
    if (Contains(toks, "operator")) continue;

    // Direction 1: a declared `*Locked` method must carry FS_REQUIRES.
    bool has_requires =
        Contains(toks, "FS_REQUIRES") || Contains(toks, "FS_REQUIRES_SHARED");
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      const std::string& name = toks[i].text;
      if (!IsIdent(name) || !EndsWith(name, "Locked") ||
          name.size() <= 6 || toks[i + 1].text != "(") {
        continue;
      }
      if (i == 0) continue;
      const std::string& before = toks[i - 1].text;
      if (before == "::") continue;  // out-of-line; annotation on the decl
      // Require a return type directly before the name, so constructor
      // initializers like `: x_(MakeLocked())` never match.
      if (!IsIdent(before) && before != ">" && before != "*" && before != "&") {
        continue;
      }
      if (!has_requires) {
        out->push_back(
            {kRuleLockedSuffix, file.path, toks[i].line,
             "'" + name +
                 "' is named *Locked but carries no FS_REQUIRES / "
                 "FS_REQUIRES_SHARED annotation"});
      }
    }

    // Direction 2: FS_REQUIRES on a method whose name is not `*Locked`.
    if (!has_requires) continue;
    size_t paren = FirstParenAtTopLevel(toks);
    if (paren == static_cast<size_t>(-1) || paren == 0) continue;
    const Token& name_tok = toks[paren - 1];
    if (!IsIdent(name_tok.text) || name_tok.text.rfind("FS_", 0) == 0) {
      continue;
    }
    if (!EndsWith(name_tok.text, "Locked")) {
      out->push_back({kRuleLockedSuffix, file.path, name_tok.line,
                      "'" + name_tok.text +
                          "' carries FS_REQUIRES but is not named *Locked "
                          "(docs/STATIC_ANALYSIS.md naming policy)"});
    }
  }
}

// First type token of a member declaration: skips cv/storage qualifiers and
// a leading `firestore ::` qualification.
size_t FirstTypeToken(const std::vector<Token>& toks) {
  size_t i = 0;
  while (i < toks.size() &&
         (toks[i].text == "mutable" || toks[i].text == "const" ||
          toks[i].text == "volatile" || toks[i].text == "::" ||
          toks[i].text == "firestore")) {
    ++i;
  }
  return i;
}

// Removes FS_* attribute macros and their argument lists, so a declaration
// like `Mutex mu_ FS_ACQUIRED_BEFORE(other_mu_)` still parses as a plain
// mutex member below.
std::vector<Token> StripAttributeMacros(const std::vector<Token>& toks) {
  std::vector<Token> out;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text.rfind("FS_", 0) == 0 && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      int depth = 0;
      for (++i; i < toks.size(); ++i) {
        if (toks[i].text == "(") ++depth;
        else if (toks[i].text == ")" && --depth == 0) break;
      }
      continue;
    }
    out.push_back(toks[i]);
  }
  return out;
}

bool IsMutexMember(const std::vector<Token>& raw_toks) {
  std::vector<Token> toks = StripAttributeMacros(raw_toks);
  size_t i = FirstTypeToken(toks);
  if (i >= toks.size()) return false;
  const std::string& t = toks[i].text;
  if (t != "Mutex" && t != "SharedMutex") return false;
  // A '(' means this is a constructor / function declaration, not a member.
  if (FirstParenAtTopLevel(toks) != static_cast<size_t>(-1)) return false;
  for (const Token& tok : toks) {
    if (tok.text == "*" || tok.text == "&") return false;  // non-owning
  }
  return true;
}

// `synchronized_classes` is the set of class names (across the whole lint
// input) that declare their own Mutex/SharedMutex member: values, pointers,
// and smart pointers of such types are internally synchronized, so the
// containing class's mutex does not need to guard them.
void CheckGuardedMember(const SourceFile& file, const Structure& structure,
                        const std::set<std::string>& synchronized_classes,
                        std::vector<Finding>* out) {
  static const std::set<std::string> kSkipKeywords = {
      "using",   "typedef",  "friend", "static", "constexpr", "template",
      "operator", "enum",    "class",  "struct", "union",     "public",
      "private", "protected"};
  static const std::set<std::string> kSyncTypes = {
      "Mutex", "SharedMutex", "CondVar", "LockOrderChecker"};

  for (const ClassInfo& cls : structure.classes) {
    bool has_mutex = false;
    for (const Stmt& m : cls.members) {
      if (IsMutexMember(m.toks)) {
        has_mutex = true;
        break;
      }
    }
    if (!has_mutex) continue;

    for (const Stmt& m : cls.members) {
      const std::vector<Token>& toks = m.toks;
      if (toks.empty()) continue;
      if (Contains(toks, "FS_GUARDED_BY") || Contains(toks, "FS_PT_GUARDED_BY"))
        continue;
      bool skip = false;
      for (const Token& t : toks) {
        if (kSkipKeywords.count(t.text) > 0) {
          skip = true;
          break;
        }
      }
      if (skip) continue;
      size_t type = FirstTypeToken(toks);
      if (type >= toks.size()) continue;
      if (kSyncTypes.count(toks[type].text) > 0) continue;
      // std::atomic<...> members are lock-free by design.
      bool atomic = false;
      for (size_t i = type; i < toks.size() && i < type + 4; ++i) {
        if (toks[i].text == "atomic") {
          atomic = true;
          break;
        }
      }
      if (atomic) continue;
      // Function declarations: first top-level '(' preceded by a name.
      size_t paren = FirstParenAtTopLevel(toks);
      if (paren != static_cast<size_t>(-1)) continue;
      // Reference members and `T* const` pointers cannot be reseated;
      // const non-pointer members cannot be written at all.
      bool has_ref = false;
      bool has_ptr = false;
      bool const_ptr = false;
      for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].text == "&") has_ref = true;
        if (toks[i].text == "*") {
          has_ptr = true;
          if (i + 1 < toks.size() && toks[i + 1].text == "const") {
            const_ptr = true;
          }
        }
      }
      if (has_ref || const_ptr) continue;
      if (toks[0].text == "const" && !has_ptr) continue;

      // Member name: last identifier before any initializer.
      std::string member;
      for (const Token& t : toks) {
        if (t.text == "=" || t.text == "[") break;
        if (IsIdent(t.text)) member = t.text;
      }
      if (member.empty()) continue;

      // Members whose type is itself an internally synchronized class
      // protect their own state; the enclosing mutex need not cover them.
      bool self_synchronized = false;
      for (const Token& t : toks) {
        if (t.text != member && synchronized_classes.count(t.text) > 0) {
          self_synchronized = true;
          break;
        }
      }
      if (self_synchronized) continue;
      out->push_back(
          {kRuleGuardedMember, file.path, toks[0].line,
           "member '" + member + "' of '" + cls.name +
               "' (a class with a Mutex member) lacks FS_GUARDED_BY; "
               "annotate it, make it std::atomic, or suppress with a "
               "justification"});
    }
  }
}

void CheckHeaderHygiene(const SourceFile& file, const Structure& structure,
                        std::vector<Finding>* out) {
  if (!file.is_header()) return;
  for (const Stmt& stmt : structure.decls) {
    if (stmt.scope != ScopeKind::kNamespace) continue;
    if (stmt.toks.size() >= 2 && stmt.toks[0].text == "using" &&
        stmt.toks[1].text == "namespace") {
      out->push_back({kRuleHeaderHygiene, file.path, stmt.toks[0].line,
                      "'using namespace' at namespace scope in a header "
                      "leaks into every includer"});
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-file rule: fault-point-registry.
// ---------------------------------------------------------------------------

struct FaultSite {
  std::string path;
  int line = 0;
};

void CheckFaultRegistry(
    const std::vector<std::pair<const SourceFile*, StringLiteral>>& sites,
    const Options& options, std::vector<Finding>* out) {
  std::map<std::string, std::vector<FaultSite>> by_name;
  for (const auto& [file, lit] : sites) {
    by_name[lit.value].push_back({file->path, lit.line});
  }

  std::set<std::string> catalogued;
  for (const CatalogEntry& entry : options.fault_catalog) {
    catalogued.insert(entry.name);
  }

  for (const auto& [name, uses] : by_name) {
    if (uses.size() > 1) {
      for (const FaultSite& site : uses) {
        std::ostringstream msg;
        msg << "fault point \"" << name << "\" is declared at "
            << uses.size() << " sites (";
        bool first = true;
        for (const FaultSite& other : uses) {
          if (!first) msg << ", ";
          first = false;
          msg << other.path << ":" << other.line;
        }
        msg << "); point names must be unique so a chaos schedule targets "
               "exactly one site";
        out->push_back({kRuleFaultPointRegistry, site.path, site.line,
                        msg.str()});
      }
    }
    if (!options.fault_catalog.empty() && catalogued.count(name) == 0) {
      for (const FaultSite& site : uses) {
        out->push_back({kRuleFaultPointRegistry, site.path, site.line,
                        "fault point \"" + name + "\" is not listed in the " +
                            options.catalog_path + " point catalog"});
      }
    }
  }
  for (const CatalogEntry& entry : options.fault_catalog) {
    if (by_name.count(entry.name) == 0) {
      out->push_back(
          {kRuleFaultPointRegistry, options.catalog_path, entry.line,
           "catalogued fault point \"" + entry.name +
               "\" no longer exists in src/ (stale catalog row)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-file rule: metric-name-registry. Same discipline as the fault-point
// registry, for FS_METRIC_* / FS_SPAN names: unique in src/ and
// bidirectionally synced with the docs/OBSERVABILITY.md catalogs.
// ---------------------------------------------------------------------------

void CheckMetricRegistry(
    const std::vector<std::pair<const SourceFile*, StringLiteral>>& sites,
    const Options& options, std::vector<Finding>* out) {
  std::map<std::string, std::vector<FaultSite>> by_name;
  for (const auto& [file, lit] : sites) {
    by_name[lit.value].push_back({file->path, lit.line});
  }

  std::set<std::string> catalogued;
  for (const CatalogEntry& entry : options.metric_catalog) {
    catalogued.insert(entry.name);
  }

  for (const auto& [name, uses] : by_name) {
    if (uses.size() > 1) {
      for (const FaultSite& site : uses) {
        std::ostringstream msg;
        msg << "metric/span name \"" << name << "\" is declared at "
            << uses.size() << " sites (";
        bool first = true;
        for (const FaultSite& other : uses) {
          if (!first) msg << ", ";
          first = false;
          msg << other.path << ":" << other.line;
        }
        msg << "); names must be unique so a metric maps to exactly one "
               "site";
        out->push_back({kRuleMetricNameRegistry, site.path, site.line,
                        msg.str()});
      }
    }
    if (!options.metric_catalog.empty() && catalogued.count(name) == 0) {
      for (const FaultSite& site : uses) {
        out->push_back({kRuleMetricNameRegistry, site.path, site.line,
                        "metric/span name \"" + name +
                            "\" is not listed in the " +
                            options.metric_catalog_path + " catalogs"});
      }
    }
  }
  for (const CatalogEntry& entry : options.metric_catalog) {
    if (by_name.count(entry.name) == 0) {
      out->push_back(
          {kRuleMetricNameRegistry, options.metric_catalog_path, entry.line,
           "catalogued metric/span name \"" + entry.name +
               "\" no longer exists in src/ (stale catalog row)"});
    }
  }
}

}  // namespace

std::vector<StringLiteral> ExtractFaultPoints(const SourceFile& file) {
  std::vector<StringLiteral> out;
  for (const StringLiteral& lit : file.strings) {
    if (lit.line <= 0 ||
        static_cast<size_t>(lit.line) > file.code_lines.size()) {
      continue;
    }
    const std::string& code = file.code_lines[lit.line - 1];
    std::string_view prefix(code.data(),
                            std::min<size_t>(lit.col, code.size()));
    while (!prefix.empty() &&
           std::isspace(static_cast<unsigned char>(prefix.back()))) {
      prefix.remove_suffix(1);
    }
    if (prefix.empty() || prefix.back() != '(') continue;
    prefix.remove_suffix(1);
    while (!prefix.empty() &&
           std::isspace(static_cast<unsigned char>(prefix.back()))) {
      prefix.remove_suffix(1);
    }
    if (EndsWith(prefix, "FS_FAULT_POINT") ||
        EndsWith(prefix, "FS_FAULT_TRIGGERED")) {
      out.push_back(lit);
    }
  }
  return out;
}

std::vector<CatalogEntry> ParseFaultCatalog(std::string_view markdown) {
  std::vector<CatalogEntry> out;
  bool in_section = false;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= markdown.size()) {
    size_t nl = markdown.find('\n', pos);
    std::string_view line = markdown.substr(
        pos, nl == std::string_view::npos ? markdown.size() - pos : nl - pos);
    ++line_no;
    if (line.rfind("#", 0) == 0) {
      in_section = line.find("Point catalog") != std::string_view::npos;
    } else if (in_section && line.rfind("| `", 0) == 0) {
      size_t open = 3;
      size_t close = line.find('`', open);
      if (close != std::string_view::npos && close > open) {
        out.push_back(
            {std::string(line.substr(open, close - open)), line_no});
      }
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return out;
}

std::vector<StringLiteral> ExtractMetricNames(const SourceFile& file) {
  std::vector<StringLiteral> out;
  for (const StringLiteral& lit : file.strings) {
    if (lit.line <= 0 ||
        static_cast<size_t>(lit.line) > file.code_lines.size()) {
      continue;
    }
    const std::string& code = file.code_lines[lit.line - 1];
    std::string_view prefix(code.data(),
                            std::min<size_t>(lit.col, code.size()));
    while (!prefix.empty() &&
           std::isspace(static_cast<unsigned char>(prefix.back()))) {
      prefix.remove_suffix(1);
    }
    if (prefix.empty() || prefix.back() != '(') continue;
    prefix.remove_suffix(1);
    while (!prefix.empty() &&
           std::isspace(static_cast<unsigned char>(prefix.back()))) {
      prefix.remove_suffix(1);
    }
    // The first argument of every macro is the name; _FOR labels follow a
    // comma, not a '(', so they are never extracted.
    if (EndsWith(prefix, "FS_METRIC_COUNTER") ||
        EndsWith(prefix, "FS_METRIC_GAUGE") ||
        EndsWith(prefix, "FS_METRIC_TIMER") ||
        EndsWith(prefix, "FS_METRIC_COUNTER_FOR") ||
        EndsWith(prefix, "FS_METRIC_GAUGE_FOR") ||
        EndsWith(prefix, "FS_METRIC_TIMER_FOR") ||
        EndsWith(prefix, "FS_SPAN")) {
      out.push_back(lit);
    }
  }
  return out;
}

std::vector<CatalogEntry> ParseMetricCatalog(std::string_view markdown) {
  std::vector<CatalogEntry> out;
  bool in_section = false;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= markdown.size()) {
    size_t nl = markdown.find('\n', pos);
    std::string_view line = markdown.substr(
        pos, nl == std::string_view::npos ? markdown.size() - pos : nl - pos);
    ++line_no;
    if (line.rfind("#", 0) == 0) {
      in_section = line.find("Metric catalog") != std::string_view::npos ||
                   line.find("Span catalog") != std::string_view::npos;
    } else if (in_section && line.rfind("| `", 0) == 0) {
      size_t open = 3;
      size_t close = line.find('`', open);
      if (close != std::string_view::npos && close > open) {
        out.push_back(
            {std::string(line.substr(open, close - open)), line_no});
      }
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return out;
}

std::vector<Finding> Lint(const std::vector<FileInput>& files,
                          const Options& options) {
  // Phase 1 (parallel): lex + tokenize + structure every file. Each file is
  // independent, so workers pull indices off an atomic counter; results land
  // in index-addressed slots, and every later phase iterates those slots in
  // input order, so the output is identical regardless of thread count or
  // scheduling.
  std::vector<SourceFile> lexed(files.size());
  std::vector<std::vector<Token>> tokens(files.size());
  std::vector<Structure> structures(files.size());
  {
    unsigned hw = std::thread::hardware_concurrency();
    size_t jobs = options.jobs > 0 ? static_cast<size_t>(options.jobs)
                                   : (hw > 0 ? hw : 1);
    jobs = std::min(jobs, std::max<size_t>(files.size(), 1));
    std::atomic<size_t> next{0};
    auto worker = [&] {
      for (size_t i = next.fetch_add(1); i < files.size();
           i = next.fetch_add(1)) {
        lexed[i] = Lex(files[i].path, files[i].content);
        tokens[i] = Tokenize(lexed[i]);
        structures[i] = Analyze(tokens[i]);
      }
    };
    if (jobs <= 1) {
      worker();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(jobs);
      for (size_t t = 0; t < jobs; ++t) threads.emplace_back(worker);
      for (std::thread& th : threads) th.join();
    }
  }

  // Collect the names of classes that own a Mutex/SharedMutex (the
  // guarded-member rule treats members of those types as internally
  // synchronized). Serial, in input order.
  std::set<std::string> synchronized_classes;
  for (size_t i = 0; i < lexed.size(); ++i) {
    for (const ClassInfo& cls : structures[i].classes) {
      for (const Stmt& m : cls.members) {
        if (IsMutexMember(m.toks)) {
          synchronized_classes.insert(cls.name);
          break;
        }
      }
    }
  }

  // Phase 2: rules.
  std::vector<Finding> findings;
  std::vector<std::pair<const SourceFile*, StringLiteral>> fault_sites;
  std::vector<std::pair<const SourceFile*, StringLiteral>> metric_sites;

  for (size_t i = 0; i < lexed.size(); ++i) {
    const SourceFile& file = lexed[i];
    const std::vector<Token>& toks = tokens[i];
    const Structure& structure = structures[i];

    const bool in_src = file.InDir("src");
    if (in_src || file.InDir("tests") || file.InDir("bench") ||
        file.InDir("examples")) {
      CheckRawSync(file, toks, &findings);
      CheckLockedSuffix(file, structure, &findings);
      CheckGuardedMember(file, structure, synchronized_classes, &findings);
    }
    if (in_src) {
      CheckDeterminism(file, toks, &findings);
      for (const StringLiteral& lit : ExtractFaultPoints(file)) {
        fault_sites.emplace_back(&file, lit);
      }
      for (const StringLiteral& lit : ExtractMetricNames(file)) {
        metric_sites.emplace_back(&file, lit);
      }
    }
    CheckHeaderHygiene(file, structure, &findings);
  }

  CheckFaultRegistry(fault_sites, options, &findings);
  CheckMetricRegistry(metric_sites, options, &findings);

  // Whole-program lock-graph pass (lock-cycle / lock-order-* rules).
  if (options.lock_graph) {
    LockGraph graph = BuildLockGraph(lexed, tokens, &findings);
    CheckLockGraph(graph, &findings);
    if (options.lock_graph_out != nullptr) {
      *options.lock_graph_out = std::move(graph);
    }
  }

  // Architecture-layering pass (module DAG from tools/fslint/layering.toml;
  // config parse errors are reported by ParseLayeringConfig at load time).
  if (options.layering.loaded()) {
    for (const SourceFile& file : lexed) {
      CheckLayering(file, options.layering, &findings);
    }
  }

  // Suppression pass: a justified `allow(<rule>)` on the finding's line or
  // the line above silences it; an unjustified one never silences anything
  // and is itself reported (exactly once per clause).
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : lexed) by_path[file.path] = &file;

  std::vector<Finding> kept;
  for (Finding& finding : findings) {
    auto it = by_path.find(finding.path);
    bool suppressed = false;
    if (it != by_path.end()) {
      for (int line : {finding.line, finding.line - 1}) {
        auto sup = it->second->suppressions.find(line);
        if (sup == it->second->suppressions.end()) continue;
        for (const Suppression& s : sup->second) {
          if (s.rule == finding.rule && s.justified) {
            suppressed = true;
            break;
          }
        }
        if (suppressed) break;
      }
    }
    if (!suppressed) kept.push_back(std::move(finding));
  }

  for (const SourceFile& file : lexed) {
    for (const auto& [line, sups] : file.suppressions) {
      for (const Suppression& s : sups) {
        if (!s.justified) {
          kept.push_back(
              {kRuleSuppression, file.path, line,
               "allow(" + s.rule +
                   ") without a justification; write `// fslint: allow(" +
                   s.rule + ") -- <why this is safe>`"});
        }
      }
    }
  }

  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return kept;
}

}  // namespace fslint
