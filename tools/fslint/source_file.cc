#include "source_file.h"

#include <cctype>

namespace fslint {
namespace {

// Parses `// fslint: allow(rule-a, rule-b) -- justification` out of a line
// comment body. Returns true if the comment is an fslint directive at all.
bool ParseSuppressionComment(std::string_view comment, int line,
                             std::vector<Suppression>* out) {
  size_t marker = comment.find("fslint:");
  if (marker == std::string_view::npos) return false;
  size_t allow = comment.find("allow(", marker);
  if (allow == std::string_view::npos) return false;
  size_t open = allow + 5;  // index of '('
  size_t close = comment.find(')', open);
  if (close == std::string_view::npos) return false;

  bool justified = false;
  size_t dashes = comment.find("--", close);
  if (dashes != std::string_view::npos) {
    std::string_view why = comment.substr(dashes + 2);
    for (char c : why) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        justified = true;
        break;
      }
    }
  }

  std::string_view list = comment.substr(open + 1, close - open - 1);
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string_view::npos) comma = list.size();
    std::string_view item = list.substr(start, comma - start);
    while (!item.empty() &&
           std::isspace(static_cast<unsigned char>(item.front()))) {
      item.remove_prefix(1);
    }
    while (!item.empty() &&
           std::isspace(static_cast<unsigned char>(item.back()))) {
      item.remove_suffix(1);
    }
    if (!item.empty()) {
      out->push_back(Suppression{std::string(item), justified, line});
    }
    start = comma + 1;
  }
  return true;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Parses `include "path"` / `include <path>` out of the text following a
// directive-introducing '#'. Comments after the closing delimiter are fine;
// anything malformed is silently ignored (the compiler will complain).
void ParseIncludeDirective(std::string_view rest, int line,
                           std::vector<IncludeDirective>* out) {
  size_t i = 0;
  while (i < rest.size() &&
         std::isspace(static_cast<unsigned char>(rest[i]))) {
    ++i;
  }
  constexpr std::string_view kInclude = "include";
  if (rest.compare(i, kInclude.size(), kInclude) != 0) return;
  i += kInclude.size();
  while (i < rest.size() &&
         std::isspace(static_cast<unsigned char>(rest[i]))) {
    ++i;
  }
  if (i >= rest.size()) return;
  char close;
  if (rest[i] == '"') close = '"';
  else if (rest[i] == '<') close = '>';
  else return;
  size_t end = rest.find(close, i + 1);
  if (end == std::string_view::npos) return;
  out->push_back(
      {line, std::string(rest.substr(i + 1, end - i - 1)), close == '>'});
}

}  // namespace

SourceFile Lex(std::string path, std::string_view content) {
  SourceFile file;
  file.path = std::move(path);

  // Split into raw lines first (tolerate missing trailing newline).
  size_t pos = 0;
  while (pos <= content.size()) {
    size_t nl = content.find('\n', pos);
    if (nl == std::string_view::npos) {
      if (pos < content.size()) {
        file.raw_lines.emplace_back(content.substr(pos));
      }
      break;
    }
    std::string line(content.substr(pos, nl - pos));
    if (!line.empty() && line.back() == '\r') line.pop_back();
    file.raw_lines.push_back(std::move(line));
    pos = nl + 1;
  }

  file.code_lines.assign(file.raw_lines.size(), std::string());

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };

  State state = State::kCode;
  bool in_directive = false;       // inside a preprocessor directive
  bool line_has_token = false;     // saw non-ws code on this line yet
  std::string raw_delim;           // raw-string delimiter, for )delim"
  std::string comment_text;       // current line-comment body
  int comment_line = 0;
  StringLiteral current_string;

  for (size_t li = 0; li < file.raw_lines.size(); ++li) {
    const std::string& raw = file.raw_lines[li];
    std::string& code = file.code_lines[li];
    code.assign(raw.size(), ' ');
    const int line_no = static_cast<int>(li) + 1;
    if (state != State::kBlockComment && state != State::kRawString) {
      line_has_token = in_directive;  // directives continue via backslash
    }

    for (size_t i = 0; i < raw.size(); ++i) {
      char c = raw[i];
      char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
      switch (state) {
        case State::kCode: {
          if (!line_has_token && c == '#') {
            in_directive = true;
            ParseIncludeDirective(std::string_view(raw).substr(i + 1),
                                  line_no, &file.includes);
          }
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            comment_text.assign(raw, i + 2, raw.size() - i - 2);
            comment_line = line_no;
            i = raw.size();  // rest of line is comment
            break;
          }
          if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
            break;
          }
          if (c == 'R' && next == '"' &&
              (i == 0 || !IsIdentChar(raw[i - 1]))) {
            size_t open = raw.find('(', i + 2);
            if (open != std::string::npos) {
              raw_delim = ")" + raw.substr(i + 2, open - i - 2) + "\"";
              current_string = {line_no, static_cast<int>(i), ""};
              state = State::kRawString;
              i = open;  // consume through '('
              if (!std::isspace(static_cast<unsigned char>(c))) {
                line_has_token = true;
              }
              break;
            }
          }
          if (c == '"') {
            state = State::kString;
            current_string = {line_no, static_cast<int>(i), ""};
            line_has_token = true;
            break;
          }
          if (c == '\'') {
            // Char literal (digit separators '\'' in numbers are rare in
            // this tree; treat every quote after an identifier char as a
            // separator and skip it).
            if (i > 0 && IsIdentChar(raw[i - 1])) {
              code[i] = ' ';
              break;
            }
            state = State::kChar;
            line_has_token = true;
            break;
          }
          if (!in_directive) code[i] = c;
          if (!std::isspace(static_cast<unsigned char>(c))) {
            line_has_token = true;
          }
          break;
        }
        case State::kLineComment:
          break;  // unreachable: handled by the i = raw.size() above
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            if (i + 1 < raw.size()) {
              current_string.value += next;
              ++i;
            }
          } else if (c == '"') {
            if (!in_directive) file.strings.push_back(current_string);
            state = State::kCode;
          } else {
            current_string.value += c;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
          }
          break;
        case State::kRawString:
          if (raw.compare(i, raw_delim.size(), raw_delim) == 0) {
            if (!in_directive) file.strings.push_back(current_string);
            i += raw_delim.size() - 1;
            state = State::kCode;
          } else {
            current_string.value += c;
          }
          break;
      }
    }

    if (state == State::kLineComment) {
      std::vector<Suppression> sups;
      if (ParseSuppressionComment(comment_text, comment_line, &sups)) {
        auto& slot = file.suppressions[comment_line];
        slot.insert(slot.end(), sups.begin(), sups.end());
      }
      state = State::kCode;
    }
    if (state == State::kString || state == State::kChar) {
      state = State::kCode;  // unterminated literal: recover at EOL
    }
    if (in_directive) {
      if (raw.empty() || raw.back() != '\\') in_directive = false;
    } else if (state == State::kRawString) {
      current_string.value += '\n';
    }
  }
  return file;
}

std::vector<Token> Tokenize(const SourceFile& file) {
  std::vector<Token> tokens;
  // String literals are spaces in the code view; re-emit each as a single
  // is_string token at its source position so structural passes can read
  // annotation arguments. `file.strings` is in source order already.
  size_t si = 0;
  auto flush_strings = [&](int line_no, size_t col) {
    while (si < file.strings.size() &&
           (file.strings[si].line < line_no ||
            (file.strings[si].line == line_no &&
             static_cast<size_t>(file.strings[si].col) <= col))) {
      const StringLiteral& s = file.strings[si++];
      tokens.push_back({s.value, s.line, s.col, /*is_string=*/true});
    }
  };
  for (size_t li = 0; li < file.code_lines.size(); ++li) {
    const std::string& line = file.code_lines[li];
    const int line_no = static_cast<int>(li) + 1;
    size_t i = 0;
    while (i < line.size()) {
      flush_strings(line_no, i);
      char c = line[i];
      const int col = static_cast<int>(i);
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (IsIdentChar(c)) {
        size_t start = i;
        while (i < line.size() && IsIdentChar(line[i])) ++i;
        tokens.push_back({line.substr(start, i - start), line_no, col, false});
        continue;
      }
      if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        tokens.push_back({"::", line_no, col, false});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        tokens.push_back({"->", line_no, col, false});
        i += 2;
        continue;
      }
      tokens.push_back({std::string(1, c), line_no, col, false});
      ++i;
    }
    flush_strings(line_no, line.size());
  }
  flush_strings(static_cast<int>(file.code_lines.size()) + 1, 0);
  return tokens;
}

}  // namespace fslint
