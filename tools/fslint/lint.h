// fslint rule engine.
//
// fslint enforces the project-specific invariants that generic tooling
// cannot express (and that must hold for the chaos suite's determinism and
// the thread-safety annotations to mean anything). It is dependency-free
// C++20 — no libclang — so it builds and runs under plain GCC and the gate
// never SKIPs. Rules and their scopes are catalogued in
// docs/STATIC_ANALYSIS.md; findings are suppressed per line with
//
//   // fslint: allow(<rule>) -- <justification>
//
// on the finding's line or the line directly above it. A suppression
// without a justification is itself a finding (`suppression` rule).

#ifndef FSLINT_LINT_H_
#define FSLINT_LINT_H_

#include <string>
#include <vector>

#include "source_file.h"

namespace fslint {

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
};

// One catalogued fault-point name from docs/ROBUSTNESS.md, with the line of
// its table row (for diagnostics pointing into the catalog).
struct CatalogEntry {
  std::string name;
  int line = 0;
};

struct Options {
  // Parsed "Point catalog" from docs/ROBUSTNESS.md. When empty the
  // fault-point-registry rule only checks in-code uniqueness.
  std::vector<CatalogEntry> fault_catalog;
  // Path the catalog came from, used for catalog-side diagnostics.
  std::string catalog_path = "docs/ROBUSTNESS.md";
};

struct FileInput {
  std::string path;     // repo-relative, '/'-separated
  std::string content;  // full file text
};

// Rule names, in the order they are documented.
inline constexpr char kRuleRawSync[] = "raw-sync";
inline constexpr char kRuleLockedSuffix[] = "locked-suffix";
inline constexpr char kRuleGuardedMember[] = "guarded-member";
inline constexpr char kRuleDeterminism[] = "determinism";
inline constexpr char kRuleFaultPointRegistry[] = "fault-point-registry";
inline constexpr char kRuleHeaderHygiene[] = "header-hygiene";
inline constexpr char kRuleSuppression[] = "suppression";

// Lints `files` as one program: per-file rules plus the cross-file
// fault-point registry check. Returned findings are sorted by (path, line)
// and already filtered through suppressions; unjustified suppressions
// surface as `suppression` findings.
std::vector<Finding> Lint(const std::vector<FileInput>& files,
                          const Options& options);

// Extracts the fault-point name literals passed to FS_FAULT_POINT /
// FS_FAULT_TRIGGERED in `file` (definition sites only, not Arm() calls).
std::vector<StringLiteral> ExtractFaultPoints(const SourceFile& file);

// Parses the "### Point catalog" markdown table out of docs/ROBUSTNESS.md
// text. Rows look like `| \`name\` | layer | what |`.
std::vector<CatalogEntry> ParseFaultCatalog(std::string_view markdown);

}  // namespace fslint

#endif  // FSLINT_LINT_H_
