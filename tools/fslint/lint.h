// fslint rule engine.
//
// fslint enforces the project-specific invariants that generic tooling
// cannot express (and that must hold for the chaos suite's determinism and
// the thread-safety annotations to mean anything). It is dependency-free
// C++20 — no libclang — so it builds and runs under plain GCC and the gate
// never SKIPs. Rules and their scopes are catalogued in
// docs/STATIC_ANALYSIS.md; findings are suppressed per line with
//
//   // fslint: allow(<rule>) -- <justification>
//
// on the finding's line or the line directly above it. A suppression
// without a justification is itself a finding (`suppression` rule).

#ifndef FSLINT_LINT_H_
#define FSLINT_LINT_H_

#include <string>
#include <vector>

#include "source_file.h"

namespace fslint {

struct LockGraph;

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
};

// One catalogued fault-point name from docs/ROBUSTNESS.md, with the line of
// its table row (for diagnostics pointing into the catalog).
struct CatalogEntry {
  std::string name;
  int line = 0;
};

// One module in the architecture-layering DAG (docs/STATIC_ANALYSIS.md).
// `deps` are the module directories this module may #include from; the
// checker closes them transitively. `unrestricted` consumers (sim, ycsb)
// may include anything.
struct LayeringModule {
  std::string name;
  std::vector<std::string> deps;
  bool unrestricted = false;
  int line = 0;  // declaration line in the config, for diagnostics
};

struct LayeringConfig {
  std::string path;          // config file path, for diagnostics
  std::string root = "src";  // directory tree the DAG governs
  std::vector<LayeringModule> modules;
  bool loaded() const { return !modules.empty(); }
};

// Parses the tools/fslint/layering.toml module DAG. Malformed lines and
// unknown dep names are reported as `layering` findings against the config
// file itself.
LayeringConfig ParseLayeringConfig(std::string path, std::string_view text,
                                   std::vector<Finding>* out);

// Checks `file`'s #include directives against the module DAG. Only files
// under `config.root` are constrained; a file in a module the config does
// not declare is itself a finding (declare the module first — see
// docs/STATIC_ANALYSIS.md, "Declaring a new module").
void CheckLayering(const SourceFile& file, const LayeringConfig& config,
                   std::vector<Finding>* out);

struct Options {
  // Parsed "Point catalog" from docs/ROBUSTNESS.md. When empty the
  // fault-point-registry rule only checks in-code uniqueness.
  std::vector<CatalogEntry> fault_catalog;
  // Path the catalog came from, used for catalog-side diagnostics.
  std::string catalog_path = "docs/ROBUSTNESS.md";
  // Parsed metric + span catalogs from docs/OBSERVABILITY.md. When empty
  // the metric-name-registry rule only checks in-code uniqueness.
  std::vector<CatalogEntry> metric_catalog;
  std::string metric_catalog_path = "docs/OBSERVABILITY.md";
  // Module DAG for the layering pass; when not loaded() the pass is off.
  LayeringConfig layering;
  // Whole-program lock-graph pass (lock-cycle / lock-order-* rules).
  bool lock_graph = true;
  // When non-null, receives the lock graph built during Lint() (for
  // --dump-lock-graph and the drift gate).
  LockGraph* lock_graph_out = nullptr;
  // Worker threads for the per-file parse phase; 0 = hardware concurrency.
  int jobs = 0;
};

struct FileInput {
  std::string path;     // repo-relative, '/'-separated
  std::string content;  // full file text
};

// Rule names, in the order they are documented.
inline constexpr char kRuleRawSync[] = "raw-sync";
inline constexpr char kRuleLockedSuffix[] = "locked-suffix";
inline constexpr char kRuleGuardedMember[] = "guarded-member";
inline constexpr char kRuleDeterminism[] = "determinism";
inline constexpr char kRuleFaultPointRegistry[] = "fault-point-registry";
inline constexpr char kRuleMetricNameRegistry[] = "metric-name-registry";
inline constexpr char kRuleHeaderHygiene[] = "header-hygiene";
inline constexpr char kRuleSuppression[] = "suppression";
inline constexpr char kRuleLockCycle[] = "lock-cycle";
inline constexpr char kRuleLockOrderContradiction[] = "lock-order-contradiction";
inline constexpr char kRuleLockOrderUndeclared[] = "lock-order-undeclared";
inline constexpr char kRuleLayering[] = "layering";

// Lints `files` as one program: per-file rules plus the cross-file
// fault-point registry check. Returned findings are sorted by (path, line)
// and already filtered through suppressions; unjustified suppressions
// surface as `suppression` findings.
std::vector<Finding> Lint(const std::vector<FileInput>& files,
                          const Options& options);

// Extracts the fault-point name literals passed to FS_FAULT_POINT /
// FS_FAULT_TRIGGERED in `file` (definition sites only, not Arm() calls).
std::vector<StringLiteral> ExtractFaultPoints(const SourceFile& file);

// Parses the "### Point catalog" markdown table out of docs/ROBUSTNESS.md
// text. Rows look like `| \`name\` | layer | what |`.
std::vector<CatalogEntry> ParseFaultCatalog(std::string_view markdown);

// Extracts the metric/span name literals passed to the FS_METRIC_* macros
// and FS_SPAN in `file` (definition sites; labels are not names).
std::vector<StringLiteral> ExtractMetricNames(const SourceFile& file);

// Parses the "Metric catalog" and "Span catalog" markdown tables out of
// docs/OBSERVABILITY.md text. Rows look like `| \`name\` | kind | what |`.
std::vector<CatalogEntry> ParseMetricCatalog(std::string_view markdown);

}  // namespace fslint

#endif  // FSLINT_LINT_H_
