# Compares the committed lock-graph artifact against a fresh dump. Invoked
# by the fslint_lock_graph_drift ctest (see CMakeLists.txt here); fails when
# docs/lock_graph.dot no longer matches the tree.

execute_process(
  COMMAND ${FSLINT} --root ${ROOT} --dump-lock-graph ${FRESH}
  RESULT_VARIABLE lint_status
  OUTPUT_QUIET)
# Exit status 1 just means "findings"; the fslint ctest owns that signal.
if(lint_status GREATER 1)
  message(FATAL_ERROR "fslint failed to run (status ${lint_status})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN} ${FRESH}
  RESULT_VARIABLE diff_status)
if(NOT diff_status EQUAL 0)
  message(FATAL_ERROR
          "docs/lock_graph.dot is stale: the locking structure changed. "
          "Regenerate with `fslint --root . --dump-lock-graph "
          "docs/lock_graph.dot` and review the new edges.")
endif()
