#include "lock_graph.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace fslint {
namespace {

bool IsIdentTok(const Token& t) {
  return !t.is_string && !t.text.empty() &&
         (std::isalpha(static_cast<unsigned char>(t.text[0])) != 0 ||
          t.text[0] == '_');
}

// Identifiers that can never start a member/call chain or name a type we
// care about.
const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "if",       "else",     "for",      "while",    "do",
      "switch",   "case",     "default",  "return",   "break",
      "continue", "new",      "delete",   "sizeof",   "static_cast",
      "dynamic_cast", "const_cast", "reinterpret_cast", "auto",
      "const",    "constexpr", "static",  "mutable",  "volatile",
      "inline",   "virtual",  "explicit", "typename", "template",
      "using",    "namespace", "class",   "struct",   "union",
      "enum",     "public",   "private",  "protected", "operator",
      "true",     "false",    "nullptr",  "void",     "bool",
      "char",     "int",      "long",     "short",    "float",
      "double",   "unsigned", "signed",   "throw",    "try",
      "catch",    "goto",     "friend",   "typedef",  "final",
      "override", "noexcept", "decltype",
  };
  return kKeywords;
}

// The annotated wrapper layer itself (src/common/thread_annotations.h) is
// excluded from the symbol table: its internals are raw primitives, and
// RAII/explicit acquisitions through it are modeled as graph events, not
// call edges.
const std::set<std::string>& WrapperClasses() {
  static const std::set<std::string> kWrappers = {
      "Mutex",          "SharedMutex",     "MutexLock",
      "WriterMutexLock", "ReaderMutexLock", "CondVar",
      "LockOrderChecker"};
  return kWrappers;
}

bool IsRaiiLock(const std::string& t) {
  return t == "MutexLock" || t == "WriterMutexLock" || t == "ReaderMutexLock";
}

bool ContainsText(const std::vector<Token>& toks, std::string_view text) {
  for (const Token& t : toks) {
    if (!t.is_string && t.text == text) return true;
  }
  return false;
}

int ParenDepth(const std::vector<Token>& toks) {
  int depth = 0;
  for (const Token& t : toks) {
    if (t.is_string) continue;
    if (t.text == "(") ++depth;
    else if (t.text == ")") --depth;
  }
  return depth;
}

bool HasClassKeyAtTopLevel(const std::vector<Token>& toks) {
  int angle = 0;
  int paren = 0;
  for (const Token& t : toks) {
    if (t.is_string) continue;
    if (t.text == "<") ++angle;
    else if (t.text == ">" && angle > 0) --angle;
    else if (t.text == "(") ++paren;
    else if (t.text == ")" && paren > 0) --paren;
    else if (angle == 0 && paren == 0 &&
             (t.text == "class" || t.text == "struct" || t.text == "union")) {
      return true;
    }
  }
  return false;
}

// First '(' outside template angles and outside FS_* macro argument lists
// (so `Mutex mu_ FS_ACQUIRED_BEFORE(b_)` has no "top-level" paren but
// `void Foo(int) FS_REQUIRES(mu_)` finds Foo's).
size_t FirstParenSkippingMacros(const std::vector<Token>& toks) {
  int angle = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].is_string) continue;
    const std::string& t = toks[i].text;
    if (t.rfind("FS_", 0) == 0 && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      int depth = 0;
      for (++i; i < toks.size(); ++i) {
        if (toks[i].is_string) continue;
        if (toks[i].text == "(") ++depth;
        else if (toks[i].text == ")" && --depth == 0) break;
      }
      continue;
    }
    if (t == "<") ++angle;
    else if (t == ">" && angle > 0) --angle;
    else if (t == "(" && angle == 0) return i;
  }
  return static_cast<size_t>(-1);
}

// ---------------------------------------------------------------------------
// Per-file structural scan: classes (mutex members + annotations + member
// types + bases) and methods (requires/acquire annotations, params, bodies).
// ---------------------------------------------------------------------------

// One FS_ACQUIRED_BEFORE/AFTER target: `b_` (same class) or a string
// "ns::Class::member" split into segments.
struct DeclaredTarget {
  std::vector<std::string> segs;
  int line = 0;
};

struct MutexSym {
  std::string name;
  int line = 0;
  std::string path;
  std::vector<DeclaredTarget> before;
  std::vector<DeclaredTarget> after;
};

struct ClassSym {
  std::string name;
  std::vector<std::string> bases;
  std::map<std::string, MutexSym> mutexes;
  // member name -> identifier tokens of its declared type (resolved to a
  // class later; the last token naming a known class wins, so
  // `std::unique_ptr<rtcache::Changelog> changelog_` maps to Changelog).
  std::map<std::string, std::vector<std::string>> member_type_idents;
  std::map<std::string, std::string> member_class;  // resolved
};

struct RawChain {
  std::vector<std::string> segs;
};

struct Param {
  std::vector<std::string> type_idents;
  std::string name;
};

struct MethodSym {
  std::string cls;  // "" for free functions
  std::string name;
  std::string path;
  int line = 0;
  std::vector<RawChain> requires_chains;  // FS_REQUIRES[_SHARED] args
  std::vector<RawChain> acquire_chains;   // FS_ACQUIRE[_SHARED] args
  std::vector<Param> params;
  std::vector<Token> body;
  bool has_body = false;

  std::string Display() const {
    return cls.empty() ? name : cls + "::" + name;
  }
};

struct FileScan {
  std::vector<ClassSym> classes;
  std::vector<MethodSym> methods;
};

// Splits a macro argument list `MACRO(a, b, ...)` starting at the macro
// identifier into per-argument segment lists. String-literal arguments are
// split on "::"; identifier chains keep their identifiers in order.
std::vector<DeclaredTarget> ParseMacroArgs(const std::vector<Token>& toks,
                                           size_t macro) {
  std::vector<DeclaredTarget> out;
  if (macro + 1 >= toks.size() || toks[macro + 1].is_string ||
      toks[macro + 1].text != "(") {
    return out;
  }
  DeclaredTarget cur;
  int depth = 0;
  for (size_t i = macro + 1; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.is_string) {
      cur.line = t.line;
      size_t pos = 0;
      while (pos <= t.text.size()) {
        size_t sep = t.text.find("::", pos);
        if (sep == std::string::npos) {
          if (pos < t.text.size()) cur.segs.push_back(t.text.substr(pos));
          break;
        }
        if (sep > pos) cur.segs.push_back(t.text.substr(pos, sep - pos));
        pos = sep + 2;
      }
      continue;
    }
    if (t.text == "(") {
      if (++depth == 1) continue;
    } else if (t.text == ")") {
      if (--depth == 0) {
        if (!cur.segs.empty()) out.push_back(std::move(cur));
        break;
      }
    } else if (t.text == "," && depth == 1) {
      if (!cur.segs.empty()) out.push_back(std::move(cur));
      cur = DeclaredTarget();
      continue;
    }
    if (IsIdentTok(t) && t.text != "this") {
      if (cur.segs.empty()) cur.line = t.line;
      cur.segs.push_back(t.text);
    }
  }
  return out;
}

std::string ExtractClassNameFromHead(const std::vector<Token>& toks) {
  size_t i = 0;
  while (i < toks.size() &&
         (toks[i].is_string ||
          (toks[i].text != "class" && toks[i].text != "struct" &&
           toks[i].text != "union"))) {
    ++i;
  }
  for (++i; i < toks.size(); ++i) {
    if (toks[i].is_string) continue;
    const std::string& t = toks[i].text;
    if (t.rfind("FS_", 0) == 0) {
      if (i + 1 < toks.size() && toks[i + 1].text == "(") {
        int depth = 0;
        for (++i; i < toks.size(); ++i) {
          if (toks[i].is_string) continue;
          if (toks[i].text == "(") ++depth;
          else if (toks[i].text == ")" && --depth == 0) break;
        }
      }
      continue;
    }
    if (t == ":") break;  // unnamed head reached the base list
    if (IsIdentTok(toks[i]) && t != "final") return t;
  }
  return "<anonymous>";
}

std::vector<std::string> ExtractBases(const std::vector<Token>& toks) {
  std::vector<std::string> bases;
  // Find the base-list ':' at angle/paren depth 0 (note `::` is one token,
  // so a bare ':' here is the base-clause introducer).
  int angle = 0;
  size_t i = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].is_string) continue;
    const std::string& t = toks[i].text;
    if (t == "<") ++angle;
    else if (t == ">" && angle > 0) --angle;
    else if (t == ":" && angle == 0) break;
  }
  if (i >= toks.size()) return bases;
  std::string last;
  for (++i; i < toks.size(); ++i) {
    if (toks[i].is_string) continue;
    const std::string& t = toks[i].text;
    if (t == "<") { ++angle; continue; }
    if (t == ">") { if (angle > 0) --angle; continue; }
    if (angle > 0) continue;
    if (t == ",") {
      if (!last.empty()) bases.push_back(last);
      last.clear();
      continue;
    }
    if (IsIdentTok(toks[i]) && t != "public" && t != "private" &&
        t != "protected" && t != "virtual") {
      last = t;
    }
  }
  if (!last.empty()) bases.push_back(last);
  return bases;
}

MethodSym ParseMethodHead(const std::vector<Token>& toks,
                          const std::string& enclosing_class,
                          const std::string& path) {
  MethodSym m;
  m.path = path;
  m.cls = enclosing_class;
  size_t paren = FirstParenSkippingMacros(toks);
  if (paren == static_cast<size_t>(-1) || paren == 0 ||
      ContainsText(toks, "operator")) {
    m.name = "operator";
    if (!toks.empty()) m.line = toks.front().line;
    return m;
  }
  const Token& name_tok = toks[paren - 1];
  m.name = name_tok.text;
  m.line = name_tok.line;
  if (paren >= 2 && !toks[paren - 2].is_string &&
      toks[paren - 2].text == "~") {
    m.name = "~" + m.name;
  } else if (paren >= 3 && !toks[paren - 2].is_string &&
             toks[paren - 2].text == "::" && IsIdentTok(toks[paren - 3])) {
    m.cls = toks[paren - 3].text;  // out-of-line definition
  }

  // Parameters: comma-split at depth 1 inside the parameter list.
  int depth = 0;
  Param cur;
  size_t end = paren;
  for (size_t i = paren; i < toks.size(); ++i) {
    if (toks[i].is_string) continue;
    const std::string& t = toks[i].text;
    if (t == "(") {
      if (++depth == 1) continue;
    } else if (t == ")") {
      if (--depth == 0) {
        end = i;
        break;
      }
    } else if (t == "," && depth == 1) {
      if (cur.type_idents.size() >= 2) {
        cur.name = cur.type_idents.back();
        cur.type_idents.pop_back();
        m.params.push_back(cur);
      }
      cur = Param();
      continue;
    } else if (t == "=" && depth == 1) {
      continue;  // default argument; idents after it are values, but a
                 // wrong extra ident only widens type_idents harmlessly
    }
    if (IsIdentTok(toks[i]) && Keywords().count(t) == 0) {
      cur.type_idents.push_back(t);
    }
  }
  if (cur.type_idents.size() >= 2) {
    cur.name = cur.type_idents.back();
    cur.type_idents.pop_back();
    m.params.push_back(cur);
  }

  // Thread-safety annotations after the parameter list.
  for (size_t i = end; i < toks.size(); ++i) {
    if (!IsIdentTok(toks[i])) continue;
    const std::string& t = toks[i].text;
    std::vector<RawChain>* dest = nullptr;
    if (t == "FS_REQUIRES" || t == "FS_REQUIRES_SHARED") {
      dest = &m.requires_chains;
    } else if (t == "FS_ACQUIRE" || t == "FS_ACQUIRE_SHARED") {
      dest = &m.acquire_chains;
    }
    if (dest == nullptr) continue;
    for (DeclaredTarget& target : ParseMacroArgs(toks, i)) {
      dest->push_back(RawChain{std::move(target.segs)});
    }
  }
  return m;
}

// Member declaration (class scope, ';'-terminated): classify as a mutex
// member, a method declaration, or a plain data member.
void FinalizeMemberDecl(const std::vector<Token>& pending, ClassSym* cls,
                        std::vector<MethodSym>* methods,
                        const std::string& path) {
  if (pending.empty()) return;
  static const std::set<std::string> kSkip = {
      "using", "typedef", "friend", "static", "constexpr",
      "template", "operator", "enum", "class", "struct", "union"};
  for (const Token& t : pending) {
    if (!t.is_string && kSkip.count(t.text) > 0) return;
  }

  // Strip FS_* macro spans for shape analysis (keep `pending` for args).
  std::vector<Token> stripped;
  for (size_t i = 0; i < pending.size(); ++i) {
    if (!pending[i].is_string && pending[i].text.rfind("FS_", 0) == 0 &&
        i + 1 < pending.size() && pending[i + 1].text == "(") {
      int depth = 0;
      for (++i; i < pending.size(); ++i) {
        if (pending[i].is_string) continue;
        if (pending[i].text == "(") ++depth;
        else if (pending[i].text == ")" && --depth == 0) break;
      }
      continue;
    }
    if (!pending[i].is_string) stripped.push_back(pending[i]);
  }
  if (stripped.empty()) return;

  size_t paren = FirstParenSkippingMacros(stripped);
  if (paren != static_cast<size_t>(-1)) {
    // Method declaration: keep it so FS_REQUIRES on the in-class prototype
    // reaches the out-of-line definition's analysis.
    MethodSym m = ParseMethodHead(pending, cls->name, path);
    if (m.name != "operator") methods->push_back(std::move(m));
    return;
  }

  // First type token, skipping qualifiers.
  size_t type = 0;
  while (type < stripped.size() &&
         (stripped[type].text == "mutable" || stripped[type].text == "const" ||
          stripped[type].text == "volatile" || stripped[type].text == "::" ||
          stripped[type].text == "firestore")) {
    ++type;
  }
  if (type >= stripped.size()) return;

  bool pointer_like = false;
  for (const Token& t : stripped) {
    if (!t.is_string && (t.text == "*" || t.text == "&")) pointer_like = true;
  }

  // Member name: last plain identifier before any initializer.
  std::string name;
  std::vector<std::string> type_idents;
  for (const Token& t : stripped) {
    if (t.is_string) continue;
    if (t.text == "=" || t.text == "[") break;
    if (IsIdentTok(t) && Keywords().count(t.text) == 0) {
      if (!name.empty()) type_idents.push_back(name);
      name = t.text;
    }
  }
  if (name.empty()) return;

  const std::string& first_type = stripped[type].text;
  if ((first_type == "Mutex" || first_type == "SharedMutex") &&
      !pointer_like) {
    MutexSym mu;
    mu.name = name;
    mu.line = stripped[type].line;
    mu.path = path;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (!IsIdentTok(pending[i])) continue;
      if (pending[i].text == "FS_ACQUIRED_BEFORE") {
        for (DeclaredTarget& t : ParseMacroArgs(pending, i)) {
          mu.before.push_back(std::move(t));
        }
      } else if (pending[i].text == "FS_ACQUIRED_AFTER") {
        for (DeclaredTarget& t : ParseMacroArgs(pending, i)) {
          mu.after.push_back(std::move(t));
        }
      }
    }
    cls->mutexes[name] = std::move(mu);
    return;
  }
  if (!type_idents.empty()) {
    cls->member_type_idents[name] = std::move(type_idents);
  }
}

FileScan ScanFile(const SourceFile& file, const std::vector<Token>& toks) {
  FileScan out;

  struct Frame {
    bool is_class = false;
    int class_index = -1;  // into out.classes
  };
  std::vector<Frame> frames{Frame{}};
  std::vector<Token> pending;
  int skip_depth = 0;

  auto current_class = [&]() -> ClassSym* {
    const Frame& f = frames.back();
    return f.is_class ? &out.classes[f.class_index] : nullptr;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (skip_depth > 0) {
      if (!tok.is_string) {
        if (tok.text == "{") ++skip_depth;
        else if (tok.text == "}") --skip_depth;
      }
      continue;
    }
    if (tok.is_string) {
      pending.push_back(tok);
      continue;
    }
    const std::string& t = tok.text;

    if (t == ";") {
      if (ClassSym* cls = current_class()) {
        FinalizeMemberDecl(pending, cls, &out.methods, file.path);
      }
      pending.clear();
      continue;
    }
    if (t == ":") {
      if (current_class() != nullptr && pending.size() == 1 &&
          (pending[0].text == "public" || pending[0].text == "private" ||
           pending[0].text == "protected")) {
        pending.clear();
        continue;
      }
      pending.push_back(tok);
      continue;
    }
    if (t == "{") {
      if (ParenDepth(pending) > 0) {
        // Lambda body or brace-init inside an argument list: skip it and
        // keep accumulating the declaration (its acquisitions are invisible
        // by design — declare such edges with FS_ACQUIRED_BEFORE).
        skip_depth = 1;
        continue;
      }
      if (ContainsText(pending, "namespace")) {
        frames.push_back(Frame{});
        pending.clear();
        continue;
      }
      if (ContainsText(pending, "enum")) {
        pending.clear();
        skip_depth = 1;
        continue;
      }
      if (HasClassKeyAtTopLevel(pending)) {
        ClassSym cls;
        cls.name = ExtractClassNameFromHead(pending);
        cls.bases = ExtractBases(pending);
        out.classes.push_back(std::move(cls));
        frames.push_back(
            Frame{true, static_cast<int>(out.classes.size()) - 1});
        pending.clear();
        continue;
      }
      if (pending.empty()) {
        skip_depth = 1;
        continue;
      }
      if (ContainsText(pending, "operator") ||
          FirstParenSkippingMacros(pending) != static_cast<size_t>(-1)) {
        ClassSym* cls = current_class();
        MethodSym m = ParseMethodHead(
            pending, cls != nullptr ? cls->name : std::string(), file.path);
        pending.clear();
        int depth = 1;
        size_t j = i + 1;
        for (; j < toks.size(); ++j) {
          if (!toks[j].is_string) {
            if (toks[j].text == "{") ++depth;
            else if (toks[j].text == "}" && --depth == 0) break;
          }
          m.body.push_back(toks[j]);
        }
        i = j;
        m.has_body = true;
        out.methods.push_back(std::move(m));
        continue;
      }
      skip_depth = 1;  // brace initializer at declaration scope
      continue;
    }
    if (t == "}") {
      pending.clear();
      if (frames.size() > 1) frames.pop_back();
      continue;
    }
    pending.push_back(tok);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Whole-program tables and chain resolution.
// ---------------------------------------------------------------------------

struct Program {
  std::map<std::string, ClassSym> classes;
  std::map<std::string, std::vector<std::string>> derived;  // base -> derived
  std::map<std::string, std::vector<MethodSym>> methods;    // "Cls::name"
};

std::string MethodKey(const std::string& cls, const std::string& name) {
  return cls + "::" + name;
}

const MutexSym* FindMutex(const Program& prog, const std::string& cls,
                          const std::string& member, std::string* owner) {
  std::set<std::string> seen;
  std::vector<std::string> stack{cls};
  while (!stack.empty()) {
    std::string c = stack.back();
    stack.pop_back();
    if (!seen.insert(c).second) continue;
    auto it = prog.classes.find(c);
    if (it == prog.classes.end()) continue;
    auto mit = it->second.mutexes.find(member);
    if (mit != it->second.mutexes.end()) {
      *owner = c;
      return &mit->second;
    }
    for (const std::string& b : it->second.bases) stack.push_back(b);
  }
  return nullptr;
}

const std::string* FindMemberClass(const Program& prog, const std::string& cls,
                                   const std::string& member) {
  std::set<std::string> seen;
  std::vector<std::string> stack{cls};
  while (!stack.empty()) {
    std::string c = stack.back();
    stack.pop_back();
    if (!seen.insert(c).second) continue;
    auto it = prog.classes.find(c);
    if (it == prog.classes.end()) continue;
    auto mit = it->second.member_class.find(member);
    if (mit != it->second.member_class.end()) return &mit->second;
    for (const std::string& b : it->second.bases) stack.push_back(b);
  }
  return nullptr;
}

struct Resolution {
  enum Kind { kUnknown, kClass, kMutex } kind = kUnknown;
  std::string cls;   // for kClass
  std::string node;  // for kMutex, "Class::member"
};

struct Ctx {
  const Program* prog = nullptr;
  std::string cls;  // enclosing class of the method being analyzed
  std::map<std::string, std::string> env;  // local/param name -> class
};

Resolution ResolveChain(const std::vector<std::string>& segs,
                        const Ctx& ctx) {
  Resolution r;
  if (segs.empty()) return r;
  const Program& prog = *ctx.prog;
  size_t idx = 0;
  std::string cur;

  const std::string& s0 = segs[0];
  std::string owner;
  if (s0 == "this") {
    cur = ctx.cls;
    idx = 1;
  } else if (auto it = ctx.env.find(s0); it != ctx.env.end()) {
    cur = it->second;
    idx = 1;
  } else if (!ctx.cls.empty() &&
             FindMutex(prog, ctx.cls, s0, &owner) != nullptr) {
    if (segs.size() != 1) return r;
    r.kind = Resolution::kMutex;
    r.node = owner + "::" + s0;
    return r;
  } else if (!ctx.cls.empty() &&
             FindMemberClass(prog, ctx.cls, s0) != nullptr) {
    cur = *FindMemberClass(prog, ctx.cls, s0);
    idx = 1;
  } else {
    // Possibly namespace-qualified: first segment naming a known class
    // anchors the walk (e.g. ["spanner", "Database", "data_mu_"]).
    for (size_t k = 0; k + 1 < segs.size(); ++k) {
      if (prog.classes.count(segs[k]) > 0) {
        cur = segs[k];
        idx = k + 1;
        break;
      }
    }
    if (idx == 0) {
      if (segs.size() == 1 && prog.classes.count(s0) > 0) {
        r.kind = Resolution::kClass;
        r.cls = s0;
      }
      return r;
    }
  }

  while (idx < segs.size()) {
    const std::string& s = segs[idx];
    if (FindMutex(prog, cur, s, &owner) != nullptr) {
      if (idx + 1 != segs.size()) return Resolution{};
      r.kind = Resolution::kMutex;
      r.node = owner + "::" + s;
      return r;
    }
    if (const std::string* next = FindMemberClass(prog, cur, s)) {
      cur = *next;
      ++idx;
      continue;
    }
    return Resolution{};
  }
  r.kind = Resolution::kClass;
  r.cls = cur;
  return r;
}

// All method keys a call `receiver.name(...)` can land on: the receiver's
// class, its bases (inherited methods), and transitively derived classes
// (virtual dispatch).
std::vector<std::string> MethodKeysFor(const Program& prog,
                                       const std::string& cls,
                                       const std::string& name) {
  std::vector<std::string> keys;
  std::set<std::string> seen_cls;
  std::vector<std::string> stack{cls};
  bool found_upward = false;
  // Upward: the statically named method (first match wins).
  std::vector<std::string> up{cls};
  while (!up.empty() && !found_upward) {
    std::string c = up.back();
    up.pop_back();
    if (prog.methods.count(MethodKey(c, name)) > 0) {
      keys.push_back(MethodKey(c, name));
      found_upward = true;
      break;
    }
    auto it = prog.classes.find(c);
    if (it != prog.classes.end()) {
      for (const std::string& b : it->second.bases) up.push_back(b);
    }
  }
  // Downward: every override in the derived closure.
  while (!stack.empty()) {
    std::string c = stack.back();
    stack.pop_back();
    if (!seen_cls.insert(c).second) continue;
    if (c != cls && prog.methods.count(MethodKey(c, name)) > 0) {
      keys.push_back(MethodKey(c, name));
    }
    auto it = prog.derived.find(c);
    if (it != prog.derived.end()) {
      for (const std::string& d : it->second) stack.push_back(d);
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

// ---------------------------------------------------------------------------
// Body analysis: symbolic walk producing acquire/call events with held-set
// snapshots.
// ---------------------------------------------------------------------------

struct Event {
  enum Kind { kAcquire, kCall } kind = kAcquire;
  std::string node;                       // kAcquire
  std::vector<std::string> callee_keys;   // kCall
  std::vector<std::string> held;          // snapshot, acquisition order
  int line = 0;
};

struct MethodSummary {
  std::string display;
  std::string path;
  std::vector<std::string> entry_held;  // from FS_REQUIRES
  std::set<std::string> direct_acquires;
  std::vector<Event> events;
};

struct Chain {
  std::vector<std::string> segs;
  bool all_colons = true;  // every separator was '::'
  size_t end = 0;          // index of first token after the chain
};

Chain ParseChainAt(const std::vector<Token>& body, size_t i) {
  Chain c;
  c.segs.push_back(body[i].text);
  size_t j = i + 1;
  while (j + 1 < body.size() && !body[j].is_string &&
         (body[j].text == "." || body[j].text == "->" ||
          body[j].text == "::") &&
         IsIdentTok(body[j + 1])) {
    if (body[j].text != "::") c.all_colons = false;
    c.segs.push_back(body[j + 1].text);
    j += 2;
  }
  c.end = j;
  return c;
}

size_t SkipBalanced(const std::vector<Token>& body, size_t open,
                    const std::string& open_tok, const std::string& close_tok) {
  int depth = 0;
  size_t i = open;
  for (; i < body.size(); ++i) {
    if (body[i].is_string) continue;
    if (body[i].text == open_tok) ++depth;
    else if (body[i].text == close_tok && --depth == 0) break;
  }
  return i;
}

void AnalyzeBody(const Program& prog, const MethodSym& method,
                 const std::vector<MethodSym>& decls, MethodSummary* out) {
  Ctx ctx;
  ctx.prog = &prog;
  ctx.cls = method.cls;
  for (const Param& p : method.params) {
    for (auto it = p.type_idents.rbegin(); it != p.type_idents.rend(); ++it) {
      if (prog.classes.count(*it) > 0) {
        ctx.env[p.name] = *it;
        break;
      }
    }
  }

  struct Held {
    std::string node;
    std::string raii_var;  // empty for explicit Lock() and entry-held
    int scope = -1;
  };
  std::vector<Held> held;

  // Entry-held locks: FS_REQUIRES from this symbol and every declaration of
  // the same method (annotations live on in-class prototypes).
  for (const MethodSym* src : [&] {
        std::vector<const MethodSym*> all{&method};
        for (const MethodSym& d : decls) {
          if (&d != &method) all.push_back(&d);
        }
        return all;
      }()) {
    for (const RawChain& chain : src->requires_chains) {
      Resolution r = ResolveChain(chain.segs, ctx);
      if (r.kind == Resolution::kMutex) {
        bool dup = false;
        for (const Held& h : held) dup = dup || h.node == r.node;
        if (!dup) held.push_back({r.node, "", -1});
      }
    }
    for (const RawChain& chain : src->acquire_chains) {
      Resolution r = ResolveChain(chain.segs, ctx);
      if (r.kind == Resolution::kMutex) out->direct_acquires.insert(r.node);
    }
  }
  for (const Held& h : held) out->entry_held.push_back(h.node);

  auto snapshot = [&] {
    std::vector<std::string> s;
    s.reserve(held.size());
    for (const Held& h : held) s.push_back(h.node);
    return s;
  };

  const std::vector<Token>& body = method.body;
  int scope = 0;
  for (size_t i = 0; i < body.size(); ++i) {
    const Token& tok = body[i];
    if (tok.is_string) continue;
    const std::string& t = tok.text;

    if (t == "{") {
      ++scope;
      continue;
    }
    if (t == "}") {
      held.erase(std::remove_if(held.begin(), held.end(),
                                [&](const Held& h) {
                                  return !h.raii_var.empty() &&
                                         h.scope == scope;
                                }),
                 held.end());
      --scope;
      continue;
    }
    if (t == "[") {
      // `[[attr]]`, structured binding, or lambda. Lambdas are skipped
      // whole: their bodies run at an unknown later point (or, when invoked
      // synchronously through a std::function, are invisible to static
      // analysis anyway — declare those edges).
      if (i + 1 < body.size() && !body[i + 1].is_string &&
          body[i + 1].text == "[") {
        i = SkipBalanced(body, i, "[", "]");  // lands on the final ']'
        continue;
      }
      bool structured_binding = false;
      for (size_t back = i; back > 0;) {
        const Token& p = body[--back];
        if (p.is_string) break;
        if (p.text == "&") continue;
        structured_binding = p.text == "auto";
        break;
      }
      size_t close = SkipBalanced(body, i, "[", "]");
      if (structured_binding) {
        i = close;
        continue;
      }
      // Lambda: skip capture list, optional parameter list / specifiers,
      // then the body braces.
      size_t j = close + 1;
      if (j < body.size() && !body[j].is_string && body[j].text == "(") {
        j = SkipBalanced(body, j, "(", ")") + 1;
      }
      while (j < body.size() &&
             (body[j].is_string || body[j].text != "{")) {
        if (!body[j].is_string &&
            (body[j].text == ";" || body[j].text == ")")) {
          break;  // not a lambda after all (e.g. subscript-ish); bail out
        }
        ++j;
      }
      if (j < body.size() && body[j].text == "{") {
        j = SkipBalanced(body, j, "{", "}");
      }
      i = j;
      continue;
    }
    if (!IsIdentTok(tok)) continue;
    if (Keywords().count(t) > 0 && t != "this") continue;
    // Chain start: previous token must not be a member/scope separator.
    if (i > 0 && !body[i - 1].is_string &&
        (body[i - 1].text == "." || body[i - 1].text == "->" ||
         body[i - 1].text == "::" || body[i - 1].text == "~")) {
      continue;
    }

    // RAII acquisition: `MutexLock lock(&chain);`
    if (IsRaiiLock(t) && i + 3 < body.size() && IsIdentTok(body[i + 1]) &&
        body[i + 2].text == "(" && body[i + 3].text == "&") {
      Chain chain = ParseChainAt(body, i + 4);
      if (chain.end < body.size() && body[chain.end].text == ")") {
        Resolution r = ResolveChain(chain.segs, ctx);
        if (r.kind == Resolution::kMutex) {
          Event e;
          e.kind = Event::kAcquire;
          e.node = r.node;
          e.held = snapshot();
          e.line = tok.line;
          out->events.push_back(std::move(e));
          out->direct_acquires.insert(r.node);
          held.push_back({r.node, body[i + 1].text, scope});
        }
        i = chain.end;
        continue;
      }
    }

    Chain chain = ParseChainAt(body, i);
    size_t end = chain.end;

    if (end < body.size() && !body[end].is_string &&
        body[end].text == "(") {
      const std::string& last = chain.segs.back();
      if (chain.segs.size() >= 2 &&
          (last == "Lock" || last == "LockShared" || last == "TryLock")) {
        std::vector<std::string> recv(chain.segs.begin(),
                                      chain.segs.end() - 1);
        Resolution r = ResolveChain(recv, ctx);
        if (r.kind == Resolution::kMutex) {
          Event e;
          e.kind = Event::kAcquire;
          e.node = r.node;
          e.held = snapshot();
          e.line = tok.line;
          out->events.push_back(std::move(e));
          out->direct_acquires.insert(r.node);
          held.push_back({r.node, "", scope});
          i = end;
          continue;
        }
      }
      if (chain.segs.size() >= 2 &&
          (last == "Unlock" || last == "UnlockShared")) {
        // Early release through the RAII guard variable...
        if (chain.segs.size() == 2) {
          bool released = false;
          for (size_t h = held.size(); h > 0; --h) {
            if (held[h - 1].raii_var == chain.segs[0]) {
              held.erase(held.begin() + static_cast<long>(h) - 1);
              released = true;
              break;
            }
          }
          if (released) {
            i = end;
            continue;
          }
        }
        // ...or directly on the mutex.
        std::vector<std::string> recv(chain.segs.begin(),
                                      chain.segs.end() - 1);
        Resolution r = ResolveChain(recv, ctx);
        if (r.kind == Resolution::kMutex) {
          for (size_t h = held.size(); h > 0; --h) {
            if (held[h - 1].node == r.node) {
              held.erase(held.begin() + static_cast<long>(h) - 1);
              break;
            }
          }
          i = end;
          continue;
        }
      }
      // Ordinary call: resolve the callee(s).
      std::vector<std::string> keys;
      if (chain.segs.size() == 1) {
        if (!ctx.cls.empty()) keys = MethodKeysFor(prog, ctx.cls, last);
        if (keys.empty() && prog.methods.count(MethodKey("", last)) > 0) {
          keys.push_back(MethodKey("", last));
        }
      } else {
        std::vector<std::string> recv(chain.segs.begin(),
                                      chain.segs.end() - 1);
        Resolution r = ResolveChain(recv, ctx);
        if (r.kind == Resolution::kClass) {
          keys = MethodKeysFor(prog, r.cls, last);
        } else if (r.kind == Resolution::kUnknown && chain.all_colons) {
          // Namespace-qualified free function (query::PlanQuery) or
          // static member (Class::Method).
          for (size_t k = 0; k + 1 < chain.segs.size(); ++k) {
            if (prog.classes.count(chain.segs[k]) > 0) {
              keys = MethodKeysFor(prog, chain.segs[k], last);
              break;
            }
          }
          if (keys.empty() && prog.methods.count(MethodKey("", last)) > 0) {
            keys.push_back(MethodKey("", last));
          }
        }
      }
      if (!keys.empty() && !held.empty()) {
        Event e;
        e.kind = Event::kCall;
        e.callee_keys = std::move(keys);
        e.held = snapshot();
        e.line = tok.line;
        out->events.push_back(std::move(e));
      } else if (!keys.empty()) {
        // Still record for the acquires* fixpoint.
        Event e;
        e.kind = Event::kCall;
        e.callee_keys = std::move(keys);
        e.line = tok.line;
        out->events.push_back(std::move(e));
      }
      i = end;  // keep scanning inside the argument list
      continue;
    }

    // Local declaration: `rtcache::QueryMatcher m` / `Target& t` — register
    // the variable's class for later chain resolution.
    if (chain.all_colons && prog.classes.count(chain.segs.back()) > 0) {
      size_t j = end;
      while (j < body.size() && !body[j].is_string &&
             (body[j].text == "&" || body[j].text == "*" ||
              body[j].text == "const")) {
        ++j;
      }
      if (j < body.size() && IsIdentTok(body[j]) &&
          Keywords().count(body[j].text) == 0) {
        ctx.env[body[j].text] = chain.segs.back();
        i = j;
        continue;
      }
    }
    i = end - 1;
  }
}

// Deterministic transitive closure of the declared edges.
std::map<std::string, std::set<std::string>> DeclaredClosure(
    const LockGraph& graph) {
  std::map<std::string, std::set<std::string>> adj;
  for (const LockEdge& e : graph.edges) {
    if (e.declared) adj[e.from].insert(e.to);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [from, tos] : adj) {
      std::set<std::string> next = tos;
      for (const std::string& mid : tos) {
        auto it = adj.find(mid);
        if (it == adj.end()) continue;
        for (const std::string& to : it->second) {
          if (next.insert(to).second) changed = true;
        }
      }
      tos = std::move(next);
    }
  }
  return adj;
}

}  // namespace

// ---------------------------------------------------------------------------
// Graph construction.
// ---------------------------------------------------------------------------

LockGraph BuildLockGraph(const std::vector<SourceFile>& files,
                         const std::vector<std::vector<Token>>& tokens,
                         std::vector<Finding>* out) {
  Program prog;
  std::vector<FileScan> scans;
  for (size_t i = 0; i < files.size(); ++i) {
    if (!files[i].InDir("src")) continue;
    scans.push_back(ScanFile(files[i], tokens[i]));
  }
  for (FileScan& scan : scans) {
    for (ClassSym& cls : scan.classes) {
      if (cls.name == "<anonymous>" || WrapperClasses().count(cls.name) > 0) {
        continue;
      }
      ClassSym& merged = prog.classes[cls.name];
      merged.name = cls.name;
      for (const std::string& b : cls.bases) {
        if (std::find(merged.bases.begin(), merged.bases.end(), b) ==
            merged.bases.end()) {
          merged.bases.push_back(b);
        }
      }
      for (auto& [name, mu] : cls.mutexes) merged.mutexes[name] = mu;
      for (auto& [name, ty] : cls.member_type_idents) {
        merged.member_type_idents[name] = ty;
      }
    }
    for (MethodSym& m : scan.methods) {
      if (WrapperClasses().count(m.cls) > 0) continue;
      prog.methods[MethodKey(m.cls, m.name)].push_back(std::move(m));
    }
  }
  for (const auto& [name, cls] : prog.classes) {
    for (const std::string& b : cls.bases) prog.derived[b].push_back(name);
    ClassSym& mutable_cls = prog.classes[name];
    for (const auto& [member, idents] : cls.member_type_idents) {
      for (auto it = idents.rbegin(); it != idents.rend(); ++it) {
        if (prog.classes.count(*it) > 0 &&
            WrapperClasses().count(*it) == 0) {
          mutable_cls.member_class[member] = *it;
          break;
        }
      }
    }
  }

  LockGraph graph;
  std::map<std::pair<std::string, std::string>, LockEdge> edges;

  auto add_observed = [&](const std::string& from, const std::string& to,
                          const std::string& via, const std::string& callee,
                          const std::string& path, int line) {
    LockEdge& e = edges[{from, to}];
    e.from = from;
    e.to = to;
    bool better = !e.observed ||
                  std::tie(path, line, via) <
                      std::tie(e.path, e.line, e.via_function);
    e.observed = true;
    if (better) {
      e.via_function = via;
      e.via_callee = callee;
      e.path = path;
      e.line = line;
    }
  };

  // Nodes + declared edges.
  for (const auto& [cls_name, cls] : prog.classes) {
    for (const auto& [mu_name, mu] : cls.mutexes) {
      graph.nodes.push_back(cls_name + "::" + mu_name);
    }
  }
  std::sort(graph.nodes.begin(), graph.nodes.end());
  std::set<std::string> node_set(graph.nodes.begin(), graph.nodes.end());

  auto resolve_target = [&](const DeclaredTarget& target,
                            const std::string& own_cls,
                            std::string* node) -> bool {
    const std::vector<std::string>& segs = target.segs;
    if (segs.empty()) return false;
    std::string cls = segs.size() == 1 ? own_cls : segs[segs.size() - 2];
    std::string candidate = cls + "::" + segs.back();
    if (node_set.count(candidate) == 0) return false;
    *node = candidate;
    return true;
  };

  for (const auto& [cls_name, cls] : prog.classes) {
    for (const auto& [mu_name, mu] : cls.mutexes) {
      const std::string self = cls_name + "::" + mu_name;
      auto declare = [&](const DeclaredTarget& target, bool self_first) {
        std::string other;
        if (!resolve_target(target, cls_name, &other)) {
          out->push_back(
              {kRuleLockOrderContradiction, mu.path, target.line,
               "FS_ACQUIRED_" + std::string(self_first ? "BEFORE" : "AFTER") +
                   " target on " + self + " names no known mutex; expected "
                   "a sibling member or a \"ns::Class::member\" string"});
          return;
        }
        const std::string& from = self_first ? self : other;
        const std::string& to = self_first ? other : self;
        LockEdge& e = edges[{from, to}];
        e.from = from;
        e.to = to;
        e.declared = true;
        if (e.declared_path.empty()) {
          e.declared_path = mu.path;
          e.declared_line = target.line;
        }
      };
      for (const DeclaredTarget& t : mu.before) declare(t, true);
      for (const DeclaredTarget& t : mu.after) declare(t, false);
    }
  }

  // Per-method summaries.
  std::map<std::string, MethodSummary> summaries;
  for (const auto& [key, syms] : prog.methods) {
    MethodSummary& sum = summaries[key];
    for (const MethodSym& m : syms) {
      if (sum.display.empty()) sum.display = m.Display();
      if (!m.has_body) continue;
      MethodSummary one;
      one.path = m.path;
      AnalyzeBody(prog, m, syms, &one);
      for (const std::string& n : one.direct_acquires) {
        sum.direct_acquires.insert(n);
      }
      for (Event& e : one.events) sum.events.push_back(std::move(e));
      if (sum.path.empty()) sum.path = m.path;
    }
  }

  // Fixpoint: locks transitively acquired by each method.
  std::map<std::string, std::set<std::string>> acq;
  for (const auto& [key, sum] : summaries) acq[key] = sum.direct_acquires;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [key, sum] : summaries) {
      std::set<std::string>& mine = acq[key];
      for (const Event& e : sum.events) {
        if (e.kind != Event::kCall) continue;
        for (const std::string& callee : e.callee_keys) {
          auto it = acq.find(callee);
          if (it == acq.end()) continue;
          for (const std::string& n : it->second) {
            changed = changed || mine.insert(n).second;
          }
        }
      }
    }
  }

  // Observed edges: every lock acquired (directly or via a call) while
  // another is held.
  for (const auto& [key, sum] : summaries) {
    for (const Event& e : sum.events) {
      if (e.kind == Event::kAcquire) {
        for (const std::string& h : e.held) {
          add_observed(h, e.node, sum.display, "", sum.path, e.line);
        }
      } else {
        if (e.held.empty()) continue;
        for (const std::string& callee : e.callee_keys) {
          auto it = acq.find(callee);
          if (it == acq.end()) continue;
          const std::string callee_display =
              summaries.count(callee) > 0 ? summaries[callee].display
                                          : callee;
          for (const std::string& n : it->second) {
            for (const std::string& h : e.held) {
              add_observed(h, n, sum.display, callee_display, sum.path,
                           e.line);
            }
          }
        }
      }
    }
  }

  for (auto& [key, edge] : edges) graph.edges.push_back(std::move(edge));

  // Mark edges sanctioned by the declared transitive closure (directly
  // declared or reachable through a chain of declarations).
  const std::map<std::string, std::set<std::string>> closure =
      DeclaredClosure(graph);
  for (LockEdge& e : graph.edges) {
    auto it = closure.find(e.from);
    e.covered = it != closure.end() && it->second.count(e.to) > 0;
  }
  return graph;
}

// ---------------------------------------------------------------------------
// Checks: lock-cycle, lock-order-contradiction, lock-order-undeclared.
// ---------------------------------------------------------------------------

namespace {

std::string EdgeWitness(const LockEdge& e) {
  std::ostringstream os;
  if (e.observed) {
    os << e.via_function;
    if (!e.via_callee.empty()) os << " -> " << e.via_callee;
    os << " at " << e.path << ":" << e.line;
  } else {
    os << "declared at " << e.declared_path << ":" << e.declared_line;
  }
  return os.str();
}

}  // namespace

void CheckLockGraph(const LockGraph& graph, std::vector<Finding>* out) {
  std::map<std::string, std::set<std::string>> declared = DeclaredClosure(graph);
  std::map<std::string, std::vector<const LockEdge*>> adj;
  for (const LockEdge& e : graph.edges) {
    if (e.from != e.to) adj[e.from].push_back(&e);
  }

  // --- Self-edges: recursive acquisition, a guaranteed deadlock. ---
  for (const LockEdge& e : graph.edges) {
    if (e.from != e.to || !e.observed) continue;
    out->push_back({kRuleLockCycle, e.path, e.line,
                    e.via_function + " acquires " + e.to +
                        " while already holding it (" + EdgeWitness(e) +
                        "); recursive acquisition self-deadlocks"});
  }

  // --- Cycles: SCCs of the observed+declared union graph. ---
  // Iterative Tarjan over the sorted node list for determinism.
  std::map<std::string, int> index, low;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> sccs;
  int counter = 0;
  for (const std::string& root : graph.nodes) {
    if (index.count(root) > 0) continue;
    struct VisitFrame {
      std::string node;
      size_t next_edge = 0;
    };
    std::vector<VisitFrame> visit{{root, 0}};
    while (!visit.empty()) {
      VisitFrame& frame = visit.back();
      const std::string node = frame.node;
      if (frame.next_edge == 0) {
        index[node] = low[node] = counter++;
        stack.push_back(node);
        on_stack.insert(node);
      }
      bool descended = false;
      const std::vector<const LockEdge*>& out_edges = adj[node];
      while (frame.next_edge < out_edges.size()) {
        const std::string& to = out_edges[frame.next_edge]->to;
        ++frame.next_edge;
        if (index.count(to) == 0) {
          visit.push_back({to, 0});
          descended = true;
          break;
        }
        if (on_stack.count(to) > 0) {
          low[node] = std::min(low[node], index[to]);
        }
      }
      if (descended) continue;
      if (low[node] == index[node]) {
        std::vector<std::string> scc;
        while (true) {
          std::string top = stack.back();
          stack.pop_back();
          on_stack.erase(top);
          scc.push_back(top);
          if (top == node) break;
        }
        if (scc.size() > 1) {
          std::sort(scc.begin(), scc.end());
          sccs.push_back(std::move(scc));
        }
      }
      visit.pop_back();
      if (!visit.empty()) {
        low[visit.back().node] =
            std::min(low[visit.back().node], low[node]);
      }
    }
  }
  std::sort(sccs.begin(), sccs.end());
  for (const std::vector<std::string>& scc : sccs) {
    std::set<std::string> members(scc.begin(), scc.end());
    const LockEdge* witness = nullptr;
    std::ostringstream detail;
    for (const std::string& from : scc) {
      for (const LockEdge* e : adj[from]) {
        if (members.count(e->to) == 0) continue;
        if (detail.tellp() > 0) detail << "; ";
        detail << e->from << " -> " << e->to << " (" << EdgeWitness(*e)
               << ")";
        if (e->observed &&
            (witness == nullptr ||
             std::tie(e->path, e->line) <
                 std::tie(witness->path, witness->line))) {
          witness = e;
        }
      }
    }
    if (witness == nullptr) {
      // Declared-only cycle: anchor at the first member's declaration.
      for (const std::string& from : scc) {
        for (const LockEdge* e : adj[from]) {
          if (members.count(e->to) > 0) {
            witness = e;
            break;
          }
        }
        if (witness != nullptr) break;
      }
    }
    if (witness == nullptr) continue;
    std::ostringstream msg;
    msg << "lock-acquisition cycle between { ";
    for (size_t i = 0; i < scc.size(); ++i) {
      msg << (i == 0 ? "" : ", ") << scc[i];
    }
    msg << " }: " << detail.str() << "; a deadlock is reachable";
    out->push_back({kRuleLockCycle,
                    witness->observed ? witness->path : witness->declared_path,
                    witness->observed ? witness->line : witness->declared_line,
                    msg.str()});
  }

  // --- Contradicted and undeclared observed edges. ---
  for (const LockEdge& e : graph.edges) {
    if (!e.observed || e.from == e.to) continue;
    auto rev = declared.find(e.to);
    const bool contradicted =
        rev != declared.end() && rev->second.count(e.from) > 0;
    if (contradicted) {
      out->push_back(
          {kRuleLockOrderContradiction, e.path, e.line,
           e.via_function + " acquires " + e.to + " while holding " + e.from +
               " (" + EdgeWitness(e) + "), but FS_ACQUIRED_BEFORE declares " +
               e.to + " before " + e.from});
    } else if (!e.covered) {
      std::string how =
          e.via_callee.empty()
              ? "acquires " + e.to
              : "calls " + e.via_callee + ", which (transitively) acquires " +
                    e.to;
      out->push_back(
          {kRuleLockOrderUndeclared, e.path, e.line,
           e.via_function + " " + how + " while holding " + e.from +
               ", but no FS_ACQUIRED_BEFORE path declares " + e.from +
               " before " + e.to + "; declare the order on the " + e.from +
               " member"});
    }
  }
}

// ---------------------------------------------------------------------------
// Dumps.
// ---------------------------------------------------------------------------

std::string LockGraphToDot(const LockGraph& graph) {
  std::ostringstream os;
  os << "// fslint --dump-lock-graph artifact. Regenerate with:\n"
     << "//   fslint --root . --dump-lock-graph docs/lock_graph.dot\n"
     << "// Solid = observed+declared (\"transitively\" when sanctioned via a\n"
     << "// declaration chain), dashed = declared only,\n"
     << "// bold red = observed but undeclared (lint gate fails on these).\n"
     << "digraph fslint_lock_graph {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const std::string& node : graph.nodes) {
    os << "  \"" << node << "\";\n";
  }
  for (const LockEdge& e : graph.edges) {
    os << "  \"" << e.from << "\" -> \"" << e.to << "\" [";
    if (e.observed && e.declared) {
      os << "label=\"via " << e.via_function << "\"";
    } else if (e.observed && e.covered) {
      os << "label=\"via " << e.via_function << " (transitively declared)\"";
    } else if (e.declared) {
      os << "style=dashed, label=\"declared\"";
    } else {
      os << "style=bold, color=red, label=\"UNDECLARED via "
         << e.via_function << "\"";
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string LockGraphToJson(const LockGraph& graph) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  std::ostringstream os;
  os << "{\n  \"nodes\": [";
  for (size_t i = 0; i < graph.nodes.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "\"" << escape(graph.nodes[i]) << "\"";
  }
  os << "],\n  \"edges\": [";
  for (size_t i = 0; i < graph.edges.size(); ++i) {
    const LockEdge& e = graph.edges[i];
    os << (i == 0 ? "" : ",") << "\n    {\"from\": \"" << escape(e.from)
       << "\", \"to\": \"" << escape(e.to) << "\", \"observed\": "
       << (e.observed ? "true" : "false")
       << ", \"declared\": " << (e.declared ? "true" : "false")
       << ", \"covered\": " << (e.covered ? "true" : "false");
    if (e.observed) {
      os << ", \"via\": \"" << escape(e.via_function) << "\"";
      if (!e.via_callee.empty()) {
        os << ", \"callee\": \"" << escape(e.via_callee) << "\"";
      }
      os << ", \"site\": \"" << escape(e.path) << ":" << e.line << "\"";
    }
    if (e.declared) {
      os << ", \"declared_site\": \"" << escape(e.declared_path) << ":"
         << e.declared_line << "\"";
    }
    os << "}";
  }
  os << (graph.edges.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

}  // namespace fslint
