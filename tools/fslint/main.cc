// fslint CLI. Lints the repository's C++ sources against the project
// invariants (docs/STATIC_ANALYSIS.md, "fslint rule catalog").
//
//   fslint --root <repo-root> [--json] [file...]
//
// With no explicit file list, scans src/, tests/, bench/, examples/, and
// tools/ (excluding tools/fslint/testdata, which holds deliberate
// violations for fslint's own tests). Exit status 1 iff there are
// unsuppressed findings. `--json` emits machine-readable diagnostics.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fslint --root <repo-root> [--json] [file...]\n";
      return 0;
    } else {
      explicit_files.push_back(arg);
    }
  }

  const fs::path root_path(root);
  std::vector<std::string> rel_paths;
  if (!explicit_files.empty()) {
    rel_paths = explicit_files;
  } else {
    for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
      fs::path base = root_path / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        fs::path rel = fs::relative(entry.path(), root_path);
        std::string rel_str = rel.generic_string();
        if (rel_str.rfind("tools/fslint/testdata/", 0) == 0) continue;
        std::string ext = rel.extension().string();
        if (ext != ".h" && ext != ".cc") continue;
        rel_paths.push_back(std::move(rel_str));
      }
    }
    std::sort(rel_paths.begin(), rel_paths.end());
  }

  std::vector<fslint::FileInput> files;
  files.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) {
    std::string content;
    if (!ReadFile(root_path / rel, &content)) {
      std::cerr << "fslint: cannot read " << rel << "\n";
      return 2;
    }
    files.push_back({rel, std::move(content)});
  }

  fslint::Options options;
  std::string catalog_text;
  if (ReadFile(root_path / "docs" / "ROBUSTNESS.md", &catalog_text)) {
    options.fault_catalog = fslint::ParseFaultCatalog(catalog_text);
  } else {
    std::cerr << "fslint: warning: docs/ROBUSTNESS.md not found; "
                 "fault-point catalog cross-check limited to uniqueness\n";
  }

  std::vector<fslint::Finding> findings = fslint::Lint(files, options);

  if (json) {
    std::cout << "[";
    for (size_t i = 0; i < findings.size(); ++i) {
      const fslint::Finding& f = findings[i];
      std::cout << (i == 0 ? "" : ",") << "\n  {\"rule\": \""
                << JsonEscape(f.rule) << "\", \"file\": \""
                << JsonEscape(f.path) << "\", \"line\": " << f.line
                << ", \"message\": \"" << JsonEscape(f.message) << "\"}";
    }
    std::cout << (findings.empty() ? "]" : "\n]") << "\n";
  } else {
    for (const fslint::Finding& f : findings) {
      std::cout << f.path << ":" << f.line << ": error: [" << f.rule << "] "
                << f.message << "\n";
    }
  }

  std::cerr << "fslint: " << files.size() << " file(s), " << findings.size()
            << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
