// fslint CLI. Lints the repository's C++ sources against the project
// invariants (docs/STATIC_ANALYSIS.md, "fslint rule catalog").
//
//   fslint --root <repo-root> [--format=text|json|sarif] [--jobs N]
//          [--dump-lock-graph <path>] [--no-lock-graph] [file...]
//
// With no explicit file list, scans src/, tests/, bench/, examples/, and
// tools/ (excluding tools/fslint/testdata, which holds deliberate
// violations for fslint's own tests). Exit status 1 iff there are
// unsuppressed findings. `--format=json` emits machine-readable
// diagnostics (`--json` is an alias); `--format=sarif` emits SARIF 2.1.0
// for code-scanning upload. `--dump-lock-graph` writes the whole-program
// lock graph to <path> — Graphviz DOT if it ends in .dot, JSON otherwise —
// and is how docs/lock_graph.dot is regenerated.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"
#include "lock_graph.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// Rule catalog for the SARIF tool.driver.rules array; descriptions mirror
// docs/STATIC_ANALYSIS.md.
struct RuleDoc {
  const char* id;
  const char* description;
};

constexpr RuleDoc kRules[] = {
    {fslint::kRuleRawSync,
     "raw std:: synchronization primitive outside the common/ wrappers"},
    {fslint::kRuleLockedSuffix,
     "method named *Locked must carry FS_REQUIRES(...)"},
    {fslint::kRuleGuardedMember,
     "mutable member of a mutex-owning class lacks FS_GUARDED_BY"},
    {fslint::kRuleDeterminism,
     "nondeterminism source (wall clock, raw rand, iteration order) in src/"},
    {fslint::kRuleFaultPointRegistry,
     "fault-point name not unique or not catalogued in docs/ROBUSTNESS.md"},
    {fslint::kRuleMetricNameRegistry,
     "metric/span name not unique or not catalogued in "
     "docs/OBSERVABILITY.md"},
    {fslint::kRuleHeaderHygiene,
     "header missing include guard or using-directive at namespace scope"},
    {fslint::kRuleSuppression,
     "fslint: allow(...) suppression without a justification"},
    {fslint::kRuleLockCycle,
     "cycle in the whole-program lock-acquisition graph"},
    {fslint::kRuleLockOrderContradiction,
     "observed acquisition order contradicts declared FS_ACQUIRED_BEFORE/"
     "AFTER edges (or an annotation names no known mutex)"},
    {fslint::kRuleLockOrderUndeclared,
     "nested acquisition with no declared order between the two mutexes"},
    {fslint::kRuleLayering,
     "#include violates the module DAG in tools/fslint/layering.toml"},
};

void PrintSarif(const std::vector<fslint::Finding>& findings,
                std::ostream& out) {
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"fslint\",\n"
      << "          \"informationUri\": "
         "\"docs/STATIC_ANALYSIS.md\",\n"
      << "          \"rules\": [\n";
  for (size_t i = 0; i < std::size(kRules); ++i) {
    out << "            {\"id\": \"" << kRules[i].id
        << "\", \"shortDescription\": {\"text\": \""
        << JsonEscape(kRules[i].description) << "\"}}"
        << (i + 1 < std::size(kRules) ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const fslint::Finding& f = findings[i];
    out << "        {\"ruleId\": \"" << JsonEscape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << JsonEscape(f.message) << "\"}, \"locations\": [{"
        << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << JsonEscape(f.path)
        << "\", \"uriBaseId\": \"%SRCROOT%\"}, \"region\": {\"startLine\": "
        << std::max(f.line, 1) << "}}}]}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  std::string dump_lock_graph;
  int jobs = 0;
  bool lock_graph = true;
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json") {
      format = "json";
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "fslint: unknown format '" << format
                  << "' (expected text, json, or sarif)\n";
        return 2;
      }
    } else if (arg == "--dump-lock-graph" && i + 1 < argc) {
      dump_lock_graph = argv[++i];
    } else if (arg == "--no-lock-graph") {
      lock_graph = false;
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fslint --root <repo-root> "
                   "[--format=text|json|sarif] [--jobs N]\n"
                   "              [--dump-lock-graph <path>] "
                   "[--no-lock-graph] [file...]\n";
      return 0;
    } else {
      explicit_files.push_back(arg);
    }
  }

  const fs::path root_path(root);
  std::vector<std::string> rel_paths;
  if (!explicit_files.empty()) {
    rel_paths = explicit_files;
  } else {
    for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
      fs::path base = root_path / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        fs::path rel = fs::relative(entry.path(), root_path);
        std::string rel_str = rel.generic_string();
        if (rel_str.rfind("tools/fslint/testdata/", 0) == 0) continue;
        std::string ext = rel.extension().string();
        if (ext != ".h" && ext != ".cc") continue;
        rel_paths.push_back(std::move(rel_str));
      }
    }
    std::sort(rel_paths.begin(), rel_paths.end());
  }

  std::vector<fslint::FileInput> files;
  files.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) {
    std::string content;
    if (!ReadFile(root_path / rel, &content)) {
      std::cerr << "fslint: cannot read " << rel << "\n";
      return 2;
    }
    files.push_back({rel, std::move(content)});
  }

  fslint::Options options;
  options.jobs = jobs;
  options.lock_graph = lock_graph || !dump_lock_graph.empty();
  std::string catalog_text;
  if (ReadFile(root_path / "docs" / "ROBUSTNESS.md", &catalog_text)) {
    options.fault_catalog = fslint::ParseFaultCatalog(catalog_text);
  } else {
    std::cerr << "fslint: warning: docs/ROBUSTNESS.md not found; "
                 "fault-point catalog cross-check limited to uniqueness\n";
  }
  std::string metric_catalog_text;
  if (ReadFile(root_path / "docs" / "OBSERVABILITY.md",
               &metric_catalog_text)) {
    options.metric_catalog = fslint::ParseMetricCatalog(metric_catalog_text);
  } else {
    std::cerr << "fslint: warning: docs/OBSERVABILITY.md not found; "
                 "metric-name catalog cross-check limited to uniqueness\n";
  }

  // Findings against the layering config itself (parse errors, undeclared
  // deps) bypass Lint()'s suppression machinery: the config is not a lexed
  // source file.
  std::vector<fslint::Finding> config_findings;
  std::string layering_text;
  const char* kLayeringRel = "tools/fslint/layering.toml";
  if (ReadFile(root_path / kLayeringRel, &layering_text)) {
    options.layering = fslint::ParseLayeringConfig(kLayeringRel, layering_text,
                                                   &config_findings);
  } else {
    std::cerr << "fslint: warning: " << kLayeringRel
              << " not found; layering pass disabled\n";
  }

  fslint::LockGraph graph;
  options.lock_graph_out = &graph;

  std::vector<fslint::Finding> findings = fslint::Lint(files, options);
  findings.insert(findings.end(), config_findings.begin(),
                  config_findings.end());
  std::sort(findings.begin(), findings.end(),
            [](const fslint::Finding& a, const fslint::Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  if (!dump_lock_graph.empty()) {
    const bool dot = dump_lock_graph.size() >= 4 &&
                     dump_lock_graph.compare(dump_lock_graph.size() - 4, 4,
                                             ".dot") == 0;
    std::ofstream out(dump_lock_graph, std::ios::binary);
    if (!out) {
      std::cerr << "fslint: cannot write " << dump_lock_graph << "\n";
      return 2;
    }
    out << (dot ? fslint::LockGraphToDot(graph)
                : fslint::LockGraphToJson(graph));
  }

  if (format == "json") {
    std::cout << "[";
    for (size_t i = 0; i < findings.size(); ++i) {
      const fslint::Finding& f = findings[i];
      std::cout << (i == 0 ? "" : ",") << "\n  {\"rule\": \""
                << JsonEscape(f.rule) << "\", \"file\": \""
                << JsonEscape(f.path) << "\", \"line\": " << f.line
                << ", \"message\": \"" << JsonEscape(f.message) << "\"}";
    }
    std::cout << (findings.empty() ? "]" : "\n]") << "\n";
  } else if (format == "sarif") {
    PrintSarif(findings, std::cout);
  } else {
    for (const fslint::Finding& f : findings) {
      std::cout << f.path << ":" << f.line << ": error: [" << f.rule << "] "
                << f.message << "\n";
    }
  }

  std::cerr << "fslint: " << files.size() << " file(s), " << findings.size()
            << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
