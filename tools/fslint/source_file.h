// fslint's view of one C++ source file.
//
// The lexer is deliberately not a C++ parser: it strips comments and string
// literals (tracking line numbers), marks preprocessor directives, records
// every string literal with its position, and collects the per-line
// suppression comments (`// fslint: allow(<rule>) -- <justification>`).
// Rules then work on the comment-free "code" view, so a banned token inside
// a comment or a string never fires, and a rule pattern spelled inside
// fslint's own string literals never lints itself.

#ifndef FSLINT_SOURCE_FILE_H_
#define FSLINT_SOURCE_FILE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fslint {

// A string literal in non-directive code. `line` is 1-based; `col` is the
// 0-based offset of the opening quote in that line, which lets rules check
// what code immediately precedes the literal (e.g. `FS_FAULT_POINT(`).
struct StringLiteral {
  int line = 0;
  int col = 0;
  std::string value;
};

// One `allow(<rule>)` clause from a suppression comment.
struct Suppression {
  std::string rule;
  bool justified = false;  // had a non-empty `-- <why>` trailer
  int line = 0;
};

// One `#include` directive. `angled` distinguishes `<...>` system includes
// from `"..."` project includes; the layering pass only judges the latter.
struct IncludeDirective {
  int line = 0;
  std::string path;
  bool angled = false;
};

struct SourceFile {
  std::string path;  // repo-relative, '/'-separated

  // Raw and comment/string/preprocessor-stripped views; same line count,
  // stripped regions replaced by spaces so columns stay aligned.
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;

  std::vector<StringLiteral> strings;
  std::vector<IncludeDirective> includes;

  // line -> suppressions declared on that line.
  std::map<int, std::vector<Suppression>> suppressions;

  bool is_header() const {
    return path.size() >= 2 && path.compare(path.size() - 2, 2, ".h") == 0;
  }
  bool InDir(std::string_view dir) const {
    return path.size() > dir.size() && path.compare(0, dir.size(), dir) == 0 &&
           path[dir.size()] == '/';
  }
};

// Lexes `content` (the full text of the file at `path`).
SourceFile Lex(std::string path, std::string_view content);

// A token from the code view: an identifier/number, a punctuator (multi-char
// `::` and `->` are single tokens; everything else one char), or — with
// `is_string` set — the value of a string literal at its source position.
// String tokens let structural passes read annotation arguments like
// `FS_ACQUIRED_BEFORE("spanner::Database::data_mu_")`; token-pattern rules
// must skip them so literal text never matches a code pattern.
struct Token {
  std::string text;
  int line = 0;
  int col = 0;  // 0-based column of the token's first character
  bool is_string = false;
};

std::vector<Token> Tokenize(const SourceFile& file);

}  // namespace fslint

#endif  // FSLINT_SOURCE_FILE_H_
