// Architecture-layering pass: checks every #include under src/ against the
// module DAG declared in tools/fslint/layering.toml. See
// docs/STATIC_ANALYSIS.md, "Architecture layering".

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "lint.h"
#include "source_file.h"

namespace fslint {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Extracts the value of `key = ...` if the line matches, else nullopt-ish
// empty view with matched=false.
bool KeyValue(std::string_view line, std::string_view key,
              std::string_view* value) {
  if (line.substr(0, key.size()) != key) return false;
  std::string_view rest = Trim(line.substr(key.size()));
  if (rest.empty() || rest.front() != '=') return false;
  *value = Trim(rest.substr(1));
  return true;
}

// Parses `["a", "b"]` into items. Returns false on malformed syntax.
bool ParseStringArray(std::string_view value, std::vector<std::string>* out) {
  value = Trim(value);
  if (value.size() < 2 || value.front() != '[' || value.back() != ']') {
    return false;
  }
  std::string_view body = Trim(value.substr(1, value.size() - 2));
  size_t start = 0;
  while (start < body.size()) {
    size_t comma = body.find(',', start);
    if (comma == std::string_view::npos) comma = body.size();
    std::string_view item = Trim(body.substr(start, comma - start));
    if (item.size() < 2 || item.front() != '"' || item.back() != '"') {
      return false;
    }
    out->push_back(std::string(item.substr(1, item.size() - 2)));
    start = comma + 1;
  }
  return true;
}

bool IsModuleNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

LayeringConfig ParseLayeringConfig(std::string path, std::string_view text,
                                   std::vector<Finding>* out) {
  LayeringConfig config;
  config.path = std::move(path);
  LayeringModule* current = nullptr;
  std::set<std::string> names;

  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      constexpr std::string_view kPrefix = "[module.";
      if (line.substr(0, kPrefix.size()) != kPrefix || line.back() != ']') {
        out->push_back({kRuleLayering, config.path, line_no,
                        "malformed section header '" + std::string(line) +
                            "' (expected [module.<name>])"});
        current = nullptr;
        continue;
      }
      std::string name(
          line.substr(kPrefix.size(), line.size() - kPrefix.size() - 1));
      if (name.empty() ||
          !std::all_of(name.begin(), name.end(), IsModuleNameChar)) {
        out->push_back({kRuleLayering, config.path, line_no,
                        "invalid module name '" + name + "'"});
        current = nullptr;
        continue;
      }
      if (!names.insert(name).second) {
        out->push_back({kRuleLayering, config.path, line_no,
                        "duplicate module '" + name + "'"});
        current = nullptr;
        continue;
      }
      config.modules.push_back({name, {}, false, line_no});
      current = &config.modules.back();
      continue;
    }

    std::string_view value;
    if (KeyValue(line, "root", &value)) {
      if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
        config.root = std::string(value.substr(1, value.size() - 2));
      } else {
        out->push_back({kRuleLayering, config.path, line_no,
                        "root must be a quoted string"});
      }
      continue;
    }
    if (current == nullptr) {
      out->push_back({kRuleLayering, config.path, line_no,
                      "entry outside a [module.<name>] section"});
      continue;
    }
    if (KeyValue(line, "deps", &value)) {
      if (!ParseStringArray(value, &current->deps)) {
        out->push_back({kRuleLayering, config.path, line_no,
                        "deps must be an array of quoted module names"});
      }
      continue;
    }
    if (KeyValue(line, "unrestricted", &value)) {
      if (value == "true" || value == "false") {
        current->unrestricted = (value == "true");
      } else {
        out->push_back({kRuleLayering, config.path, line_no,
                        "unrestricted must be true or false"});
      }
      continue;
    }
    out->push_back({kRuleLayering, config.path, line_no,
                    "unrecognized entry '" + std::string(line) + "'"});
  }

  // Validate dep names against declared modules.
  for (const LayeringModule& m : config.modules) {
    for (const std::string& dep : m.deps) {
      if (names.count(dep) == 0) {
        out->push_back({kRuleLayering, config.path, m.line,
                        "module '" + m.name + "' depends on undeclared module '" +
                            dep + "'"});
      }
      if (dep == m.name) {
        out->push_back({kRuleLayering, config.path, m.line,
                        "module '" + m.name + "' depends on itself"});
      }
    }
  }
  return config;
}

namespace {

// Transitive closure of a module's allowed include targets (itself + deps,
// recursively). Cycles in the config would otherwise be a license to include
// anything, so they are closed over too — the DAG-ness of the config is the
// reviewer's job; the closure just follows declared edges.
std::set<std::string> AllowedTargets(const LayeringConfig& config,
                                     const std::string& module) {
  std::map<std::string, const LayeringModule*> by_name;
  for (const LayeringModule& m : config.modules) by_name[m.name] = &m;
  std::set<std::string> allowed;
  std::vector<std::string> work{module};
  while (!work.empty()) {
    std::string cur = std::move(work.back());
    work.pop_back();
    if (!allowed.insert(cur).second) continue;
    auto it = by_name.find(cur);
    if (it == by_name.end()) continue;
    for (const std::string& dep : it->second->deps) work.push_back(dep);
  }
  return allowed;
}

}  // namespace

void CheckLayering(const SourceFile& file, const LayeringConfig& config,
                   std::vector<Finding>* out) {
  // Only files under the governed root are constrained.
  const std::string prefix = config.root + "/";
  if (file.path.compare(0, prefix.size(), prefix) != 0) return;
  size_t slash = file.path.find('/', prefix.size());
  if (slash == std::string::npos) return;  // file directly under root
  const std::string module =
      file.path.substr(prefix.size(), slash - prefix.size());

  const LayeringModule* self = nullptr;
  std::set<std::string> declared_names;
  for (const LayeringModule& m : config.modules) {
    declared_names.insert(m.name);
    if (m.name == module) self = &m;
  }
  if (self == nullptr) {
    out->push_back({kRuleLayering, file.path, 1,
                    "module '" + module + "' is not declared in " +
                        config.path +
                        " (see docs/STATIC_ANALYSIS.md, \"Declaring a new "
                        "module\")"});
    return;
  }
  if (self->unrestricted) return;

  const std::set<std::string> allowed = AllowedTargets(config, module);
  for (const IncludeDirective& inc : file.includes) {
    if (inc.angled) continue;  // system / toolchain headers
    size_t sep = inc.path.find('/');
    if (sep == std::string::npos) continue;  // not a module-qualified path
    const std::string target = inc.path.substr(0, sep);
    if (declared_names.count(target) == 0) continue;  // not a src module
    if (allowed.count(target) != 0) continue;
    out->push_back(
        {kRuleLayering, file.path, inc.line,
         "module '" + module + "' must not include \"" + inc.path +
             "\": '" + target + "' is not in its declared dependency set (" +
             config.path + ")"});
  }
}

}  // namespace fslint
