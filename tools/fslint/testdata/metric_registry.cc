// Fixture for the metric-name-registry rule (linted as
// src/fixture/metric_registry.cc, catalogued by metric_catalog.md).
#include "common/metrics.h"
#include "common/trace.h"

namespace firestore {

void First() { FS_METRIC_COUNTER("fixture.metric.alpha").Increment(); }

void Second() { FS_METRIC_COUNTER("fixture.metric.duplicate").Increment(); }

void Third() { FS_METRIC_TIMER("fixture.metric.duplicate").Record(1); }

void Fourth() { FS_SPAN("fixture.span.uncatalogued"); }

void Fifth() {
  FS_METRIC_COUNTER_FOR("fixture.metric.labeled", "a-label").Increment();
}

}  // namespace firestore
