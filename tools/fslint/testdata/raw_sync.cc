// Fixture for the raw-sync rule (linted as if at src/fixture/raw_sync.cc).
#include <mutex>

namespace firestore {

std::mutex g_bad_mutex;

void Sample() {
  std::lock_guard<std::mutex> lock(g_bad_mutex);
}

// fslint: allow(raw-sync) -- fixture: sanctioned wrapper internals
std::mutex g_allowed_above;

std::shared_mutex g_allowed_inline;  // fslint: allow(raw-sync) -- fixture: same-line form

// fslint: allow(raw-sync)
std::mutex g_unjustified;

}  // namespace firestore
