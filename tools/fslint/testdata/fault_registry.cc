// Fixture for the fault-point-registry rule (linted as
// src/fixture/fault_registry.cc, catalogued by fault_catalog.md).
#include "common/fault_injection.h"

namespace firestore {

Status First() { return FS_FAULT_POINT("fixture.alpha"); }

Status Second() { return FS_FAULT_POINT("fixture.duplicate"); }

Status Third() { return FS_FAULT_POINT("fixture.duplicate"); }

bool Fourth() { return FS_FAULT_TRIGGERED("fixture.uncatalogued"); }

}  // namespace firestore
