// Fixture for the header-hygiene rule (linted as src/fixture/header_hygiene.h).
#ifndef FSLINT_FIXTURE_HEADER_HYGIENE_H_
#define FSLINT_FIXTURE_HEADER_HYGIENE_H_

#include <string>

using namespace std;

namespace firestore {
using namespace std::chrono;

inline string Join(const string& a, const string& b) { return a + b; }

inline void Escape() {
  using namespace std;  // function-local: allowed
}

}  // namespace firestore

#endif  // FSLINT_FIXTURE_HEADER_HYGIENE_H_
