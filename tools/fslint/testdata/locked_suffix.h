// Fixture for the locked-suffix rule (linted as src/fixture/locked_suffix.h).
#ifndef FSLINT_FIXTURE_LOCKED_SUFFIX_H_
#define FSLINT_FIXTURE_LOCKED_SUFFIX_H_

#include "common/thread_annotations.h"

namespace firestore {

class Ledger {
 public:
  void Post();

 private:
  void ApplyLocked(int amount);
  int BalanceLocked() const;
  void Refresh() FS_REQUIRES(mu_);
  void CompactLocked() FS_REQUIRES(mu_);
  int ReadLocked() const FS_REQUIRES_SHARED(mu_);
  // fslint: allow(locked-suffix) -- fixture: wait primitive takes the caller's mutex
  void AwaitLocked(int deadline);

  mutable Mutex mu_;
  int balance_ FS_GUARDED_BY(mu_) = 0;
};

}  // namespace firestore

#endif  // FSLINT_FIXTURE_LOCKED_SUFFIX_H_
