// Fixture for the guarded-member rule (linted as src/fixture/guarded_member.h).
#ifndef FSLINT_FIXTURE_GUARDED_MEMBER_H_
#define FSLINT_FIXTURE_GUARDED_MEMBER_H_

#include <atomic>
#include <map>
#include <string>

#include "common/thread_annotations.h"

namespace firestore {

class Cache {
 public:
  void Put(const std::string& key, int value);

 private:
  mutable Mutex mu_;
  std::map<std::string, int> entries_ FS_GUARDED_BY(mu_);
  std::map<std::string, int> stale_;
  std::atomic<int> hits_{0};
  const int capacity_ = 64;
  // fslint: allow(guarded-member) -- fixture: written once before threads start
  int warmup_ = 0;
};

// No mutex member: nothing to guard, nothing reported.
struct Plain {
  int counter = 0;
};

}  // namespace firestore

#endif  // FSLINT_FIXTURE_GUARDED_MEMBER_H_
