// Deliberate contradiction for the lock-order-contradiction rule: a_ is
// declared FS_ACQUIRED_BEFORE b_, but Backward() acquires b_ first and a_
// second. The observed edge b_ -> a_ contradicts the declaration (and the
// declared+observed union therefore also forms a cycle). dangling_ carries
// an annotation naming a mutex that does not exist, the other
// lock-order-contradiction variant.

namespace fixture {

class Ordered {
 public:
  void Backward() {
    MutexLock second(&b_);
    MutexLock first(&a_);
  }

 private:
  Mutex a_ FS_ACQUIRED_BEFORE("fixture::Ordered::b_");
  Mutex b_;
  Mutex dangling_ FS_ACQUIRED_BEFORE("fixture::Nonexistent::mu_");
};

}  // namespace fixture
