// Fixture for the determinism rule (linted as src/fixture/determinism.cc).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <thread>

namespace firestore {

int Entropy() {
  std::random_device rd;
  int r = rand();
  long t = ::time(nullptr);
  auto wall = std::chrono::system_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  (void)wall;
  return static_cast<int>(rd()) + r + static_cast<int>(t);
}

// fslint: allow(determinism) -- fixture: real sleep behind a test hook
void Nap() { std::this_thread::sleep_for(std::chrono::milliseconds(1)); }

}  // namespace firestore
