// Fixtures for the lock-order-undeclared rule. Nest() nests two mutexes
// directly with no declared order; Outer() picks up its second lock inside
// a callee, so the finding's witness goes through the call edge.
// AcquireAudited() nests a third pair under a justified suppression and
// must stay silent.

namespace fixture {

class Undeclared {
 public:
  void Nest() {
    MutexLock first(&first_);
    MutexLock second(&second_);
  }

  void AcquireAudited() {
    MutexLock audit(&audited_);
    // fslint: allow(lock-order-undeclared) -- fixture: order vetted by the runtime checker
    MutexLock log(&log_);
  }

 private:
  Mutex first_;
  Mutex second_;
  Mutex audited_;
  Mutex log_;
};

class Caller {
 public:
  void Outer() {
    MutexLock hold(&outer_);
    Leaf();
  }

  void Leaf() {
    MutexLock inner(&inner_);
  }

 private:
  Mutex outer_;
  Mutex inner_;
};

}  // namespace fixture
