// Deliberate lock-order cycle for the lock-cycle rule: Forward() nests
// a_ -> b_ while Backward() nests b_ -> a_, so the observed acquisition
// graph has a two-node strongly connected component. Both nestings are also
// undeclared (no FS_ACQUIRED_BEFORE anywhere), so the engine must report
// one lock-cycle and two lock-order-undeclared findings.

namespace fixture {

class Pair {
 public:
  void Forward() {
    MutexLock a(&a_);
    MutexLock b(&b_);
  }

  void Backward() {
    MutexLock b(&b_);
    MutexLock a(&a_);
  }

 private:
  Mutex a_;
  Mutex b_;
};

}  // namespace fixture
