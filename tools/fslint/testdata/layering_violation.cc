// Layering fixture: presented to the engine as a file inside src/spanner/,
// whose declared dependency set is { common } (plus itself). The frontend/
// and rtcache/ includes climb the module DAG and must each be flagged;
// common/, self, system, and non-module includes are all legal.

#include <vector>

#include "common/status.h"
#include "frontend/frontend.h"
#include "rtcache/changelog.h"
#include "spanner/truetime.h"
#include "not_a_module/helper.h"

namespace fixture {

int Placeholder() { return 0; }

}  // namespace fixture
