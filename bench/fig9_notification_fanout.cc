// Figure 9: real-time notification latency vs number of Listen connections
// (paper §V-B1): one document is written once per second while an
// exponentially increasing number of clients hold a real-time query whose
// result set includes it. Notification latency = from the Spanner commit
// acknowledgement until the *last* client is notified by the Frontend.
//
// Expected shape (paper): latency stays roughly flat as listeners grow
// exponentially, because Frontend autoscaling adds tasks with connection
// count. A fixed-size Frontend pool (extra column) degrades linearly — the
// counterfactual the paper's architecture avoids.
//
// Every listener is a real Frontend target (real matcher subscriptions,
// real snapshot assembly); the per-notification CPU and RPC costs are
// charged in virtual time.

#include "common/logging.h"
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <vector>

#include "bench_main.h"
#include "common/trace.h"
#include "service/service.h"
#include "sim/cpu_server.h"
#include "sim/latency_model.h"
#include "sim/simulation.h"

using namespace firestore;

namespace {

constexpr Micros kNotifyCpuCost = 15;  // per-client send work on a Frontend

// Runs the scenario with `listeners` connections; returns the mean over
// writes of (last client notified - commit ack), in micros.
double RunScenario(int listeners, bool autoscaled, double* commit_ms) {
  sim::Simulation sim(1'000'000'000);
  service::FirestoreService service(sim.clock());
  const std::string db = "projects/bench/databases/scores";
  FS_CHECK_OK(service.CreateDatabase(db));
  auto path = model::ResourcePath::Parse("/games/final").value();
  FS_CHECK(service
               .Commit(db, {backend::Mutation::Set(
                               path, {{"status", model::Value::String(
                                                     "live")},
                                      {"home", model::Value::Integer(0)}})})
               .ok());
  service.Pump();

  // Real listeners.
  query::Query live(model::ResourcePath(), "games");
  live.Where(model::FieldPath::Single("status"), query::Operator::kEqual,
             model::Value::String("live"));
  int64_t deliveries = 0;
  for (int i = 0; i < listeners; ++i) {
    auto conn = service.frontend().OpenPrivilegedConnection(db);
    auto target = service.frontend().Listen(
        conn, live,
        [&deliveries](const frontend::QuerySnapshot&) { ++deliveries; });
    FS_CHECK(target.ok());
  }

  // Frontend send pool: autoscaling reacts to the number of connections
  // (paper: "the increase in active real-time queries increases the load on
  // Frontend tasks, which leads autoscaling to quickly scale up the number
  // of Frontend tasks").
  sim::CpuServer::Options pool_options;
  pool_options.workers =
      autoscaled ? std::max(2, listeners / 500) : 4;
  sim::CpuServer frontend_pool(&sim, pool_options);

  sim::LatencyModel latency;
  Rng rng(static_cast<uint64_t>(listeners) + 9);

  constexpr int kWrites = 5;
  double total_notify = 0;
  double total_commit = 0;
  for (int w = 1; w <= kWrites; ++w) {
    // One write per second.
    sim.After(1'000'000, [] {});
    sim.Run();
    auto commit = service.Commit(
        db, {backend::Mutation::Merge(
                path, {{"home", model::Value::Integer(w)}})});
    FS_CHECK(commit.ok());
    Micros commit_lat = latency.SpannerCommit(
        rng, commit->spanner_participants, 64,
        commit->index_entries_written);
    total_commit += static_cast<double>(commit_lat);
    // Deliver through the real pipeline.
    service.Pump();
    service.Pump();
    // Charge fan-out: commit ack at T0; Changelog->Matcher->Frontend hop,
    // then one send job per listener on the Frontend pool.
    Micros t0 = sim.now();
    Micros ingest = latency.RpcHop(rng) + latency.RpcHop(rng);
    Micros last_notified = t0;
    for (int i = 0; i < listeners; ++i) {
      sim.After(ingest, [&, i] {
        frontend_pool.Submit("conn" + std::to_string(i % 64),
                             kNotifyCpuCost, [&] {
                               Micros done =
                                   sim.now() + latency.RpcHop(rng);
                               if (done > last_notified) {
                                 last_notified = done;
                               }
                             });
      });
    }
    sim.Run();
    total_notify += static_cast<double>(last_notified - t0);
  }
  FS_CHECK_EQ(deliveries, static_cast<int64_t>(listeners) * (kWrites + 1));
  if (commit_ms != nullptr) *commit_ms = total_commit / kWrites / 1000.0;
  return total_notify / kWrites;
}

// Writes one end-to-end trace of a single write — commit through the async
// realtime pipeline to listener delivery — as a CI artifact demonstrating
// the Fig. 9 path (write-ack + notification latency in one trace).
void DumpSampleTrace() {
  sim::Simulation sim(1'000'000'000);
  service::FirestoreService service(sim.clock());
  const std::string db = "projects/bench/databases/trace";
  FS_CHECK_OK(service.CreateDatabase(db));
  auto path = model::ResourcePath::Parse("/games/final").value();
  query::Query live(model::ResourcePath(), "games");
  auto conn = service.frontend().OpenPrivilegedConnection(db);
  FS_CHECK(service.frontend()
               .Listen(conn, live, [](const frontend::QuerySnapshot&) {})
               .ok());
  sim.After(1'000'000, [] {});
  sim.Run();
  Trace trace(sim.clock(), "ycsb.update");
  {
    TraceScope scope(trace);
    FS_CHECK(service
                 .Commit(db, {backend::Mutation::Set(
                                 path, {{"home", model::Value::Integer(1)}})})
                 .ok());
  }
  service.Pump();
  service.Pump();
  trace.Finish();
  std::string dir = ".";
  if (const char* env = std::getenv("BENCH_OUTPUT_DIR");
      env != nullptr && *env != '\0') {
    dir = env;
  }
  std::string out_path = dir + "/trace_sample.txt";
  std::ofstream out(out_path);
  out << trace.Dump();
  std::printf("\nwrote %s:\n%s", out_path.c_str(), trace.Dump().c_str());
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const std::vector<int> counts =
      smoke ? std::vector<int>{16, 256, 1024}
            : std::vector<int>{16, 64, 256, 1024, 4096, 16384, 65536};
  bench::BenchReport report("fig9_notification_fanout");
  std::printf("=== Figure 9: notification latency vs Listen connections ===\n");
  std::printf("%10s %22s %22s %12s\n", "listeners",
              "notify ms (autoscaled)", "notify ms (fixed pool)",
              "commit ms");
  for (int listeners : counts) {
    double commit_ms = 0;
    double autoscaled = RunScenario(listeners, true, &commit_ms);
    double fixed = RunScenario(listeners, false, nullptr);
    std::printf("%10d %22.2f %22.2f %12.2f\n", listeners,
                autoscaled / 1000.0, fixed / 1000.0, commit_ms);
    bench::BenchReport::Params params = {
        {"listeners", std::to_string(listeners)}};
    report.AddScalar("notify_us_autoscaled", params, autoscaled);
    report.AddScalar("notify_us_fixed_pool", params, fixed);
    report.AddScalar("commit_ms", params, commit_ms);
  }
  std::printf("\npaper shape check: autoscaled notification latency stays "
              "~flat under exponential listener growth; commit latency is "
              "unaffected (the Real-time Cache path is independent).\n");
  DumpSampleTrace();
  report.Finish();
  return 0;
}
