// Figure 11: multi-tenant isolation via fair CPU scheduling (paper §V-C).
//
// A fixed-capacity Backend (no autoscaling) serves two databases: a
// "culprit" sending CPU-intensive queries (inefficient indexing setup)
// ramping linearly to 500 QPS, and a "bystander" sending 100 QPS of
// single-document fetches. We run the identical trace with the Backend's
// fair-CPU-share scheduler (keyed by database id, §IV-C) ON and OFF and
// report the bystander's latency percentiles over time windows.
//
// Expected shape (paper): without fairness, the bystander's latency
// explodes once the culprit saturates capacity halfway through the ramp;
// with fairness, bystander p50 stays flat and only p99 rises modestly
// (the paper plots this on a log scale).

#include "common/logging.h"
#include <cstdio>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "sim/cpu_server.h"
#include "sim/simulation.h"

using namespace firestore;

namespace {

constexpr Micros kRunDuration = 60'000'000;   // 60 virtual seconds
constexpr Micros kWindow = 10'000'000;        // report per 10 s window
constexpr int kWorkers = 8;                   // fixed capacity
constexpr Micros kBystanderCost = 100;        // single-document fetch
constexpr Micros kCulpritCost = 32'000;       // inefficient query
constexpr double kBystanderQps = 100;
constexpr double kCulpritPeakQps = 500;

std::vector<Histogram> RunTrace(bool fair_share) {
  sim::Simulation sim;
  sim::CpuServer::Options options;
  options.workers = kWorkers;
  options.fair_share = fair_share;
  // Bound queueing so the overloaded case sheds rather than growing
  // unboundedly (the load-shedding of §IV-C).
  options.max_queue = 100'000;
  sim::CpuServer backend(&sim, options);
  Rng rng(fair_share ? 1 : 2);

  std::vector<Histogram> windows(kRunDuration / kWindow);

  // Bystander: steady 100 QPS of cheap fetches.
  std::function<void()> bystander = [&] {
    if (sim.now() >= kRunDuration) return;
    Micros submitted = sim.now();
    backend.Submit("bystander-db", kBystanderCost, [&, submitted] {
      size_t window = static_cast<size_t>(submitted / kWindow);
      if (window < windows.size()) {
        windows[window].Record(static_cast<double>(sim.now() - submitted));
      }
    });
    sim.After(static_cast<Micros>(rng.Exponential(1e6 / kBystanderQps)),
              bystander);
  };
  // Culprit: rate ramps linearly from 0 to 500 QPS over the run.
  std::function<void()> culprit = [&] {
    if (sim.now() >= kRunDuration) return;
    backend.Submit("culprit-db", kCulpritCost, nullptr);
    double progress =
        static_cast<double>(sim.now()) / static_cast<double>(kRunDuration);
    double rate = std::max(1.0, kCulpritPeakQps * progress);
    sim.After(static_cast<Micros>(rng.Exponential(1e6 / rate)), culprit);
  };
  sim.After(1, bystander);
  sim.After(1, culprit);
  sim.Run(kRunDuration + 5'000'000);
  return windows;
}

}  // namespace

int main() {
  std::printf("=== Figure 11: bystander latency under a culprit CPU ramp "
              "(fixed capacity: %d workers) ===\n",
              kWorkers);
  std::printf("capacity %.0f CPU-s/s; culprit saturates it at ~%.0f QPS "
              "(%.0f ms/query), i.e. ~halfway through the ramp\n",
              static_cast<double>(kWorkers),
              kWorkers * 1e6 / kCulpritCost,
              kCulpritCost / 1000.0);
  auto unfair = RunTrace(/*fair_share=*/false);
  auto fair = RunTrace(/*fair_share=*/true);
  std::printf("\n%-10s | %-26s | %-26s\n", "window",
              "fair OFF: p50 / p99 (ms)", "fair ON: p50 / p99 (ms)");
  for (size_t w = 0; w < unfair.size(); ++w) {
    std::printf("%3zu-%3zus   | %11.2f / %-12.2f | %11.2f / %-12.2f\n",
                w * 10, (w + 1) * 10,
                unfair[w].Quantile(0.5) / 1000.0,
                unfair[w].Quantile(0.99) / 1000.0,
                fair[w].Quantile(0.5) / 1000.0,
                fair[w].Quantile(0.99) / 1000.0);
  }
  std::printf("\npaper shape check: with fair scheduling OFF the bystander "
              "degrades by orders of magnitude once capacity is reached "
              "(~window 3+); with fair scheduling ON p50 stays flat and "
              "p99 rises to at most ~one culprit service time.\n");
  return 0;
}
