// Ablation A4: order-preserving value-encoding microbenchmarks.
//
// The index-key codec sits on the hot path of every write (index entry
// construction) and every query (range bounds + suffix parsing); these
// google-benchmark microbenchmarks track its throughput.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "firestore/codec/document_codec.h"
#include "firestore/codec/value_codec.h"
#include "firestore/index/layout.h"
#include "firestore/model/document.h"

namespace firestore {
namespace {

using codec::AppendValueAsc;
using codec::AppendValueDesc;
using codec::EncodeValueAsc;
using codec::ParseValueAsc;
using model::Document;
using model::Map;
using model::Value;

std::vector<Value> MakeCorpus() {
  Rng rng(4);
  std::vector<Value> corpus;
  for (int i = 0; i < 256; ++i) {
    switch (i % 5) {
      case 0:
        corpus.push_back(Value::Integer(rng.Uniform(-1'000'000, 1'000'000)));
        break;
      case 1:
        corpus.push_back(Value::Double(rng.NextDouble() * 1e6));
        break;
      case 2:
        corpus.push_back(Value::String(rng.AlphaNumString(24)));
        break;
      case 3:
        corpus.push_back(Value::FromArray(
            {Value::Integer(i), Value::String(rng.AlphaNumString(8))}));
        break;
      default:
        corpus.push_back(Value::FromMap(
            {{"a", Value::Integer(i)}, {"b", Value::Double(i * 0.5)}}));
        break;
    }
  }
  return corpus;
}

void BM_EncodeValueAsc(benchmark::State& state) {
  auto corpus = MakeCorpus();
  size_t i = 0;
  for (auto _ : state) {
    std::string out;
    AppendValueAsc(out, corpus[i++ % corpus.size()]);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EncodeValueAsc);

void BM_EncodeValueDesc(benchmark::State& state) {
  auto corpus = MakeCorpus();
  size_t i = 0;
  for (auto _ : state) {
    std::string out;
    AppendValueDesc(out, corpus[i++ % corpus.size()]);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EncodeValueDesc);

void BM_DecodeValueAsc(benchmark::State& state) {
  auto corpus = MakeCorpus();
  std::vector<std::string> encoded;
  for (const Value& v : corpus) encoded.push_back(EncodeValueAsc(v));
  size_t i = 0;
  for (auto _ : state) {
    std::string_view view = encoded[i++ % encoded.size()];
    Value out;
    bool ok = ParseValueAsc(&view, &out);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DecodeValueAsc);

void BM_CompareEncoded(benchmark::State& state) {
  auto corpus = MakeCorpus();
  std::vector<std::string> encoded;
  for (const Value& v : corpus) encoded.push_back(EncodeValueAsc(v));
  size_t i = 0;
  for (auto _ : state) {
    int c = encoded[i % encoded.size()].compare(
        encoded[(i + 1) % encoded.size()]);
    benchmark::DoNotOptimize(c);
    ++i;
  }
}
BENCHMARK(BM_CompareEncoded);

void BM_CompareLogical(benchmark::State& state) {
  auto corpus = MakeCorpus();
  size_t i = 0;
  for (auto _ : state) {
    int c = corpus[i % corpus.size()].Compare(
        corpus[(i + 1) % corpus.size()]);
    benchmark::DoNotOptimize(c);
    ++i;
  }
}
BENCHMARK(BM_CompareLogical);

void BM_SerializeDocument(benchmark::State& state) {
  Rng rng(5);
  Map fields;
  for (int f = 0; f < 10; ++f) {
    fields["f" + std::to_string(f)] = Value::String(rng.AlphaNumString(64));
  }
  Document doc(model::ResourcePath::Parse("/c/d").value(), fields);
  for (auto _ : state) {
    std::string bytes = codec::SerializeDocument(doc);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_SerializeDocument);

void BM_ParseDocument(benchmark::State& state) {
  Rng rng(5);
  Map fields;
  for (int f = 0; f < 10; ++f) {
    fields["f" + std::to_string(f)] = Value::String(rng.AlphaNumString(64));
  }
  Document doc(model::ResourcePath::Parse("/c/d").value(), fields);
  std::string bytes = codec::SerializeDocument(doc);
  for (auto _ : state) {
    auto parsed = codec::ParseDocument(bytes);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseDocument);

void BM_IndexEntryKey(benchmark::State& state) {
  auto name = model::ResourcePath::Parse("/restaurants/one").value();
  std::string values = EncodeValueAsc(Value::String("SF"));
  for (auto _ : state) {
    std::string key = index::IndexEntryKey("db", 42, values, name);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_IndexEntryKey);

}  // namespace
}  // namespace firestore

BENCHMARK_MAIN();
