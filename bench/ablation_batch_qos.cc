// Ablation A5: batch-workload tagging (paper §IV-C): "certain batch and
// internal workloads set custom tags on their RPCs, which allow schedulers
// to prioritize latency-sensitive workloads over such RPCs."
//
// A database runs 200 QPS of user-facing fetches while its own backfill job
// floods the Backend with batch work (the §VIII intra-database isolation
// motivation: "a bug in their daily batch job should not lead to rejection
// of user-facing traffic"). We compare user-facing latency with the batch
// work untagged (same band) vs tagged (yields to latency-sensitive jobs).

#include <cstdio>

#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"
#include "sim/cpu_server.h"
#include "sim/simulation.h"

using namespace firestore;

namespace {

constexpr Micros kRun = 30'000'000;
constexpr Micros kUserCost = 150;
constexpr Micros kBatchCost = 5'000;
constexpr double kUserQps = 200;
constexpr double kBatchQps = 400;  // ~2x the pool's capacity in batch work

Histogram RunTrace(bool tagged) {
  sim::Simulation sim;
  sim::CpuServer server(&sim, {.workers = 1, .fair_share = true,
                               .max_queue = 200'000});
  Rng rng(tagged ? 5 : 6);
  Histogram user_latency;
  std::function<void()> user = [&] {
    if (sim.now() >= kRun) return;
    Micros submitted = sim.now();
    server.Submit("db", kUserCost, [&, submitted] {
      user_latency.Record(static_cast<double>(sim.now() - submitted));
    });
    sim.After(static_cast<Micros>(rng.Exponential(1e6 / kUserQps)), user);
  };
  std::function<void()> batch = [&] {
    if (sim.now() >= kRun) return;
    server.Submit("db", kBatchCost, nullptr, /*batch=*/tagged);
    sim.After(static_cast<Micros>(rng.Exponential(1e6 / kBatchQps)), batch);
  };
  sim.After(1, user);
  sim.After(1, batch);
  sim.Run(kRun + 5'000'000);
  return user_latency;
}

}  // namespace

int main() {
  std::printf("=== Ablation A5: batch tagging protects user-facing "
              "latency ===\n");
  std::printf("one database: %g QPS user fetches (%lld us each) + %g QPS "
              "batch jobs (%lld us each, ~2x capacity)\n\n",
              kUserQps, static_cast<long long>(kUserCost), kBatchQps,
              static_cast<long long>(kBatchCost));
  Histogram untagged = RunTrace(false);
  Histogram tagged = RunTrace(true);
  std::printf("%-26s %12s %12s %12s\n", "batch jobs", "p50 ms", "p99 ms",
              "max ms");
  std::printf("%-26s %12.2f %12.2f %12.2f\n", "untagged (same band)",
              untagged.Quantile(0.5) / 1000.0,
              untagged.Quantile(0.99) / 1000.0, untagged.max() / 1000.0);
  std::printf("%-26s %12.2f %12.2f %12.2f\n", "tagged (yields)",
              tagged.Quantile(0.5) / 1000.0, tagged.Quantile(0.99) / 1000.0,
              tagged.max() / 1000.0);
  std::printf("\nshape check: untagged batch work starves user traffic "
              "(latency grows unboundedly with the backlog); tagged batch "
              "work caps user latency near one batch service time.\n");
  FS_CHECK_GT(untagged.Quantile(0.99), tagged.Quantile(0.99) * 5);
  return 0;
}
