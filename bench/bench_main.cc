#include "bench_main.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/metrics.h"

namespace firestore::bench {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Fixed-precision rendering keeps the file byte-stable across runs.
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string RenderParams(const BenchReport::Params& params) {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i > 0) out << ", ";
    out << "\"" << Escape(params[i].first) << "\": \""
        << Escape(params[i].second) << "\"";
  }
  out << "}";
  return out.str();
}

}  // namespace

bool SmokeMode() {
  const char* v = std::getenv("BENCH_SMOKE");
  return v != nullptr && *v != '\0';
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::AddSeries(const std::string& series, const Params& params,
                            const Histogram& latency) {
  std::ostringstream out;
  out << "{\"series\": \"" << Escape(series)
      << "\", \"params\": " << RenderParams(params)
      << ", \"count\": " << latency.count()
      << ", \"mean\": " << Num(latency.Mean())
      << ", \"p50\": " << Num(latency.Quantile(0.5))
      << ", \"p95\": " << Num(latency.Quantile(0.95))
      << ", \"p99\": " << Num(latency.Quantile(0.99))
      << ", \"min\": " << Num(latency.min())
      << ", \"max\": " << Num(latency.max()) << "}";
  entries_.push_back(out.str());
}

void BenchReport::AddScalar(const std::string& series, const Params& params,
                            double value) {
  std::ostringstream out;
  out << "{\"series\": \"" << Escape(series)
      << "\", \"params\": " << RenderParams(params)
      << ", \"value\": " << Num(value) << "}";
  entries_.push_back(out.str());
}

std::string BenchReport::Finish() {
  std::string dir = ".";
  if (const char* env = std::getenv("BENCH_OUTPUT_DIR");
      env != nullptr && *env != '\0') {
    dir = env;
  }
  std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"" << Escape(name_) << "\",\n  \"entries\": [\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    out << "    " << entries_[i] << (i + 1 < entries_.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("\nwrote %s\n", path.c_str());
  std::printf("\n=== metrics snapshot ===\n%s",
              MetricRegistry::Global().Snapshot().ToText().c_str());
  return path;
}

}  // namespace firestore::bench
