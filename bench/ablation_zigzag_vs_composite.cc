// Ablation A1: zig-zag join of single-field indexes vs a user-defined
// composite index (paper §IV-D3).
//
// "To reduce the need for user-defined indexes, Firestore joins existing
// indexes. ... We do occasionally receive support cases for query
// performance caused by slow index joins that are remediated by defining
// additional indexes."
//
// We run `city == X AND type == Y` at varying predicate selectivities and
// compare index rows scanned and seeks for the zig-zag plan (joining the
// automatic (city) and (type) indexes) against the composite (city, type)
// plan. The join degrades when both predicates are individually weak but
// jointly selective — exactly the support-case regime.

#include <cstdio>

#include "common/logging.h"
#include "common/random.h"
#include "service/service.h"

using namespace firestore;

namespace {
model::FieldPath F(const std::string& f) {
  return model::FieldPath::Parse(f).value();
}
}  // namespace

int main() {
  RealClock clock;
  service::FirestoreService service(&clock);
  const std::string db = "projects/bench/databases/join";
  FS_CHECK_OK(service.CreateDatabase(db));
  Rng rng(41);

  // 20k restaurants; `city` in {c0..c9}, `type` in {t0..t9} uniformly, but
  // the combination (c0, t0) is rare: both predicates are weak (10%) alone
  // and strong together.
  constexpr int kDocs = 20'000;
  int joint = 0;
  for (int i = 0; i < kDocs; ++i) {
    int c = static_cast<int>(rng.Uniform(0, 9));
    int t = static_cast<int>(rng.Uniform(0, 9));
    if (c == 0 && t == 0 && joint >= 20) t = 1;  // keep the joint set tiny
    if (c == 0 && t == 0) ++joint;
    auto result = service.Commit(
        db, {backend::Mutation::Set(
                model::ResourcePath::Parse("/restaurants/r" +
                                           std::to_string(i))
                    .value(),
                {{"city", model::Value::String("c" + std::to_string(c))},
                 {"type", model::Value::String("t" + std::to_string(t))}})});
    FS_CHECK(result.ok());
  }

  query::Query q(model::ResourcePath(), "restaurants");
  q.Where(F("city"), query::Operator::kEqual, model::Value::String("c0"))
      .Where(F("type"), query::Operator::kEqual, model::Value::String("t0"));

  auto run = [&](const char* label) {
    auto start = std::chrono::steady_clock::now();
    auto r = service.RunQuery(db, q);
    auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    FS_CHECK(r.ok());
    std::printf("%-22s %8zu results %10lld rows scanned %8lld seeks "
                "%8lld fetches %10lld us wall\n",
                label, r->result.documents.size(),
                static_cast<long long>(r->result.stats.index_rows_scanned),
                static_cast<long long>(r->result.stats.seeks),
                static_cast<long long>(r->result.stats.entities_fetched),
                static_cast<long long>(micros));
    std::printf("  plan: %s\n", r->plan_description.c_str());
    return r->result.documents.size();
  };

  std::printf("=== Ablation A1: zig-zag join vs composite index ===\n");
  std::printf("dataset: %d docs, 10x10 city/type grid, joint (c0,t0) "
              "set has %d docs\n\n",
              kDocs, joint);
  size_t zigzag_results = run("zig-zag (auto indexes)");

  // Now define the composite index the support engineer would recommend.
  FS_CHECK_OK(service
                  .CreateCompositeIndex(
                      db, "restaurants",
                      {{F("city"), index::SegmentKind::kAscending},
                       {F("type"), index::SegmentKind::kAscending}})
                  .status());
  size_t composite_results = run("composite (city,type)");
  FS_CHECK_EQ(zigzag_results, composite_results);

  std::printf("\nshape check: identical results; the composite plan scans "
              "~|result| rows while the zig-zag plan leapfrogs through the "
              "two ~10%%-selective single-field ranges.\n");
  return 0;
}
