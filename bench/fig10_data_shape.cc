// "Data Shape" experiments (paper §V-B2): commit latency at 10 QPS as a
// function of (a) document size — a single string field from 10 KB to
// ~1 MiB — and (b) the number of indexed numeric fields from 1 to 500,
// which linearly increases the index entries written per commit.
//
// Methodology mirrors the paper: the database is pre-populated and
// pre-split so that adding a single document requires a distributed Spanner
// commit. Every commit is a real engine commit (real index-entry counts and
// 2PC participants); the latency charged follows the multi-region model.
//
// Expected shape: latency grows roughly linearly in both document size and
// field count; field count is the steeper axis because each field adds
// ascending+descending index entries across tablets.

#include "common/logging.h"
#include <cstdio>

#include "common/histogram.h"
#include "service/service.h"
#include "sim/latency_model.h"
#include "sim/simulation.h"

using namespace firestore;

namespace {

struct Setup {
  sim::Simulation sim{1'000'000'000};
  std::unique_ptr<service::FirestoreService> service;
  std::string db = "projects/bench/databases/shape";

  Setup() {
    service = std::make_unique<service::FirestoreService>(sim.clock());
    FS_CHECK_OK(service->CreateDatabase(db));
    // Pre-populate and pre-split so commits span tablets (paper: "The
    // experiment was preceded by initializing the database with enough data
    // to ensure that commits spanned multiple tablets").
    Rng rng(10);
    for (int i = 0; i < 400; ++i) {
      auto r = service->Commit(
          db, {backend::Mutation::Set(
                  model::ResourcePath::Parse("/docs/seed" +
                                             std::to_string(i))
                      .value(),
                  {{"f", model::Value::String(rng.AlphaNumString(200))}})});
      FS_CHECK(r.ok());
    }
    service->spanner().RunLoadSplitting(/*load_threshold=*/64);
  }

  // Commits one document and returns the modeled latency in micros.
  double CommitOnce(const std::string& path, model::Map fields, Rng& rng,
                    const sim::LatencyModel& latency,
                    int64_t payload_bytes) {
    auto result = service->Commit(
        db, {backend::Mutation::Set(
                model::ResourcePath::Parse(path).value(),
                std::move(fields))});
    FS_CHECK(result.ok());
    Micros lat = latency.RpcHop(rng) * 4 +
                 latency.SpannerCommit(rng, result->spanner_participants,
                                       payload_bytes,
                                       result->index_entries_written);
    // 10 QPS pacing in virtual time.
    sim.After(100'000, [] {});
    sim.Run();
    return static_cast<double>(lat);
  }
};

}  // namespace

int main() {
  sim::LatencyModel latency;
  Rng rng(99);

  std::printf("=== Figure 10a: commit latency vs document size "
              "(single string field, 10 QPS) ===\n");
  std::printf("%12s %12s %12s %12s\n", "size KB", "p50 ms", "p95 ms",
              "p99 ms");
  {
    Setup setup;
    int run = 0;
    for (size_t kb : {10, 50, 100, 250, 500, 950}) {
      Histogram h;
      for (int i = 0; i < 40; ++i) {
        model::Map fields;
        fields["field0"] =
            model::Value::String(std::string(kb * 1024, 'x'));
        h.Record(setup.CommitOnce(
            "/docs/size" + std::to_string(run++) , std::move(fields), rng,
            latency, static_cast<int64_t>(kb * 1024)));
      }
      std::printf("%12zu %12.2f %12.2f %12.2f\n", kb,
                  h.Quantile(0.5) / 1000.0, h.Quantile(0.95) / 1000.0,
                  h.Quantile(0.99) / 1000.0);
    }
  }

  std::printf("\n=== Figure 10b: commit latency vs indexed fields "
              "(numeric values, 10 QPS) ===\n");
  std::printf("%12s %14s %12s %12s %12s\n", "fields", "index entries",
              "p50 ms", "p95 ms", "p99 ms");
  {
    Setup setup;
    int run = 0;
    for (int fields_count : {1, 10, 50, 100, 250, 500}) {
      Histogram h;
      int64_t entries = 0;
      for (int i = 0; i < 40; ++i) {
        model::Map fields;
        for (int f = 0; f < fields_count; ++f) {
          fields["f" + std::to_string(f)] = model::Value::Integer(f);
        }
        std::string path = "/docs/fields" + std::to_string(run++);
        auto result = setup.service->Commit(
            setup.db,
            {backend::Mutation::Set(
                model::ResourcePath::Parse(path).value(), fields)});
        FS_CHECK(result.ok());
        entries = result->index_entries_written;
        Micros lat =
            latency.RpcHop(rng) * 4 +
            latency.SpannerCommit(rng, result->spanner_participants,
                                  fields_count * 8,
                                  result->index_entries_written);
        h.Record(static_cast<double>(lat));
        setup.sim.After(100'000, [] {});
        setup.sim.Run();
      }
      std::printf("%12d %14lld %12.2f %12.2f %12.2f\n", fields_count,
                  static_cast<long long>(entries),
                  h.Quantile(0.5) / 1000.0, h.Quantile(0.95) / 1000.0,
                  h.Quantile(0.99) / 1000.0);
    }
  }
  std::printf("\npaper shape check: latency grows ~linearly with document "
              "size and with indexed-field count (index entries per commit "
              "grow linearly with fields).\n");
  return 0;
}
