// Ablation A2: the cost of the index-everything default (paper §III-B).
//
// "Automatically defining indexes simplifies development but introduces
// some risks. First, a write operation becomes more expensive because it
// needs to update more indexes, which in turn increases latency and storage
// cost." The remedy is field exemptions.
//
// We commit documents with 20 fields while exempting an increasing number
// of them, and report the index entries written per commit, the
// IndexEntries storage footprint, and the modeled commit latency.

#include <cstdio>

#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"
#include "firestore/index/layout.h"
#include "service/service.h"
#include "sim/latency_model.h"

using namespace firestore;

namespace {
model::FieldPath F(const std::string& f) {
  return model::FieldPath::Parse(f).value();
}
}  // namespace

int main() {
  constexpr int kFields = 20;
  constexpr int kDocsPerLevel = 200;
  sim::LatencyModel latency;
  Rng rng(42);

  std::printf("=== Ablation A2: write cost vs automatic-index exemptions "
              "(%d-field documents) ===\n",
              kFields);
  std::printf("%10s %16s %18s %14s\n", "exempted", "entries/commit",
              "IndexEntries rows", "commit p50 ms");
  for (int exempted : {0, 5, 10, 15, 19}) {
    RealClock clock;
    service::FirestoreService service(&clock);
    std::string db = "projects/bench/databases/exempt";
    FS_CHECK_OK(service.CreateDatabase(db));
    for (int e = 0; e < exempted; ++e) {
      FS_CHECK_OK(service.AddFieldExemption(db, "docs",
                                            F("f" + std::to_string(e))));
    }
    Histogram lat;
    int64_t entries_per_commit = 0;
    for (int i = 0; i < kDocsPerLevel; ++i) {
      model::Map fields;
      for (int f = 0; f < kFields; ++f) {
        fields["f" + std::to_string(f)] =
            model::Value::Integer(rng.Uniform(0, 1000));
      }
      auto result = service.Commit(
          db, {backend::Mutation::Set(
                  model::ResourcePath::Parse("/docs/d" + std::to_string(i))
                      .value(),
                  std::move(fields))});
      FS_CHECK(result.ok());
      entries_per_commit = result->index_entries_written;
      lat.Record(static_cast<double>(latency.SpannerCommit(
          rng, result->spanner_participants, kFields * 8,
          result->index_entries_written)));
    }
    // Count actual IndexEntries rows.
    auto rows = service.spanner().SnapshotScan(
        index::kIndexEntriesTable, "", "",
        service.spanner().StrongReadTimestamp());
    FS_CHECK(rows.ok());
    std::printf("%10d %16lld %18zu %14.2f\n", exempted,
                static_cast<long long>(entries_per_commit), rows->size(),
                lat.Quantile(0.5) / 1000.0);
  }
  std::printf("\nshape check: entries per commit fall linearly with "
              "exemptions (2 per indexed field: asc+desc); storage and "
              "commit latency fall with them.\n");
  return 0;
}
