// Figure 7: YCSB read latencies (p50/p99) vs target throughput, workloads A
// (50% reads / 50% updates) and B (95% reads / 5% updates), uniform keys,
// 900-byte documents (paper §V-B1).
//
// Expected shape (paper): p50 roughly constant across throughput levels; p99
// rises at the higher levels, more on the write-heavy workload A (rapid
// ramp-up outpaces autoscaling); workload B sees lower latencies than A.
//
// Every operation performs the real engine work (strong reads, committed
// writes with index maintenance) against a multi-region latency model in
// virtual time.

#include "common/logging.h"
#include <cstdio>

#include "ycsb/ycsb.h"

using namespace firestore;

int main() {
  const double levels[] = {50, 100, 200, 400, 800, 1600};
  std::printf("=== Figure 7: YCSB read latency vs target QPS "
              "(multi-region, strong reads) ===\n");
  for (const ycsb::WorkloadSpec& spec :
       {ycsb::WorkloadA(800), ycsb::WorkloadB(800)}) {
    std::printf("\nworkload %s (%d%% reads)\n", spec.name.c_str(),
                static_cast<int>(spec.read_fraction * 100));
    std::printf("%10s %12s %12s %12s %12s\n", "targetQPS", "achievedQPS",
                "read p50 ms", "read p95 ms", "read p99 ms");
    for (double qps : levels) {
      ycsb::YcsbRunner::Options options;
      // Measure from t=0: the paper's elevated p99 at high QPS comes from
      // the abrupt YCSB ramp outrunning autoscaling ("capacity is not
      // pre-allocated for individual databases"), so the cold-start
      // transient belongs in the measurement.
      options.measure_duration = 15'000'000;
      options.warmup_duration = 0;
      options.initial_backend_workers = 1;
      options.backend_read_cost = 400;
      options.backend_update_cost = 1200;
      ycsb::YcsbRunner runner(spec, options, /*seed=*/7);
      ycsb::RunResult r = runner.RunLevel(qps);
      std::printf("%10.0f %12.0f %12.2f %12.2f %12.2f\n", r.target_qps,
                  r.achieved_qps, r.read_latency.Quantile(0.5) / 1000.0,
                  r.read_latency.Quantile(0.95) / 1000.0,
                  r.read_latency.Quantile(0.99) / 1000.0);
    }
  }
  std::printf("\npaper shape check: p50 flat across levels; p99 grows at "
              "high QPS, more under workload A.\n");
  return 0;
}
