// Figure 6: production statistics — variance across tenant databases in
// storage size, throughput (QPS) and active real-time queries, normalized to
// the median (paper §V-A: boxplots spanning ~9 orders of magnitude).
//
// Substitution (DESIGN.md): the paper measures 4M production databases; we
// (a) exercise the real multi-tenant path with a few hundred live tenant
// databases of wildly varying size sharing one Spanner instance, and
// (b) report the boxplot over a 100k-tenant synthetic population drawn from
// the heavy-tailed (lognormal) shape such fleets exhibit, calibrated so the
// max/median ratio spans the paper's ~9 decades.

#include "common/logging.h"
#include <cstdio>
#include <vector>

#include "backend/types.h"
#include "common/histogram.h"
#include "common/random.h"
#include "service/service.h"

using namespace firestore;

namespace {

void PrintBoxplot(const char* metric, std::vector<double> values) {
  BoxplotStats s = ComputeBoxplot(values);
  double median = s.p50 > 0 ? s.p50 : 1;
  std::printf("%-28s %9.2e %9.2e %9.2e %9.2e %9.2e %9.2e %9.2e\n", metric,
              s.min / median, s.p1 / median, s.p25 / median, 1.0,
              s.p75 / median, s.p99 / median, s.max / median);
}

}  // namespace

int main() {
  std::printf("=== Figure 6: per-database variance, normalized to median ===\n");

  // --- Part (a): real multi-tenant service with live tenants ---
  RealClock clock;
  service::FirestoreService service(&clock);
  Rng rng(6);
  constexpr int kLiveTenants = 200;
  std::vector<double> live_storage, live_ops;
  for (int i = 0; i < kLiveTenants; ++i) {
    std::string db = "projects/t" + std::to_string(i) + "/databases/d";
    FS_CHECK_OK(service.CreateDatabase(db));
    // Lognormal document counts: most tenants tiny, a few large.
    int docs = static_cast<int>(rng.LogNormal(1.2, 1.6)) + 1;
    docs = std::min(docs, 2000);
    for (int d = 0; d < docs; ++d) {
      auto result = service.Commit(
          db, {backend::Mutation::Set(
                  model::ResourcePath::Parse("/items/i" + std::to_string(d))
                      .value(),
                  {{"payload",
                    model::Value::String(rng.AlphaNumString(
                        static_cast<size_t>(rng.Uniform(20, 400))))}})});
      FS_CHECK(result.ok());
    }
    backend::UsageCounters usage = service.billing().Usage(db);
    live_storage.push_back(static_cast<double>(usage.storage_bytes) + 1);
    live_ops.push_back(static_cast<double>(usage.document_writes) + 1);
  }
  std::printf("\n[a] %d live tenants sharing one Spanner instance "
              "(real storage accounting)\n",
              kLiveTenants);
  std::printf("%-28s %9s %9s %9s %9s %9s %9s %9s\n", "metric", "min", "p1",
              "p25", "p50", "p75", "p99", "max");
  PrintBoxplot("storage bytes (live)", live_storage);
  PrintBoxplot("writes (live)", live_ops);

  // --- Part (b): full-population synthetic boxplots ---
  // sigma ~4.7 puts the max of 100k lognormal draws ~9 decades over the
  // median, matching the paper's spread.
  constexpr int kPopulation = 100'000;
  std::vector<double> storage, qps, active_queries;
  storage.reserve(kPopulation);
  qps.reserve(kPopulation);
  active_queries.reserve(kPopulation);
  for (int i = 0; i < kPopulation; ++i) {
    storage.push_back(rng.LogNormal(10.0, 4.8));
    qps.push_back(rng.LogNormal(0.0, 4.7));
    // Active real-time queries: spread is smaller ("several hundred
    // thousand times the median").
    active_queries.push_back(rng.LogNormal(0.0, 3.1));
  }
  std::printf("\n[b] synthetic population of %d tenants "
              "(heavy-tailed, values relative to median)\n",
              kPopulation);
  std::printf("%-28s %9s %9s %9s %9s %9s %9s %9s\n", "metric", "min", "p1",
              "p25", "p50", "p75", "p99", "max");
  PrintBoxplot("storage size", storage);
  PrintBoxplot("throughput (QPS)", qps);
  PrintBoxplot("active real-time queries", active_queries);
  std::printf("\npaper shape check: storage and QPS max/median span >= 9 "
              "decades; active queries ~5-6 decades.\n");
  return 0;
}
