// Ablation A3: sequential-value index hotspotting (paper §III-B, §IV-D2).
//
// "fields with sequentially increasing values, such as time, introduce
// hotspots that limit maximum write throughput" — every insert appends to
// the tail of the (timestamp) index, so Spanner's load-based splitting
// cannot spread the load: all writes land in the last tablet no matter how
// many splits happen. Random-valued fields spread across tablets.
//
// We insert documents whose indexed field is (a) a monotonically increasing
// timestamp and (b) a uniformly random value, run load-based splitting
// periodically, and report how concentrated the index write load is.

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "common/random.h"
#include "firestore/index/layout.h"
#include "service/service.h"

using namespace firestore;

namespace {

struct HotspotResult {
  size_t tablets = 0;
  double max_load_share = 0;  // fraction of recent writes on hottest tablet
};

HotspotResult Run(bool sequential) {
  RealClock clock;
  service::FirestoreService service(&clock);
  const std::string db = "projects/bench/databases/hotspot";
  FS_CHECK_OK(service.CreateDatabase(db));
  Rng rng(sequential ? 3 : 4);

  constexpr int kDocs = 6000;
  constexpr int kSplitEvery = 500;
  int64_t ts_counter = 1'000'000;
  for (int i = 0; i < kDocs; ++i) {
    int64_t v = sequential ? ts_counter++ : rng.Uniform(0, 1'000'000'000);
    auto result = service.Commit(
        db, {backend::Mutation::Set(
                model::ResourcePath::Parse("/events/e" + std::to_string(i))
                    .value(),
                {{"time", model::Value::Integer(v)}})});
    FS_CHECK(result.ok());
    // Maintenance between batches; the final batch is left unsplit so its
    // load counters survive for measurement (splitting resets them).
    if ((i + 1) % kSplitEvery == 0 && (i + 1) <= kDocs - kSplitEvery) {
      service.spanner().RunLoadSplitting(/*load_threshold=*/200);
    }
  }
  // Measure where the final burst of index writes landed.
  const spanner::Table* table =
      service.spanner().GetTable(index::kIndexEntriesTable);
  HotspotResult result;
  result.tablets = table->tablet_count();
  int64_t total = 0, hottest = 0;
  for (const auto& tablet : table->tablets()) {
    total += tablet->stats().writes.load();
    hottest = std::max(hottest, tablet->stats().writes.load());
  }
  result.max_load_share =
      total > 0 ? static_cast<double>(hottest) / static_cast<double>(total)
                : 0;
  return result;
}

}  // namespace

int main() {
  std::printf("=== Ablation A3: sequential vs random indexed values ===\n");
  HotspotResult seq = Run(/*sequential=*/true);
  HotspotResult rnd = Run(/*sequential=*/false);
  std::printf("%-26s %10s %26s\n", "indexed field", "tablets",
              "hottest-tablet write share");
  std::printf("%-26s %10zu %25.0f%%\n", "sequential timestamp",
              seq.tablets, seq.max_load_share * 100);
  std::printf("%-26s %10zu %25.0f%%\n", "uniform random", rnd.tablets,
              rnd.max_load_share * 100);
  std::printf("\nshape check: with sequential values the write load "
              "concentrates on the tail tablet (splitting cannot help — "
              "\"this workload is inherently difficult to split\"); random "
              "values spread across tablets.\n");
  FS_CHECK_GT(seq.max_load_share, rnd.max_load_share * 2);
  return 0;
}
