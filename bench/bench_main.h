// Shared benchmark reporting harness (docs/OBSERVABILITY.md).
//
// Each bench binary keeps its human-readable stdout tables and additionally
// records measured distributions into a BenchReport, which writes a
// machine-readable BENCH_<name>.json and prints the process-wide metrics
// snapshot on Finish(). The JSON is fully deterministic for a fixed seed
// (no wall-clock content), so CI can diff two same-seed runs byte-for-byte.

#ifndef FIRESTORE_BENCH_BENCH_MAIN_H_
#define FIRESTORE_BENCH_BENCH_MAIN_H_

#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace firestore::bench {

// True when $BENCH_SMOKE is set and non-empty: binaries should run a
// reduced parameter sweep suitable for CI smoke runs.
bool SmokeMode();

class BenchReport {
 public:
  // Sweep parameters that produced a measurement, e.g.
  // {{"workload", "A"}, {"qps", "800"}}. Order is preserved in the JSON.
  using Params = std::vector<std::pair<std::string, std::string>>;

  explicit BenchReport(std::string name);

  // One measured latency distribution (micros) under `series`.
  void AddSeries(const std::string& series, const Params& params,
                 const Histogram& latency);

  // One scalar measurement, for benches that report a single number per
  // configuration rather than a distribution.
  void AddScalar(const std::string& series, const Params& params,
                 double value);

  // Writes BENCH_<name>.json into $BENCH_OUTPUT_DIR (default: the working
  // directory), prints the process-wide metrics snapshot to stdout, and
  // returns the path written.
  std::string Finish();

 private:
  std::string name_;
  std::vector<std::string> entries_;  // pre-rendered JSON objects
};

}  // namespace firestore::bench

#endif  // FIRESTORE_BENCH_BENCH_MAIN_H_
