// Figure 8: YCSB update latencies (p50/p99) vs target throughput, workloads
// A and B (paper §V-B1). Same methodology as Figure 7; this binary reports
// the update-side distributions.
//
// Expected shape: updates are substantially slower than reads (multi-region
// commit quorum + index maintenance); p50 roughly flat; p99 inflates at high
// target QPS on workload A because the abrupt ramp outruns Backend
// autoscaling.

#include "common/logging.h"
#include <cstdio>
#include <vector>

#include "bench_main.h"
#include "ycsb/ycsb.h"

using namespace firestore;

int main() {
  const bool smoke = bench::SmokeMode();
  const std::vector<double> levels =
      smoke ? std::vector<double>{50, 200, 800}
            : std::vector<double>{50, 100, 200, 400, 800, 1600};
  bench::BenchReport report("fig8_ycsb_update_latency");
  std::printf("=== Figure 8: YCSB update latency vs target QPS "
              "(multi-region) ===\n");
  for (const ycsb::WorkloadSpec& spec :
       {ycsb::WorkloadA(800), ycsb::WorkloadB(800)}) {
    std::printf("\nworkload %s (%d%% updates)\n", spec.name.c_str(),
                static_cast<int>((1 - spec.read_fraction) * 100));
    std::printf("%10s %12s %12s %12s %12s\n", "targetQPS", "achievedQPS",
                "upd p50 ms", "upd p95 ms", "upd p99 ms");
    for (double qps : levels) {
      ycsb::YcsbRunner::Options options;
      // Measure from t=0: the paper's elevated p99 at high QPS comes from
      // the abrupt YCSB ramp outrunning autoscaling ("capacity is not
      // pre-allocated for individual databases"), so the cold-start
      // transient belongs in the measurement.
      options.measure_duration = smoke ? 3'000'000 : 15'000'000;
      options.warmup_duration = 0;
      options.initial_backend_workers = 1;
      options.backend_read_cost = 400;
      options.backend_update_cost = 1200;
      ycsb::YcsbRunner runner(spec, options, /*seed=*/8);
      ycsb::RunResult r = runner.RunLevel(qps);
      std::printf("%10.0f %12.0f %12.2f %12.2f %12.2f\n", r.target_qps,
                  r.achieved_qps, r.update_latency.Quantile(0.5) / 1000.0,
                  r.update_latency.Quantile(0.95) / 1000.0,
                  r.update_latency.Quantile(0.99) / 1000.0);
      report.AddSeries("update_latency_us",
                       {{"workload", spec.name},
                        {"qps", std::to_string(static_cast<int>(qps))}},
                       r.update_latency);
    }
  }
  std::printf("\npaper shape check: update p50 flat and several times read "
              "p50; p99 grows with load, most on workload A.\n");
  report.Finish();
  return 0;
}
