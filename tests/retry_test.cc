#include "common/retry.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"

namespace firestore {
namespace {

TEST(RetryClassificationTest, GenericRetryableCodes) {
  EXPECT_TRUE(IsRetryableStatus(UnavailableError("x")));
  EXPECT_TRUE(IsRetryableStatus(AbortedError("x")));
  EXPECT_TRUE(IsRetryableStatus(ResourceExhaustedError("x")));
  EXPECT_FALSE(IsRetryableStatus(DeadlineExceededError("x")));
  EXPECT_FALSE(IsRetryableStatus(NotFoundError("x")));
  EXPECT_FALSE(IsRetryableStatus(PermissionDeniedError("x")));
  EXPECT_FALSE(IsRetryableStatus(Status::Ok()));
}

TEST(RetryClassificationTest, WritePathRetriesLockWaitTimeoutOnly) {
  // A lock-wait timeout happens before any data is applied: safe to retry.
  EXPECT_TRUE(
      IsRetryableWriteStatus(DeadlineExceededError("lock wait timeout")));
  // An unknown-outcome commit may have landed: retrying could duplicate it.
  EXPECT_FALSE(IsRetryableWriteStatus(
      DeadlineExceededError("Spanner commit outcome unknown")));
  EXPECT_TRUE(IsRetryableWriteStatus(AbortedError("wounded")));
}

TEST(RetryHintTest, RoundTripsThroughStatusMessage) {
  Status tagged = WithRetryAfter(ResourceExhaustedError("over limit"), 12345);
  EXPECT_EQ(tagged.code(), StatusCode::kResourceExhausted);
  std::optional<Micros> hint = RetryAfterHint(tagged);
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, 12345);
  EXPECT_FALSE(RetryAfterHint(ResourceExhaustedError("no hint")).has_value());
  EXPECT_TRUE(WithRetryAfter(Status::Ok(), 5).ok());
}

TEST(BackoffTest, DecorrelatedJitterStaysWithinBounds) {
  RetryPolicy policy;
  policy.initial_backoff = 1'000;
  policy.max_backoff = 50'000;
  Rng rng(42);
  Micros prev = 0;
  for (int i = 0; i < 100; ++i) {
    Micros d = NextBackoff(policy, rng, &prev);
    EXPECT_GE(d, policy.initial_backoff);
    EXPECT_LE(d, policy.max_backoff);
  }
}

TEST(BackoffTest, DeterministicPerSeed) {
  RetryPolicy policy;
  auto schedule = [&policy](uint64_t seed) {
    Rng rng(seed);
    Micros prev = 0;
    std::vector<Micros> out;
    for (int i = 0; i < 10; ++i) out.push_back(NextBackoff(policy, rng, &prev));
    return out;
  };
  EXPECT_EQ(schedule(1), schedule(1));
  EXPECT_NE(schedule(1), schedule(2));
}

TEST(BackoffTest, PlainExponentialWithoutJitter) {
  RetryPolicy policy;
  policy.initial_backoff = 1'000;
  policy.max_backoff = 10'000;
  policy.multiplier = 2.0;
  policy.decorrelated_jitter = false;
  Rng rng(1);
  Micros prev = 0;
  EXPECT_EQ(NextBackoff(policy, rng, &prev), 1'000);
  EXPECT_EQ(NextBackoff(policy, rng, &prev), 2'000);
  EXPECT_EQ(NextBackoff(policy, rng, &prev), 4'000);
  EXPECT_EQ(NextBackoff(policy, rng, &prev), 8'000);
  EXPECT_EQ(NextBackoff(policy, rng, &prev), 10'000);  // capped
  EXPECT_EQ(NextBackoff(policy, rng, &prev), 10'000);
}

TEST(RetryStateTest, StopsAtMaxAttempts) {
  ManualClock clock(0);
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryState state(policy, &clock, 1);
  EXPECT_TRUE(state.ShouldRetry(UnavailableError("x")));
  EXPECT_TRUE(state.ShouldRetry(UnavailableError("x")));
  EXPECT_FALSE(state.ShouldRetry(UnavailableError("x")));  // 3rd attempt used
  EXPECT_EQ(state.attempts(), 3);
  state.Reset();
  EXPECT_TRUE(state.ShouldRetry(UnavailableError("x")));
}

TEST(RetryStateTest, NonRetryableDoesNotConsumeBudget) {
  ManualClock clock(0);
  RetryState state(RetryPolicy(), &clock, 1);
  EXPECT_FALSE(state.ShouldRetry(NotFoundError("x")));
  EXPECT_FALSE(state.ShouldRetry(Status::Ok()));
}

TEST(RetryStateTest, HonorsRetryAfterHintAsLowerBound) {
  ManualClock clock(0);
  RetryPolicy policy;
  policy.initial_backoff = 10;
  policy.max_backoff = 100;
  RetryState state(policy, &clock, 1);
  Micros delay = 0;
  Status hinted =
      WithRetryAfter(ResourceExhaustedError("over limit"), 5'000'000);
  EXPECT_TRUE(state.ShouldRetry(hinted, &delay));
  EXPECT_GE(delay, 5'000'000);
}

TEST(RetryStateTest, RespectsAbsoluteDeadline) {
  ManualClock clock(1'000'000);
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff = 10'000;
  policy.deadline = 1'005'000;  // only ~5ms of budget left
  RetryState state(policy, &clock, 1);
  // Any computed delay (>= 10ms) lands past the deadline.
  EXPECT_FALSE(state.ShouldRetry(UnavailableError("x")));
}

TEST(RetryLoopTest, RetriesUntilSuccess) {
  ManualClock clock(0);
  int calls = 0;
  Status result = RetryLoop(RetryPolicy(), &clock, 1, [&calls]() {
    ++calls;
    return calls < 3 ? UnavailableError("flaky") : Status::Ok();
  });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryLoopTest, ReturnsLastErrorAfterBudget) {
  ManualClock clock(0);
  RetryPolicy policy;
  policy.max_attempts = 4;
  int calls = 0;
  std::vector<Micros> slept;
  Status result = RetryLoop(
      policy, &clock, 1,
      [&calls]() {
        ++calls;
        return UnavailableError("always");
      },
      [&slept](Micros d) { slept.push_back(d); });
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(slept.size(), 3u);  // no sleep after the final attempt
}

TEST(RetryLoopTest, DoesNotRetryPermanentErrors) {
  ManualClock clock(0);
  int calls = 0;
  Status result = RetryLoop(RetryPolicy(), &clock, 1, [&calls]() {
    ++calls;
    return PermissionDeniedError("no");
  });
  EXPECT_EQ(result.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace firestore
