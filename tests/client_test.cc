// Tests of the Mobile/Web SDK simulation: disconnected operation, latency
// compensation, reconciliation, persistence, optimistic transactions.

#include <gtest/gtest.h>

#include "client/client.h"
#include "service/service.h"
#include "tests/test_support.h"

namespace firestore::client {
namespace {

using backend::Mutation;
using model::Document;
using model::Map;
using model::Value;
using query::Operator;
using query::Query;
using testing::Field;
using testing::Path;

constexpr char kDb[] = "projects/p/databases/d";

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : clock_(1'000'000'000), service_(&clock_) {
    FS_CHECK_OK(service_.CreateDatabase(kDb));
    FirestoreClient::Options options;
    options.third_party = false;  // bypass rules for these tests
    client_ = std::make_unique<FirestoreClient>(&service_, kDb,
                                                rules::AuthContext{}, options);
  }

  void Pump() {
    client_->Pump();
    clock_.AdvanceBy(100'000);
    service_.Pump();
    service_.Pump();
  }

  ManualClock clock_;
  service::FirestoreService service_;
  std::unique_ptr<FirestoreClient> client_;
};

struct ViewRecorder {
  std::vector<ViewSnapshot> views;
  ViewCallback Callback() {
    return [this](const ViewSnapshot& v) { views.push_back(v); };
  }
  const ViewSnapshot& last() const { return views.back(); }
  std::vector<std::string> LastIds() const {
    std::vector<std::string> ids;
    for (const auto& doc : last().documents) {
      ids.push_back(doc.name().last_segment());
    }
    return ids;
  }
};

// ---------------------------------------------------------------------------
// Basic reads/writes

TEST_F(ClientTest, WriteIsAcknowledgedLocallyThenFlushed) {
  ASSERT_TRUE(client_->Set(Path("/notes/n1"),
                           {{"text", Value::String("hello")}})
                  .ok());
  // Visible locally before any network round trip.
  auto local = client_->Get(Path("/notes/n1"));
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(local->has_value());
  EXPECT_TRUE(client_->local_store().HasPending());
  // After pumping, the server has it and the queue is drained.
  Pump();
  EXPECT_FALSE(client_->local_store().HasPending());
  auto server = service_.Get(kDb, Path("/notes/n1"));
  ASSERT_TRUE(server.ok());
  EXPECT_TRUE(server->has_value());
  EXPECT_EQ(client_->writes_flushed(), 1);
}

TEST_F(ClientTest, GetFallsThroughToServerAndCaches) {
  ASSERT_TRUE(service_
                  .Commit(kDb, {Mutation::Set(Path("/notes/remote"),
                                              {{"v", Value::Integer(1)}})})
                  .ok());
  auto doc = client_->Get(Path("/notes/remote"));
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->has_value());
  EXPECT_EQ(client_->local_store().cached_documents(), 1u);
  // Now offline: the cached copy still serves.
  client_->SetNetworkEnabled(false);
  auto cached = client_->Get(Path("/notes/remote"));
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->has_value());
}

TEST_F(ClientTest, OfflineGetOfUncachedDocumentFails) {
  client_->SetNetworkEnabled(false);
  auto doc = client_->Get(Path("/notes/never-seen"));
  EXPECT_EQ(doc.status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Disconnected operation

TEST_F(ClientTest, OfflineWritesQueueAndFlushOnReconnect) {
  client_->SetNetworkEnabled(false);
  ASSERT_TRUE(client_->Set(Path("/notes/a"), {{"v", Value::Integer(1)}}).ok());
  ASSERT_TRUE(client_->Set(Path("/notes/b"), {{"v", Value::Integer(2)}}).ok());
  EXPECT_EQ(client_->local_store().pending().size(), 2u);
  // Server has nothing yet.
  EXPECT_FALSE(service_.Get(kDb, Path("/notes/a"))->has_value());
  // Reconnect: automatic reconciliation.
  client_->SetNetworkEnabled(true);
  Pump();
  EXPECT_FALSE(client_->local_store().HasPending());
  EXPECT_TRUE(service_.Get(kDb, Path("/notes/a"))->has_value());
  EXPECT_TRUE(service_.Get(kDb, Path("/notes/b"))->has_value());
}

TEST_F(ClientTest, OfflineQueryServesFromCache) {
  ASSERT_TRUE(service_
                  .Commit(kDb, {Mutation::Set(Path("/notes/x"),
                                              {{"v", Value::Integer(1)}})})
                  .ok());
  Query q(model::ResourcePath(), "notes");
  auto online = client_->RunQuery(q);  // populates the cache
  ASSERT_TRUE(online.ok());
  EXPECT_FALSE(online->from_cache);
  client_->SetNetworkEnabled(false);
  auto offline = client_->RunQuery(q);
  ASSERT_TRUE(offline.ok());
  EXPECT_TRUE(offline->from_cache);
  ASSERT_EQ(offline->documents.size(), 1u);
}

TEST_F(ClientTest, LastUpdateWinsOnReconnect) {
  // Another writer updates the doc while this client is offline with its own
  // queued write; the offline client's write flushes later and wins (blind
  // write, last-update-wins, paper §III-E).
  ASSERT_TRUE(client_->Set(Path("/notes/n"), {{"v", Value::Integer(1)}}).ok());
  Pump();
  client_->SetNetworkEnabled(false);
  ASSERT_TRUE(client_->Set(Path("/notes/n"),
                           {{"v", Value::Integer(100)}}).ok());
  ASSERT_TRUE(service_
                  .Commit(kDb, {Mutation::Set(Path("/notes/n"),
                                              {{"v", Value::Integer(50)}})})
                  .ok());
  client_->SetNetworkEnabled(true);
  Pump();
  auto server = service_.Get(kDb, Path("/notes/n"));
  EXPECT_EQ((*server)->GetField(Field("v"))->integer_value(), 100);
}

// ---------------------------------------------------------------------------
// Listeners and latency compensation

TEST_F(ClientTest, ListenerSeesLocalWriteImmediately) {
  ViewRecorder rec;
  Query q(model::ResourcePath(), "notes");
  ASSERT_TRUE(client_->OnSnapshot(q, rec.Callback()).ok());
  ASSERT_EQ(rec.views.size(), 1u);  // initial empty snapshot
  ASSERT_TRUE(client_->Set(Path("/notes/fast"),
                           {{"v", Value::Integer(1)}}).ok());
  // The view updated synchronously, before the server saw anything.
  ASSERT_EQ(rec.views.size(), 2u);
  EXPECT_TRUE(rec.last().has_pending_writes);
  EXPECT_EQ(rec.LastIds(), (std::vector<std::string>{"fast"}));
  // After the flush + server round trip, pending clears.
  Pump();
  ASSERT_GE(rec.views.size(), 3u);
  EXPECT_FALSE(rec.last().has_pending_writes);
  EXPECT_EQ(rec.LastIds(), (std::vector<std::string>{"fast"}));
}

TEST_F(ClientTest, ListenerSeesRemoteChanges) {
  ViewRecorder rec;
  Query q(model::ResourcePath(), "notes");
  ASSERT_TRUE(client_->OnSnapshot(q, rec.Callback()).ok());
  ASSERT_TRUE(service_
                  .Commit(kDb, {Mutation::Set(Path("/notes/other"),
                                              {{"v", Value::Integer(7)}})})
                  .ok());
  Pump();
  EXPECT_EQ(rec.LastIds(), (std::vector<std::string>{"other"}));
  EXPECT_FALSE(rec.last().from_cache);
}

TEST_F(ClientTest, OfflineListenerKeepsFiringOnLocalWrites) {
  ViewRecorder rec;
  Query q(model::ResourcePath(), "notes");
  ASSERT_TRUE(client_->OnSnapshot(q, rec.Callback()).ok());
  client_->SetNetworkEnabled(false);
  ASSERT_TRUE(client_->Set(Path("/notes/off"), {{"v", Value::Integer(1)}})
                  .ok());
  EXPECT_TRUE(rec.last().from_cache || rec.last().has_pending_writes);
  EXPECT_EQ(rec.LastIds(), (std::vector<std::string>{"off"}));
  // Reconnect reconciles: listener converges to server state, not pending.
  client_->SetNetworkEnabled(true);
  Pump();
  EXPECT_EQ(rec.LastIds(), (std::vector<std::string>{"off"}));
  EXPECT_FALSE(rec.last().has_pending_writes);
}

TEST_F(ClientTest, FilteredListenerWithLocalOverlay) {
  ViewRecorder rec;
  Query q(model::ResourcePath(), "notes");
  q.Where(Field("starred"), Operator::kEqual, Value::Boolean(true));
  ASSERT_TRUE(client_->OnSnapshot(q, rec.Callback()).ok());
  ASSERT_TRUE(client_->Set(Path("/notes/s1"),
                           {{"starred", Value::Boolean(true)}}).ok());
  EXPECT_EQ(rec.LastIds(), (std::vector<std::string>{"s1"}));
  // Locally un-starring removes it from the view immediately.
  ASSERT_TRUE(client_->Set(Path("/notes/s1"),
                           {{"starred", Value::Boolean(false)}}).ok());
  EXPECT_TRUE(rec.last().documents.empty());
  Pump();
  EXPECT_TRUE(rec.last().documents.empty());
}

// ---------------------------------------------------------------------------
// Two clients: end-to-end collaboration

TEST_F(ClientTest, TwoClientsConverge) {
  FirestoreClient::Options options;
  options.third_party = false;
  FirestoreClient other(&service_, kDb, rules::AuthContext{}, options);
  ViewRecorder rec_a, rec_b;
  Query q(model::ResourcePath(), "chat");
  ASSERT_TRUE(client_->OnSnapshot(q, rec_a.Callback()).ok());
  ASSERT_TRUE(other.OnSnapshot(q, rec_b.Callback()).ok());
  ASSERT_TRUE(client_->Set(Path("/chat/m1"),
                           {{"text", Value::String("hi")}}).ok());
  client_->Pump();
  other.Pump();
  Pump();
  EXPECT_EQ(rec_a.LastIds(), (std::vector<std::string>{"m1"}));
  EXPECT_EQ(rec_b.LastIds(), (std::vector<std::string>{"m1"}));
}

// ---------------------------------------------------------------------------
// Persistence across restart

TEST_F(ClientTest, RestartWithPersistenceKeepsCacheAndQueue) {
  client_->SetNetworkEnabled(false);
  ASSERT_TRUE(client_->Set(Path("/notes/p"), {{"v", Value::Integer(1)}}).ok());
  client_->Restart();
  // The queued write and the local view survived the restart.
  EXPECT_TRUE(client_->local_store().HasPending());
  client_->SetNetworkEnabled(false);  // restart does not change connectivity
  auto doc = client_->Get(Path("/notes/p"));
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->has_value());
  // Reconnect: the persisted offline write reaches the server.
  client_->SetNetworkEnabled(true);
  Pump();
  EXPECT_TRUE(service_.Get(kDb, Path("/notes/p"))->has_value());
}

TEST_F(ClientTest, RestartWithoutPersistenceDropsCache) {
  FirestoreClient::Options options;
  options.third_party = false;
  options.persist_cache = false;
  FirestoreClient ephemeral(&service_, kDb, rules::AuthContext{}, options);
  ephemeral.SetNetworkEnabled(false);
  ASSERT_TRUE(ephemeral.Set(Path("/notes/e"), {{"v", Value::Integer(1)}})
                  .ok());
  ephemeral.Restart();
  EXPECT_FALSE(ephemeral.local_store().HasPending());
  EXPECT_EQ(ephemeral.local_store().cached_documents(), 0u);
}

// ---------------------------------------------------------------------------
// Security rules from the client

TEST_F(ClientTest, ThirdPartyClientRespectsRules) {
  ASSERT_TRUE(service_
                  .SetRules(kDb, R"(
                    match /notes/{id} {
                      allow read, write: if request.auth.uid == 'alice';
                    }
                  )")
                  .ok());
  rules::AuthContext alice;
  alice.authenticated = true;
  alice.uid = "alice";
  FirestoreClient alice_client(&service_, kDb, alice);
  ASSERT_TRUE(alice_client.Set(Path("/notes/mine"),
                               {{"v", Value::Integer(1)}}).ok());
  alice_client.Pump();
  EXPECT_EQ(alice_client.write_errors(), 0);
  EXPECT_TRUE(service_.Get(kDb, Path("/notes/mine"))->has_value());

  rules::AuthContext mallory;
  mallory.authenticated = true;
  mallory.uid = "mallory";
  FirestoreClient mallory_client(&service_, kDb, mallory);
  // Locally acknowledged (blind write)...
  ASSERT_TRUE(mallory_client.Set(Path("/notes/stolen"),
                                 {{"v", Value::Integer(2)}}).ok());
  mallory_client.Pump();
  // ...but rejected at flush and dropped.
  EXPECT_EQ(mallory_client.write_errors(), 1);
  EXPECT_FALSE(service_.Get(kDb, Path("/notes/stolen"))->has_value());
}

// ---------------------------------------------------------------------------
// Optimistic transactions

TEST_F(ClientTest, TransactionReadModifyWrite) {
  ASSERT_TRUE(service_
                  .Commit(kDb, {Mutation::Set(Path("/counters/c"),
                                              {{"n", Value::Integer(5)}})})
                  .ok());
  Status s = client_->RunTransaction([&](ClientTransaction& txn) -> Status {
    ASSIGN_OR_RETURN(std::optional<Document> doc,
                     txn.Get(Path("/counters/c")));
    int64_t n = (*doc).GetField(Field("n"))->integer_value();
    txn.Merge(Path("/counters/c"), {{"n", Value::Integer(n + 1)}});
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*service_.Get(kDb, Path("/counters/c")))
                ->GetField(Field("n"))
                ->integer_value(),
            6);
}

TEST_F(ClientTest, TransactionRetriesOnConflict) {
  ASSERT_TRUE(service_
                  .Commit(kDb, {Mutation::Set(Path("/counters/c"),
                                              {{"n", Value::Integer(0)}})})
                  .ok());
  int attempts = 0;
  Status s = client_->RunTransaction([&](ClientTransaction& txn) -> Status {
    ++attempts;
    ASSIGN_OR_RETURN(std::optional<Document> doc,
                     txn.Get(Path("/counters/c")));
    int64_t n = (*doc).GetField(Field("n"))->integer_value();
    if (attempts == 1) {
      // A rival write lands between our read and our commit.
      FS_CHECK(service_
                   .Commit(kDb, {Mutation::Merge(Path("/counters/c"),
                                                 {{"n", Value::Integer(
                                                            100)}})})
                   .ok());
    }
    txn.Merge(Path("/counters/c"), {{"n", Value::Integer(n + 1)}});
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(attempts, 2);  // first attempt failed freshness validation
  EXPECT_EQ((*service_.Get(kDb, Path("/counters/c")))
                ->GetField(Field("n"))
                ->integer_value(),
            101);
}

TEST_F(ClientTest, TransactionRequiresConnectivity) {
  client_->SetNetworkEnabled(false);
  Status s = client_->RunTransaction(
      [](ClientTransaction& txn) -> Status {
        (void)txn;
        return Status::Ok();
      });
  // The body performs no reads/writes; forcing a read makes it fail.
  Status s2 = client_->RunTransaction(
      [](ClientTransaction& txn) -> Status {
        return txn.Get(testing::Path("/x/y")).status();
      });
  EXPECT_EQ(s2.code(), StatusCode::kUnavailable);
  (void)s;
}

// ---------------------------------------------------------------------------
// Additional edge cases

TEST_F(ClientTest, RemoveListenerStopsViews) {
  ViewRecorder rec;
  Query q(model::ResourcePath(), "notes");
  auto id = client_->OnSnapshot(q, rec.Callback());
  ASSERT_TRUE(id.ok());
  size_t views_before = rec.views.size();
  client_->RemoveListener(*id);
  ASSERT_TRUE(client_->Set(Path("/notes/x"), {{"v", Value::Integer(1)}})
                  .ok());
  Pump();
  EXPECT_EQ(rec.views.size(), views_before);
  // Removing twice is harmless.
  client_->RemoveListener(*id);
}

TEST_F(ClientTest, CachedDeletionServesOfflineAsMissing) {
  ASSERT_TRUE(client_->Set(Path("/notes/gone"),
                           {{"v", Value::Integer(1)}}).ok());
  Pump();
  ASSERT_TRUE(client_->Delete(Path("/notes/gone")).ok());
  Pump();
  client_->SetNetworkEnabled(false);
  // The cache *knows* the document is deleted: no UNAVAILABLE error.
  auto doc = client_->Get(Path("/notes/gone"));
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(doc->has_value());
}

TEST_F(ClientTest, OnlineQueryWithPendingWritesOverlaysThem) {
  ASSERT_TRUE(service_
                  .Commit(kDb, {Mutation::Set(Path("/notes/server"),
                                              {{"v", Value::Integer(1)}})})
                  .ok());
  // Queue a local write but do NOT pump: the overlay must show it even on
  // an online (server-backed) query.
  ASSERT_TRUE(client_->Set(Path("/notes/local"),
                           {{"v", Value::Integer(2)}}).ok());
  Query q(model::ResourcePath(), "notes");
  auto view = client_->RunQuery(q);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->has_pending_writes);
  EXPECT_EQ(view->documents.size(), 2u);
}

TEST_F(ClientTest, OfflineLimitQueryAppliesLimit) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client_->Set(Path("/notes/n" + std::to_string(i)),
                             {{"v", Value::Integer(i)}})
                    .ok());
  }
  Pump();
  client_->SetNetworkEnabled(false);
  Query q(model::ResourcePath(), "notes");
  q.OrderByField(Field("v"), true).Limit(2);
  auto view = client_->RunQuery(q);
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->documents.size(), 2u);
  EXPECT_EQ(view->documents[0].GetField(Field("v"))->integer_value(), 4);
}

// ---------------------------------------------------------------------------
// Local indexes (paper §IV-E: "together with the necessary local indexes")

TEST_F(ClientTest, LocalIndexNarrowsOfflineEqualityQueries) {
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(client_
                    ->Set(Path("/notes/n" + std::to_string(i)),
                          {{"tag", Value::String(i % 10 == 0 ? "rare"
                                                             : "common")}})
                    .ok());
  }
  Pump();
  client_->SetNetworkEnabled(false);
  Query q(model::ResourcePath(), "notes");
  q.Where(Field("tag"), Operator::kEqual, Value::String("rare"));
  auto view = client_->RunQuery(q);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->documents.size(), 4u);
  // The local index restricted the scan to the 4 matching documents.
  EXPECT_EQ(client_->local_store().last_query_docs_examined(), 4);
  // An unfiltered query examines the whole cache.
  auto all = client_->RunQuery(Query(model::ResourcePath(), "notes"));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->documents.size(), 40u);
  EXPECT_EQ(client_->local_store().last_query_docs_examined(), 40);
}

TEST_F(ClientTest, LocalIndexTracksUpdatesDeletesAndPending) {
  ASSERT_TRUE(client_->Set(Path("/notes/a"),
                           {{"tag", Value::String("x")}}).ok());
  ASSERT_TRUE(client_->Set(Path("/notes/b"),
                           {{"tag", Value::String("y")}}).ok());
  Pump();
  client_->SetNetworkEnabled(false);
  Query qx(model::ResourcePath(), "notes");
  qx.Where(Field("tag"), Operator::kEqual, Value::String("x"));
  EXPECT_EQ(client_->RunQuery(qx)->documents.size(), 1u);
  // A pending (unflushed) retag must be visible despite the stale index.
  ASSERT_TRUE(client_->Set(Path("/notes/b"),
                           {{"tag", Value::String("x")}}).ok());
  EXPECT_EQ(client_->RunQuery(qx)->documents.size(), 2u);
  // And once acknowledged, the index itself is updated.
  client_->SetNetworkEnabled(true);
  Pump();
  client_->SetNetworkEnabled(false);
  EXPECT_EQ(client_->RunQuery(qx)->documents.size(), 2u);
  Query qy(model::ResourcePath(), "notes");
  qy.Where(Field("tag"), Operator::kEqual, Value::String("y"));
  EXPECT_TRUE(client_->RunQuery(qy)->documents.empty());
}

TEST_F(ClientTest, LocalIndexSurvivesPersistedRestart) {
  ASSERT_TRUE(client_->Set(Path("/notes/a"),
                           {{"tag", Value::String("x")}}).ok());
  Pump();
  client_->Restart();
  client_->SetNetworkEnabled(false);
  Query qx(model::ResourcePath(), "notes");
  qx.Where(Field("tag"), Operator::kEqual, Value::String("x"));
  auto view = client_->RunQuery(qx);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->documents.size(), 1u);
  EXPECT_EQ(client_->local_store().last_query_docs_examined(), 1);
}

}  // namespace
}  // namespace firestore::client
