// Tests of the service facade and the operational machinery from paper §VI:
// admission control, isolation tooling, data-validation jobs, checksums,
// plus the §VIII extensions (COUNT queries) and §IV-C resumable queries.

#include <gtest/gtest.h>

#include "backend/admission.h"
#include "backend/validation.h"
#include "client/local_store.h"
#include "common/checksum.h"
#include "common/random.h"
#include "service/global_router.h"
#include "service/service.h"
#include "tests/test_support.h"

namespace firestore::service {
namespace {

using backend::Mutation;
using model::Map;
using model::Value;
using query::Operator;
using query::Query;
using testing::Field;
using testing::Path;

constexpr char kDb[] = "projects/p/databases/d";

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : clock_(1'000'000'000), service_(&clock_) {
    FS_CHECK_OK(service_.CreateDatabase(kDb));
  }

  void Put(const std::string& path, Map fields) {
    FS_CHECK(
        service_.Commit(kDb, {Mutation::Set(Path(path), std::move(fields))})
            .ok());
  }

  ManualClock clock_;
  FirestoreService service_;
};

// ---------------------------------------------------------------------------
// Multi-tenant admin plane

TEST_F(ServiceTest, DatabaseLifecycle) {
  EXPECT_TRUE(service_.DatabaseExists(kDb));
  EXPECT_EQ(service_.CreateDatabase(kDb).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(service_.CreateDatabase("").ok());
  ASSERT_TRUE(service_.CreateDatabase("projects/x/databases/y").ok());
  EXPECT_EQ(service_.ListDatabases().size(), 2u);
  ASSERT_TRUE(service_.DeleteDatabase("projects/x/databases/y").ok());
  EXPECT_FALSE(service_.DatabaseExists("projects/x/databases/y"));
  EXPECT_EQ(service_.DeleteDatabase("projects/x/databases/y").code(),
            StatusCode::kNotFound);
}

TEST_F(ServiceTest, DeleteDatabaseRemovesAllRows) {
  Put("/c/a", {{"v", Value::Integer(1)}});
  Put("/c/b", {{"v", Value::Integer(2)}});
  ASSERT_TRUE(service_.DeleteDatabase(kDb).ok());
  // Both tables are physically empty for the tenant's prefix.
  auto rows = service_.spanner().SnapshotScan(
      index::kEntitiesTable, "", "",
      service_.spanner().StrongReadTimestamp());
  EXPECT_TRUE(rows->empty());
  auto entries = service_.spanner().SnapshotScan(
      index::kIndexEntriesTable, "", "",
      service_.spanner().StrongReadTimestamp());
  EXPECT_TRUE(entries->empty());
  // The data plane now rejects the database.
  EXPECT_EQ(service_.Get(kDb, Path("/c/a")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ServiceTest, TenantsShareTablesButNotData) {
  constexpr char kOther[] = "projects/q/databases/d";
  ASSERT_TRUE(service_.CreateDatabase(kOther).ok());
  Put("/c/doc", {{"v", Value::Integer(1)}});
  FS_CHECK(service_
               .Commit(kOther, {Mutation::Set(Path("/c/doc"),
                                              {{"v", Value::Integer(2)}})})
               .ok());
  auto mine = service_.Get(kDb, Path("/c/doc"));
  auto theirs = service_.Get(kOther, Path("/c/doc"));
  EXPECT_EQ((*mine)->GetField(Field("v"))->integer_value(), 1);
  EXPECT_EQ((*theirs)->GetField(Field("v"))->integer_value(), 2);
  // Queries are tenant-scoped too.
  auto q = service_.RunQuery(kOther, Query(model::ResourcePath(), "c"));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->result.documents.size(), 1u);
  EXPECT_EQ(q->result.documents[0].GetField(Field("v"))->integer_value(), 2);
}

// ---------------------------------------------------------------------------
// Global routing (§IV-A)

TEST(GlobalRouterTest, RoutesToOwningRegion) {
  ManualClock clock(1'000'000'000);
  FirestoreService nam5(&clock);
  FirestoreService eur3(&clock);
  GlobalRouter router;
  ASSERT_TRUE(router.AddRegion("nam5", &nam5).ok());
  ASSERT_TRUE(router.AddRegion("eur3", &eur3).ok());
  EXPECT_EQ(router.AddRegion("nam5", &nam5).code(),
            StatusCode::kAlreadyExists);

  // Location is chosen at creation time and is sticky.
  ASSERT_TRUE(router.CreateDatabase("db-us", "nam5").ok());
  ASSERT_TRUE(router.CreateDatabase("db-eu", "eur3").ok());
  EXPECT_EQ(*router.RegionOf("db-us"), "nam5");
  EXPECT_EQ(*router.RegionOf("db-eu"), "eur3");
  EXPECT_EQ(router.CreateDatabase("db-us", "eur3").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(router.CreateDatabase("db-x", "mars").code(),
            StatusCode::kInvalidArgument);

  // Writes land only in the owning region's Spanner instance.
  ASSERT_TRUE(router
                  .Commit("db-eu", {Mutation::Set(Path("/c/d"),
                                                  {{"v",
                                                    Value::Integer(1)}})})
                  .ok());
  EXPECT_TRUE(eur3.Get("db-eu", Path("/c/d"))->has_value());
  EXPECT_EQ(nam5.Get("db-eu", Path("/c/d")).status().code(),
            StatusCode::kNotFound);

  // Reads and queries route the same way.
  auto doc = router.Get("db-eu", Path("/c/d"));
  ASSERT_TRUE(doc.ok() && doc->has_value());
  auto q = router.RunQuery("db-eu", Query(model::ResourcePath(), "c"));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->result.documents.size(), 1u);
  EXPECT_GE(router.routed("eur3"), 3);
  EXPECT_EQ(router.routed("nam5"), 0);

  // Unknown databases are NOT_FOUND at the router.
  EXPECT_EQ(router.Get("nope", Path("/c/d")).status().code(),
            StatusCode::kNotFound);

  // Deleting unregisters the route.
  ASSERT_TRUE(router.DeleteDatabase("db-eu").ok());
  EXPECT_EQ(router.RegionOf("db-eu").status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// COUNT queries (§VIII)

TEST_F(ServiceTest, CountQueryBasic) {
  for (int i = 0; i < 25; ++i) {
    Put("/r/doc" + std::to_string(i),
        {{"city", Value::String(i % 5 == 0 ? "SF" : "LA")}});
  }
  Query all(model::ResourcePath(), "r");
  auto count_all = service_.RunCountQuery(kDb, all);
  ASSERT_TRUE(count_all.ok());
  EXPECT_EQ(count_all->count, 25);
  Query sf = all;
  sf.Where(Field("city"), Operator::kEqual, Value::String("SF"));
  auto count_sf = service_.RunCountQuery(kDb, sf);
  ASSERT_TRUE(count_sf.ok());
  EXPECT_EQ(count_sf->count, 5);
  // Counting never touches the Entities payloads.
  EXPECT_EQ(count_sf->stats.entities_fetched, 0);
}

TEST_F(ServiceTest, CountQueryWithInequalityAndLimit) {
  for (int i = 0; i < 20; ++i) {
    Put("/r/doc" + std::to_string(i), {{"n", Value::Integer(i)}});
  }
  Query q(model::ResourcePath(), "r");
  q.Where(Field("n"), Operator::kGreaterThanOrEqual, Value::Integer(10));
  auto counted = service_.RunCountQuery(kDb, q);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->count, 10);
  Query capped = q;
  capped.Limit(4);
  EXPECT_EQ(service_.RunCountQuery(kDb, capped)->count, 4);
  Query offset = q;
  offset.Offset(7);
  EXPECT_EQ(service_.RunCountQuery(kDb, offset)->count, 3);
}

TEST_F(ServiceTest, CountQueryZigZagAndContradiction) {
  for (int i = 0; i < 30; ++i) {
    Put("/r/doc" + std::to_string(i),
        {{"a", Value::String(i % 2 == 0 ? "x" : "y")},
         {"b", Value::String(i % 3 == 0 ? "p" : "q")}});
  }
  Query q(model::ResourcePath(), "r");
  q.Where(Field("a"), Operator::kEqual, Value::String("x"))
      .Where(Field("b"), Operator::kEqual, Value::String("p"));
  auto joined = service_.RunCountQuery(kDb, q);
  ASSERT_TRUE(joined.ok());
  // i % 2 == 0 && i % 3 == 0 -> i % 6 == 0 -> 5 docs in [0, 30).
  EXPECT_EQ(joined->count, 5);
  // Contradictory equalities are provably empty without scanning.
  Query never(model::ResourcePath(), "r");
  never.Where(Field("a"), Operator::kEqual, Value::String("x"))
      .Where(Field("a"), Operator::kEqual, Value::String("y"));
  auto zero = service_.RunCountQuery(kDb, never);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->count, 0);
  EXPECT_EQ(zero->stats.index_rows_scanned, 0);
}

TEST_F(ServiceTest, CountMatchesQueryAcrossRandomCases) {
  Rng rng(77);
  for (int i = 0; i < 60; ++i) {
    Map fields;
    fields["g"] = Value::Integer(rng.Uniform(0, 3));
    if (rng.Bernoulli(0.8)) fields["n"] = Value::Integer(rng.Uniform(0, 50));
    Put("/r/doc" + std::to_string(i), std::move(fields));
  }
  for (int g = 0; g <= 3; ++g) {
    Query q(model::ResourcePath(), "r");
    q.Where(Field("g"), Operator::kEqual, Value::Integer(g))
        .Where(Field("n"), Operator::kLessThan, Value::Integer(25));
    // (g, n) needs a composite index.
    auto id = service_.CreateCompositeIndex(
        kDb, "r",
        {{Field("g"), index::SegmentKind::kAscending},
         {Field("n"), index::SegmentKind::kAscending}});
    if (g == 0) {
      ASSERT_TRUE(id.ok());
    }
    auto run = service_.RunQuery(kDb, q);
    auto counted = service_.RunCountQuery(kDb, q);
    ASSERT_TRUE(run.ok() && counted.ok());
    EXPECT_EQ(counted->count,
              static_cast<int64_t>(run->result.documents.size()))
        << q.CanonicalString();
  }
}

// ---------------------------------------------------------------------------
// SUM / AVG aggregations (§VIII)

TEST_F(ServiceTest, SumAndAvgFromIndexKeys) {
  int64_t expected = 0;
  for (int i = 0; i < 30; ++i) {
    Put("/orders/o" + std::to_string(i), {{"amount", Value::Integer(i)}});
    expected += i;
  }
  Query q(model::ResourcePath(), "orders");
  auto sum = service_.RunSumQuery(kDb, q, Field("amount"));
  ASSERT_TRUE(sum.ok());
  EXPECT_TRUE(sum->aggregate.is_integer);
  EXPECT_EQ(sum->aggregate.sum_integer, expected);
  EXPECT_EQ(sum->aggregate.count, 30);
  // The fast path decoded values from index keys: no document fetches.
  EXPECT_EQ(sum->aggregate.stats.entities_fetched, 0);
  EXPECT_NEAR(sum->aggregate.Avg(), expected / 30.0, 1e-9);
}

TEST_F(ServiceTest, SumIgnoresNonNumericAndMissing) {
  Put("/orders/num", {{"amount", Value::Integer(10)}});
  Put("/orders/dbl", {{"amount", Value::Double(2.5)}});
  Put("/orders/str", {{"amount", Value::String("n/a")}});
  Put("/orders/none", {{"other", Value::Integer(99)}});
  Query q(model::ResourcePath(), "orders");
  auto sum = service_.RunSumQuery(kDb, q, Field("amount"));
  ASSERT_TRUE(sum.ok());
  EXPECT_FALSE(sum->aggregate.is_integer);  // a double participated
  EXPECT_NEAR(sum->aggregate.Sum(), 12.5, 1e-9);
  EXPECT_EQ(sum->aggregate.count, 2);
}

TEST_F(ServiceTest, SumWithEqualityFilterUsesFetchPath) {
  for (int i = 0; i < 12; ++i) {
    Put("/orders/o" + std::to_string(i),
        {{"region", Value::String(i % 2 == 0 ? "eu" : "us")},
         {"amount", Value::Integer(i)}});
  }
  Query q(model::ResourcePath(), "orders");
  q.Where(Field("region"), Operator::kEqual, Value::String("eu"));
  auto sum = service_.RunSumQuery(kDb, q, Field("amount"));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->aggregate.sum_integer, 0 + 2 + 4 + 6 + 8 + 10);
  EXPECT_EQ(sum->aggregate.count, 6);
  // Cross-check against a brute-force query.
  auto run = service_.RunQuery(kDb, q);
  int64_t brute = 0;
  for (const auto& doc : run->result.documents) {
    brute += doc.GetField(Field("amount"))->integer_value();
  }
  EXPECT_EQ(sum->aggregate.sum_integer, brute);
}

TEST_F(ServiceTest, SumHonorsInequalityBounds) {
  for (int i = 0; i < 10; ++i) {
    Put("/orders/o" + std::to_string(i), {{"amount", Value::Integer(i)}});
  }
  Query q(model::ResourcePath(), "orders");
  q.Where(Field("amount"), Operator::kGreaterThanOrEqual, Value::Integer(5));
  auto sum = service_.RunSumQuery(kDb, q, Field("amount"));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->aggregate.sum_integer, 5 + 6 + 7 + 8 + 9);
  EXPECT_EQ(sum->aggregate.stats.entities_fetched, 0);  // key-decoded
}

// ---------------------------------------------------------------------------
// Cursors and resumable queries (§IV-C)

TEST_F(ServiceTest, CursorPagination) {
  for (int i = 0; i < 10; ++i) {
    Put("/r/doc" + std::to_string(i), {{"n", Value::Integer(i)}});
  }
  Query page1(model::ResourcePath(), "r");
  page1.OrderByField(Field("n"), /*descending=*/true).Limit(4);
  auto r1 = service_.RunQuery(kDb, page1);
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r1->result.documents.size(), 4u);
  EXPECT_EQ(r1->result.documents[0].GetField(Field("n"))->integer_value(),
            9);

  Query page2 = page1;
  page2.StartAfterDoc(r1->result.documents.back());
  auto r2 = service_.RunQuery(kDb, page2);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->result.documents.size(), 4u);
  EXPECT_EQ(r2->result.documents[0].GetField(Field("n"))->integer_value(),
            5);
  // StartAt includes the cursor document.
  Query page2_at = page1;
  page2_at.StartAtDoc(r1->result.documents.back());
  auto r2_at = service_.RunQuery(kDb, page2_at);
  ASSERT_TRUE(r2_at.ok());
  EXPECT_EQ(r2_at->result.documents[0].name().CanonicalString(),
            r1->result.documents.back().name().CanonicalString());
}

TEST_F(ServiceTest, CursorPaginationCoversWholeResultExactlyOnce) {
  for (int i = 0; i < 23; ++i) {
    Put("/r/doc" + std::to_string(i), {{"n", Value::Integer(i % 7)}});
  }
  Query base(model::ResourcePath(), "r");
  base.OrderByField(Field("n")).Limit(5);
  std::vector<std::string> seen;
  Query page = base;
  while (true) {
    auto r = service_.RunQuery(kDb, page);
    ASSERT_TRUE(r.ok());
    if (r->result.documents.empty()) break;
    for (const auto& doc : r->result.documents) {
      seen.push_back(doc.name().CanonicalString());
    }
    page = base;
    page.StartAfterDoc(r->result.documents.back());
  }
  EXPECT_EQ(seen.size(), 23u);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST_F(ServiceTest, CollectionScanCursor) {
  for (char c = 'a'; c <= 'e'; ++c) Put(std::string("/r/") + c, {});
  Query base(model::ResourcePath(), "r");
  Query page = base;
  page.Limit(2);
  auto r1 = service_.RunQuery(kDb, page);
  ASSERT_TRUE(r1.ok());
  Query next = base;
  next.Limit(2).StartAfterDoc(r1->result.documents.back());
  auto r2 = service_.RunQuery(kDb, next);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->result.documents[0].name().last_segment(), "c");
}

TEST_F(ServiceTest, InvalidCursorRejected) {
  Put("/r/a", {{"n", Value::Integer(1)}});
  Query q(model::ResourcePath(), "r");
  // Cursor captured before the order-by was added: mismatched arity.
  model::Document doc(Path("/r/a"), {{"n", Value::Integer(1)}});
  q.StartAfterDoc(doc);
  q.OrderByField(Field("n"));
  EXPECT_EQ(service_.RunQuery(kDb, q).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Partial results under the per-RPC work cap (§IV-C)

TEST_F(ServiceTest, ScanCapReturnsPartialResultsAndResumes) {
  for (int i = 0; i < 50; ++i) {
    Put("/r/doc" + std::to_string(i), {{"n", Value::Integer(i)}});
  }
  // Access the ReadService through a fresh instance so we can set the cap.
  backend::ReadService reader(&service_.spanner());
  reader.set_max_rows_per_rpc(10);
  Query q(model::ResourcePath(), "r");
  q.OrderByField(Field("n"));
  auto partial = reader.RunQuery(kDb, *service_.catalog(kDb), q);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(partial->result.reached_scan_limit);
  EXPECT_EQ(partial->result.documents.size(), 10u);
  // Resume from the last document; collect everything.
  size_t total = partial->result.documents.size();
  Query resume = q;
  while (partial->result.reached_scan_limit) {
    resume = q;
    resume.StartAfterDoc(partial->result.documents.back());
    partial = reader.RunQuery(kDb, *service_.catalog(kDb), resume);
    ASSERT_TRUE(partial.ok());
    total += partial->result.documents.size();
  }
  EXPECT_EQ(total, 50u);
}

// ---------------------------------------------------------------------------
// MVCC version retention

TEST_F(ServiceTest, PumpGarbageCollectsOldVersionsButKeepsRetained) {
  Put("/r/doc", {{"v", Value::Integer(1)}});
  auto t1 = service_.spanner().last_commit_ts();
  Put("/r/doc", {{"v", Value::Integer(2)}});
  Put("/r/doc", {{"v", Value::Integer(3)}});
  auto t3 = service_.spanner().last_commit_ts();
  // Move time past the retention window of the first versions.
  clock_.AdvanceBy(2 * 3'600'000'000ll);
  Put("/r/doc", {{"v", Value::Integer(4)}});
  auto t4 = service_.spanner().last_commit_ts();
  service_.Pump();
  // Reads inside retention still serve exactly.
  auto recent = service_.Get(kDb, Path("/r/doc"), t4);
  ASSERT_TRUE(recent.ok() && recent->has_value());
  EXPECT_EQ((*recent)->GetField(Field("v"))->integer_value(), 4);
  // The pre-horizon history collapsed to its newest version (the base for
  // horizon reads): version 1 is no longer distinguishable at t1.
  auto old_read = service_.Get(kDb, Path("/r/doc"), t1);
  ASSERT_TRUE(old_read.ok());
  if (old_read->has_value()) {
    EXPECT_EQ((*old_read)->GetField(Field("v"))->integer_value(), 3);
  }
  (void)t3;
}

// ---------------------------------------------------------------------------
// Admission control and isolation tooling (§VI)

TEST(AdmissionTest, InflightLimitRejectsExcess) {
  backend::AdmissionController admission;
  admission.SetInflightLimit("db", 2);
  auto t1 = admission.Admit("db");
  auto t2 = admission.Admit("db");
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ(admission.inflight("db"), 2);
  auto t3 = admission.Admit("db");
  EXPECT_EQ(t3.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.rejected(), 1);
  // Other databases are unaffected.
  EXPECT_TRUE(admission.Admit("other").ok());
  // Releasing a ticket frees a slot.
  t1->Release();
  EXPECT_TRUE(admission.Admit("db").ok());
}

TEST(AdmissionTest, TicketReleasesOnDestruction) {
  backend::AdmissionController admission;
  admission.SetInflightLimit("db", 1);
  {
    auto t = admission.Admit("db");
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(admission.inflight("db"), 1);
  }
  EXPECT_EQ(admission.inflight("db"), 0);
  admission.ClearInflightLimit("db");
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(admission.Admit("db").ok());
}

TEST(AdmissionTest, IsolatedPoolRouting) {
  backend::AdmissionController admission;
  EXPECT_EQ(admission.PoolFor("db"), "default");
  admission.RouteToIsolatedPool("db", "quarantine");
  EXPECT_EQ(admission.PoolFor("db"), "quarantine");
  EXPECT_EQ(admission.PoolFor("other"), "default");
  admission.ClearIsolatedPool("db");
  EXPECT_EQ(admission.PoolFor("db"), "default");
}

TEST(AdmissionTest, TrafficRampTracksConformance) {
  ManualClock clock(0);
  backend::TrafficRampTracker::Options options;
  options.base_qps = 10;  // small base for the test
  options.window = 1'000'000;
  options.growth_period = 10'000'000;
  backend::TrafficRampTracker tracker(&clock, options);
  // 5 QPS conforms to the 10 QPS base.
  bool conforming = true;
  for (int i = 0; i < 50; ++i) {
    clock.AdvanceBy(200'000);
    conforming = tracker.Record("db") && conforming;
  }
  EXPECT_TRUE(conforming);
  // A sudden 100 QPS burst violates the ramp.
  bool burst_conforming = true;
  for (int i = 0; i < 100; ++i) {
    clock.AdvanceBy(10'000);
    burst_conforming = tracker.Record("db") && burst_conforming;
  }
  EXPECT_FALSE(burst_conforming);
  // After enough growth periods the allowance catches up.
  clock.AdvanceBy(100'000'000);  // 10 growth periods
  EXPECT_GT(tracker.AllowedQps("db"), 100);
}

// ---------------------------------------------------------------------------
// Data validation jobs (§VI)

TEST_F(ServiceTest, ValidationCleanDatabase) {
  for (int i = 0; i < 10; ++i) {
    Put("/r/doc" + std::to_string(i),
        {{"a", Value::Integer(i)}, {"b", Value::String("x")}});
  }
  ASSERT_TRUE(
      service_.Commit(kDb, {Mutation::Delete(Path("/r/doc3"))}).ok());
  backend::DataValidationService validator(&service_.spanner());
  auto report = validator.ValidateDatabase(kDb, *service_.catalog(kDb));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
  EXPECT_EQ(report->documents_checked, 9);
  EXPECT_GT(report->index_entries_checked, 0);
}

TEST_F(ServiceTest, ValidationDetectsOrphanAndMissingEntries) {
  Put("/r/doc", {{"a", Value::Integer(1)}});
  backend::DataValidationService validator(&service_.spanner());
  // Sabotage: delete one real index entry and add a bogus one, bypassing
  // the committer (simulating corruption).
  auto entries = service_.spanner().SnapshotScan(
      index::kIndexEntriesTable, "", "",
      service_.spanner().StrongReadTimestamp());
  ASSERT_TRUE(entries.ok());
  ASSERT_FALSE(entries->empty());
  auto txn = service_.spanner().BeginTransaction();
  txn->Delete(index::kIndexEntriesTable, (*entries)[0].key);
  txn->Put(index::kIndexEntriesTable, (*entries)[0].key + "bogus", "");
  ASSERT_TRUE(txn->Commit().ok());
  auto report = validator.ValidateDatabase(kDb, *service_.catalog(kDb));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
  EXPECT_EQ(report->missing_entries.size(), 1u);
  EXPECT_EQ(report->orphan_entries.size(), 1u);
}

TEST_F(ServiceTest, ValidationDetectsCorruptDocument) {
  Put("/r/doc", {{"a", Value::Integer(1)}});
  auto txn = service_.spanner().BeginTransaction();
  txn->Put(index::kEntitiesTable,
           index::EntityKey(kDb, Path("/r/doc")), "garbage-bytes");
  ASSERT_TRUE(txn->Commit().ok());
  backend::DataValidationService validator(&service_.spanner());
  auto report = validator.ValidateDatabase(kDb, *service_.catalog(kDb));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->corrupt_documents.size(), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end checksums (§VI)

TEST(ChecksumTest, RoundTripAndKnownValues) {
  EXPECT_EQ(Crc32c(""), 0u);
  // Known CRC32C vector: "123456789" -> 0xe3069283.
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
  std::string frame = "payload-bytes";
  AppendChecksum(frame);
  std::string_view view = frame;
  EXPECT_TRUE(VerifyAndStripChecksum(&view));
  EXPECT_EQ(view, "payload-bytes");
}

TEST(ChecksumTest, DetectsCorruption) {
  std::string frame = "payload";
  AppendChecksum(frame);
  frame[2] ^= 0x01;  // flip one bit in flight
  std::string_view view = frame;
  EXPECT_FALSE(VerifyAndStripChecksum(&view));
  std::string_view tiny = "abc";
  EXPECT_FALSE(VerifyAndStripChecksum(&tiny));
}

TEST(ChecksumTest, TriggerEventsRejectCorruptPayloads) {
  backend::TriggerEvent event;
  event.database_id = "db";
  event.function_name = "fn";
  event.change.name = Path("/c/d");
  std::string wire = event.Serialize();
  ASSERT_TRUE(backend::TriggerEvent::Parse(wire).ok());
  wire[wire.size() / 2] ^= 0x40;
  EXPECT_FALSE(backend::TriggerEvent::Parse(wire).ok());
}

TEST(ChecksumTest, ClientCacheRejectsCorruptPersistence) {
  client::LocalStore store;
  store.ApplyServerDocument(Path("/c/d"),
                            model::Document(Path("/c/d"), {}), 5);
  std::string bytes = store.Serialize();
  ASSERT_TRUE(client::LocalStore::Parse(bytes).ok());
  bytes[0] ^= 0x01;
  EXPECT_FALSE(client::LocalStore::Parse(bytes).ok());
}

}  // namespace
}  // namespace firestore::service
