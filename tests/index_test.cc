#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "firestore/codec/document_codec.h"
#include "firestore/codec/value_codec.h"
#include "firestore/index/backfill.h"
#include "firestore/index/catalog.h"
#include "firestore/index/extractor.h"
#include "firestore/index/layout.h"
#include "tests/test_support.h"

namespace firestore::index {
namespace {

using model::Document;
using model::FieldPath;
using model::Map;
using model::Value;
using testing::Field;
using testing::Path;
using testing::TestTenant;

// ---------------------------------------------------------------------------
// Layout

TEST(LayoutTest, TenantsOccupyDisjointRanges) {
  std::string a = EntityKey("db-a", Path("/c/doc"));
  std::string b = EntityKey("db-b", Path("/c/doc"));
  std::string prefix_a = EntityKeyPrefixForDatabase("db-a");
  EXPECT_TRUE(StartsWith(a, prefix_a));
  EXPECT_FALSE(StartsWith(b, prefix_a));
  EXPECT_LT(a, PrefixSuccessor(prefix_a));
}

TEST(LayoutTest, IndexRangesOrderedByIndexId) {
  std::string p1 = IndexKeyPrefix("db", 1);
  std::string p2 = IndexKeyPrefix("db", 2);
  EXPECT_LT(p1, p2);
  std::string entry = IndexEntryKey("db", 1, "vals", Path("/c/d"));
  EXPECT_TRUE(StartsWith(entry, p1));
  EXPECT_LT(entry, p2);
}

TEST(LayoutTest, CollectionPrefixCoversChildren) {
  std::string prefix =
      EntityKeyPrefixForCollection("db", Path("/restaurants"));
  EXPECT_TRUE(StartsWith(EntityKey("db", Path("/restaurants/one")), prefix));
  EXPECT_TRUE(StartsWith(
      EntityKey("db", Path("/restaurants/one/ratings/2")), prefix));
  EXPECT_FALSE(StartsWith(EntityKey("db", Path("/reviews/one")), prefix));
}

TEST(LayoutTest, ParseIndexEntryNameRoundTrip) {
  std::string values;
  codec::AppendValueAsc(values, Value::String("SF"));
  codec::AppendValueDesc(values, Value::Double(4.5));
  std::string key = IndexEntryKey("db", 7, values, Path("/restaurants/one"));
  std::string_view suffix;
  ASSERT_TRUE(IndexEntrySuffix(key, IndexKeyPrefix("db", 7), &suffix));
  model::ResourcePath name;
  ASSERT_TRUE(ParseIndexEntryName(suffix, {false, true}, &name));
  EXPECT_EQ(name.CanonicalString(), "/restaurants/one");
}

// ---------------------------------------------------------------------------
// Catalog

TEST(CatalogTest, AutoIndexIsStableAndLazy) {
  IndexCatalog catalog;
  auto a1 = catalog.AutoIndex("restaurants", Field("city"),
                              SegmentKind::kAscending);
  auto a2 = catalog.AutoIndex("restaurants", Field("city"),
                              SegmentKind::kAscending);
  ASSERT_TRUE(a1.has_value());
  EXPECT_EQ(a1->index_id, a2->index_id);
  auto d = catalog.AutoIndex("restaurants", Field("city"),
                             SegmentKind::kDescending);
  EXPECT_NE(a1->index_id, d->index_id);
  auto other = catalog.AutoIndex("ratings", Field("city"),
                                 SegmentKind::kAscending);
  EXPECT_NE(a1->index_id, other->index_id);
}

TEST(CatalogTest, ExemptionBlocksAutoIndex) {
  IndexCatalog catalog;
  catalog.AddExemption("restaurants", Field("blob"));
  EXPECT_TRUE(catalog.IsExempted("restaurants", Field("blob")));
  EXPECT_FALSE(catalog
                   .AutoIndex("restaurants", Field("blob"),
                              SegmentKind::kAscending)
                   .has_value());
  // Other fields unaffected.
  EXPECT_TRUE(catalog
                  .AutoIndex("restaurants", Field("city"),
                             SegmentKind::kAscending)
                  .has_value());
}

TEST(CatalogTest, CompositeIndexLifecycle) {
  IndexCatalog catalog;
  auto id = catalog.AddCompositeIndex(
      "restaurants",
      {{Field("city"), SegmentKind::kAscending},
       {Field("avgRating"), SegmentKind::kDescending}},
      IndexState::kBackfilling);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(catalog.ActiveIndexes("restaurants").empty());
  EXPECT_EQ(catalog.MaintainedIndexes("restaurants").size(), 1u);
  ASSERT_TRUE(catalog.SetIndexState(*id, IndexState::kActive).ok());
  EXPECT_EQ(catalog.ActiveIndexes("restaurants").size(), 1u);
  ASSERT_TRUE(catalog.RemoveIndex(*id).ok());
  EXPECT_TRUE(catalog.AllIndexes().empty());
}

TEST(CatalogTest, DuplicateCompositeRejected) {
  IndexCatalog catalog;
  std::vector<IndexSegment> segments = {
      {Field("city"), SegmentKind::kAscending}};
  ASSERT_TRUE(catalog.AddCompositeIndex("r", segments, IndexState::kActive)
                  .ok());
  EXPECT_EQ(catalog.AddCompositeIndex("r", segments, IndexState::kActive)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, ArrayContainsOnlySingleField) {
  IndexCatalog catalog;
  EXPECT_EQ(catalog
                .AddCompositeIndex(
                    "r",
                    {{Field("tags"), SegmentKind::kArrayContains},
                     {Field("city"), SegmentKind::kAscending}},
                    IndexState::kActive)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Extraction

Document RestaurantDoc() {
  Map fields;
  fields["name"] = Value::String("Zola");
  fields["city"] = Value::String("SF");
  fields["avgRating"] = Value::Double(4.5);
  return Document(Path("/restaurants/one"), std::move(fields));
}

TEST(ExtractorTest, FlattenNestedMaps) {
  Document doc(Path("/c/d"), {});
  doc.SetField(Field("a"), Value::Integer(1));
  doc.SetField(Field("m.x"), Value::Integer(2));
  doc.SetField(Field("m.y.z"), Value::Integer(3));
  auto leaves = FlattenDocument(doc);
  std::set<std::string> fields;
  for (const auto& leaf : leaves) fields.insert(leaf.field.CanonicalString());
  // a, m (whole map), m.x, m.y (nested map), m.y.z
  EXPECT_EQ(fields, (std::set<std::string>{"a", "m", "m.x", "m.y", "m.y.z"}));
}

TEST(ExtractorTest, TwoEntriesPerScalarField) {
  IndexCatalog catalog;
  Document doc = RestaurantDoc();  // 3 scalar fields
  auto keys = ComputeIndexEntries(catalog, "db", doc);
  EXPECT_EQ(keys.size(), 6u);  // asc + desc each
}

TEST(ExtractorTest, ArrayProducesContainsEntries) {
  IndexCatalog catalog;
  Document doc(Path("/c/d"), {});
  doc.SetField(Field("tags"),
               Value::FromArray({Value::String("bbq"), Value::String("tex"),
                                 Value::String("bbq")}));
  auto keys = ComputeIndexEntries(catalog, "db", doc);
  // asc + desc on the whole array, plus 2 distinct contains entries
  // (duplicate elements dedupe to one key).
  EXPECT_EQ(keys.size(), 4u);
}

TEST(ExtractorTest, ExemptedFieldProducesNoEntries) {
  IndexCatalog catalog;
  catalog.AddExemption("c", Field("payload"));
  Document doc(Path("/c/d"), {});
  doc.SetField(Field("payload"), Value::String("big"));
  doc.SetField(Field("kept"), Value::Integer(1));
  auto keys = ComputeIndexEntries(catalog, "db", doc);
  EXPECT_EQ(keys.size(), 2u);  // only `kept` asc+desc
}

TEST(ExtractorTest, CompositeEntryRequiresAllFields) {
  IndexCatalog catalog;
  auto id = catalog.AddCompositeIndex(
      "restaurants",
      {{Field("city"), SegmentKind::kAscending},
       {Field("avgRating"), SegmentKind::kDescending}},
      IndexState::kActive);
  ASSERT_TRUE(id.ok());
  auto def = catalog.GetIndex(*id);
  EXPECT_EQ(ComputeEntriesForIndex(*def, "db", RestaurantDoc()).size(), 1u);
  Document missing(Path("/restaurants/two"),
                   {{"city", Value::String("SF")}});
  EXPECT_TRUE(ComputeEntriesForIndex(*def, "db", missing).empty());
  Document wrong_collection(Path("/reviews/a"),
                            {{"city", Value::String("SF")},
                             {"avgRating", Value::Double(1)}});
  EXPECT_TRUE(ComputeEntriesForIndex(*def, "db", wrong_collection).empty());
}

// ---------------------------------------------------------------------------
// Index consistency through the write path (DESIGN.md invariant 2)

// Recomputes the expected IndexEntries contents from the Entities table and
// compares with the actual rows.
void CheckIndexConsistency(TestTenant& t) {
  auto entities = t.spanner().SnapshotScan(
      kEntitiesTable, "", "", t.spanner().StrongReadTimestamp());
  ASSERT_TRUE(entities.ok());
  std::set<std::string> expected;
  for (const auto& row : *entities) {
    auto doc = codec::ParseDocument(row.value);
    ASSERT_TRUE(doc.ok());
    for (const std::string& key :
         ComputeIndexEntries(t.catalog(), t.id(), *doc)) {
      expected.insert(key);
    }
  }
  auto entries = t.spanner().SnapshotScan(
      kIndexEntriesTable, "", "", t.spanner().StrongReadTimestamp());
  ASSERT_TRUE(entries.ok());
  std::set<std::string> actual;
  for (const auto& row : *entries) actual.insert(row.key);
  EXPECT_EQ(expected, actual);
}

TEST(IndexConsistencyTest, InsertsUpdatesDeletes) {
  TestTenant t;
  t.Put("/restaurants/one", {{"city", Value::String("SF")},
                             {"avgRating", Value::Double(4.5)}});
  t.Put("/restaurants/two", {{"city", Value::String("NYC")},
                             {"type", Value::String("BBQ")}});
  CheckIndexConsistency(t);
  // Update changes values and drops a field.
  t.Put("/restaurants/one", {{"city", Value::String("LA")}});
  CheckIndexConsistency(t);
  t.Delete("/restaurants/two");
  CheckIndexConsistency(t);
}

TEST(IndexConsistencyTest, RandomizedWorkload) {
  TestTenant t;
  Rng rng(99);
  std::vector<std::string> cities = {"SF", "NYC", "LA", "SEA"};
  for (int i = 0; i < 120; ++i) {
    std::string path = "/restaurants/r" + std::to_string(rng.Uniform(0, 15));
    int action = static_cast<int>(rng.Uniform(0, 9));
    if (action == 0) {
      auto get = t.reader().GetDocument(t.id(), Path(path));
      ASSERT_TRUE(get.ok());
      if (get->has_value()) t.Delete(path);
    } else {
      Map fields;
      fields["city"] = Value::String(cities[rng.Uniform(0, 3)]);
      if (rng.Bernoulli(0.5)) {
        fields["avgRating"] = Value::Double(rng.NextDouble() * 5);
      }
      if (rng.Bernoulli(0.3)) {
        fields["tags"] = Value::FromArray(
            {Value::String("a"), Value::String("b")});
      }
      t.Put(path, std::move(fields));
    }
  }
  CheckIndexConsistency(t);
}

// ---------------------------------------------------------------------------
// Backfill / backremoval

TEST(BackfillTest, CreateIndexBackfillsExistingDocuments) {
  TestTenant t;
  for (int i = 0; i < 10; ++i) {
    t.Put("/restaurants/r" + std::to_string(i),
          {{"city", Value::String(i % 2 == 0 ? "SF" : "NYC")},
           {"avgRating", Value::Double(i)}});
  }
  auto id = t.backfill().CreateIndex(
      t.catalog(), t.id(), "restaurants",
      {{Field("city"), SegmentKind::kAscending},
       {Field("avgRating"), SegmentKind::kDescending}},
      /*batch_size=*/3);
  ASSERT_TRUE(id.ok());
  auto def = t.catalog().GetIndex(*id);
  ASSERT_TRUE(def.has_value());
  EXPECT_EQ(def->state, IndexState::kActive);
  EXPECT_EQ(t.CountRows(kIndexEntriesTable, IndexKeyPrefix(t.id(), *id)),
            10);
  CheckIndexConsistency(t);
}

TEST(BackfillTest, WritesDuringBackfillStayConformant) {
  TestTenant t;
  t.Put("/restaurants/r1", {{"city", Value::String("SF")},
                            {"avgRating", Value::Double(3)}});
  // Register the index in kBackfilling state; a write arriving before the
  // backfill runs must already maintain it.
  auto id = t.catalog().AddCompositeIndex(
      "restaurants",
      {{Field("city"), SegmentKind::kAscending},
       {Field("avgRating"), SegmentKind::kDescending}},
      IndexState::kBackfilling);
  ASSERT_TRUE(id.ok());
  t.Put("/restaurants/r2", {{"city", Value::String("LA")},
                            {"avgRating", Value::Double(4)}});
  EXPECT_EQ(t.CountRows(kIndexEntriesTable, IndexKeyPrefix(t.id(), *id)), 1);
  // Updates and deletes of already-conformant rows also stay conformant.
  t.Put("/restaurants/r2", {{"city", Value::String("SEA")},
                            {"avgRating", Value::Double(5)}});
  EXPECT_EQ(t.CountRows(kIndexEntriesTable, IndexKeyPrefix(t.id(), *id)), 1);
  t.Delete("/restaurants/r2");
  EXPECT_EQ(t.CountRows(kIndexEntriesTable, IndexKeyPrefix(t.id(), *id)), 0);
}

TEST(BackfillTest, DropIndexRemovesEntries) {
  TestTenant t;
  for (int i = 0; i < 5; ++i) {
    t.Put("/r/r" + std::to_string(i), {{"a", Value::Integer(i)},
                                       {"b", Value::Integer(i)}});
  }
  auto id = t.backfill().CreateIndex(
      t.catalog(), t.id(), "r",
      {{Field("a"), SegmentKind::kAscending},
       {Field("b"), SegmentKind::kAscending}},
      2);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(t.CountRows(kIndexEntriesTable, IndexKeyPrefix(t.id(), *id)), 5);
  ASSERT_TRUE(t.backfill().DropIndex(t.catalog(), t.id(), *id, 2).ok());
  EXPECT_EQ(t.CountRows(kIndexEntriesTable, IndexKeyPrefix(t.id(), *id)), 0);
  EXPECT_FALSE(t.catalog().GetIndex(*id).has_value());
  CheckIndexConsistency(t);
}

TEST(BackfillTest, ExemptionRemovesExistingAutoEntries) {
  TestTenant t;
  t.Put("/r/one", {{"big", Value::String("x")}, {"keep", Value::Integer(1)}});
  auto ids = t.catalog().ExistingAutoIndexIds("r", Field("big"));
  ASSERT_EQ(ids.size(), 2u);  // asc + desc were materialized by the write
  t.catalog().AddExemption("r", Field("big"));
  ASSERT_TRUE(t.backfill()
                  .RemoveExemptedFieldEntries(t.catalog(), t.id(), "r",
                                              Field("big"))
                  .ok());
  for (IndexId id : ids) {
    EXPECT_EQ(t.CountRows(kIndexEntriesTable, IndexKeyPrefix(t.id(), id)),
              0);
  }
  // Subsequent writes make no entries for the exempted field.
  t.Put("/r/two", {{"big", Value::String("y")}});
  CheckIndexConsistency(t);
}

}  // namespace
}  // namespace firestore::index
