// fslint rule-engine tests: each rule is exercised against a fixture file in
// tools/fslint/testdata/, presented to the engine under a virtual src/ path
// so src-scoped rules apply. Assertions are exact (rule, path, line) sets,
// so a heuristic regression moves a known diagnostic and fails loudly.
//
// The FaultCatalog tests are the runtime leg of the fault-point-registry
// rule: the names extracted from the real src/ tree must match the
// docs/ROBUSTNESS.md catalog AND, once armed, FaultRegistry::ListPoints().

#include "lint.h"

#include <gtest/gtest.h>

#include "lock_graph.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"

namespace fslint {
namespace {

#ifndef FS_SOURCE_DIR
#error "FS_SOURCE_DIR must point at the repository root"
#endif

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::filesystem::path Testdata() {
  return std::filesystem::path(FS_SOURCE_DIR) / "tools" / "fslint" /
         "testdata";
}

// Loads a fixture and lints it under a virtual repo path.
std::vector<Finding> LintFixture(const std::string& fixture,
                                 const std::string& virtual_path,
                                 const Options& options = Options()) {
  FileInput input{virtual_path, ReadFile(Testdata() / fixture)};
  return Lint({input}, options);
}

// (rule, path, line) triples, order-insensitive.
std::multiset<std::string> Keys(const std::vector<Finding>& findings) {
  std::multiset<std::string> out;
  for (const Finding& f : findings) {
    out.insert(f.rule + " " + f.path + ":" + std::to_string(f.line));
  }
  return out;
}

TEST(FslintRawSyncTest, FlagsRawPrimitivesAndHonorsSuppressions) {
  std::vector<Finding> findings =
      LintFixture("raw_sync.cc", "src/fixture/raw_sync.cc");
  EXPECT_EQ(Keys(findings),
            (std::multiset<std::string>{
                "raw-sync src/fixture/raw_sync.cc:6",
                "raw-sync src/fixture/raw_sync.cc:9",  // lock_guard
                "raw-sync src/fixture/raw_sync.cc:9",  // its mutex argument
                // line 13 (allow above) and line 15 (allow inline): silent.
                "suppression src/fixture/raw_sync.cc:17",  // no justification
                "raw-sync src/fixture/raw_sync.cc:18",  // ...so not silenced
            }));
}

TEST(FslintRawSyncTest, RuleIsScopedToCheckedTrees) {
  // The same content outside src/tests/bench/examples (e.g. tools/) only
  // reports the unjustified suppression, which is scope-independent.
  std::vector<Finding> findings =
      LintFixture("raw_sync.cc", "tools/fixture/raw_sync.cc");
  EXPECT_EQ(Keys(findings), (std::multiset<std::string>{
                                "suppression tools/fixture/raw_sync.cc:17"}));
}

TEST(FslintLockedSuffixTest, RequiresAnnotationAndSuffixBidirectionally) {
  std::vector<Finding> findings =
      LintFixture("locked_suffix.h", "src/fixture/locked_suffix.h");
  EXPECT_EQ(Keys(findings),
            (std::multiset<std::string>{
                // *Locked without FS_REQUIRES:
                "locked-suffix src/fixture/locked_suffix.h:14",
                "locked-suffix src/fixture/locked_suffix.h:15",
                // FS_REQUIRES without the *Locked suffix:
                "locked-suffix src/fixture/locked_suffix.h:16",
                // lines 17/18 are properly annotated; line 20 is suppressed.
            }));
}

TEST(FslintGuardedMemberTest, FlagsUnannotatedMutableMembersOnly) {
  std::vector<Finding> findings =
      LintFixture("guarded_member.h", "src/fixture/guarded_member.h");
  // stale_ is the only member that is mutable, non-atomic, unannotated,
  // and unsuppressed; struct Plain has no mutex so stays silent.
  EXPECT_EQ(Keys(findings),
            (std::multiset<std::string>{
                "guarded-member src/fixture/guarded_member.h:20"}));
}

TEST(FslintDeterminismTest, FlagsEntropyWallClockAndBareSleeps) {
  std::vector<Finding> findings =
      LintFixture("determinism.cc", "src/fixture/determinism.cc");
  EXPECT_EQ(Keys(findings),
            (std::multiset<std::string>{
                "determinism src/fixture/determinism.cc:11",  // random_device
                "determinism src/fixture/determinism.cc:12",  // rand()
                "determinism src/fixture/determinism.cc:13",  // ::time()
                "determinism src/fixture/determinism.cc:14",  // system_clock
                "determinism src/fixture/determinism.cc:15",  // sleep_for
                // line 21's sleep carries a justified allow: silent.
            }));
}

TEST(FslintDeterminismTest, RuleIsScopedToSrcOnly) {
  // Tests and benchmarks legitimately sleep and seed from entropy.
  std::vector<Finding> findings =
      LintFixture("determinism.cc", "tests/fixture/determinism.cc");
  EXPECT_EQ(Keys(findings), std::multiset<std::string>{});
}

TEST(FslintHeaderHygieneTest, FlagsNamespaceScopeUsingDirectivesInHeaders) {
  std::vector<Finding> findings =
      LintFixture("header_hygiene.h", "src/fixture/header_hygiene.h");
  EXPECT_EQ(Keys(findings),
            (std::multiset<std::string>{
                "header-hygiene src/fixture/header_hygiene.h:7",
                "header-hygiene src/fixture/header_hygiene.h:10",
                // line 15 is inside a function body: allowed.
            }));
}

TEST(FslintFaultRegistryTest, FlagsDuplicatesUncataloguedAndOrphans) {
  Options options;
  options.catalog_path = "tools/fslint/testdata/fault_catalog.md";
  options.fault_catalog =
      ParseFaultCatalog(ReadFile(Testdata() / "fault_catalog.md"));
  std::vector<Finding> findings = LintFixture(
      "fault_registry.cc", "src/fixture/fault_registry.cc", options);
  EXPECT_EQ(Keys(findings),
            (std::multiset<std::string>{
                // "fixture.duplicate" is declared at two sites:
                "fault-point-registry src/fixture/fault_registry.cc:9",
                "fault-point-registry src/fixture/fault_registry.cc:11",
                // "fixture.uncatalogued" is missing from the catalog:
                "fault-point-registry src/fixture/fault_registry.cc:13",
                // "fixture.orphan" is catalogued but never declared:
                "fault-point-registry tools/fslint/testdata/"
                "fault_catalog.md:9",
            }));
}

TEST(FslintFaultRegistryTest, CatalogParserReadsTheRealCatalog) {
  std::vector<CatalogEntry> catalog = ParseFaultCatalog(
      ReadFile(std::filesystem::path(FS_SOURCE_DIR) / "docs/ROBUSTNESS.md"));
  EXPECT_GE(catalog.size(), 20u);
  for (const CatalogEntry& entry : catalog) {
    EXPECT_FALSE(entry.name.empty());
    EXPECT_GT(entry.line, 0);
  }
}

TEST(FslintMetricRegistryTest, FlagsDuplicatesUncataloguedAndOrphans) {
  Options options;
  options.metric_catalog_path = "tools/fslint/testdata/metric_catalog.md";
  options.metric_catalog =
      ParseMetricCatalog(ReadFile(Testdata() / "metric_catalog.md"));
  std::vector<Finding> findings = LintFixture(
      "metric_registry.cc", "src/fixture/metric_registry.cc", options);
  EXPECT_EQ(Keys(findings),
            (std::multiset<std::string>{
                // "fixture.metric.duplicate" is declared at two sites:
                "metric-name-registry src/fixture/metric_registry.cc:10",
                "metric-name-registry src/fixture/metric_registry.cc:12",
                // "fixture.span.uncatalogued" is missing from the catalog:
                "metric-name-registry src/fixture/metric_registry.cc:14",
                // "fixture.metric.orphan" / "fixture.span.orphan" are
                // catalogued but never declared:
                "metric-name-registry tools/fslint/testdata/"
                "metric_catalog.md:10",
                "metric-name-registry tools/fslint/testdata/"
                "metric_catalog.md:16",
            }));
}

TEST(FslintMetricRegistryTest, CatalogParserReadsTheRealCatalog) {
  std::vector<CatalogEntry> catalog = ParseMetricCatalog(ReadFile(
      std::filesystem::path(FS_SOURCE_DIR) / "docs/OBSERVABILITY.md"));
  EXPECT_GE(catalog.size(), 30u);
  for (const CatalogEntry& entry : catalog) {
    EXPECT_FALSE(entry.name.empty());
    EXPECT_GT(entry.line, 0);
  }
}

TEST(FslintLockCycleTest, FlagsMutualNestingAsCyclePlusUndeclaredEdges) {
  std::vector<Finding> findings =
      LintFixture("lock_cycle.cc", "src/fixture/lock_cycle.cc");
  EXPECT_EQ(Keys(findings),
            (std::multiset<std::string>{
                // Forward()'s second acquisition anchors the cycle witness:
                "lock-cycle src/fixture/lock_cycle.cc:13",
                // ...and each direction of the nesting is also undeclared:
                "lock-order-undeclared src/fixture/lock_cycle.cc:13",
                "lock-order-undeclared src/fixture/lock_cycle.cc:18",
            }));
}

TEST(FslintLockOrderTest, FlagsAcquisitionContradictingDeclaredOrder) {
  std::vector<Finding> findings = LintFixture(
      "lock_order_contradiction.cc", "src/fixture/lock_order_contradiction.cc");
  EXPECT_EQ(Keys(findings),
            (std::multiset<std::string>{
                // The observed b_ -> a_ edge closes a cycle with the
                // declared a_ -> b_ edge and contradicts it:
                "lock-cycle src/fixture/lock_order_contradiction.cc:14",
                "lock-order-contradiction "
                "src/fixture/lock_order_contradiction.cc:14",
                // dangling_'s annotation names no known mutex:
                "lock-order-contradiction "
                "src/fixture/lock_order_contradiction.cc:20",
            }));
}

TEST(FslintLockOrderTest, FlagsUndeclaredNestingDirectAndThroughCalls) {
  std::vector<Finding> findings = LintFixture(
      "lock_order_undeclared.cc", "src/fixture/lock_order_undeclared.cc");
  EXPECT_EQ(Keys(findings),
            (std::multiset<std::string>{
                // Direct nesting in Nest():
                "lock-order-undeclared src/fixture/lock_order_undeclared.cc:13",
                // Outer() picks up inner_ inside Leaf(); the finding sits on
                // the call site. AcquireAudited()'s pair is suppressed.
                "lock-order-undeclared src/fixture/lock_order_undeclared.cc:33",
            }));
  for (const Finding& f : findings) {
    if (f.line == 33) {
      EXPECT_NE(f.message.find("calls Caller::Leaf"), std::string::npos)
          << f.message;
    }
  }
}

TEST(FslintLockOrderTest, LockGraphOnlyCoversSrc) {
  // The same mutual-nesting content outside src/ contributes no symbols.
  std::vector<Finding> findings =
      LintFixture("lock_cycle.cc", "tools/fixture/lock_cycle.cc");
  EXPECT_EQ(Keys(findings), std::multiset<std::string>{});
}

// ---------------------------------------------------------------------------
// Layering.
// ---------------------------------------------------------------------------

LayeringConfig RealLayeringConfig(std::vector<Finding>* config_findings) {
  return ParseLayeringConfig(
      "tools/fslint/layering.toml",
      ReadFile(std::filesystem::path(FS_SOURCE_DIR) / "tools" / "fslint" /
               "layering.toml"),
      config_findings);
}

TEST(FslintLayeringTest, FlagsIncludesClimbingTheModuleDag) {
  std::vector<Finding> config_findings;
  Options options;
  options.layering = RealLayeringConfig(&config_findings);
  EXPECT_EQ(Keys(config_findings), std::multiset<std::string>{});

  std::vector<Finding> findings = LintFixture(
      "layering_violation.cc", "src/spanner/layering_violation.cc", options);
  EXPECT_EQ(Keys(findings),
            (std::multiset<std::string>{
                // frontend/ and rtcache/ are above spanner in the DAG;
                // common/, self, system, and non-module includes pass.
                "layering src/spanner/layering_violation.cc:9",
                "layering src/spanner/layering_violation.cc:10",
            }));
}

TEST(FslintLayeringTest, FlagsFilesInUndeclaredModules) {
  std::vector<Finding> config_findings;
  Options options;
  options.layering = RealLayeringConfig(&config_findings);
  std::vector<Finding> findings = LintFixture(
      "layering_violation.cc", "src/mystery/layering_violation.cc", options);
  EXPECT_EQ(Keys(findings),
            (std::multiset<std::string>{
                "layering src/mystery/layering_violation.cc:1"}));
}

TEST(FslintLayeringTest, UnrestrictedModulesMayIncludeAnything) {
  std::vector<Finding> config_findings;
  Options options;
  options.layering = RealLayeringConfig(&config_findings);
  std::vector<Finding> findings = LintFixture(
      "layering_violation.cc", "src/sim/layering_violation.cc", options);
  EXPECT_EQ(Keys(findings), std::multiset<std::string>{});
}

TEST(FslintLayeringTest, ConfigParserRejectsMalformedAndDanglingEntries) {
  std::vector<Finding> findings;
  LayeringConfig config = ParseLayeringConfig("cfg.toml",
                                              "root = \"src\"\n"
                                              "stray = 1\n"            // 2
                                              "[module.a]\n"
                                              "deps = [\"ghost\"]\n"   // 4
                                              "[module.a]\n"           // 5
                                              "[badline\n",            // 6
                                              &findings);
  EXPECT_TRUE(config.loaded());
  EXPECT_EQ(Keys(findings), (std::multiset<std::string>{
                                "layering cfg.toml:2",  // entry outside module
                                "layering cfg.toml:3",  // dangling dep 'ghost'
                                "layering cfg.toml:5",  // duplicate module
                                "layering cfg.toml:6",  // malformed header
                            }));
}

// ---------------------------------------------------------------------------
// Whole-tree sweep: the real src/ must be clean under every pass, and the
// lock graph must contain the orders the annotations declare. This is the
// "every nested mutex pair has a declared order" cross-check.
// ---------------------------------------------------------------------------

TEST(FslintTreeSweepTest, RealSrcTreeIsCleanAndGraphMatchesAnnotations) {
  std::vector<FileInput> inputs;
  std::filesystem::path root(FS_SOURCE_DIR);
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root / "src")) {
    if (!entry.is_regular_file()) continue;
    std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    inputs.push_back({std::filesystem::relative(entry.path(), root)
                          .generic_string(),
                      ReadFile(entry.path())});
  }
  std::sort(inputs.begin(), inputs.end(),
            [](const FileInput& a, const FileInput& b) {
              return a.path < b.path;
            });
  ASSERT_GE(inputs.size(), 50u);

  std::vector<Finding> config_findings;
  Options options;
  options.fault_catalog =
      ParseFaultCatalog(ReadFile(root / "docs" / "ROBUSTNESS.md"));
  options.metric_catalog =
      ParseMetricCatalog(ReadFile(root / "docs" / "OBSERVABILITY.md"));
  options.layering = RealLayeringConfig(&config_findings);
  EXPECT_EQ(Keys(config_findings), std::multiset<std::string>{});
  LockGraph graph;
  options.lock_graph_out = &graph;

  std::vector<Finding> findings = Lint(inputs, options);
  EXPECT_EQ(Keys(findings), std::multiset<std::string>{})
      << "real src/ tree must lint clean";

  // The graph reflects the seeded annotations: every observed edge is
  // sanctioned by the declared closure, and the known nestings are present.
  EXPECT_GE(graph.nodes.size(), 10u);
  std::set<std::string> want_observed{
      "Changelog::mu_ -> RangeOwnership::mu_",
      "Database::data_mu_ -> TimestampOracle::mu_",
      "Frontend::mu_ -> Database::data_mu_",
      "Frontend::mu_ -> QueryMatcher::mu_",
  };
  for (const LockEdge& e : graph.edges) {
    if (e.observed) {
      EXPECT_TRUE(e.covered) << e.from << " -> " << e.to
                             << " observed but not declared";
      want_observed.erase(e.from + " -> " + e.to);
    }
  }
  EXPECT_EQ(want_observed, std::set<std::string>{})
      << "expected nesting missing from the lock graph";

  // Determinism: the parallel scan must not depend on worker count.
  Options serial = options;
  LockGraph serial_graph;
  serial.lock_graph_out = &serial_graph;
  serial.jobs = 1;
  std::vector<Finding> serial_findings = Lint(inputs, serial);
  EXPECT_EQ(Keys(serial_findings), Keys(findings));
  EXPECT_EQ(LockGraphToJson(serial_graph), LockGraphToJson(graph));
  Options wide = options;
  wide.jobs = 8;
  EXPECT_EQ(Keys(Lint(inputs, wide)), Keys(findings));
}

// ---------------------------------------------------------------------------
// Runtime cross-check: code literals <-> docs catalog <-> FaultRegistry.
// ---------------------------------------------------------------------------

std::set<std::string> FaultPointNamesInSrc() {
  std::set<std::string> names;
  std::filesystem::path src = std::filesystem::path(FS_SOURCE_DIR) / "src";
  for (const auto& entry : std::filesystem::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    SourceFile file =
        Lex(entry.path().string(), ReadFile(entry.path()));
    for (const StringLiteral& lit : ExtractFaultPoints(file)) {
      // fslint's own uniqueness rule guarantees single declaration sites;
      // here we only need the name set.
      names.insert(lit.value);
    }
  }
  return names;
}

TEST(FaultPointCrossCheckTest, CodeCatalogAndRegistryAgree) {
  std::set<std::string> in_code = FaultPointNamesInSrc();
  ASSERT_FALSE(in_code.empty());

  std::set<std::string> in_docs;
  for (const CatalogEntry& entry : ParseFaultCatalog(ReadFile(
           std::filesystem::path(FS_SOURCE_DIR) / "docs/ROBUSTNESS.md"))) {
    in_docs.insert(entry.name);
  }
  // Bidirectional: every declared point is catalogued, every catalogued
  // point exists in code.
  EXPECT_EQ(in_code, in_docs);

  // Arming registers names the binary never executed; the registry's view
  // must then cover the whole catalog.
  firestore::FaultRegistry& registry = firestore::FaultRegistry::Global();
  for (const std::string& name : in_code) {
    firestore::FaultConfig config;
    config.probability = 0.0;  // never fires even if somehow evaluated
    registry.Arm(name, config);
  }
  registry.DisarmAll();
  std::vector<std::string> listed = registry.ListPoints();
  std::set<std::string> in_registry(listed.begin(), listed.end());
  for (const std::string& name : in_code) {
    EXPECT_TRUE(in_registry.count(name) != 0u)
        << name << " missing from FaultRegistry::ListPoints()";
  }
}

}  // namespace
}  // namespace fslint
