#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/bytes.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"

namespace firestore {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing doc");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing doc");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing doc");
}

TEST(StatusTest, AllErrorConstructors) {
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(UnknownError("x").code(), StatusCode::kUnknown);
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(PermissionDeniedError("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(AbortedError("x").code(), StatusCode::kAborted);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InvalidArgumentError("bad");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

Status UsesAssignOrReturn(int x, int* out) {
  ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_EQ(UsesAssignOrReturn(-1, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(BytesTest, ToHex) {
  EXPECT_EQ(ToHex(std::string("\x00\xff\x41", 3)), "00ff41");
  EXPECT_EQ(ToHex(""), "");
}

TEST(BytesTest, PrefixSuccessor) {
  EXPECT_EQ(PrefixSuccessor("abc"), "abd");
  EXPECT_EQ(PrefixSuccessor(std::string("a\xff", 2)), "b");
  EXPECT_EQ(PrefixSuccessor(std::string("\xff\xff", 2)), "");
}

TEST(BytesTest, PrefixSuccessorBoundsAllPrefixedKeys) {
  std::string prefix = "doc";
  std::string succ = PrefixSuccessor(prefix);
  EXPECT_LT(prefix + "zzz", succ);
  EXPECT_LT(prefix + std::string(10, '\xff'), succ);
  EXPECT_GE(succ, prefix);
}

TEST(BytesTest, KeySuccessorIsSmallestGreater) {
  std::string k = "key";
  std::string succ = KeySuccessor(k);
  EXPECT_GT(succ, k);
  EXPECT_LT(k, succ);
  // Nothing fits strictly between k and k+'\0'.
  EXPECT_EQ(succ, k + std::string(1, '\0'));
}

TEST(BytesTest, StartsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(StartsWith("abc", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("xbc", "abc"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(RngTest, DeterministicWithSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, AlphaNumStringLengthAndCharset) {
  Rng rng(7);
  std::string s = rng.AlphaNumString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
}

TEST(ZipfianTest, InRangeAndSkewed) {
  Rng rng(3);
  ZipfianGenerator zipf(1000, 0.99);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 1000u);
    ++counts[v];
  }
  // Rank-0 items must dominate a uniform share heavily.
  EXPECT_GT(counts[0], 100000 / 1000 * 20);
}

TEST(ZipfianTest, LargeNUsesApproximateZeta) {
  Rng rng(4);
  ZipfianGenerator zipf(10'000'000, 0.99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Next(rng), 10'000'000u);
  }
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.Quantile(0.5), 100, 2);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 100);
}

TEST(HistogramTest, QuantilesWithinRelativeError) {
  Histogram h;
  for (int i = 1; i <= 100000; ++i) h.Record(i);
  EXPECT_NEAR(h.Quantile(0.5), 50000, 50000 * 0.02);
  EXPECT_NEAR(h.Quantile(0.99), 99000, 99000 * 0.02);
  EXPECT_NEAR(h.Mean(), 50000.5, 1);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Record(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.99), 0);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Record(1e9);
  EXPECT_NEAR(h.Quantile(0.5), 1e9, 1e9 * 0.02);
}

TEST(BoxplotTest, OrderedQuantiles) {
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) values.push_back(i);
  BoxplotStats s = ComputeBoxplot(values);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 1000);
  EXPECT_LE(s.p1, s.p25);
  EXPECT_LE(s.p25, s.p50);
  EXPECT_LE(s.p50, s.p75);
  EXPECT_LE(s.p75, s.p99);
  EXPECT_NEAR(s.p50, 500, 2);
}

}  // namespace
}  // namespace firestore
