// Conflict-path tests for the wound-wait lock manager (paper §IV-D1/D3):
// writer-writer conflicts, shared->exclusive upgrades under contention, and
// release-after-abort. Each scenario runs real threads through the blocking
// Acquire path and asserts the lock table drains to empty afterwards.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "spanner/lock_manager.h"

namespace firestore::spanner {
namespace {

// ---------------------------------------------------------------------------
// Writer-writer conflict

// An older writer that runs into a younger writer's exclusive lock wounds
// the younger transaction and takes the lock once it is released.
TEST(LockManagerConflictTest, WriterWriterConflictOlderWoundsYounger) {
  LockManager locks;

  // Younger txn 2 grabs the row first.
  ASSERT_TRUE(locks.Acquire(2, "t/row", LockMode::kExclusive).ok());

  std::atomic<bool> older_granted{false};
  std::thread older([&] {
    // Blocks: txn 2 holds the lock. Wound-wait marks txn 2 wounded and
    // waits for the release instead of deadlocking or aborting txn 1.
    Status s = locks.Acquire(1, "t/row", LockMode::kExclusive);
    EXPECT_TRUE(s.ok()) << s;
    older_granted.store(true);
  });

  // The victim eventually observes the wound; any further lock request it
  // makes is refused with ABORTED.
  while (!locks.IsWounded(2)) std::this_thread::yield();
  EXPECT_FALSE(older_granted.load());
  Status refused = locks.Acquire(2, "t/other", LockMode::kShared);
  EXPECT_EQ(refused.code(), StatusCode::kAborted);

  locks.ReleaseAll(2);  // abort path: victim rolls back
  older.join();
  EXPECT_TRUE(older_granted.load());

  locks.ReleaseAll(1);
  EXPECT_EQ(locks.LockCount(), 0);
}

// A younger writer never wounds an older one: it waits until the older
// transaction commits (releases) and then proceeds.
TEST(LockManagerConflictTest, WriterWriterConflictYoungerWaits) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, "t/row", LockMode::kExclusive).ok());

  std::atomic<bool> younger_granted{false};
  std::thread younger([&] {
    Status s = locks.Acquire(2, "t/row", LockMode::kExclusive);
    EXPECT_TRUE(s.ok()) << s;
    younger_granted.store(true);
  });

  // Give the younger txn a chance to enqueue; it must neither be granted
  // nor wound the older holder.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(younger_granted.load());
  EXPECT_FALSE(locks.IsWounded(1));

  locks.ReleaseAll(1);
  younger.join();
  EXPECT_TRUE(younger_granted.load());

  locks.ReleaseAll(2);
  EXPECT_EQ(locks.LockCount(), 0);
}

// ---------------------------------------------------------------------------
// Shared-lock upgrade

// Two readers share a row; the older one upgrades to exclusive. The upgrade
// conflicts with the younger reader, which is wounded and rolls back; the
// upgrade is then granted.
TEST(LockManagerConflictTest, SharedUpgradeWoundsYoungerReader) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, "t/row", LockMode::kShared).ok());
  ASSERT_TRUE(locks.Acquire(2, "t/row", LockMode::kShared).ok());

  std::atomic<bool> upgraded{false};
  std::thread upgrader([&] {
    Status s = locks.Acquire(1, "t/row", LockMode::kExclusive);
    EXPECT_TRUE(s.ok()) << s;
    upgraded.store(true);
  });

  while (!locks.IsWounded(2)) std::this_thread::yield();
  EXPECT_EQ(locks.Acquire(2, "t/row", LockMode::kExclusive).code(),
            StatusCode::kAborted);
  locks.ReleaseAll(2);

  upgrader.join();
  EXPECT_TRUE(upgraded.load());

  locks.ReleaseAll(1);
  EXPECT_EQ(locks.LockCount(), 0);
}

// A younger upgrader blocks behind an older shared holder (no wound) and
// completes the upgrade once the older reader releases.
TEST(LockManagerConflictTest, SharedUpgradeYoungerWaitsForOlderReader) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, "t/row", LockMode::kShared).ok());
  ASSERT_TRUE(locks.Acquire(2, "t/row", LockMode::kShared).ok());

  std::atomic<bool> upgraded{false};
  std::thread upgrader([&] {
    Status s = locks.Acquire(2, "t/row", LockMode::kExclusive);
    EXPECT_TRUE(s.ok()) << s;
    upgraded.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(upgraded.load());
  EXPECT_FALSE(locks.IsWounded(1));

  locks.ReleaseAll(1);
  upgrader.join();
  EXPECT_TRUE(upgraded.load());

  locks.ReleaseAll(2);
  EXPECT_EQ(locks.LockCount(), 0);
}

// ---------------------------------------------------------------------------
// Release after abort

// A wounded transaction holding many locks releases everything on abort:
// the lock table is empty, waiters wake up, and the wounded flag is cleared
// so the txn id could be reused.
TEST(LockManagerConflictTest, ReleaseAfterAbortDrainsLockTable) {
  LockManager locks;
  std::vector<std::string> keys;
  for (int i = 0; i < 16; ++i) {
    keys.push_back("t/row" + std::to_string(i));
    ASSERT_TRUE(locks.Acquire(7, keys.back(), LockMode::kExclusive).ok());
  }
  EXPECT_EQ(locks.LockCount(), 16);

  locks.Wound(7);
  EXPECT_TRUE(locks.IsWounded(7));
  EXPECT_EQ(locks.Acquire(7, "t/rowX", LockMode::kShared).code(),
            StatusCode::kAborted);

  locks.ReleaseAll(7);
  EXPECT_EQ(locks.LockCount(), 0);
  EXPECT_FALSE(locks.IsWounded(7));

  // The keys are immediately available to another transaction.
  for (const std::string& key : keys) {
    EXPECT_TRUE(locks.Acquire(8, key, LockMode::kExclusive).ok());
  }
  locks.ReleaseAll(8);
  EXPECT_EQ(locks.LockCount(), 0);
}

// Acquire with a timeout returns DEADLINE_EXCEEDED (not a hang) when an
// older holder never releases, and leaves no residue in the lock table.
TEST(LockManagerConflictTest, TimeoutLeavesNoResidue) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, "t/row", LockMode::kExclusive).ok());

  Status s = locks.Acquire(2, "t/row", LockMode::kExclusive, /*timeout_ms=*/20);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);

  locks.ReleaseAll(2);  // no-op: nothing was granted
  locks.ReleaseAll(1);
  EXPECT_EQ(locks.LockCount(), 0);
}

}  // namespace
}  // namespace firestore::spanner
