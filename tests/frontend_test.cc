// End-to-end tests of the real-time query pipeline through FirestoreService:
// write -> Changelog -> Query Matcher -> Frontend -> listener callbacks.

#include <gtest/gtest.h>

#include "service/service.h"
#include "tests/test_support.h"

namespace firestore::frontend {
namespace {

using backend::Mutation;
using model::Document;
using model::Map;
using model::Value;
using query::Operator;
using query::Query;
using testing::Field;
using testing::Path;

constexpr char kDb[] = "projects/p/databases/d";

class RealtimeTest : public ::testing::Test {
 protected:
  RealtimeTest() : clock_(1'000'000'000), service_(&clock_) {
    FS_CHECK_OK(service_.CreateDatabase(kDb));
  }

  // Commits a put and pumps until listeners are up to date.
  void PutAndPump(const std::string& path, Map fields) {
    auto result =
        service_.Commit(kDb, {Mutation::Set(Path(path), std::move(fields))});
    FS_CHECK(result.ok());
    Pump();
  }

  void DeleteAndPump(const std::string& path) {
    FS_CHECK(service_.Commit(kDb, {Mutation::Delete(Path(path))}).ok());
    Pump();
  }

  // Time must advance for watermarks to pass the latest commit timestamps.
  void Pump() {
    clock_.AdvanceBy(100'000);
    service_.Pump();
    service_.Pump();  // second round: deliver snapshots built on new marks
  }

  ManualClock clock_;
  service::FirestoreService service_;
};

struct Recorder {
  std::vector<QuerySnapshot> snapshots;
  SnapshotCallback Callback() {
    return [this](const QuerySnapshot& s) { snapshots.push_back(s); };
  }
  const QuerySnapshot& last() const { return snapshots.back(); }
  std::vector<std::string> LastIds() const {
    std::vector<std::string> ids;
    for (const auto& doc : last().documents) {
      ids.push_back(doc.name().last_segment());
    }
    return ids;
  }
};

TEST_F(RealtimeTest, InitialSnapshotDeliveredOnListen) {
  PutAndPump("/scores/a", {{"points", Value::Integer(10)}});
  PutAndPump("/scores/b", {{"points", Value::Integer(20)}});
  Recorder rec;
  auto conn = service_.frontend().OpenPrivilegedConnection(kDb);
  auto target = service_.frontend().Listen(
      conn, Query(model::ResourcePath(), "scores"), rec.Callback());
  ASSERT_TRUE(target.ok());
  ASSERT_EQ(rec.snapshots.size(), 1u);
  EXPECT_TRUE(rec.last().is_reset);
  EXPECT_EQ(rec.LastIds(), (std::vector<std::string>{"a", "b"}));
}

TEST_F(RealtimeTest, IncrementalAddModifyRemove) {
  Recorder rec;
  auto conn = service_.frontend().OpenPrivilegedConnection(kDb);
  ASSERT_TRUE(service_.frontend()
                  .Listen(conn, Query(model::ResourcePath(), "scores"),
                          rec.Callback())
                  .ok());
  ASSERT_EQ(rec.snapshots.size(), 1u);

  PutAndPump("/scores/a", {{"points", Value::Integer(1)}});
  ASSERT_EQ(rec.snapshots.size(), 2u);
  EXPECT_FALSE(rec.last().is_reset);
  ASSERT_EQ(rec.last().changes.size(), 1u);
  EXPECT_EQ(rec.last().changes[0].kind, ChangeKind::kAdded);
  EXPECT_EQ(rec.LastIds(), (std::vector<std::string>{"a"}));

  PutAndPump("/scores/a", {{"points", Value::Integer(2)}});
  ASSERT_EQ(rec.snapshots.size(), 3u);
  EXPECT_EQ(rec.last().changes[0].kind, ChangeKind::kModified);
  EXPECT_EQ(rec.last()
                .changes[0]
                .doc.GetField(Field("points"))
                ->integer_value(),
            2);

  DeleteAndPump("/scores/a");
  ASSERT_EQ(rec.snapshots.size(), 4u);
  EXPECT_EQ(rec.last().changes[0].kind, ChangeKind::kRemoved);
  EXPECT_TRUE(rec.last().documents.empty());
}

TEST_F(RealtimeTest, FilteredQueryOnlySeesMatchingChanges) {
  Recorder rec;
  auto conn = service_.frontend().OpenPrivilegedConnection(kDb);
  Query q(model::ResourcePath(), "scores");
  q.Where(Field("team"), Operator::kEqual, Value::String("red"));
  ASSERT_TRUE(service_.frontend().Listen(conn, q, rec.Callback()).ok());
  PutAndPump("/scores/r1", {{"team", Value::String("red")},
                            {"points", Value::Integer(1)}});
  PutAndPump("/scores/b1", {{"team", Value::String("blue")},
                            {"points", Value::Integer(2)}});
  // Only the red write produced a snapshot.
  ASSERT_EQ(rec.snapshots.size(), 2u);
  EXPECT_EQ(rec.LastIds(), (std::vector<std::string>{"r1"}));
  // A document leaving the filter is reported as a removal.
  PutAndPump("/scores/r1", {{"team", Value::String("blue")}});
  ASSERT_EQ(rec.snapshots.size(), 3u);
  EXPECT_EQ(rec.last().changes[0].kind, ChangeKind::kRemoved);
}

TEST_F(RealtimeTest, SnapshotTimestampsAreMonotonic) {
  Recorder rec;
  auto conn = service_.frontend().OpenPrivilegedConnection(kDb);
  ASSERT_TRUE(service_.frontend()
                  .Listen(conn, Query(model::ResourcePath(), "scores"),
                          rec.Callback())
                  .ok());
  for (int i = 0; i < 5; ++i) {
    PutAndPump("/scores/s" + std::to_string(i),
               {{"points", Value::Integer(i)}});
  }
  ASSERT_GE(rec.snapshots.size(), 2u);
  for (size_t i = 1; i < rec.snapshots.size(); ++i) {
    EXPECT_GT(rec.snapshots[i].snapshot_ts, rec.snapshots[i - 1].snapshot_ts);
  }
}

TEST_F(RealtimeTest, CumulativeDeltasEqualQueryRerun) {
  // DESIGN.md invariant 4: applying the deltas cumulatively reproduces the
  // result of re-running the query at each snapshot timestamp.
  Recorder rec;
  auto conn = service_.frontend().OpenPrivilegedConnection(kDb);
  Query q(model::ResourcePath(), "scores");
  ASSERT_TRUE(service_.frontend().Listen(conn, q, rec.Callback()).ok());
  PutAndPump("/scores/a", {{"points", Value::Integer(1)}});
  PutAndPump("/scores/b", {{"points", Value::Integer(2)}});
  PutAndPump("/scores/a", {{"points", Value::Integer(3)}});
  DeleteAndPump("/scores/b");
  // Replay cumulatively.
  std::map<std::string, Document> replay;
  for (const QuerySnapshot& s : rec.snapshots) {
    if (s.is_reset) replay.clear();
    for (const SnapshotChange& c : s.changes) {
      if (c.kind == ChangeKind::kRemoved) {
        replay.erase(c.doc.name().CanonicalString());
      } else {
        replay[c.doc.name().CanonicalString()] = c.doc;
      }
    }
    // Compare with a query at the snapshot timestamp.
    auto rerun = service_.RunQuery(kDb, q, s.snapshot_ts);
    ASSERT_TRUE(rerun.ok());
    ASSERT_EQ(rerun->result.documents.size(), replay.size());
    for (const Document& doc : rerun->result.documents) {
      auto it = replay.find(doc.name().CanonicalString());
      ASSERT_NE(it, replay.end());
      EXPECT_TRUE(it->second == doc);
    }
  }
}

TEST_F(RealtimeTest, MultipleQueriesOnConnectionAdvanceTogether) {
  Recorder rec_a, rec_b;
  auto conn = service_.frontend().OpenPrivilegedConnection(kDb);
  Query qa(model::ResourcePath(), "alpha");
  Query qb(model::ResourcePath(), "beta");
  ASSERT_TRUE(service_.frontend().Listen(conn, qa, rec_a.Callback()).ok());
  ASSERT_TRUE(service_.frontend().Listen(conn, qb, rec_b.Callback()).ok());
  // One commit touching both collections.
  ASSERT_TRUE(
      service_
          .Commit(kDb, {Mutation::Set(Path("/alpha/x"),
                                      {{"v", Value::Integer(1)}}),
                        Mutation::Set(Path("/beta/y"),
                                      {{"v", Value::Integer(2)}})})
          .ok());
  Pump();
  ASSERT_EQ(rec_a.snapshots.size(), 2u);
  ASSERT_EQ(rec_b.snapshots.size(), 2u);
  // Both queries observe the same consistent timestamp.
  EXPECT_EQ(rec_a.last().snapshot_ts, rec_b.last().snapshot_ts);
}

TEST_F(RealtimeTest, ManyListenersAllNotified) {
  std::vector<std::unique_ptr<Recorder>> recorders;
  for (int i = 0; i < 50; ++i) {
    auto conn = service_.frontend().OpenPrivilegedConnection(kDb);
    recorders.push_back(std::make_unique<Recorder>());
    ASSERT_TRUE(service_.frontend()
                    .Listen(conn, Query(model::ResourcePath(), "scores"),
                            recorders.back()->Callback())
                    .ok());
  }
  PutAndPump("/scores/game", {{"points", Value::Integer(7)}});
  for (const auto& rec : recorders) {
    ASSERT_EQ(rec->snapshots.size(), 2u);
    EXPECT_EQ(rec->LastIds(), (std::vector<std::string>{"game"}));
  }
}

TEST_F(RealtimeTest, LimitQueryResetsOnChange) {
  PutAndPump("/scores/a", {{"points", Value::Integer(1)}});
  PutAndPump("/scores/b", {{"points", Value::Integer(2)}});
  PutAndPump("/scores/c", {{"points", Value::Integer(3)}});
  Recorder rec;
  auto conn = service_.frontend().OpenPrivilegedConnection(kDb);
  Query q(model::ResourcePath(), "scores");
  q.OrderByField(Field("points"), true).Limit(2);
  ASSERT_TRUE(service_.frontend().Listen(conn, q, rec.Callback()).ok());
  EXPECT_EQ(rec.LastIds(), (std::vector<std::string>{"c", "b"}));
  // Removing `c` pulls `a` into the top-2: requires a reset requery.
  DeleteAndPump("/scores/c");
  Pump();
  EXPECT_EQ(rec.LastIds(), (std::vector<std::string>{"b", "a"}));
  EXPECT_TRUE(rec.last().is_reset);
}

TEST_F(RealtimeTest, OutOfSyncTriggersTransparentReset) {
  Recorder rec;
  auto conn = service_.frontend().OpenPrivilegedConnection(kDb);
  ASSERT_TRUE(service_.frontend()
                  .Listen(conn, Query(model::ResourcePath(), "scores"),
                          rec.Callback())
                  .ok());
  PutAndPump("/scores/a", {{"points", Value::Integer(1)}});
  ASSERT_EQ(rec.snapshots.size(), 2u);
  // An unknown-outcome write poisons the ranges; listeners must reset.
  backend::CommitFaults faults;
  faults.unknown_outcome = true;
  service_.committer().set_faults(faults);
  auto unknown = service_.Commit(
      kDb, {Mutation::Set(Path("/scores/b"), {{"points",
                                               Value::Integer(2)}})});
  EXPECT_EQ(unknown.status().code(), StatusCode::kDeadlineExceeded);
  service_.committer().set_faults(backend::CommitFaults{});
  Pump();
  ASSERT_GE(rec.snapshots.size(), 3u);
  EXPECT_TRUE(rec.last().is_reset);
  // The reset snapshot reflects the actually-committed write.
  EXPECT_EQ(rec.LastIds(), (std::vector<std::string>{"a", "b"}));
  EXPECT_GE(service_.frontend().resets(), 1);
}

TEST_F(RealtimeTest, ThirdPartyListenRequiresRules) {
  Recorder rec;
  auto conn = service_.frontend().OpenConnection(kDb);  // no rules set
  auto target = service_.frontend().Listen(
      conn, Query(model::ResourcePath(), "scores"), rec.Callback());
  EXPECT_EQ(target.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(RealtimeTest, ThirdPartyListenEnforcesRules) {
  ASSERT_TRUE(service_
                  .SetRules(kDb, R"(
                    match /scores/{id} {
                      allow read: if request.auth != null;
                    }
                  )")
                  .ok());
  Recorder rec;
  rules::AuthContext anon;
  auto denied_conn = service_.frontend().OpenConnection(kDb, anon);
  EXPECT_EQ(service_.frontend()
                .Listen(denied_conn, Query(model::ResourcePath(), "scores"),
                        rec.Callback())
                .status()
                .code(),
            StatusCode::kPermissionDenied);
  rules::AuthContext alice;
  alice.authenticated = true;
  alice.uid = "alice";
  auto conn = service_.frontend().OpenConnection(kDb, alice);
  EXPECT_TRUE(service_.frontend()
                  .Listen(conn, Query(model::ResourcePath(), "scores"),
                          rec.Callback())
                  .ok());
}

TEST_F(RealtimeTest, StopListenStopsSnapshots) {
  Recorder rec;
  auto conn = service_.frontend().OpenPrivilegedConnection(kDb);
  auto target = service_.frontend().Listen(
      conn, Query(model::ResourcePath(), "scores"), rec.Callback());
  ASSERT_TRUE(target.ok());
  ASSERT_TRUE(service_.frontend().StopListen(conn, *target).ok());
  PutAndPump("/scores/a", {{"points", Value::Integer(1)}});
  EXPECT_EQ(rec.snapshots.size(), 1u);  // only the initial snapshot
  EXPECT_EQ(service_.frontend().active_targets(), 0);
}

TEST_F(RealtimeTest, TenantIsolationOfNotifications) {
  constexpr char kOther[] = "projects/p/databases/other";
  ASSERT_TRUE(service_.CreateDatabase(kOther).ok());
  Recorder rec;
  auto conn = service_.frontend().OpenPrivilegedConnection(kDb);
  ASSERT_TRUE(service_.frontend()
                  .Listen(conn, Query(model::ResourcePath(), "scores"),
                          rec.Callback())
                  .ok());
  // Write to the *other* database's identical collection.
  ASSERT_TRUE(service_
                  .Commit(kOther, {Mutation::Set(Path("/scores/x"),
                                                 {{"v", Value::Integer(1)}})})
                  .ok());
  Pump();
  EXPECT_EQ(rec.snapshots.size(), 1u);  // nothing delivered
}

// Write triggers end-to-end through the functions dispatcher.
TEST_F(RealtimeTest, TriggersInvokeRegisteredFunction) {
  ASSERT_TRUE(service_
                  .RegisterTrigger(kDb, "onScore", {"scores", "{id}"})
                  .ok());
  std::vector<backend::TriggerEvent> events;
  service_.functions().Register(
      "onScore", [&](const backend::TriggerEvent& e) {
        events.push_back(e);
        return Status::Ok();
      });
  PutAndPump("/scores/a", {{"points", Value::Integer(9)}});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].function_name, "onScore");
  EXPECT_EQ(events[0].change.name.CanonicalString(), "/scores/a");
  EXPECT_EQ(service_.functions().dispatched(), 1);
}

// A query whose collection spans multiple document-name ranges: the
// Frontend must hold back snapshots until EVERY subscribed range's
// watermark passes the timestamp (paper §IV-D4 step 6).
TEST(MultiRangeRealtimeTest, SnapshotWaitsForAllRangeWatermarks) {
  ManualClock clock(1'000'000'000);
  // Place a split point inside the tenant's "scores" collection so the
  // query covers two ranges.
  const std::string db = "projects/p/databases/d";
  std::string split = index::EntityKeyPrefixForCollection(
      db, Path("/scores").Child("m"));
  service::FirestoreService::Options options;
  options.realtime_split_points = {split};
  service::FirestoreService service(&clock, options);
  FS_CHECK_OK(service.CreateDatabase(db));

  Recorder rec;
  auto conn = service.frontend().OpenPrivilegedConnection(db);
  ASSERT_TRUE(service.frontend()
                  .Listen(conn, Query(model::ResourcePath(), "scores"),
                          rec.Callback())
                  .ok());
  // One commit touching documents in BOTH ranges.
  ASSERT_TRUE(service
                  .Commit(db, {Mutation::Set(Path("/scores/alpha"),
                                             {{"v", Value::Integer(1)}}),
                               Mutation::Set(Path("/scores/zeta"),
                                             {{"v", Value::Integer(2)}})})
                  .ok());
  clock.AdvanceBy(100'000);
  service.Pump();
  service.Pump();
  ASSERT_EQ(rec.snapshots.size(), 2u);
  // Both documents arrive in ONE consistent snapshot, not split across two.
  EXPECT_EQ(rec.last().changes.size(), 2u);
  EXPECT_EQ(rec.LastIds(), (std::vector<std::string>{"alpha", "zeta"}));

  // An out-of-sync on one range resets the whole query.
  backend::CommitFaults faults;
  faults.unknown_outcome = true;
  service.committer().set_faults(faults);
  (void)service.Commit(db, {Mutation::Set(Path("/scores/alpha"),
                                          {{"v", Value::Integer(9)}})});
  service.committer().set_faults(backend::CommitFaults{});
  clock.AdvanceBy(100'000);
  service.Pump();
  service.Pump();
  EXPECT_TRUE(rec.last().is_reset);
  EXPECT_EQ(rec.LastIds(), (std::vector<std::string>{"alpha", "zeta"}));
}

}  // namespace
}  // namespace firestore::frontend
