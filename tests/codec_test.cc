#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "firestore/codec/document_codec.h"
#include "firestore/codec/ordered_code.h"
#include "firestore/codec/value_codec.h"
#include "firestore/model/document.h"

namespace firestore::codec {
namespace {

using model::Array;
using model::Document;
using model::FieldPath;
using model::Map;
using model::ResourcePath;
using model::Value;

// ---------------------------------------------------------------------------
// Ordered-code primitives

TEST(OrderedCodeTest, BytesRoundTrip) {
  for (const std::string& s :
       {std::string(""), std::string("abc"), std::string("\x00", 1),
        std::string("a\x00 b", 4), std::string("\xff\xff", 2),
        std::string("\x00\x01\xff", 3)}) {
    std::string enc;
    AppendBytes(enc, s);
    std::string_view view = enc;
    std::string out;
    ASSERT_TRUE(ParseBytes(&view, &out));
    EXPECT_EQ(out, s);
    EXPECT_TRUE(view.empty());
  }
}

TEST(OrderedCodeTest, BytesOrderPreserving) {
  std::vector<std::string> inputs = {
      std::string(""),          std::string("\x00", 1),
      std::string("\x00\x00", 2), std::string("\x00\x01", 2),
      std::string("\x01", 1),   std::string("a"),
      std::string("a\x00", 2),  std::string("a\x00x", 3),
      std::string("a\x01", 2),  std::string("ab"),
      std::string("b"),         std::string("\xfe"),
      std::string("\xff"),      std::string("\xff\xff", 2)};
  for (size_t i = 0; i + 1 < inputs.size(); ++i) {
    ASSERT_LT(inputs[i], inputs[i + 1]);
    std::string a, b;
    AppendBytes(a, inputs[i]);
    AppendBytes(b, inputs[i + 1]);
    EXPECT_LT(a, b) << "inputs " << i << " and " << i + 1;
  }
}

TEST(OrderedCodeTest, BytesUnambiguousWithTrailingData) {
  // The terminator must not be confusable with following bytes, whatever
  // they are — including 0xff (which broke a naive single-0x00 terminator).
  std::string enc;
  AppendBytes(enc, "x");
  enc.push_back('\xff');  // arbitrary next component byte
  enc.push_back('\x02');
  std::string_view view = enc;
  std::string out;
  ASSERT_TRUE(ParseBytes(&view, &out));
  EXPECT_EQ(out, "x");
  EXPECT_EQ(view.size(), 2u);
}

TEST(OrderedCodeTest, Int64OrderAndRoundTrip) {
  std::vector<int64_t> inputs = {std::numeric_limits<int64_t>::min(),
                                 -1000000, -1, 0, 1, 42, 1000000,
                                 std::numeric_limits<int64_t>::max()};
  std::string prev;
  for (int64_t v : inputs) {
    std::string enc;
    AppendInt64(enc, v);
    EXPECT_EQ(enc.size(), 8u);
    if (!prev.empty()) {
      EXPECT_LT(prev, enc);
    }
    prev = enc;
    std::string_view view = enc;
    int64_t out;
    ASSERT_TRUE(ParseInt64(&view, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(OrderedCodeTest, DoubleOrderAndRoundTrip) {
  std::vector<double> inputs = {-std::numeric_limits<double>::infinity(),
                                -1e308,
                                -1.5,
                                -1e-300,
                                0.0,
                                1e-300,
                                1.5,
                                1e308,
                                std::numeric_limits<double>::infinity()};
  std::string prev;
  for (double v : inputs) {
    std::string enc;
    AppendDouble(enc, v);
    if (!prev.empty()) {
      EXPECT_LT(prev, enc) << v;
    }
    prev = enc;
    std::string_view view = enc;
    double out;
    ASSERT_TRUE(ParseDouble(&view, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(OrderedCodeTest, NaNSortsFirstAmongDoubles) {
  std::string nan_enc, neg_inf_enc;
  AppendDouble(nan_enc, std::numeric_limits<double>::quiet_NaN());
  AppendDouble(neg_inf_enc, -std::numeric_limits<double>::infinity());
  EXPECT_LT(nan_enc, neg_inf_enc);
  std::string_view view = nan_enc;
  double out;
  ASSERT_TRUE(ParseDouble(&view, &out));
  EXPECT_TRUE(std::isnan(out));
}

TEST(OrderedCodeTest, Int32RoundTrip) {
  for (int32_t v : {std::numeric_limits<int32_t>::min(), -5, 0, 5,
                    std::numeric_limits<int32_t>::max()}) {
    std::string enc;
    AppendInt32(enc, v);
    std::string_view view = enc;
    int32_t out;
    ASSERT_TRUE(ParseInt32(&view, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(OrderedCodeTest, MalformedInputsRejected) {
  std::string_view empty;
  std::string bytes_out;
  int64_t i64;
  double d;
  EXPECT_FALSE(ParseBytes(&empty, &bytes_out));
  EXPECT_FALSE(ParseInt64(&empty, &i64));
  EXPECT_FALSE(ParseDouble(&empty, &d));
  std::string unterminated = "abc";
  std::string_view view = unterminated;
  EXPECT_FALSE(ParseBytes(&view, &bytes_out));
  std::string bad_escape("x\x00\x42", 3);
  view = bad_escape;
  EXPECT_FALSE(ParseBytes(&view, &bytes_out));
}

// ---------------------------------------------------------------------------
// Value codec: the central ordering property

// A diverse corpus of values, strictly ordered by Value::Compare.
std::vector<Value> OrderedCorpus() {
  return {
      Value::Null(),
      Value::Boolean(false),
      Value::Boolean(true),
      Value::Double(std::numeric_limits<double>::quiet_NaN()),
      Value::Double(-std::numeric_limits<double>::infinity()),
      Value::Integer(std::numeric_limits<int64_t>::min()),
      Value::Integer(std::numeric_limits<int64_t>::min() + 1),
      Value::Double(-1e17),
      Value::Integer(-(1ll << 53) - 1),
      Value::Integer(-(1ll << 53)),
      Value::Double(-3.5),
      Value::Integer(-3),
      Value::Double(-0.5),
      Value::Integer(0),
      Value::Double(0.25),
      Value::Integer(1),
      Value::Double(1.5),
      Value::Integer(2),
      Value::Integer((1ll << 53)),
      Value::Integer((1ll << 53) + 1),
      Value::Integer((1ll << 53) + 2),
      Value::Double(1e17),
      Value::Integer(std::numeric_limits<int64_t>::max() - 1),
      Value::Integer(std::numeric_limits<int64_t>::max()),
      Value::Double(1e19),
      Value::Double(std::numeric_limits<double>::infinity()),
      Value::Timestamp(-5),
      Value::Timestamp(0),
      Value::Timestamp(1000000),
      Value::String(""),
      Value::String(std::string("\x00", 1)),
      Value::String("a"),
      Value::String(std::string("a\x00", 2)),
      Value::String("a!"),
      Value::String("ab"),
      Value::String("b"),
      Value::Bytes(""),
      Value::Bytes("\x01"),
      Value::Reference("/a/b"),
      Value::Reference("/a/c"),
      Value::FromArray({}),
      Value::FromArray({Value::Null()}),
      Value::FromArray({Value::Integer(1)}),
      Value::FromArray({Value::Integer(1), Value::Integer(2)}),
      Value::FromArray({Value::Integer(2)}),
      Value::FromMap({}),
      Value::FromMap({{"", Value::Null()}}),
      Value::FromMap({{"a", Value::Integer(1)}}),
      Value::FromMap({{"a", Value::Integer(1)}, {"b", Value::Integer(2)}}),
      Value::FromMap({{"a", Value::Integer(2)}}),
      Value::FromMap({{"b", Value::Integer(0)}}),
  };
}

TEST(ValueCodecTest, EncodingPreservesTotalOrder) {
  std::vector<Value> corpus = OrderedCorpus();
  std::vector<std::string> encoded;
  for (const Value& v : corpus) encoded.push_back(EncodeValueAsc(v));
  for (size_t i = 0; i < corpus.size(); ++i) {
    for (size_t j = 0; j < corpus.size(); ++j) {
      int logical = corpus[i].Compare(corpus[j]);
      int bytes = encoded[i].compare(encoded[j]);
      int bytes_sign = bytes < 0 ? -1 : bytes > 0 ? 1 : 0;
      EXPECT_EQ(logical, bytes_sign)
          << corpus[i].ToString() << " vs " << corpus[j].ToString();
    }
  }
}

TEST(ValueCodecTest, DescendingEncodingReversesOrder) {
  std::vector<Value> corpus = OrderedCorpus();
  for (size_t i = 0; i + 1 < corpus.size(); ++i) {
    std::string a, b;
    AppendValueDesc(a, corpus[i]);
    AppendValueDesc(b, corpus[i + 1]);
    if (corpus[i].Compare(corpus[i + 1]) < 0) {
      EXPECT_GT(a, b) << corpus[i].ToString();
    }
  }
}

TEST(ValueCodecTest, AscRoundTripIsCanonical) {
  for (const Value& v : OrderedCorpus()) {
    std::string enc = EncodeValueAsc(v);
    std::string_view view = enc;
    Value out;
    ASSERT_TRUE(ParseValueAsc(&view, &out)) << v.ToString();
    EXPECT_TRUE(view.empty());
    // Decoded value must compare equal (numbers decode canonically:
    // Double(3.0) comes back as Integer(3), which is equal under Compare).
    EXPECT_EQ(out.Compare(v), 0) << v.ToString() << " -> " << out.ToString();
  }
}

TEST(ValueCodecTest, DescRoundTrip) {
  for (const Value& v : OrderedCorpus()) {
    std::string enc;
    AppendValueDesc(enc, v);
    std::string_view view = enc;
    Value out;
    ASSERT_TRUE(ParseValueDesc(&view, &out)) << v.ToString();
    EXPECT_TRUE(view.empty());
    EXPECT_EQ(out.Compare(v), 0);
  }
}

TEST(ValueCodecTest, IntegerAndEqualDoubleEncodeIdentically) {
  // An equality index scan for 3 must match documents storing 3.0.
  EXPECT_EQ(EncodeValueAsc(Value::Integer(3)),
            EncodeValueAsc(Value::Double(3.0)));
  EXPECT_EQ(EncodeValueAsc(Value::Double(-0.0)),
            EncodeValueAsc(Value::Double(0.0)));
}

TEST(ValueCodecTest, ConcatenatedComponentsParseSequentially) {
  // Simulates a composite index key: (string asc, number desc, path).
  std::string key;
  AppendValueAsc(key, Value::String("SF"));
  AppendValueDesc(key, Value::Double(4.5));
  AppendResourcePath(key, ResourcePath::Parse("/restaurants/one").value());

  std::string_view view = key;
  Value city, rating;
  ResourcePath name;
  ASSERT_TRUE(ParseValueAsc(&view, &city));
  ASSERT_TRUE(ParseValueDesc(&view, &rating));
  ASSERT_TRUE(ParseResourcePath(&view, &name));
  EXPECT_EQ(city.string_value(), "SF");
  EXPECT_EQ(rating.AsDouble(), 4.5);
  EXPECT_EQ(name.CanonicalString(), "/restaurants/one");
}

// Randomized property sweep: generate random values, check order agreement.
class ValueCodecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

Value RandomValue(Rng& rng, int depth) {
  int choice = static_cast<int>(rng.Uniform(0, depth > 2 ? 7 : 9));
  switch (choice) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Boolean(rng.Bernoulli(0.5));
    case 2:
      return Value::Integer(rng.Uniform(-1000, 1000));
    case 3:
      return Value::Double(rng.NextDouble() * 2000 - 1000);
    case 4:
      return Value::Timestamp(rng.Uniform(0, 1'000'000));
    case 5:
      return Value::String(rng.AlphaNumString(rng.Uniform(0, 8)));
    case 6:
      return Value::Bytes(rng.AlphaNumString(rng.Uniform(0, 8)));
    case 7: {
      Array a;
      int n = static_cast<int>(rng.Uniform(0, 3));
      for (int i = 0; i < n; ++i) a.push_back(RandomValue(rng, depth + 1));
      return Value::FromArray(std::move(a));
    }
    default: {
      Map m;
      int n = static_cast<int>(rng.Uniform(0, 3));
      for (int i = 0; i < n; ++i) {
        m.emplace(rng.AlphaNumString(2), RandomValue(rng, depth + 1));
      }
      return Value::FromMap(std::move(m));
    }
  }
}

TEST_P(ValueCodecPropertyTest, RandomPairsOrderAgreement) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    Value a = RandomValue(rng, 0);
    Value b = RandomValue(rng, 0);
    std::string ea = EncodeValueAsc(a);
    std::string eb = EncodeValueAsc(b);
    int logical = a.Compare(b);
    int bytes = ea.compare(eb);
    int bytes_sign = bytes < 0 ? -1 : bytes > 0 ? 1 : 0;
    ASSERT_EQ(logical, bytes_sign)
        << a.ToString() << " vs " << b.ToString();
    // Round trip.
    std::string_view view = ea;
    Value out;
    ASSERT_TRUE(ParseValueAsc(&view, &out));
    ASSERT_EQ(out.Compare(a), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueCodecPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Resource path codec

TEST(PathCodecTest, OrderMatchesPathCompare) {
  std::vector<std::string> paths = {"/a",       "/a/b",  "/a/b/c/d",
                                    "/a/c",     "/ab",   "/b",
                                    "/b/a",     "/b/a/c"};
  for (size_t i = 0; i + 1 < paths.size(); ++i) {
    auto pa = ResourcePath::Parse(paths[i]).value();
    auto pb = ResourcePath::Parse(paths[i + 1]).value();
    ASSERT_LT(pa.Compare(pb), 0);
    EXPECT_LT(EncodeResourcePath(pa), EncodeResourcePath(pb))
        << paths[i] << " vs " << paths[i + 1];
  }
}

TEST(PathCodecTest, RoundTrip) {
  auto p = ResourcePath::Parse("/restaurants/one/ratings/2").value();
  std::string enc = EncodeResourcePath(p);
  std::string_view view = enc;
  ResourcePath out;
  ASSERT_TRUE(ParseResourcePath(&view, &out));
  EXPECT_EQ(out.CanonicalString(), "/restaurants/one/ratings/2");
}

// ---------------------------------------------------------------------------
// Document codec (exact)

TEST(DocumentCodecTest, RoundTripPreservesEverything) {
  Document doc(ResourcePath::Parse("/r/one").value(), {});
  doc.SetField(FieldPath::Single("int"), Value::Integer(42));
  doc.SetField(FieldPath::Single("dbl"), Value::Double(42.0));
  doc.SetField(FieldPath::Single("neg0"), Value::Double(-0.0));
  doc.SetField(FieldPath::Single("str"), Value::String("hello"));
  doc.SetField(FieldPath::Single("bytes"),
               Value::Bytes(std::string("\x00\x01", 2)));
  doc.SetField(FieldPath::Single("ref"), Value::Reference("/a/b"));
  doc.SetField(FieldPath::Single("ts"), Value::Timestamp(123456));
  doc.SetField(FieldPath::Single("arr"),
               Value::FromArray({Value::Integer(1), Value::String("x")}));
  doc.SetField(FieldPath::Parse("nested.deep.value").value(),
               Value::Boolean(true));
  doc.set_create_time(100);
  doc.set_update_time(200);

  std::string data = SerializeDocument(doc);
  auto parsed = ParseDocument(data);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name().CanonicalString(), "/r/one");
  EXPECT_EQ(parsed->create_time(), 100);
  EXPECT_EQ(parsed->update_time(), 200);
  // Exact type preservation: int stays int, double stays double.
  EXPECT_TRUE(parsed->GetField(FieldPath::Single("int"))->is_integer());
  EXPECT_TRUE(parsed->GetField(FieldPath::Single("dbl"))->is_double());
  EXPECT_TRUE(std::signbit(
      parsed->GetField(FieldPath::Single("neg0"))->double_value()));
  EXPECT_TRUE(*parsed == doc);
}

TEST(DocumentCodecTest, EmptyDocument) {
  Document doc(ResourcePath::Parse("/c/d").value(), {});
  auto parsed = ParseDocument(SerializeDocument(doc));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->fields().empty());
}

TEST(DocumentCodecTest, CorruptDataRejected) {
  EXPECT_FALSE(ParseDocument("\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff").ok());
  Document doc(ResourcePath::Parse("/c/d").value(),
               {{"a", Value::Integer(1)}});
  std::string data = SerializeDocument(doc);
  data.push_back('\x07');  // trailing garbage
  EXPECT_FALSE(ParseDocument(data).ok());
  std::string truncated = data.substr(0, data.size() / 2);
  EXPECT_FALSE(ParseDocument(truncated).ok());
}

TEST(DocumentCodecTest, VarintRoundTrip) {
  for (uint64_t v :
       std::vector<uint64_t>{0, 1, 127, 128, 300, uint64_t{1} << 32,
                             std::numeric_limits<uint64_t>::max()}) {
    std::string enc;
    AppendVarint(enc, v);
    std::string_view view = enc;
    uint64_t out;
    ASSERT_TRUE(ParseVarint(&view, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(view.empty());
  }
}

}  // namespace
}  // namespace firestore::codec
