#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "firestore/index/backfill.h"
#include "firestore/query/executor.h"
#include "firestore/query/planner.h"
#include "firestore/query/query.h"
#include "tests/test_support.h"

namespace firestore::query {
namespace {

using index::IndexState;
using index::SegmentKind;
using model::Map;
using model::Value;
using testing::Field;
using testing::Path;
using testing::TestTenant;

// ---------------------------------------------------------------------------
// Validation

TEST(QueryValidationTest, AcceptsWellFormed) {
  Query q(model::ResourcePath(), "restaurants");
  q.Where(Field("city"), Operator::kEqual, Value::String("SF"))
      .Where(Field("numRatings"), Operator::kGreaterThan, Value::Integer(2))
      .OrderByField(Field("numRatings"))
      .Limit(10);
  EXPECT_TRUE(q.Validate().ok());
}

TEST(QueryValidationTest, RejectsTwoInequalityFields) {
  Query q(model::ResourcePath(), "r");
  q.Where(Field("a"), Operator::kGreaterThan, Value::Integer(1))
      .Where(Field("b"), Operator::kLessThan, Value::Integer(5));
  EXPECT_EQ(q.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(QueryValidationTest, AllowsRangeOnOneField) {
  Query q(model::ResourcePath(), "r");
  q.Where(Field("a"), Operator::kGreaterThan, Value::Integer(1))
      .Where(Field("a"), Operator::kLessThanOrEqual, Value::Integer(5));
  EXPECT_TRUE(q.Validate().ok());
}

TEST(QueryValidationTest, InequalityMustMatchFirstOrder) {
  Query q(model::ResourcePath(), "r");
  q.Where(Field("a"), Operator::kGreaterThan, Value::Integer(1))
      .OrderByField(Field("b"), true);
  EXPECT_EQ(q.Validate().code(), StatusCode::kInvalidArgument);
  Query ok(model::ResourcePath(), "r");
  ok.Where(Field("a"), Operator::kGreaterThan, Value::Integer(1))
      .OrderByField(Field("a"))
      .OrderByField(Field("b"), true);
  EXPECT_TRUE(ok.Validate().ok());
}

TEST(QueryValidationTest, RejectsNegativeLimitAndDuplicateOrder) {
  Query q(model::ResourcePath(), "r");
  q.Limit(-1);
  EXPECT_FALSE(q.Validate().ok());
  Query dup(model::ResourcePath(), "r");
  dup.OrderByField(Field("a")).OrderByField(Field("a"), true);
  EXPECT_FALSE(dup.Validate().ok());
}

TEST(QueryTest, NormalizedOrderAddsInequalityField) {
  Query q(model::ResourcePath(), "r");
  q.Where(Field("a"), Operator::kGreaterThan, Value::Integer(1));
  auto order = q.NormalizedOrderBy();
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0].field.CanonicalString(), "a");
  EXPECT_FALSE(order[0].descending);
}

// ---------------------------------------------------------------------------
// Fixture with the restaurant dataset

class QueryExecutionTest : public ::testing::Test {
 protected:
  QueryExecutionTest() {
    struct Row {
      const char* id;
      const char* city;
      const char* type;
      double rating;
      int num_ratings;
    };
    const Row rows[] = {
        {"r1", "SF", "BBQ", 4.5, 20},  {"r2", "SF", "Thai", 4.0, 10},
        {"r3", "SF", "BBQ", 3.0, 2},   {"r4", "NYC", "BBQ", 5.0, 30},
        {"r5", "NYC", "Cafe", 2.0, 1}, {"r6", "LA", "Thai", 3.5, 8},
        {"r7", "LA", "BBQ", 4.5, 15},  {"r8", "SEA", "Cafe", 4.8, 40},
    };
    for (const Row& r : rows) {
      Map fields;
      fields["city"] = Value::String(r.city);
      fields["type"] = Value::String(r.type);
      fields["avgRating"] = Value::Double(r.rating);
      fields["numRatings"] = Value::Integer(r.num_ratings);
      t_.Put(std::string("/restaurants/") + r.id, std::move(fields));
    }
  }

  std::vector<std::string> Ids(const backend::RunQueryResult& r) {
    std::vector<std::string> ids;
    for (const auto& doc : r.result.documents) {
      ids.push_back(doc.name().last_segment());
    }
    return ids;
  }

  Query Restaurants() { return Query(model::ResourcePath(), "restaurants"); }

  TestTenant t_;
};

TEST_F(QueryExecutionTest, CollectionScanReturnsAllInNameOrder) {
  auto r = t_.Run(Restaurants());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<std::string>{"r1", "r2", "r3", "r4", "r5",
                                               "r6", "r7", "r8"}));
  EXPECT_EQ(r->plan_description, "collection-scan(Entities)");
}

TEST_F(QueryExecutionTest, SingleEqualityUsesAutoIndex) {
  auto r = t_.Run(Restaurants().Where(Field("city"), Operator::kEqual,
                                      Value::String("SF")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<std::string>{"r1", "r2", "r3"}));
  EXPECT_NE(r->plan_description.find("city asc"), std::string::npos);
}

TEST_F(QueryExecutionTest, EqualityConjunctionZigZagJoins) {
  auto r = t_.Run(Restaurants()
                      .Where(Field("city"), Operator::kEqual,
                             Value::String("SF"))
                      .Where(Field("type"), Operator::kEqual,
                             Value::String("BBQ")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<std::string>{"r1", "r3"}));
  EXPECT_NE(r->plan_description.find("zigzag-join"), std::string::npos);
}

TEST_F(QueryExecutionTest, InequalityWithImplicitOrder) {
  auto r = t_.Run(Restaurants().Where(
      Field("numRatings"), Operator::kGreaterThan, Value::Integer(2)));
  ASSERT_TRUE(r.ok());
  // Ordered by numRatings ascending: r6(8), r2(10), r7(15), r1(20), r4(30),
  // r8(40). r3(2) and r5(1) excluded.
  EXPECT_EQ(Ids(*r),
            (std::vector<std::string>{"r6", "r2", "r7", "r1", "r4", "r8"}));
}

TEST_F(QueryExecutionTest, RangeBothBounds) {
  auto r = t_.Run(Restaurants()
                      .Where(Field("numRatings"), Operator::kGreaterThanOrEqual,
                             Value::Integer(8))
                      .Where(Field("numRatings"), Operator::kLessThan,
                             Value::Integer(30)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<std::string>{"r6", "r2", "r7", "r1"}));
}

TEST_F(QueryExecutionTest, InequalityExcludesOtherTypes) {
  // A string-valued field on one doc must not leak into a numeric range.
  t_.Put("/restaurants/weird", {{"numRatings", Value::String("many")},
                                {"city", Value::String("SF")}});
  auto r = t_.Run(Restaurants().Where(
      Field("numRatings"), Operator::kGreaterThan, Value::Integer(0)));
  ASSERT_TRUE(r.ok());
  for (const std::string& id : Ids(*r)) EXPECT_NE(id, "weird");
  EXPECT_EQ(Ids(*r).size(), 8u);
}

TEST_F(QueryExecutionTest, OrderByDescending) {
  auto r = t_.Run(Restaurants().OrderByField(Field("avgRating"), true));
  ASSERT_TRUE(r.ok());
  // 5.0, 4.8, 4.5, 4.5, 4.0, 3.5, 3.0, 2.0 — ties broken by name (r1 < r7).
  EXPECT_EQ(Ids(*r), (std::vector<std::string>{"r4", "r8", "r1", "r7", "r2",
                                               "r6", "r3", "r5"}));
}

TEST_F(QueryExecutionTest, LimitAndOffset) {
  auto r = t_.Run(
      Restaurants().OrderByField(Field("avgRating"), true).Limit(3));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<std::string>{"r4", "r8", "r1"}));
  auto page2 = t_.Run(Restaurants()
                          .OrderByField(Field("avgRating"), true)
                          .Offset(3)
                          .Limit(3));
  ASSERT_TRUE(page2.ok());
  EXPECT_EQ(Ids(*page2), (std::vector<std::string>{"r7", "r2", "r6"}));
}

TEST_F(QueryExecutionTest, LimitStopsScanEarly) {
  auto all = t_.Run(Restaurants().OrderByField(Field("avgRating"), true));
  auto limited =
      t_.Run(Restaurants().OrderByField(Field("avgRating"), true).Limit(2));
  ASSERT_TRUE(all.ok() && limited.ok());
  EXPECT_LT(limited->result.stats.index_rows_scanned,
            all->result.stats.index_rows_scanned);
}

TEST_F(QueryExecutionTest, EqualityPlusOrderNeedsCompositeIndex) {
  Query q = Restaurants()
                .Where(Field("city"), Operator::kEqual, Value::String("SF"))
                .OrderByField(Field("avgRating"), true);
  auto fail = t_.Run(q);
  ASSERT_FALSE(fail.ok());
  EXPECT_EQ(fail.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(fail.status().message().find("composite index"),
            std::string::npos);
  // Create the suggested index; the query now works.
  auto id = t_.backfill().CreateIndex(
      t_.catalog(), t_.id(), "restaurants",
      {{Field("city"), SegmentKind::kAscending},
       {Field("avgRating"), SegmentKind::kDescending}});
  ASSERT_TRUE(id.ok());
  auto r = t_.Run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<std::string>{"r1", "r2", "r3"}));
}

TEST_F(QueryExecutionTest, PaperExampleJoinOfTwoCompositeIndexes) {
  // §IV-D3: city=="New York" and type=="BBQ" order by avgRating desc is
  // executed by joining (city asc, avgRating desc) and
  // (type asc, avgRating desc).
  ASSERT_TRUE(t_.backfill()
                  .CreateIndex(t_.catalog(), t_.id(), "restaurants",
                               {{Field("city"), SegmentKind::kAscending},
                                {Field("avgRating"),
                                 SegmentKind::kDescending}})
                  .ok());
  ASSERT_TRUE(t_.backfill()
                  .CreateIndex(t_.catalog(), t_.id(), "restaurants",
                               {{Field("type"), SegmentKind::kAscending},
                                {Field("avgRating"),
                                 SegmentKind::kDescending}})
                  .ok());
  auto r = t_.Run(Restaurants()
                      .Where(Field("city"), Operator::kEqual,
                             Value::String("SF"))
                      .Where(Field("type"), Operator::kEqual,
                             Value::String("BBQ"))
                      .OrderByField(Field("avgRating"), true));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<std::string>{"r1", "r3"}));
  EXPECT_NE(r->plan_description.find("zigzag-join"), std::string::npos);
}

TEST_F(QueryExecutionTest, InequalityPlusEqualityViaComposite) {
  ASSERT_TRUE(t_.backfill()
                  .CreateIndex(t_.catalog(), t_.id(), "restaurants",
                               {{Field("city"), SegmentKind::kAscending},
                                {Field("numRatings"),
                                 SegmentKind::kAscending}})
                  .ok());
  auto r = t_.Run(Restaurants()
                      .Where(Field("city"), Operator::kEqual,
                             Value::String("SF"))
                      .Where(Field("numRatings"), Operator::kGreaterThan,
                             Value::Integer(5)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<std::string>{"r2", "r1"}));
}

TEST_F(QueryExecutionTest, ArrayContains) {
  t_.Put("/restaurants/tagged1",
         {{"tags", Value::FromArray({Value::String("vegan"),
                                     Value::String("patio")})}});
  t_.Put("/restaurants/tagged2",
         {{"tags", Value::FromArray({Value::String("patio")})}});
  auto r = t_.Run(Restaurants().Where(Field("tags"),
                                      Operator::kArrayContains,
                                      Value::String("vegan")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<std::string>{"tagged1"}));
  auto both = t_.Run(Restaurants().Where(Field("tags"),
                                         Operator::kArrayContains,
                                         Value::String("patio")));
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(Ids(*both), (std::vector<std::string>{"tagged1", "tagged2"}));
}

TEST_F(QueryExecutionTest, ProjectionReturnsRequestedFieldsOnly) {
  auto r = t_.Run(Restaurants()
                      .Where(Field("city"), Operator::kEqual,
                             Value::String("SF"))
                      .Project({Field("avgRating")}));
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->result.documents.empty());
  for (const auto& doc : r->result.documents) {
    EXPECT_TRUE(doc.GetField(Field("avgRating")).has_value());
    EXPECT_FALSE(doc.GetField(Field("city")).has_value());
  }
}

TEST_F(QueryExecutionTest, ExemptedFieldQueryFails) {
  t_.catalog().AddExemption("restaurants", Field("city"));
  auto r = t_.Run(Restaurants().Where(Field("city"), Operator::kEqual,
                                      Value::String("SF")));
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(QueryExecutionTest, SubCollectionQueriesScopeToParent) {
  t_.Put("/restaurants/r1/ratings/a", {{"rating", Value::Integer(5)}});
  t_.Put("/restaurants/r1/ratings/b", {{"rating", Value::Integer(3)}});
  t_.Put("/restaurants/r2/ratings/c", {{"rating", Value::Integer(1)}});
  Query q(Path("/restaurants/r1"), "ratings");
  auto r = t_.Run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<std::string>{"a", "b"}));
  // With a filter: the collection-group index spans parents, but results
  // stay scoped to r1.
  Query filtered = q;
  filtered.Where(Field("rating"), Operator::kGreaterThan, Value::Integer(0));
  auto fr = t_.Run(filtered);
  ASSERT_TRUE(fr.ok());
  EXPECT_EQ(Ids(*fr), (std::vector<std::string>{"b", "a"}));  // by rating
}

TEST_F(QueryExecutionTest, QueryAtPastTimestampSeesOldData) {
  auto before = t_.spanner().StrongReadTimestamp();
  t_.Put("/restaurants/new1", {{"city", Value::String("SF")}});
  auto now_result = t_.Run(Restaurants().Where(
      Field("city"), Operator::kEqual, Value::String("SF")));
  ASSERT_TRUE(now_result.ok());
  EXPECT_EQ(now_result->result.documents.size(), 4u);
  auto past_result = t_.Run(Restaurants().Where(Field("city"),
                                                Operator::kEqual,
                                                Value::String("SF")),
                            before);
  ASSERT_TRUE(past_result.ok());
  EXPECT_EQ(past_result->result.documents.size(), 3u);
}

TEST_F(QueryExecutionTest, MixedNumericTypesMatchEquality) {
  t_.Put("/restaurants/intRated", {{"avgRating", Value::Integer(4)}});
  t_.Put("/restaurants/dblRated", {{"avgRating", Value::Double(4.0)}});
  auto r = t_.Run(Restaurants().Where(Field("avgRating"), Operator::kEqual,
                                      Value::Integer(4)));
  ASSERT_TRUE(r.ok());
  // r2 stores Double(4.0), which equals Integer(4) numerically.
  EXPECT_EQ(Ids(*r),
            (std::vector<std::string>{"dblRated", "intRated", "r2"}));
}

TEST_F(QueryExecutionTest, DocumentsMissingOrderFieldExcluded) {
  t_.Put("/restaurants/norating", {{"city", Value::String("SF")}});
  auto r = t_.Run(Restaurants().OrderByField(Field("avgRating")));
  ASSERT_TRUE(r.ok());
  for (const std::string& id : Ids(*r)) EXPECT_NE(id, "norating");
  EXPECT_EQ(Ids(*r).size(), 8u);
}

TEST_F(QueryExecutionTest, QueryInTransactionSeesLockedConsistentData) {
  auto txn = t_.spanner().BeginTransaction();
  Query q = Restaurants().Where(Field("city"), Operator::kEqual,
                                Value::String("SF"));
  auto r = t_.reader().RunQueryInTransaction(t_.id(), t_.catalog(), q, *txn);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->documents.size(), 3u);
  txn->Abort();
}

// ---------------------------------------------------------------------------
// Randomized differential test: executor vs. brute-force evaluation.

class QueryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryPropertyTest, ExecutorAgreesWithBruteForce) {
  TestTenant t;
  Rng rng(GetParam());
  const std::vector<std::string> cities = {"SF", "NYC", "LA"};
  std::vector<model::Document> corpus;
  for (int i = 0; i < 40; ++i) {
    Map fields;
    fields["city"] = Value::String(cities[rng.Uniform(0, 2)]);
    fields["rating"] = rng.Bernoulli(0.5)
                           ? Value::Integer(rng.Uniform(0, 5))
                           : Value::Double(rng.NextDouble() * 5);
    if (rng.Bernoulli(0.7)) {
      fields["pop"] = Value::Integer(rng.Uniform(0, 100));
    }
    std::string path = "/docs/d" + std::to_string(i);
    t.Put(path, fields);
    model::Document doc(testing::Path(path), fields);
    corpus.push_back(doc);
  }
  // A set of random but valid queries.
  for (int iter = 0; iter < 25; ++iter) {
    Query q(model::ResourcePath(), "docs");
    if (rng.Bernoulli(0.6)) {
      q.Where(Field("city"), Operator::kEqual,
              Value::String(cities[rng.Uniform(0, 2)]));
    }
    bool has_ineq = rng.Bernoulli(0.5);
    if (has_ineq) {
      Operator op = rng.Bernoulli(0.5) ? Operator::kGreaterThan
                                       : Operator::kLessThanOrEqual;
      q.Where(Field("pop"), op, Value::Integer(rng.Uniform(0, 100)));
    }
    if (rng.Bernoulli(0.3)) q.Limit(rng.Uniform(1, 10));
    // Brute force.
    std::vector<model::Document> expected;
    for (const auto& doc : corpus) {
      if (q.Matches(doc)) expected.push_back(doc);
    }
    std::sort(expected.begin(), expected.end(),
              [&](const model::Document& a, const model::Document& b) {
                return q.Compare(a, b) < 0;
              });
    if (q.limit() > 0 &&
        static_cast<int64_t>(expected.size()) > q.limit()) {
      expected.resize(q.limit());
    }
    auto run = t.Run(q);
    if (!run.ok()) {
      // The only acceptable failure is a missing composite index.
      ASSERT_EQ(run.status().code(), StatusCode::kFailedPrecondition)
          << q.CanonicalString() << ": " << run.status();
      continue;
    }
    ASSERT_EQ(run->result.documents.size(), expected.size())
        << q.CanonicalString();
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(run->result.documents[i].name().CanonicalString(),
                expected[i].name().CanonicalString())
          << q.CanonicalString() << " position " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace firestore::query
