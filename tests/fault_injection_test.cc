#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace firestore {
namespace {

// Every test disarms what it arms (the registry is process-global); the
// fixture double-checks so a failing test cannot poison its neighbors.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultRegistry::Global().DisarmAll();
    FaultRegistry::Global().SetLatencyClock(nullptr);
    SetSleepFn(nullptr);  // restore the real-sleep default
  }
};

// The FS_FAULT_* macros need literal names (they register via a
// function-local static); this helper exercises the same slow path with a
// runtime name.
Status Hit(const char* name) {
  if (!FaultRegistry::AnyArmed()) return Status::Ok();
  return FaultRegistry::Global().Evaluate(name);
}

TEST_F(FaultInjectionTest, DisarmedPointReturnsOk) {
  EXPECT_FALSE(FaultRegistry::AnyArmed());
  EXPECT_TRUE(FS_FAULT_POINT("test.disarmed").ok());
  EXPECT_FALSE(FS_FAULT_TRIGGERED("test.disarmed.bool"));
}

TEST_F(FaultInjectionTest, ArmedPointReturnsConfiguredStatus) {
  FaultConfig config;
  config.action = FaultAction::Fail(UnavailableError("boom"));
  FaultRegistry::Global().Arm("test.armed", config);
  EXPECT_TRUE(FaultRegistry::AnyArmed());
  Status s = Hit("test.armed");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.message(), "boom");
  FaultRegistry::Global().Disarm("test.armed");
  EXPECT_TRUE(Hit("test.armed").ok());
}

TEST_F(FaultInjectionTest, TriggerWindowSkipsThenFiresLimitedTimes) {
  FaultConfig config;
  config.skip_first = 2;
  config.max_fires = 3;
  config.action = FaultAction::Fail(AbortedError("windowed"));
  FaultRegistry::Global().Arm("test.window", config);
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(!Hit("test.window").ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true, false,
                                      false, false}));
  FaultPointStats stats = FaultRegistry::Global().StatsFor("test.window");
  EXPECT_EQ(stats.hits, 8);
  EXPECT_EQ(stats.fires, 3);
}

TEST_F(FaultInjectionTest, ProbabilityIsDeterministicPerSeed) {
  auto sequence = [](uint64_t seed) {
    FaultConfig config;
    config.probability = 0.5;
    config.seed = seed;
    config.action = FaultAction::Fail(UnavailableError("maybe"));
    FaultRegistry::Global().Arm("test.prob", config);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!Hit("test.prob").ok());
    FaultRegistry::Global().Disarm("test.prob");
    return fired;
  };
  std::vector<bool> a = sequence(7);
  std::vector<bool> b = sequence(7);
  std::vector<bool> c = sequence(8);
  EXPECT_EQ(a, b);  // re-arming with the same seed replays the decisions
  EXPECT_NE(a, c);
  int fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 16);  // p=0.5 over 64 hits: loose sanity bounds
  EXPECT_LT(fires, 48);
}

TEST_F(FaultInjectionTest, LatencyActionAdvancesInjectedClock) {
  ManualClock clock(1'000);
  FaultRegistry::Global().SetLatencyClock(&clock);
  FaultConfig config;
  config.action = FaultAction::Latency(250);
  FaultRegistry::Global().Arm("test.latency", config);
  EXPECT_TRUE(Hit("test.latency").ok());  // latency points still return OK
  EXPECT_EQ(clock.NowMicros(), 1'250);
  EXPECT_TRUE(FS_FAULT_TRIGGERED("test.latency"));
  EXPECT_EQ(clock.NowMicros(), 1'500);
}

// With no ManualClock attached, latency actions block for real — but the
// block is routed through the process-wide SleepFor hook (common/clock.h),
// so deterministic tests can intercept the delay instead of waiting it out.
std::atomic<Micros> g_slept{0};
void RecordSleep(Micros us) { g_slept.fetch_add(us); }

TEST_F(FaultInjectionTest, LatencyWithoutClockRoutesThroughSleepHook) {
  g_slept.store(0);
  SleepFn previous = SetSleepFn(&RecordSleep);
  FaultConfig config;
  config.action = FaultAction::Latency(300);
  FaultRegistry::Global().Arm("test.latency.sleep", config);
  EXPECT_TRUE(Hit("test.latency.sleep").ok());
  EXPECT_EQ(g_slept.load(), 300);
  EXPECT_TRUE(FS_FAULT_TRIGGERED("test.latency.sleep"));
  EXPECT_EQ(g_slept.load(), 600);
  // An injected clock takes precedence over the hook again.
  ManualClock clock(0);
  FaultRegistry::Global().SetLatencyClock(&clock);
  EXPECT_TRUE(Hit("test.latency.sleep").ok());
  EXPECT_EQ(clock.NowMicros(), 300);
  EXPECT_EQ(g_slept.load(), 600);
  // SetSleepFn returns the hook it replaced so callers can restore it.
  EXPECT_EQ(SetSleepFn(previous), &RecordSleep);
}

TEST_F(FaultInjectionTest, ListPointsReportsRegisteredAndArmedNames) {
  auto contains = [](const std::vector<std::string>& names,
                     const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  // Executing a macro site registers the point even while disarmed.
  EXPECT_TRUE(FS_FAULT_POINT("test.list.registered").ok());
  EXPECT_TRUE(
      contains(FaultRegistry::Global().ListPoints(), "test.list.registered"));
  // Arming registers a never-executed point; disarming does not unlist it.
  FaultRegistry::Global().Arm("test.list.armed", FaultConfig());
  FaultRegistry::Global().DisarmAll();
  std::vector<std::string> names = FaultRegistry::Global().ListPoints();
  EXPECT_TRUE(contains(names, "test.list.armed"));
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(FaultInjectionTest, DropActionTriggersBoolSitesOnly) {
  FaultConfig config;
  config.action = FaultAction::Drop();
  FaultRegistry::Global().Arm("test.drop", config);
  EXPECT_TRUE(Hit("test.drop").ok());  // a status site cannot "drop"
  EXPECT_TRUE(FS_FAULT_TRIGGERED("test.drop"));
}

TEST_F(FaultInjectionTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault fault("test.scoped",
                      [] {
                        FaultConfig c;
                        c.action = FaultAction::Fail(UnavailableError("s"));
                        return c;
                      }());
    EXPECT_FALSE(Hit("test.scoped").ok());
  }
  EXPECT_TRUE(Hit("test.scoped").ok());
  EXPECT_FALSE(FaultRegistry::AnyArmed());
}

TEST_F(FaultInjectionTest, KnownPointsIncludesEveryReachedPoint) {
  // Macro sites self-register on first execution, even when disarmed.
  (void)FS_FAULT_POINT("test.catalogued");
  bool found = false;
  for (const FaultPointStats& p : FaultRegistry::Global().KnownPoints()) {
    if (p.name == "test.catalogued") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(FaultInjectionTest, RearmResetsWindowAndStats) {
  FaultConfig config;
  config.max_fires = 1;
  config.action = FaultAction::Fail(UnavailableError("once"));
  FaultRegistry::Global().Arm("test.rearm", config);
  EXPECT_FALSE(Hit("test.rearm").ok());
  EXPECT_TRUE(Hit("test.rearm").ok());  // window exhausted
  FaultRegistry::Global().Arm("test.rearm", config);
  EXPECT_FALSE(Hit("test.rearm").ok());  // fresh window
  // Window counters restart with the arm; lifetime totals accumulate
  // across re-arms (chaos schedules sum them to prove non-vacuity).
  FaultPointStats stats = FaultRegistry::Global().StatsFor("test.rearm");
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.fires, 1);
  EXPECT_EQ(stats.total_hits, 3);
  EXPECT_EQ(stats.total_fires, 2);
}

}  // namespace
}  // namespace firestore
