#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "firestore/model/document.h"
#include "firestore/model/path.h"
#include "firestore/model/value.h"

namespace firestore::model {
namespace {

// ---------------------------------------------------------------------------
// Value

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_EQ(Value::Boolean(true).boolean_value(), true);
  EXPECT_EQ(Value::Integer(7).integer_value(), 7);
  EXPECT_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::Timestamp(123).timestamp_value(), 123);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_EQ(Value::Bytes("\x01\x02").bytes_value(), "\x01\x02");
  EXPECT_EQ(Value::Reference("/a/b").reference_value(), "/a/b");
  EXPECT_EQ(Value::FromArray({Value::Integer(1)}).array_value().size(), 1u);
  EXPECT_EQ(Value::FromMap({{"k", Value::Null()}}).map_value().size(), 1u);
}

TEST(ValueTest, CrossTypeOrdering) {
  // The paper-mandated cross-type order (§IV-D1: sorting across fields with
  // inconsistent types).
  std::vector<Value> ordered = {
      Value::Null(),
      Value::Boolean(false),
      Value::Boolean(true),
      Value::Double(std::numeric_limits<double>::quiet_NaN()),
      Value::Integer(-10),
      Value::Double(3.5),
      Value::Integer(4),
      Value::Timestamp(0),
      Value::Timestamp(99),
      Value::String(""),
      Value::String("a"),
      Value::String("b"),
      Value::Bytes(""),
      Value::Bytes(std::string("\x00", 1)),
      Value::Reference("/a/b"),
      Value::FromArray({}),
      Value::FromArray({Value::Integer(1)}),
      Value::FromMap({}),
      Value::FromMap({{"a", Value::Integer(1)}}),
  };
  for (size_t i = 0; i < ordered.size(); ++i) {
    for (size_t j = 0; j < ordered.size(); ++j) {
      int expected = (i < j) ? -1 : (i > j) ? 1 : 0;
      EXPECT_EQ(ordered[i].Compare(ordered[j]), expected)
          << ordered[i].ToString() << " vs " << ordered[j].ToString();
    }
  }
}

TEST(ValueTest, IntegerDoubleCompareNumerically) {
  EXPECT_EQ(Value::Integer(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Integer(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Integer(4).Compare(Value::Double(3.5)), 0);
}

TEST(ValueTest, LargeIntegersCompareExactly) {
  // 2^53 + 1 is not representable as a double.
  int64_t big = (1ll << 53) + 1;
  EXPECT_GT(Value::Integer(big).Compare(Value::Integer(1ll << 53)), 0);
  EXPECT_GT(Value::Integer(big).Compare(Value::Double(std::pow(2.0, 53))), 0);
}

TEST(ValueTest, NaNSortsBeforeNumbersAndEqualsItself) {
  Value nan = Value::Double(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(nan.Compare(nan), 0);
  EXPECT_LT(nan.Compare(Value::Double(-1e308)), 0);
  EXPECT_LT(nan.Compare(Value::Integer(std::numeric_limits<int64_t>::min())),
            0);
  EXPECT_GT(nan.Compare(Value::Boolean(true)), 0);
}

TEST(ValueTest, ArrayOrderingIsLexicographic) {
  Value a = Value::FromArray({Value::Integer(1), Value::Integer(2)});
  Value b = Value::FromArray({Value::Integer(1), Value::Integer(3)});
  Value prefix = Value::FromArray({Value::Integer(1)});
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_LT(prefix.Compare(a), 0);
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(ValueTest, MapOrderingByKeyThenValue) {
  Value a = Value::FromMap({{"a", Value::Integer(1)}});
  Value b = Value::FromMap({{"b", Value::Integer(0)}});
  EXPECT_LT(a.Compare(b), 0);  // key "a" < key "b"
  Value a2 = Value::FromMap({{"a", Value::Integer(2)}});
  EXPECT_LT(a.Compare(a2), 0);  // same key, value 1 < 2
}

TEST(ValueTest, ByteSizeGrowsWithContent) {
  EXPECT_LT(Value::String("a").ByteSize(), Value::String("abcdef").ByteSize());
  Value nested = Value::FromMap({{"k", Value::FromArray({Value::Integer(1),
                                                         Value::Integer(2)})}});
  EXPECT_GT(nested.ByteSize(), 10u);
}

TEST(ValueTest, ToStringRendersNested) {
  Value v = Value::FromMap({{"a", Value::FromArray({Value::Integer(1),
                                                    Value::String("x")})}});
  EXPECT_EQ(v.ToString(), "{\"a\": [1, \"x\"]}");
}

// ---------------------------------------------------------------------------
// ResourcePath

TEST(ResourcePathTest, ParseAndCanonical) {
  auto p = ResourcePath::Parse("/restaurants/one/ratings/2");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 4u);
  EXPECT_EQ(p->CanonicalString(), "/restaurants/one/ratings/2");
  EXPECT_TRUE(p->IsDocumentPath());
  EXPECT_FALSE(p->IsCollectionPath());
}

TEST(ResourcePathTest, ParseWithoutLeadingSlash) {
  auto p = ResourcePath::Parse("restaurants/one");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->CanonicalString(), "/restaurants/one");
}

TEST(ResourcePathTest, CollectionPathIsOddLength) {
  auto p = ResourcePath::Parse("/restaurants");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->IsCollectionPath());
  EXPECT_FALSE(p->IsDocumentPath());
}

TEST(ResourcePathTest, RejectsMalformed) {
  EXPECT_FALSE(ResourcePath::Parse("").ok());
  EXPECT_FALSE(ResourcePath::Parse("/").ok());
  EXPECT_FALSE(ResourcePath::Parse("/a//b").ok());
  EXPECT_FALSE(ResourcePath::Parse("/a/b/").ok());
}

TEST(ResourcePathTest, ParentAndChild) {
  auto p = ResourcePath::Parse("/restaurants/one").value();
  EXPECT_EQ(p.Parent().CanonicalString(), "/restaurants");
  EXPECT_EQ(p.Child("ratings").CanonicalString(), "/restaurants/one/ratings");
}

TEST(ResourcePathTest, PrefixAndCompare) {
  auto col = ResourcePath::Parse("/restaurants").value();
  auto doc = ResourcePath::Parse("/restaurants/one").value();
  auto sub = ResourcePath::Parse("/restaurants/one/ratings/2").value();
  EXPECT_TRUE(col.IsPrefixOf(doc));
  EXPECT_TRUE(doc.IsPrefixOf(sub));
  EXPECT_FALSE(sub.IsPrefixOf(doc));
  EXPECT_LT(col.Compare(doc), 0);
  EXPECT_LT(doc.Compare(sub), 0);
  EXPECT_EQ(doc.Compare(doc), 0);
}

// ---------------------------------------------------------------------------
// FieldPath

TEST(FieldPathTest, ParseDotted) {
  auto f = FieldPath::Parse("a.b.c");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->size(), 3u);
  EXPECT_EQ(f->CanonicalString(), "a.b.c");
}

TEST(FieldPathTest, RejectsMalformed) {
  EXPECT_FALSE(FieldPath::Parse("").ok());
  EXPECT_FALSE(FieldPath::Parse("a..b").ok());
  EXPECT_FALSE(FieldPath::Parse("a.").ok());
}

// ---------------------------------------------------------------------------
// Document

Document MakeRestaurant() {
  auto name = ResourcePath::Parse("/restaurants/one").value();
  Map fields;
  fields["name"] = Value::String("Zola");
  fields["city"] = Value::String("SF");
  fields["avgRating"] = Value::Double(4.5);
  fields["numRatings"] = Value::Integer(20);
  return Document(name, std::move(fields));
}

TEST(DocumentTest, GetSetTopLevelField) {
  Document doc = MakeRestaurant();
  auto v = doc.GetField(FieldPath::Single("city"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string_value(), "SF");
  doc.SetField(FieldPath::Single("city"), Value::String("NYC"));
  EXPECT_EQ(doc.GetField(FieldPath::Single("city"))->string_value(), "NYC");
}

TEST(DocumentTest, NestedFieldCreateAndRead) {
  Document doc = MakeRestaurant();
  doc.SetField(FieldPath::Parse("meta.owner.id").value(),
               Value::String("u1"));
  auto v = doc.GetField(FieldPath::Parse("meta.owner.id").value());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string_value(), "u1");
  // Traversing through a non-map yields nullopt.
  EXPECT_FALSE(doc.GetField(FieldPath::Parse("city.x").value()).has_value());
}

TEST(DocumentTest, DeleteField) {
  Document doc = MakeRestaurant();
  doc.DeleteField(FieldPath::Single("city"));
  EXPECT_FALSE(doc.GetField(FieldPath::Single("city")).has_value());
  // Deleting a missing field is a no-op.
  doc.DeleteField(FieldPath::Parse("nope.deep").value());
}

TEST(DocumentTest, ValidateEnforcesSizeLimit) {
  Document doc = MakeRestaurant();
  EXPECT_TRUE(doc.Validate().ok());
  doc.SetField(FieldPath::Single("big"),
               Value::String(std::string(kMaxDocumentBytes + 1, 'x')));
  EXPECT_EQ(doc.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(DocumentTest, ValidateRejectsCollectionPath) {
  Document doc(ResourcePath::Parse("/restaurants").value(), {});
  EXPECT_EQ(doc.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(DocumentTest, EqualityIgnoresTimestamps) {
  Document a = MakeRestaurant();
  Document b = MakeRestaurant();
  b.set_update_time(999);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace firestore::model
