#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "backend/committer.h"
#include "backend/read_service.h"
#include "firestore/codec/document_codec.h"
#include "tests/test_support.h"

namespace firestore::backend {
namespace {

using model::Document;
using model::Map;
using model::ResourcePath;
using model::Value;
using spanner::Timestamp;
using testing::Field;
using testing::Path;
using testing::TestTenant;

// A scripted RealTimeParticipant that records the protocol it observes.
class FakeRealTime : public RealTimeParticipant {
 public:
  StatusOr<PrepareHandle> Prepare(const std::string& database_id,
                                  const std::vector<ResourcePath>& names,
                                  Timestamp max_commit_ts) override {
    ++prepares;
    last_names = names;
    last_max_ts = max_commit_ts;
    (void)database_id;
    if (fail_prepare) return UnavailableError("injected");
    return PrepareHandle{min_ts, next_token++};
  }

  void Accept(uint64_t token, WriteOutcome outcome, Timestamp commit_ts,
              const std::vector<DocumentChange>& changes) override {
    ++accepts;
    last_token = token;
    last_outcome = outcome;
    last_commit_ts = commit_ts;
    last_changes = changes;
  }

  int prepares = 0;
  int accepts = 0;
  bool fail_prepare = false;
  uint64_t next_token = 1;
  uint64_t last_token = 0;
  Timestamp min_ts = 0;
  Timestamp last_max_ts = 0;
  Timestamp last_commit_ts = 0;
  WriteOutcome last_outcome = WriteOutcome::kFailed;
  std::vector<ResourcePath> last_names;
  std::vector<DocumentChange> last_changes;
};

// ---------------------------------------------------------------------------
// Basic write/read

TEST(CommitterTest, SetAndGetRoundTrip) {
  TestTenant t;
  Timestamp ts = t.Put("/restaurants/one", {{"name", Value::String("Zola")},
                                            {"avgRating", Value::Double(4.5)}});
  auto doc = t.reader().GetDocument(t.id(), Path("/restaurants/one"));
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->has_value());
  EXPECT_EQ((*doc)->GetField(Field("name"))->string_value(), "Zola");
  EXPECT_EQ((*doc)->update_time(), ts);
  EXPECT_EQ((*doc)->create_time(), ts);
}

TEST(CommitterTest, UpdatePreservesCreateTime) {
  TestTenant t;
  Timestamp t1 = t.Put("/r/one", {{"v", Value::Integer(1)}});
  Timestamp t2 = t.Put("/r/one", {{"v", Value::Integer(2)}});
  ASSERT_GT(t2, t1);
  auto doc = t.reader().GetDocument(t.id(), Path("/r/one"));
  ASSERT_TRUE(doc.ok() && doc->has_value());
  EXPECT_EQ((*doc)->create_time(), t1);
  EXPECT_EQ((*doc)->update_time(), t2);
  EXPECT_EQ((*doc)->GetField(Field("v"))->integer_value(), 2);
}

TEST(CommitterTest, MergeKeepsOtherFields) {
  TestTenant t;
  t.Put("/r/one", {{"a", Value::Integer(1)}, {"b", Value::Integer(2)}});
  auto result = t.committer().Commit(
      t.id(), t.catalog(),
      {Mutation::Merge(Path("/r/one"), {{"b", Value::Integer(99)},
                                        {"c", Value::Integer(3)}})});
  ASSERT_TRUE(result.ok());
  auto doc = t.reader().GetDocument(t.id(), Path("/r/one"));
  ASSERT_TRUE(doc.ok() && doc->has_value());
  EXPECT_EQ((*doc)->GetField(Field("a"))->integer_value(), 1);
  EXPECT_EQ((*doc)->GetField(Field("b"))->integer_value(), 99);
  EXPECT_EQ((*doc)->GetField(Field("c"))->integer_value(), 3);
}

TEST(CommitterTest, DeleteRemovesDocumentAndIndexEntries) {
  TestTenant t;
  t.Put("/r/one", {{"a", Value::Integer(1)}});
  EXPECT_EQ(t.CountRows(index::kIndexEntriesTable), 2);
  t.Delete("/r/one");
  auto doc = t.reader().GetDocument(t.id(), Path("/r/one"));
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(doc->has_value());
  EXPECT_EQ(t.CountRows(index::kIndexEntriesTable), 0);
}

TEST(CommitterTest, PreconditionsEnforced) {
  TestTenant t;
  // Create fails if the document exists.
  ASSERT_TRUE(t.committer()
                  .Commit(t.id(), t.catalog(),
                          {Mutation::Create(Path("/r/one"),
                                            {{"a", Value::Integer(1)}})})
                  .ok());
  EXPECT_EQ(t.committer()
                .Commit(t.id(), t.catalog(),
                        {Mutation::Create(Path("/r/one"),
                                          {{"a", Value::Integer(2)}})})
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  // Must-exist update on a missing doc fails.
  Mutation must_exist = Mutation::Set(Path("/r/missing"), {});
  must_exist.precondition = Mutation::Precondition::kMustExist;
  EXPECT_EQ(t.committer()
                .Commit(t.id(), t.catalog(), {must_exist})
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(CommitterTest, MultiDocumentCommitIsAtomic) {
  TestTenant t;
  t.Put("/restaurants/one", {{"numRatings", Value::Integer(0)},
                             {"avgRating", Value::Double(0)}});
  // The paper's example: insert a rating + update the aggregate atomically.
  auto result = t.committer().Commit(
      t.id(), t.catalog(),
      {Mutation::Create(Path("/restaurants/one/ratings/2"),
                        {{"rating", Value::Integer(5)},
                         {"userId", Value::String("alice")}}),
       Mutation::Merge(Path("/restaurants/one"),
                       {{"numRatings", Value::Integer(1)},
                        {"avgRating", Value::Double(5.0)}})});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->changes.size(), 2u);
  auto parent = t.reader().GetDocument(t.id(), Path("/restaurants/one"));
  EXPECT_EQ((*parent)->GetField(Field("numRatings"))->integer_value(), 1);
  auto rating =
      t.reader().GetDocument(t.id(), Path("/restaurants/one/ratings/2"));
  EXPECT_TRUE(rating->has_value());
  // Both updated at the same commit timestamp.
  EXPECT_EQ((*parent)->update_time(), (*rating)->update_time());
}

TEST(CommitterTest, FailedPreconditionAbortsWholeCommit) {
  TestTenant t;
  t.Put("/r/exists", {{"a", Value::Integer(1)}});
  auto result = t.committer().Commit(
      t.id(), t.catalog(),
      {Mutation::Set(Path("/r/other"), {{"b", Value::Integer(2)}}),
       Mutation::Create(Path("/r/exists"), {})});
  EXPECT_FALSE(result.ok());
  auto other = t.reader().GetDocument(t.id(), Path("/r/other"));
  EXPECT_FALSE(other->has_value());  // nothing committed
}

TEST(CommitterTest, OversizedDocumentRejected) {
  TestTenant t;
  auto result = t.committer().Commit(
      t.id(), t.catalog(),
      {Mutation::Set(Path("/r/big"),
                     {{"blob", Value::String(std::string(1 << 21, 'x'))}})});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Two-phase commit with the Real-time Cache

TEST(CommitterTest, PrepareAcceptProtocol) {
  TestTenant t;
  FakeRealTime rt;
  t.committer().set_realtime(&rt);
  auto result = t.committer().Commit(
      t.id(), t.catalog(),
      {Mutation::Set(Path("/r/one"), {{"a", Value::Integer(1)}})});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(rt.prepares, 1);
  EXPECT_EQ(rt.accepts, 1);
  EXPECT_EQ(rt.last_outcome, WriteOutcome::kSuccess);
  EXPECT_EQ(rt.last_commit_ts, result->commit_ts);
  EXPECT_LE(result->commit_ts, rt.last_max_ts);
  ASSERT_EQ(rt.last_changes.size(), 1u);
  EXPECT_FALSE(rt.last_changes[0].deleted);
  ASSERT_TRUE(rt.last_changes[0].new_doc.has_value());
  EXPECT_EQ(rt.last_changes[0].new_doc->update_time(), result->commit_ts);
}

TEST(CommitterTest, CommitRespectsPreparedMinTimestamp) {
  TestTenant t;
  FakeRealTime rt;
  rt.min_ts = t.clock().NowMicros() + 500'000;
  t.committer().set_realtime(&rt);
  auto result = t.committer().Commit(
      t.id(), t.catalog(), {Mutation::Set(Path("/r/one"), {})});
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->commit_ts, rt.min_ts);
}

TEST(CommitterTest, PrepareFailureFailsWrite) {
  TestTenant t;
  FakeRealTime rt;
  rt.fail_prepare = true;
  t.committer().set_realtime(&rt);
  auto result = t.committer().Commit(
      t.id(), t.catalog(), {Mutation::Set(Path("/r/one"), {})});
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(rt.accepts, 0);
  EXPECT_FALSE(
      t.reader().GetDocument(t.id(), Path("/r/one"))->has_value());
}

TEST(CommitterTest, RtCacheUnavailableFaultFailsWrite) {
  TestTenant t;
  FakeRealTime rt;
  t.committer().set_realtime(&rt);
  CommitFaults faults;
  faults.rtcache_unavailable = true;
  t.committer().set_faults(faults);
  auto result = t.committer().Commit(
      t.id(), t.catalog(), {Mutation::Set(Path("/r/one"), {})});
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  t.committer().set_faults(CommitFaults{});  // shim is process-global
}

TEST(CommitterTest, SpannerFailureSendsFailedAccept) {
  TestTenant t;
  FakeRealTime rt;
  t.committer().set_realtime(&rt);
  CommitFaults faults;
  faults.spanner_commit_fails = true;
  t.committer().set_faults(faults);
  auto result = t.committer().Commit(
      t.id(), t.catalog(), {Mutation::Set(Path("/r/one"), {})});
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_EQ(rt.accepts, 1);
  EXPECT_EQ(rt.last_outcome, WriteOutcome::kFailed);
  EXPECT_FALSE(
      t.reader().GetDocument(t.id(), Path("/r/one"))->has_value());
  t.committer().set_faults(CommitFaults{});  // shim is process-global
}

TEST(CommitterTest, UnknownOutcomeCommitsButReportsUnknown) {
  TestTenant t;
  FakeRealTime rt;
  t.committer().set_realtime(&rt);
  CommitFaults faults;
  faults.unknown_outcome = true;
  t.committer().set_faults(faults);
  auto result = t.committer().Commit(
      t.id(), t.catalog(), {Mutation::Set(Path("/r/one"), {})});
  // Paper: "the write is acknowledged to the end-user" only in the lost-
  // Accept case; with unknown outcome the user sees an error but the data
  // may have committed.
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(rt.last_outcome, WriteOutcome::kUnknown);
  EXPECT_TRUE(t.reader().GetDocument(t.id(), Path("/r/one"))->has_value());
  t.committer().set_faults(CommitFaults{});  // shim is process-global
}

// ---------------------------------------------------------------------------
// Lock-wait-timeout retries (the unified retry layer's write-path
// classification: a timed-out lock wait failed before any data was applied,
// so RunTransaction may safely retry it)

TEST(CommitterTest, LockWaitTimeoutExhaustsRetriesThenFailsCleanly) {
  TestTenant t;
  t.spanner().set_lock_timeout_ms(20);
  std::string hot_key = index::EntityKey(t.id(), Path("/r/hot"));
  // An older transaction holds the row exclusively for the whole test, so
  // every attempt (always younger; wound-wait never wounds the holder) times
  // out waiting.
  auto blocker = t.spanner().BeginTransaction();
  ASSERT_TRUE(blocker
                  ->Read(index::kEntitiesTable, hot_key,
                         spanner::LockMode::kExclusive)
                  .ok());
  int attempts = 0;
  auto result = t.committer().RunTransaction(
      t.id(), t.catalog(),
      [&attempts](spanner::ReadWriteTransaction&)
          -> StatusOr<std::vector<Mutation>> {
        ++attempts;
        return std::vector<Mutation>{Mutation::Set(Path("/r/hot"), {})};
      },
      {}, /*max_attempts=*/3);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status().message().find("lock wait timeout"),
            std::string::npos);
  EXPECT_EQ(attempts, 3);
  blocker->Abort();
  // Failed attempts released everything they held.
  EXPECT_EQ(t.spanner().lock_manager().LockCount(), 0);
  EXPECT_FALSE(t.reader().GetDocument(t.id(), Path("/r/hot"))->has_value());
}

TEST(CommitterTest, LockWaitTimeoutRetrySucceedsAfterHolderReleases) {
  TestTenant t;
  t.spanner().set_lock_timeout_ms(20);
  std::string hot_key = index::EntityKey(t.id(), Path("/r/hot"));
  auto blocker = t.spanner().BeginTransaction();
  ASSERT_TRUE(blocker
                  ->Read(index::kEntitiesTable, hot_key,
                         spanner::LockMode::kExclusive)
                  .ok());
  // Release the row partway through the retry budget: the first attempt
  // times out, a later attempt acquires the lock and commits.
  std::thread releaser([&blocker] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    blocker->Abort();
  });
  auto result = t.committer().RunTransaction(
      t.id(), t.catalog(),
      [](spanner::ReadWriteTransaction&) -> StatusOr<std::vector<Mutation>> {
        return std::vector<Mutation>{Mutation::Set(Path("/r/hot"), {})};
      },
      {}, /*max_attempts=*/10);
  releaser.join();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(t.spanner().lock_manager().LockCount(), 0);
  EXPECT_TRUE(t.reader().GetDocument(t.id(), Path("/r/hot"))->has_value());
}

// ---------------------------------------------------------------------------
// Security rules in the write path

TEST(CommitterTest, RulesAllowAndDenyWrites) {
  TestTenant t;
  auto rules = rules::RuleSet::Parse(R"(
    match /restaurants/{rid}/ratings/{rat} {
      allow create: if request.auth.uid == request.resource.data.userId;
    }
  )");
  ASSERT_TRUE(rules.ok());
  rules::AuthContext alice;
  alice.authenticated = true;
  alice.uid = "alice";
  auto ok = t.committer().Commit(
      t.id(), t.catalog(),
      {Mutation::Create(Path("/restaurants/one/ratings/1"),
                        {{"userId", Value::String("alice")}})},
      {}, &rules.value(), &alice);
  EXPECT_TRUE(ok.ok());
  auto denied = t.committer().Commit(
      t.id(), t.catalog(),
      {Mutation::Create(Path("/restaurants/one/ratings/2"),
                        {{"userId", Value::String("bob")}})},
      {}, &rules.value(), &alice);
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
}

TEST(CommitterTest, RulesGetLookupIsTransactional) {
  TestTenant t;
  t.Put("/acl/room1", {{"owner", Value::String("alice")}});
  auto rules = rules::RuleSet::Parse(R"(
    match /rooms/{roomId} {
      allow write: if get(/acl/$(roomId)).data.owner == request.auth.uid;
    }
  )");
  ASSERT_TRUE(rules.ok());
  rules::AuthContext alice;
  alice.authenticated = true;
  alice.uid = "alice";
  EXPECT_TRUE(t.committer()
                  .Commit(t.id(), t.catalog(),
                          {Mutation::Set(Path("/rooms/room1"),
                                         {{"x", Value::Integer(1)}})},
                          {}, &rules.value(), &alice)
                  .ok());
  rules::AuthContext bob;
  bob.authenticated = true;
  bob.uid = "bob";
  EXPECT_FALSE(t.committer()
                   .Commit(t.id(), t.catalog(),
                           {Mutation::Set(Path("/rooms/room1"),
                                          {{"x", Value::Integer(2)}})},
                           {}, &rules.value(), &bob)
                   .ok());
}

// ---------------------------------------------------------------------------
// Triggers

TEST(CommitterTest, TriggersEnqueueOnMatchingWrites) {
  TestTenant t;
  TriggerDefinition trigger;
  trigger.function_name = "onRatingWritten";
  trigger.pattern = {"restaurants", "{rid}", "ratings", "{rat}"};
  auto result = t.committer().Commit(
      t.id(), t.catalog(),
      {Mutation::Set(Path("/restaurants/one/ratings/1"),
                     {{"rating", Value::Integer(5)}})},
      {trigger});
  ASSERT_TRUE(result.ok());
  auto msg = t.spanner().queue().Pop(kTriggerTopic);
  ASSERT_TRUE(msg.has_value());
  auto event = TriggerEvent::Parse(msg->payload);
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event->function_name, "onRatingWritten");
  EXPECT_EQ(event->change.name.CanonicalString(),
            "/restaurants/one/ratings/1");
  ASSERT_TRUE(event->change.new_doc.has_value());
  EXPECT_EQ(event->change.new_doc->GetField(Field("rating"))->integer_value(),
            5);
  // Non-matching write does not enqueue.
  ASSERT_TRUE(t.committer()
                  .Commit(t.id(), t.catalog(),
                          {Mutation::Set(Path("/other/x"), {})}, {trigger})
                  .ok());
  EXPECT_FALSE(t.spanner().queue().Pop(kTriggerTopic).has_value());
}

TEST(CommitterTest, FailedCommitDropsTriggerMessages) {
  TestTenant t;
  t.Put("/r/exists", {});
  TriggerDefinition trigger;
  trigger.function_name = "fn";
  trigger.pattern = {"r", "{id}"};
  auto result = t.committer().Commit(
      t.id(), t.catalog(), {Mutation::Create(Path("/r/exists"), {})},
      {trigger});
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(t.spanner().queue().Pop(kTriggerTopic).has_value());
}

// ---------------------------------------------------------------------------
// Transactions (server SDK style)

TEST(CommitterTest, RunTransactionReadModifyWrite) {
  TestTenant t;
  t.Put("/counters/c", {{"n", Value::Integer(10)}});
  auto result = t.committer().RunTransaction(
      t.id(), t.catalog(),
      [&](spanner::ReadWriteTransaction& txn)
          -> StatusOr<std::vector<Mutation>> {
        spanner::Timestamp version = 0;
        ASSIGN_OR_RETURN(
            spanner::RowValue row,
            txn.Read(index::kEntitiesTable,
                     index::EntityKey(t.id(), Path("/counters/c")),
                     spanner::LockMode::kExclusive, &version));
        FS_CHECK(row.has_value());
        ASSIGN_OR_RETURN(Document doc, codec::ParseDocument(*row));
        int64_t n = doc.GetField(Field("n"))->integer_value();
        return std::vector<Mutation>{Mutation::Merge(
            Path("/counters/c"), {{"n", Value::Integer(n + 1)}})};
      });
  ASSERT_TRUE(result.ok());
  auto doc = t.reader().GetDocument(t.id(), Path("/counters/c"));
  EXPECT_EQ((*doc)->GetField(Field("n"))->integer_value(), 11);
}

// ---------------------------------------------------------------------------
// Billing

TEST(BillingTest, CountersAndFreeQuota) {
  TestTenant t;
  BillingLedger billing;
  t.committer().set_billing(&billing);
  t.reader().set_billing(&billing);
  t.Put("/r/one", {{"a", Value::Integer(1)}});
  t.Put("/r/two", {{"a", Value::Integer(2)}});
  t.Delete("/r/two");
  (void)t.reader().GetDocument(t.id(), Path("/r/one"));
  UsageCounters usage = billing.Usage(t.id());
  EXPECT_EQ(usage.document_writes, 2);
  EXPECT_EQ(usage.document_deletes, 1);
  EXPECT_EQ(usage.document_reads, 1);
  EXPECT_GT(usage.storage_bytes, 0);
  // Everything is inside the free quota.
  EXPECT_EQ(billing.BillableMicrosToday(t.id()), 0.0);
}

TEST(BillingTest, OverQuotaBills) {
  FreeQuota quota;
  quota.reads_per_day = 10;
  BillingLedger billing(quota);
  billing.RecordReads("db", 100'010);
  EXPECT_NEAR(billing.BillableMicrosToday("db"), 0.06e6, 1e3);
  billing.ResetDay();
  EXPECT_EQ(billing.BillableMicrosToday("db"), 0.0);
}

TEST(BillingTest, StorageOverQuotaBillsProRated) {
  FreeQuota quota;
  quota.storage_bytes = 1000;
  BillingLedger billing(quota);
  billing.AdjustStorage("db", 1000 + (1ll << 30));  // 1 GiB over quota
  double micros = billing.BillableMicrosToday("db");
  // $0.18/GiB-month => ~$0.006/day => 6000 micro-dollars.
  EXPECT_NEAR(micros, 0.18e6 / 30.0, 100);
  // Deleting data stops the charge.
  billing.AdjustStorage("db", -(1ll << 30));
  EXPECT_EQ(billing.BillableMicrosToday("db"), 0.0);
}

TEST(BillingTest, IdleDatabaseCostsNothing) {
  BillingLedger billing;
  EXPECT_EQ(billing.BillableMicrosToday("never-used"), 0.0);
  EXPECT_EQ(billing.Usage("never-used").document_reads, 0);
}

}  // namespace
}  // namespace firestore::backend
