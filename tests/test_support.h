// Shared test fixtures: a single-tenant Firestore backend over an in-process
// Spanner database.

#ifndef FIRESTORE_TESTS_TEST_SUPPORT_H_
#define FIRESTORE_TESTS_TEST_SUPPORT_H_

#include <memory>
#include <string>

#include "backend/committer.h"
#include "backend/read_service.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/logging.h"
#include "firestore/index/backfill.h"
#include "firestore/index/catalog.h"
#include "firestore/index/layout.h"
#include "firestore/model/document.h"
#include "firestore/query/query.h"
#include "spanner/database.h"

namespace firestore::testing {

inline model::ResourcePath Path(std::string_view s) {
  auto p = model::ResourcePath::Parse(s);
  FS_CHECK(p.ok());
  return std::move(p).value();
}

inline model::FieldPath Field(std::string_view s) {
  auto f = model::FieldPath::Parse(s);
  FS_CHECK(f.ok());
  return std::move(f).value();
}

// One tenant database wired to a fresh Spanner instance.
class TestTenant {
 public:
  explicit TestTenant(std::string database_id = "projects/p/databases/d")
      : database_id_(std::move(database_id)),
        clock_(1'000'000'000),
        spanner_(&clock_),
        committer_(&spanner_, &clock_),
        reader_(&spanner_),
        backfill_(&spanner_) {
    FS_CHECK_OK(spanner_.CreateTable(index::kEntitiesTable));
    FS_CHECK_OK(spanner_.CreateTable(index::kIndexEntriesTable));
  }

  // Writes a document (set semantics) and returns its commit timestamp.
  spanner::Timestamp Put(std::string_view path, model::Map fields) {
    auto result = committer_.Commit(
        database_id_, catalog_,
        {backend::Mutation::Set(Path(path), std::move(fields))});
    FS_CHECK(result.ok());
    return result->commit_ts;
  }

  spanner::Timestamp Delete(std::string_view path) {
    auto result = committer_.Commit(database_id_, catalog_,
                                    {backend::Mutation::Delete(Path(path))});
    FS_CHECK(result.ok());
    return result->commit_ts;
  }

  StatusOr<backend::RunQueryResult> Run(const query::Query& q,
                                        spanner::Timestamp ts = 0) {
    return reader_.RunQuery(database_id_, catalog_, q, ts);
  }

  const std::string& id() const { return database_id_; }
  ManualClock& clock() { return clock_; }
  spanner::Database& spanner() { return spanner_; }
  index::IndexCatalog& catalog() { return catalog_; }
  backend::Committer& committer() { return committer_; }
  backend::ReadService& reader() { return reader_; }
  index::IndexBackfillService& backfill() { return backfill_; }

  // Counts live rows in a table (optionally restricted to a key prefix).
  int64_t CountRows(const std::string& table,
                    const std::string& prefix = "") {
    auto rows = spanner_.SnapshotScan(table, prefix,
                                      prefix.empty()
                                          ? ""
                                          : PrefixSuccessor(prefix),
                                      spanner_.StrongReadTimestamp());
    FS_CHECK(rows.ok());
    return static_cast<int64_t>(rows->size());
  }

 private:
  std::string database_id_;
  ManualClock clock_;
  spanner::Database spanner_;
  index::IndexCatalog catalog_;
  backend::Committer committer_;
  backend::ReadService reader_;
  index::IndexBackfillService backfill_;
};

}  // namespace firestore::testing

#endif  // FIRESTORE_TESTS_TEST_SUPPORT_H_
