// Randomized end-to-end property tests for the invariants in DESIGN.md §4:
// serializability under concurrency (3), real-time snapshot correctness (4),
// connection-level consistency (5), and offline convergence (6).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/client.h"
#include "common/random.h"
#include "firestore/codec/document_codec.h"
#include "firestore/index/layout.h"
#include "service/service.h"
#include "tests/test_support.h"

namespace firestore {
namespace {

using backend::Mutation;
using model::Document;
using model::Map;
using model::Value;
using query::Query;
using testing::Field;
using testing::Path;

constexpr char kDb[] = "projects/prop/databases/d";

// ---------------------------------------------------------------------------
// Invariant 3: serializability — concurrent transfers preserve the total.

class TransferPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransferPropertyTest, ConcurrentTransfersPreserveTotal) {
  ManualClock clock(1'000'000'000);
  service::FirestoreService service(&clock);
  ASSERT_TRUE(service.CreateDatabase(kDb).ok());
  constexpr int kAccounts = 6;
  constexpr int64_t kInitial = 100;
  for (int i = 0; i < kAccounts; ++i) {
    ASSERT_TRUE(service
                    .Commit(kDb, {Mutation::Set(
                                     Path("/accounts/a" + std::to_string(i)),
                                     {{"balance",
                                       Value::Integer(kInitial)}})})
                    .ok());
  }
  constexpr int kThreads = 3;
  constexpr int kTransfersPerThread = 15;
  std::vector<std::thread> threads;
  uint64_t seed = GetParam();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 100 + static_cast<uint64_t>(t));
      for (int i = 0; i < kTransfersPerThread; ++i) {
        int from = static_cast<int>(rng.Uniform(0, kAccounts - 1));
        int to = static_cast<int>(rng.Uniform(0, kAccounts - 1));
        if (from == to) continue;
        int64_t amount = rng.Uniform(1, 10);
        // RunTransaction retries on wound-wait aborts internally.
        auto result = service.RunTransaction(
            kDb,
            [&](spanner::ReadWriteTransaction& txn)
                -> StatusOr<std::vector<Mutation>> {
              auto read_balance =
                  [&](int account) -> StatusOr<int64_t> {
                spanner::Timestamp version = 0;
                ASSIGN_OR_RETURN(
                    spanner::RowValue row,
                    txn.Read(index::kEntitiesTable,
                             index::EntityKey(
                                 kDb, Path("/accounts/a" +
                                           std::to_string(account))),
                             spanner::LockMode::kExclusive, &version));
                FS_CHECK(row.has_value());
                ASSIGN_OR_RETURN(Document doc,
                                 codec::ParseDocument(*row));
                return doc.GetField(Field("balance"))->integer_value();
              };
              ASSIGN_OR_RETURN(int64_t from_balance, read_balance(from));
              ASSIGN_OR_RETURN(int64_t to_balance, read_balance(to));
              return std::vector<Mutation>{
                  Mutation::Merge(
                      Path("/accounts/a" + std::to_string(from)),
                      {{"balance", Value::Integer(from_balance - amount)}}),
                  Mutation::Merge(
                      Path("/accounts/a" + std::to_string(to)),
                      {{"balance", Value::Integer(to_balance + amount)}})};
            });
        // Retries exhausted under heavy contention are acceptable; money
        // must never be created or destroyed either way.
        (void)result;
      }
    });
  }
  for (auto& t : threads) t.join();
  int64_t total = 0;
  for (int i = 0; i < kAccounts; ++i) {
    auto doc = service.Get(kDb, Path("/accounts/a" + std::to_string(i)));
    ASSERT_TRUE(doc.ok() && doc->has_value());
    total += (*doc)->GetField(Field("balance"))->integer_value();
  }
  EXPECT_EQ(total, kAccounts * kInitial);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransferPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Invariants 4 & 5: every delivered snapshot equals a rerun of the query at
// its timestamp, snapshots are monotonic, and queries sharing a connection
// advance to identical timestamps.

class RealtimePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RealtimePropertyTest, SnapshotsMatchRerunsUnderRandomWorkload) {
  ManualClock clock(1'000'000'000);
  service::FirestoreService service(&clock);
  ASSERT_TRUE(service.CreateDatabase(kDb).ok());
  Rng rng(GetParam());

  struct Watch {
    Query query{model::ResourcePath(), ""};
    std::map<std::string, Document> state;
    spanner::Timestamp last_ts = 0;
    std::vector<spanner::Timestamp> delivered_at;
  };
  // Two queries on ONE connection: alpha (all) and beta (filtered).
  auto conn = service.frontend().OpenPrivilegedConnection(kDb);
  Watch alpha, beta;
  alpha.query = Query(model::ResourcePath(), "alpha");
  beta.query = Query(model::ResourcePath(), "beta");
  beta.query.Where(Field("hot"), query::Operator::kEqual,
                   Value::Boolean(true));
  auto attach = [&](Watch& w) {
    auto target = service.frontend().Listen(
        conn, w.query, [&w](const frontend::QuerySnapshot& s) {
          if (s.is_reset) w.state.clear();
          for (const auto& change : s.changes) {
            if (change.kind == frontend::ChangeKind::kRemoved) {
              w.state.erase(change.doc.name().CanonicalString());
            } else {
              w.state[change.doc.name().CanonicalString()] = change.doc;
            }
          }
          EXPECT_GE(s.snapshot_ts, w.last_ts);
          w.last_ts = s.snapshot_ts;
          w.delivered_at.push_back(s.snapshot_ts);
        });
    ASSERT_TRUE(target.ok());
  };
  attach(alpha);
  attach(beta);

  auto verify = [&](Watch& w) {
    auto rerun = service.RunQuery(kDb, w.query, w.last_ts);
    ASSERT_TRUE(rerun.ok());
    ASSERT_EQ(rerun->result.documents.size(), w.state.size())
        << w.query.CanonicalString() << " at " << w.last_ts;
    for (const Document& doc : rerun->result.documents) {
      auto it = w.state.find(doc.name().CanonicalString());
      ASSERT_NE(it, w.state.end());
      EXPECT_TRUE(it->second == doc);
    }
  };

  for (int step = 0; step < 120; ++step) {
    // Random mutation in one of the two collections.
    std::string collection = rng.Bernoulli(0.5) ? "alpha" : "beta";
    std::string path =
        "/" + collection + "/d" + std::to_string(rng.Uniform(0, 8));
    if (rng.Bernoulli(0.2)) {
      (void)service.Commit(kDb, {Mutation::Delete(Path(path))});
    } else {
      Map fields;
      fields["v"] = Value::Integer(rng.Uniform(0, 100));
      fields["hot"] = Value::Boolean(rng.Bernoulli(0.5));
      ASSERT_TRUE(
          service.Commit(kDb, {Mutation::Set(Path(path), fields)}).ok());
    }
    // Pump at random intervals so deliveries batch several commits.
    if (rng.Bernoulli(0.4)) {
      size_t alpha_before = alpha.delivered_at.size();
      size_t beta_before = beta.delivered_at.size();
      clock.AdvanceBy(static_cast<Micros>(rng.Uniform(1'000, 200'000)));
      service.Pump();
      service.Pump();
      verify(alpha);
      verify(beta);
      // Invariant 5: snapshots are only delivered at timestamps every query
      // on the connection has reached — so when both queries deliver in the
      // same round, they deliver at the same timestamp. (A query with no
      // relevant changes silently advances and delivers nothing.)
      if (alpha.delivered_at.size() > alpha_before &&
          beta.delivered_at.size() > beta_before) {
        EXPECT_EQ(alpha.last_ts, beta.last_ts);
      }
    }
  }
  // Final drain.
  clock.AdvanceBy(1'000'000);
  service.Pump();
  service.Pump();
  verify(alpha);
  verify(beta);
  EXPECT_GT(alpha.delivered_at.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RealtimePropertyTest,
                         ::testing::Values(10, 20, 30, 40));

// ---------------------------------------------------------------------------
// Invariant 6: offline convergence — a client that queues writes offline
// converges with the server and a second online client after reconnecting.

class OfflinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OfflinePropertyTest, RandomDisconnectsConverge) {
  ManualClock clock(1'000'000'000);
  service::FirestoreService service(&clock);
  ASSERT_TRUE(service.CreateDatabase(kDb).ok());
  Rng rng(GetParam());

  client::FirestoreClient::Options opts;
  opts.third_party = false;
  client::FirestoreClient flaky(&service, kDb, rules::AuthContext{}, opts);
  client::FirestoreClient stable(&service, kDb, rules::AuthContext{}, opts);

  auto pump_all = [&] {
    flaky.Pump();
    stable.Pump();
    clock.AdvanceBy(100'000);
    service.Pump();
    service.Pump();
  };

  for (int step = 0; step < 100; ++step) {
    int action = static_cast<int>(rng.Uniform(0, 9));
    std::string path = "/notes/n" + std::to_string(rng.Uniform(0, 6));
    Map fields;
    fields["v"] = Value::Integer(rng.Uniform(0, 1000));
    switch (action) {
      case 0:
        flaky.SetNetworkEnabled(false);
        break;
      case 1:
        flaky.SetNetworkEnabled(true);
        break;
      case 2:
        if (rng.Bernoulli(0.3)) {
          // Restart mid-flight (persistence keeps the queue).
          flaky.Restart();
        }
        break;
      case 3:
      case 4:
        ASSERT_TRUE(flaky.Set(Path(path), fields).ok());
        break;
      case 5:
        ASSERT_TRUE(flaky.Delete(Path(path)).ok());
        break;
      case 6:
      case 7:
        ASSERT_TRUE(stable.Set(Path(path), fields).ok());
        break;
      default:
        pump_all();
        break;
    }
  }
  // Reconnect and drain everything.
  flaky.SetNetworkEnabled(true);
  for (int i = 0; i < 4; ++i) pump_all();
  EXPECT_FALSE(flaky.local_store().HasPending());
  EXPECT_FALSE(stable.local_store().HasPending());

  // Both clients' views of the collection equal the server's.
  Query q(model::ResourcePath(), "notes");
  auto server = service.RunQuery(kDb, q);
  ASSERT_TRUE(server.ok());
  for (client::FirestoreClient* c : {&flaky, &stable}) {
    auto view = c->RunQuery(q);
    ASSERT_TRUE(view.ok());
    EXPECT_FALSE(view->has_pending_writes);
    ASSERT_EQ(view->documents.size(), server->result.documents.size());
    for (size_t i = 0; i < view->documents.size(); ++i) {
      EXPECT_TRUE(view->documents[i] == server->result.documents[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflinePropertyTest,
                         ::testing::Values(100, 200, 300, 400, 500));

// ---------------------------------------------------------------------------
// Multi-threaded service smoke: concurrent tenants writing while listeners
// are live and the pump runs on its own thread. Exercises every lock in the
// Changelog / Matcher / Frontend / Spanner stack; the assertion is
// convergence without crashes or lost notifications.

TEST(ServiceConcurrencyTest, ParallelTenantsWithListenersConverge) {
  RealClock clock;
  service::FirestoreService service(&clock);
  constexpr int kTenants = 3;
  constexpr int kWritesPerTenant = 80;
  std::vector<std::string> dbs;
  struct Listened {
    Mutex mu;
    std::map<std::string, Document> docs FS_GUARDED_BY(mu);
  };
  std::vector<std::unique_ptr<Listened>> views;
  for (int i = 0; i < kTenants; ++i) {
    dbs.push_back("projects/t" + std::to_string(i) + "/databases/d");
    ASSERT_TRUE(service.CreateDatabase(dbs.back()).ok());
    views.push_back(std::make_unique<Listened>());
    auto conn = service.frontend().OpenPrivilegedConnection(dbs.back());
    Listened* view = views.back().get();
    auto target = service.frontend().Listen(
        conn, Query(model::ResourcePath(), "items"),
        [view](const frontend::QuerySnapshot& s) {
          MutexLock lock(&view->mu);
          if (s.is_reset) view->docs.clear();
          for (const auto& change : s.changes) {
            if (change.kind == frontend::ChangeKind::kRemoved) {
              view->docs.erase(change.doc.name().CanonicalString());
            } else {
              view->docs[change.doc.name().CanonicalString()] = change.doc;
            }
          }
        });
    ASSERT_TRUE(target.ok());
  }
  std::atomic<bool> stop{false};
  std::thread pumper([&] {
    while (!stop.load()) {
      service.Pump();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kTenants; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 50);
      for (int i = 0; i < kWritesPerTenant; ++i) {
        std::string path = "/items/i" + std::to_string(rng.Uniform(0, 15));
        Map fields;
        fields["v"] = Value::Integer(i);
        ASSERT_TRUE(service
                        .Commit(dbs[t], {Mutation::Set(testing::Path(path),
                                                       fields)})
                        .ok());
      }
    });
  }
  for (auto& w : writers) w.join();
  // Drain: a few more pump rounds after the last commit.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop = true;
  pumper.join();
  for (int i = 0; i < 3; ++i) service.Pump();

  for (int t = 0; t < kTenants; ++t) {
    auto server =
        service.RunQuery(dbs[t], Query(model::ResourcePath(), "items"));
    ASSERT_TRUE(server.ok());
    MutexLock lock(&views[t]->mu);
    ASSERT_EQ(views[t]->docs.size(), server->result.documents.size())
        << "tenant " << t;
    for (const Document& doc : server->result.documents) {
      auto it = views[t]->docs.find(doc.name().CanonicalString());
      ASSERT_NE(it, views[t]->docs.end());
      EXPECT_TRUE(it->second == doc);
    }
  }
}

}  // namespace
}  // namespace firestore
