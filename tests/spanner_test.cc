#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "spanner/database.h"

namespace firestore::spanner {
namespace {

class SpannerTest : public ::testing::Test {
 protected:
  SpannerTest() : clock_(1'000'000), db_(&clock_) {
    FS_CHECK_OK(db_.CreateTable("T"));
  }

  // Commits a single put and returns its timestamp.
  Timestamp Put(const std::string& key, const std::string& value) {
    auto txn = db_.BeginTransaction();
    txn->Put("T", key, value);
    auto result = txn->Commit();
    FS_CHECK(result.ok());
    return result->commit_ts;
  }

  ManualClock clock_;
  Database db_;
};

// ---------------------------------------------------------------------------
// Basic storage + MVCC

TEST_F(SpannerTest, PutThenSnapshotRead) {
  Timestamp ts = Put("k", "v1");
  auto v = db_.SnapshotRead("T", "k", ts);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->has_value());
  EXPECT_EQ(**v, "v1");
}

TEST_F(SpannerTest, SnapshotReadBeforeWriteSeesNothing) {
  Timestamp ts = Put("k", "v1");
  auto v = db_.SnapshotRead("T", "k", ts - 1);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->has_value());
}

TEST_F(SpannerTest, MultipleVersionsReadAtTimestamps) {
  Timestamp t1 = Put("k", "v1");
  Timestamp t2 = Put("k", "v2");
  Timestamp t3 = Put("k", "v3");
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
  EXPECT_EQ(**db_.SnapshotRead("T", "k", t1), "v1");
  EXPECT_EQ(**db_.SnapshotRead("T", "k", t2), "v2");
  EXPECT_EQ(**db_.SnapshotRead("T", "k", t3), "v3");
  EXPECT_EQ(**db_.SnapshotRead("T", "k", t3 + 100), "v3");
}

TEST_F(SpannerTest, DeleteCreatesTombstone) {
  Timestamp t1 = Put("k", "v1");
  auto txn = db_.BeginTransaction();
  txn->Delete("T", "k");
  auto result = txn->Commit();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(db_.SnapshotRead("T", "k", result->commit_ts)->has_value());
  EXPECT_TRUE(db_.SnapshotRead("T", "k", t1)->has_value());
}

TEST_F(SpannerTest, SnapshotScanOrderedAndBounded) {
  Put("a", "1");
  Put("c", "3");
  Put("b", "2");
  Put("d", "4");
  Timestamp now = db_.StrongReadTimestamp();
  auto rows = db_.SnapshotScan("T", "b", "d", now);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].key, "b");
  EXPECT_EQ((*rows)[1].key, "c");
}

TEST_F(SpannerTest, ScanWithLimit) {
  for (int i = 0; i < 10; ++i) Put("k" + std::to_string(i), "v");
  auto rows = db_.SnapshotScan("T", "", "", db_.StrongReadTimestamp(), 3);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(SpannerTest, ScanSkipsTombstones) {
  Put("a", "1");
  Put("b", "2");
  auto txn = db_.BeginTransaction();
  txn->Delete("T", "a");
  ASSERT_TRUE(txn->Commit().ok());
  auto rows = db_.SnapshotScan("T", "", "", db_.StrongReadTimestamp());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].key, "b");
}

TEST_F(SpannerTest, UnknownTableErrors) {
  EXPECT_EQ(db_.SnapshotRead("nope", "k", 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.CreateTable("T").code(), StatusCode::kAlreadyExists);
}

// ---------------------------------------------------------------------------
// Transactions

TEST_F(SpannerTest, ReadYourOwnWrites) {
  auto txn = db_.BeginTransaction();
  txn->Put("T", "k", "mine");
  auto v = txn->Read("T", "k");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->has_value());
  EXPECT_EQ(**v, "mine");
}

TEST_F(SpannerTest, AbortDiscardsWrites) {
  auto txn = db_.BeginTransaction();
  txn->Put("T", "k", "x");
  txn->Abort();
  EXPECT_FALSE(
      db_.SnapshotRead("T", "k", db_.StrongReadTimestamp())->has_value());
}

TEST_F(SpannerTest, CommitTimestampsStrictlyIncrease) {
  Timestamp prev = 0;
  for (int i = 0; i < 20; ++i) {
    Timestamp ts = Put("k" + std::to_string(i), "v");
    EXPECT_GT(ts, prev);
    prev = ts;
  }
}

TEST_F(SpannerTest, CommitRespectsMinAllowed) {
  auto txn = db_.BeginTransaction();
  txn->Put("T", "k", "v");
  Timestamp min_allowed = clock_.NowMicros() + 1'000'000;
  auto result = txn->Commit(min_allowed, kMaxTimestamp);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->commit_ts, min_allowed);
}

TEST_F(SpannerTest, CommitFailsWhenMaxAllowedTooLow) {
  Put("warm", "v");  // push the oracle forward
  auto txn = db_.BeginTransaction();
  txn->Put("T", "k", "v");
  auto result = txn->Commit(0, 1);  // max below the oracle floor
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  // Failed commit leaves no trace.
  EXPECT_FALSE(
      db_.SnapshotRead("T", "k", db_.StrongReadTimestamp())->has_value());
}

TEST_F(SpannerTest, TransactionalMessagesDeliveredOnCommit) {
  auto txn = db_.BeginTransaction();
  txn->Put("T", "k", "v");
  txn->AddMessage("triggers", "payload1");
  auto result = txn->Commit();
  ASSERT_TRUE(result.ok());
  auto msg = db_.queue().Pop("triggers");
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "payload1");
  EXPECT_EQ(msg->commit_ts, result->commit_ts);
}

TEST_F(SpannerTest, AbortedTransactionMessagesDropped) {
  auto txn = db_.BeginTransaction();
  txn->AddMessage("triggers", "payload");
  txn->Abort();
  EXPECT_FALSE(db_.queue().Pop("triggers").has_value());
}

TEST_F(SpannerTest, TransactionScanMergesBufferedWrites) {
  Put("a", "old");
  Put("c", "keep");
  auto txn = db_.BeginTransaction();
  txn->Put("T", "a", "new");
  txn->Put("T", "b", "insert");
  txn->Delete("T", "c");
  auto rows = txn->Scan("T", "", "");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].key, "a");
  EXPECT_EQ((*rows)[0].value, "new");
  EXPECT_EQ((*rows)[1].key, "b");
}

TEST_F(SpannerTest, WriteConflictSerializes) {
  // Two transactions write the same key: the younger gets wounded or waits;
  // the final state must be one of the two values with both commits ordered.
  auto t1 = db_.BeginTransaction();
  auto t2 = db_.BeginTransaction();
  t1->Put("T", "k", "from-t1");
  auto r1 = t1->Commit();
  ASSERT_TRUE(r1.ok());
  t2->Put("T", "k", "from-t2");
  auto r2 = t2->Commit();
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->commit_ts, r1->commit_ts);
  EXPECT_EQ(**db_.SnapshotRead("T", "k", r2->commit_ts), "from-t2");
}

TEST_F(SpannerTest, OlderTransactionWoundsYoungerHolder) {
  auto older = db_.BeginTransaction();
  auto younger = db_.BeginTransaction();
  ASSERT_LT(older->id(), younger->id());
  // Younger takes the lock first.
  ASSERT_TRUE(younger->Read("T", "k", LockMode::kExclusive).ok());
  // Older requests the same lock from another thread; it must wound the
  // younger and eventually acquire.
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    auto v = older->Read("T", "k", LockMode::kExclusive);
    acquired = v.ok();
  });
  // The younger transaction now finds itself wounded.
  Status s;
  for (int i = 0; i < 100; ++i) {
    s = younger->Read("T", "other", LockMode::kShared).status();
    if (!s.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  younger->Abort();
  t.join();
  EXPECT_TRUE(acquired);
  older->Abort();
}

TEST_F(SpannerTest, WoundedTransactionCannotCommit) {
  auto older = db_.BeginTransaction();
  auto younger = db_.BeginTransaction();
  db_.lock_manager().Wound(younger->id());
  younger->Put("T", "k", "x");
  EXPECT_EQ(younger->Commit().status().code(), StatusCode::kAborted);
  older->Abort();
}

TEST_F(SpannerTest, SharedLocksAllowConcurrentReaders) {
  Put("k", "v");
  auto t1 = db_.BeginTransaction();
  auto t2 = db_.BeginTransaction();
  EXPECT_TRUE(t1->Read("T", "k").ok());
  EXPECT_TRUE(t2->Read("T", "k").ok());
  t1->Abort();
  t2->Abort();
}

TEST_F(SpannerTest, ConcurrentIncrementsAreSerializable) {
  Put("counter", "0");
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<int> committed{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        while (true) {
          auto txn = db_.BeginTransaction();
          auto v = txn->Read("T", "counter", LockMode::kExclusive);
          if (!v.ok()) continue;  // wounded: retry
          int current = std::stoi(**v);
          txn->Put("T", "counter", std::to_string(current + 1));
          if (txn->Commit().ok()) {
            ++committed;
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(committed.load(), kThreads * kIncrementsPerThread);
  auto v = db_.SnapshotRead("T", "counter", db_.StrongReadTimestamp());
  EXPECT_EQ(**v, std::to_string(kThreads * kIncrementsPerThread));
}

// ---------------------------------------------------------------------------
// Tablets: splitting and participants

TEST_F(SpannerTest, ExplicitSplitRoutesKeys) {
  Put("apple", "1");
  Put("mango", "2");
  Table* table = db_.GetTable("T");
  ASSERT_TRUE(table->SplitAt("h").ok());
  EXPECT_EQ(table->tablet_count(), 2u);
  EXPECT_EQ(table->TabletForKey("apple")->start_key(), "");
  EXPECT_EQ(table->TabletForKey("mango")->start_key(), "h");
  // Data still readable across the split.
  EXPECT_EQ(**db_.SnapshotRead("T", "apple", db_.StrongReadTimestamp()), "1");
  EXPECT_EQ(**db_.SnapshotRead("T", "mango", db_.StrongReadTimestamp()), "2");
}

TEST_F(SpannerTest, ScanCrossesTabletBoundaries) {
  for (char c = 'a'; c <= 'f'; ++c) Put(std::string(1, c), "v");
  Table* table = db_.GetTable("T");
  ASSERT_TRUE(table->SplitAt("c").ok());
  ASSERT_TRUE(table->SplitAt("e").ok());
  auto rows = db_.SnapshotScan("T", "", "", db_.StrongReadTimestamp());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 6u);
  for (size_t i = 0; i + 1 < rows->size(); ++i) {
    EXPECT_LT((*rows)[i].key, (*rows)[i + 1].key);
  }
}

TEST_F(SpannerTest, LoadBasedSplitting) {
  for (int i = 0; i < 200; ++i) Put("key" + std::to_string(i), "v");
  Table* table = db_.GetTable("T");
  EXPECT_EQ(table->tablet_count(), 1u);
  int splits = db_.RunLoadSplitting(/*load_threshold=*/100);
  EXPECT_GE(splits, 1);
  EXPECT_GT(table->tablet_count(), 1u);
}

TEST_F(SpannerTest, ParticipantCountReflectsTabletsTouched) {
  for (char c = 'a'; c <= 'f'; ++c) Put(std::string(1, c), "v");
  Table* table = db_.GetTable("T");
  ASSERT_TRUE(table->SplitAt("d").ok());
  auto txn = db_.BeginTransaction();
  txn->Put("T", "a", "1");
  txn->Put("T", "b", "2");
  auto single = txn->Commit();
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->participants, 1);
  auto txn2 = db_.BeginTransaction();
  txn2->Put("T", "a", "1");
  txn2->Put("T", "e", "2");
  auto multi = txn2->Commit();
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->participants, 2);
}

TEST_F(SpannerTest, GarbageCollectionDropsOldVersions) {
  Put("k", "v1");
  Put("k", "v2");
  Timestamp t3 = Put("k", "v3");
  int64_t dropped = db_.GarbageCollect(t3);
  EXPECT_GE(dropped, 2);
  EXPECT_EQ(**db_.SnapshotRead("T", "k", t3), "v3");
}

TEST_F(SpannerTest, GarbageCollectionRemovesDeadRows) {
  Put("k", "v1");
  auto txn = db_.BeginTransaction();
  txn->Delete("T", "k");
  auto result = txn->Commit();
  ASSERT_TRUE(result.ok());
  db_.GarbageCollect(result->commit_ts + 1);
  auto rows = db_.SnapshotScan("T", "", "", db_.StrongReadTimestamp());
  EXPECT_TRUE(rows->empty());
}

// ---------------------------------------------------------------------------
// Lock manager edges

TEST(LockManagerTest, SharedToExclusiveUpgrade) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(locks.Acquire(1, "k", LockMode::kExclusive).ok());  // upgrade
  // A second shared request now conflicts (would wait); use a timeout.
  EXPECT_EQ(locks.Acquire(2, "k", LockMode::kShared, 50).code(),
            StatusCode::kDeadlineExceeded);
  locks.ReleaseAll(1);
  EXPECT_TRUE(locks.Acquire(2, "k", LockMode::kShared, 50).ok());
  locks.ReleaseAll(2);
  EXPECT_EQ(locks.LockCount(), 0);
}

TEST(LockManagerTest, ExclusiveIsReentrant) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Acquire(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Acquire(1, "k", LockMode::kShared).ok());
  locks.ReleaseAll(1);
  EXPECT_EQ(locks.LockCount(), 0);
}

TEST(LockManagerTest, YoungerWaiterTimesOutInsteadOfWounding) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, "k", LockMode::kExclusive).ok());
  // Txn 2 is younger than the holder: wound-wait says it must wait.
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(locks.Acquire(2, "k", LockMode::kExclusive, 50).code(),
            StatusCode::kDeadlineExceeded);
  auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  EXPECT_GE(waited, 40);
  EXPECT_FALSE(locks.IsWounded(1));  // older holder is never wounded
  locks.ReleaseAll(1);
  locks.ReleaseAll(2);
}

TEST(LockManagerTest, ReleaseAllClearsWoundedFlag) {
  LockManager locks;
  locks.Wound(7);
  EXPECT_TRUE(locks.IsWounded(7));
  EXPECT_EQ(locks.Acquire(7, "k", LockMode::kShared).code(),
            StatusCode::kAborted);
  locks.ReleaseAll(7);
  EXPECT_FALSE(locks.IsWounded(7));
  EXPECT_TRUE(locks.Acquire(7, "k", LockMode::kShared).ok());
  locks.ReleaseAll(7);
}

// ---------------------------------------------------------------------------
// TrueTime / oracle

TEST(TrueTimeTest, IntervalBracketsClock) {
  ManualClock clock(5000);
  TrueTime tt(&clock, 100);
  TrueTimeInterval now = tt.Now();
  EXPECT_EQ(now.earliest, 4900);
  EXPECT_EQ(now.latest, 5100);
}

TEST(TimestampOracleTest, MonotonicAcrossClockStalls) {
  ManualClock clock(1000);
  TimestampOracle oracle(&clock);
  auto t1 = oracle.Allocate(0, kMaxTimestamp);
  auto t2 = oracle.Allocate(0, kMaxTimestamp);  // clock did not move
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_GT(*t2, *t1);
}

TEST(TimestampOracleTest, RespectsWindow) {
  ManualClock clock(1000);
  TimestampOracle oracle(&clock);
  EXPECT_EQ(oracle.Allocate(5000, 6000).value(), 5000);
  EXPECT_EQ(oracle.Allocate(0, 4000).status().code(), StatusCode::kAborted);
}

}  // namespace
}  // namespace firestore::spanner
