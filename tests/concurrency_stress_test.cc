// Race-hunting stress suite (docs/STATIC_ANALYSIS.md): multi-threaded
// hammers over the subsystems annotated with FS_GUARDED_BY, sized to finish
// in seconds on one core. Run under `cmake --preset tsan` / `asan` to turn
// every latent data race or lifetime bug into a hard failure; in all builds
// the runtime LockOrderChecker in the Mutex wrapper turns lock-order
// inversions and self-deadlocks into aborts.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "backend/types.h"
#include "common/clock.h"
#include "common/thread_annotations.h"
#include "firestore/model/document.h"
#include "firestore/query/query.h"
#include "rtcache/range_ownership.h"
#include "service/service.h"
#include "spanner/lock_manager.h"
#include "tests/test_support.h"

namespace firestore {
namespace {

using backend::Mutation;
using model::Map;
using model::Value;
using query::Query;
using ::firestore::testing::Path;

// Threads per role. One physical core is assumed; the point is interleaving
// under contention, not parallel speedup.
constexpr int kWriters = 2;
constexpr int kOpsPerWriter = 60;

// ---------------------------------------------------------------------------
// Mutex wrapper: deadlock-ordering checks (debug aborts)

// The inversion is observable on a single thread: A->B teaches the checker
// the order, B->A contradicts it. Run out-of-line so EXPECT_DEATH's
// statement stays free of commas (which confuse the macro expansion).
void ProvokeInversion() {
  LockOrderChecker::SetEnabled(true);
  Mutex a;
  Mutex b;
  {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  MutexLock lb(&b);
  MutexLock la(&a);  // inversion: b held while acquiring a
}

TEST(LockOrderCheckerDeathTest, RecursiveAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu;
  MutexLock lock(&mu);
  EXPECT_DEATH(mu.Lock(), "recursive acquisition");
}

TEST(LockOrderCheckerDeathTest, ReleasingUnheldMutexAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu;
  EXPECT_DEATH(mu.Unlock(), "not held by this thread");
}

TEST(LockOrderCheckerDeathTest, LockOrderInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The enable flag is flipped inside the death statement's child process,
  // so the parent's checker state is untouched.
  EXPECT_DEATH(ProvokeInversion(), "lock-order inversion");
}

TEST(LockOrderCheckerTest, ConsistentOrderIsSilent) {
  LockOrderChecker::SetEnabled(true);
  Mutex a, b;
  for (int i = 0; i < 3; ++i) {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  // Distinct threads using the same order are also fine.
  std::thread t([&] {
    MutexLock la(&a);
    MutexLock lb(&b);
  });
  t.join();
  LockOrderChecker::SetEnabled(false);
}

// ---------------------------------------------------------------------------
// RangeOwnership: re-sharding (tablet splits of the realtime key space)
// racing against ownership lookups.

TEST(RangeOwnershipStressTest, ReshardWhileResolvingOwnership) {
  rtcache::RangeOwnership ranges = rtcache::RangeOwnership::Uniform(4);
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&ranges, &done] {
      while (!done.load(std::memory_order_relaxed)) {
        int n = ranges.num_ranges();
        ASSERT_GE(n, 1);
        rtcache::RangeId owner = ranges.OwnerOf("projects/p/doc");
        ASSERT_GE(owner, 0);
        std::vector<rtcache::RangeId> covering =
            ranges.RangesCovering("a", "z");
        ASSERT_FALSE(covering.empty());
        (void)ranges.generation();
      }
    });
  }

  int64_t gen_before = ranges.generation();
  for (int i = 0; i < 200; ++i) {
    // Alternate between a handful of split layouts.
    switch (i % 3) {
      case 0: ranges.SetSplitPoints({"g", "q"}); break;
      case 1: ranges.SetSplitPoints({"d", "m", "t"}); break;
      default: ranges.SetSplitPoints({}); break;
    }
    std::this_thread::yield();
  }
  done.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(ranges.generation(), gen_before + 200);
}

// ---------------------------------------------------------------------------
// LockManager: wound-wait under heavy cross-thread contention. Every
// transaction either commits (holds all its locks at once) or aborts; the
// lock table must drain to empty either way.

TEST(LockManagerStressTest, WoundWaitHammerDrainsCleanly) {
  spanner::LockManager locks;
  std::atomic<uint64_t> next_txn{1};
  std::atomic<int> committed{0};
  std::atomic<int> aborted{0};

  auto worker = [&](int seed) {
    // Tiny deterministic PRNG; Date-free and racing-thread-safe.
    uint32_t state = 0x9e3779b9u ^ static_cast<uint32_t>(seed);
    auto next = [&state] {
      state = state * 1664525u + 1013904223u;
      return state >> 16;
    };
    for (int i = 0; i < 40; ++i) {
      spanner::TxnId txn = next_txn.fetch_add(1);
      // Lock keys in sorted order (k0 < k1 < ...) as the committer does, so
      // wound-wait (not ordering) is the only conflict-resolution in play.
      bool ok = true;
      int k1 = static_cast<int>(next() % 5);
      int k2 = k1 + 1 + static_cast<int>(next() % 3);
      for (int k : {k1, k2}) {
        std::string key = "rows/k" + std::to_string(k);
        spanner::LockMode mode = (next() % 2 == 0)
                                     ? spanner::LockMode::kShared
                                     : spanner::LockMode::kExclusive;
        if (!locks.Acquire(txn, key, mode, /*timeout_ms=*/1000).ok()) {
          ok = false;
          break;
        }
      }
      locks.ReleaseAll(txn);
      (ok ? committed : aborted).fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker, t);
  for (auto& th : threads) th.join();

  EXPECT_EQ(locks.LockCount(), 0);
  EXPECT_EQ(committed.load() + aborted.load(), 4 * 40);
  // Wound-wait must make progress: the vast majority commit.
  EXPECT_GT(committed.load(), 0);
}

// ---------------------------------------------------------------------------
// Whole-service hammer: concurrent committers vs. readers vs. changelog
// subscribers (realtime listeners) vs. tablet splits vs. tenant churn, with
// the lock-order checker armed. This is the test TSan is pointed at.

TEST(ServiceStressTest, CommittersReadersListenersAndSplits) {
  LockOrderChecker::SetEnabled(true);

  ManualClock clock(1'000'000'000);
  service::FirestoreService service(&clock);
  constexpr char kDb[] = "projects/p/databases/d";
  constexpr char kChurnDb[] = "projects/churn/databases/d";
  FS_CHECK_OK(service.CreateDatabase(kDb));

  // Changelog subscriber: a realtime listener over the hammered collection.
  std::atomic<int> snapshots{0};
  std::atomic<int> max_docs_seen{0};
  auto conn = service.frontend().OpenPrivilegedConnection(kDb);
  auto target = service.frontend().Listen(
      conn, Query(model::ResourcePath(), "c"),
      [&](const frontend::QuerySnapshot& s) {
        snapshots.fetch_add(1);
        int n = static_cast<int>(s.documents.size());
        int prev = max_docs_seen.load();
        while (n > prev && !max_docs_seen.compare_exchange_weak(prev, n)) {
        }
      });
  ASSERT_TRUE(target.ok());

  std::atomic<bool> done{false};
  std::atomic<int> commits_ok{0};
  std::vector<std::thread> threads;

  // Committers: disjoint document sets, so every commit should succeed.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        std::string path =
            "/c/w" + std::to_string(w) + "_" + std::to_string(i);
        auto result = service.Commit(
            kDb, {Mutation::Set(Path(path),
                                {{"v", Value::Integer(i)},
                                 {"w", Value::Integer(w)}})});
        ASSERT_TRUE(result.ok()) << result.status();
        commits_ok.fetch_add(1);
      }
    });
  }

  // Reader: point reads and queries racing the committers.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      auto doc = service.Get(kDb, Path("/c/w0_0"));
      ASSERT_TRUE(doc.ok()) << doc.status();
      auto result = service.RunQuery(kDb, Query(model::ResourcePath(), "c"));
      ASSERT_TRUE(result.ok()) << result.status();
    }
  });

  // Pump: advances time and drives Changelog -> Matcher -> Frontend, which
  // invokes the listener callback concurrently with everything else.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      clock.AdvanceBy(50'000);
      service.Pump();
      std::this_thread::yield();
    }
  });

  // Tablet splits: load-based splitting of the storage layer underneath the
  // running committers and readers.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      service.spanner().RunLoadSplitting(/*load_threshold=*/4);
      std::this_thread::yield();
    }
  });

  // Tenant churn: create/delete a second database, racing the data plane's
  // tenant lookups (regression stress for the shared_ptr tenant lifetime).
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      FS_CHECK_OK(service.CreateDatabase(kChurnDb));
      auto commit = service.Commit(
          kChurnDb, {Mutation::Set(Path("/t/x"), {{"v", Value::Integer(1)}})});
      // The commit may race DeleteDatabase below only in future iterations;
      // here the database exists, so it must succeed.
      ASSERT_TRUE(commit.ok()) << commit.status();
      FS_CHECK_OK(service.DeleteDatabase(kChurnDb));
      // After deletion the data plane must refuse cleanly, not crash.
      auto refused = service.Get(kChurnDb, Path("/t/x"));
      ASSERT_EQ(refused.status().code(), StatusCode::kNotFound);
    }
  });

  // The committer threads bound the test duration; everything else spins
  // until they finish.
  threads[0].join();
  threads[1].join();
  done.store(true);
  for (size_t i = 2; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(commits_ok.load(), kWriters * kOpsPerWriter);

  // Drain the realtime pipeline: every committed document must eventually
  // appear in one consistent listener snapshot.
  const int total_docs = kWriters * kOpsPerWriter;
  for (int i = 0; i < 50 && max_docs_seen.load() < total_docs; ++i) {
    clock.AdvanceBy(100'000);
    service.Pump();
    service.Pump();
  }
  EXPECT_EQ(max_docs_seen.load(), total_docs);
  EXPECT_GT(snapshots.load(), 0);

  // Every document is durably readable after the dust settles.
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kOpsPerWriter; ++i) {
      std::string path = "/c/w" + std::to_string(w) + "_" + std::to_string(i);
      auto doc = service.Get(kDb, Path(path));
      ASSERT_TRUE(doc.ok()) << path << ": " << doc.status();
      ASSERT_TRUE(doc->has_value()) << path;
    }
  }

  FS_CHECK_OK(service.frontend().StopListen(conn, *target));
  service.frontend().CloseConnection(conn);
  LockOrderChecker::SetEnabled(false);
}

}  // namespace
}  // namespace firestore
